#!/usr/bin/env python3
"""Static check: no unguarded MechanismMatrix construction.

The privacy guard (:mod:`repro.privacy.guard`) is only worth anything
if call sites cannot route around it.  This script enforces the
construction rule statically: direct ``MechanismMatrix(...)`` calls are
allowed only inside

* ``src/repro/mechanisms/``  — the mechanism definitions themselves,
* ``src/repro/testing/``     — the fault harness (it fabricates doctored
  results on purpose),
* ``src/repro/privacy/guard.py`` — the guard's own ``guarded_matrix``
  entry point.

Everything else must build matrices through
``repro.privacy.guard.guarded_matrix`` (validated construction, with an
optional GeoInd check) so new call sites cannot bypass validation.  A
line may carry a ``# guard-exempt: <reason>`` comment to opt out
explicitly — the reason then shows up in review.

Exit status 0 when clean, 1 with a per-violation report otherwise.
Wired into tier-1 via ``tests/test_tooling.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

#: Paths (relative to src/repro) where direct construction is legitimate.
ALLOWED_PREFIXES = ("mechanisms/", "testing/")
ALLOWED_FILES = ("privacy/guard.py",)

#: A direct constructor call; the word boundary keeps imports,
#: annotations and docstring mentions out.
CONSTRUCTION = re.compile(r"\bMechanismMatrix\(")

EXEMPTION = "# guard-exempt:"


def find_violations(src_root: Path = SRC_ROOT) -> list[tuple[Path, int, str]]:
    """All unguarded construction sites as (file, line_no, line) tuples."""
    violations: list[tuple[Path, int, str]] = []
    for path in sorted(src_root.rglob("*.py")):
        rel = path.relative_to(src_root).as_posix()
        if rel.startswith(ALLOWED_PREFIXES) or rel in ALLOWED_FILES:
            continue
        for line_no, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if not CONSTRUCTION.search(line):
                continue
            stripped = line.lstrip()
            if stripped.startswith("#") or EXEMPTION in line:
                continue
            violations.append((path, line_no, line.strip()))
    return violations


def main() -> int:
    violations = find_violations()
    if not violations:
        print("check_privacy_guards: OK (no unguarded MechanismMatrix "
              "construction outside mechanisms/, testing/, privacy/guard.py)")
        return 0
    print("check_privacy_guards: FOUND unguarded MechanismMatrix "
          "construction — use repro.privacy.guard.guarded_matrix instead:\n")
    for path, line_no, line in violations:
        print(f"  {path.relative_to(REPO_ROOT)}:{line_no}: {line}")
    print(f"\n{len(violations)} violation(s).")
    return 1


if __name__ == "__main__":
    sys.exit(main())
