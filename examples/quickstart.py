"""Quickstart: sanitise locations with the Multi-Step Mechanism.

Builds MSM for the Gowalla-Austin dataset, sanitises a handful of
check-ins, and verifies the privacy bookkeeping.  Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    EUCLIDEAN,
    MultiStepMechanism,
    RegularGrid,
    empirical_prior,
    load_gowalla_austin,
)


def main() -> None:
    # A scaled-down synthetic Austin keeps the example instant; drop the
    # fraction argument for the full 265k-check-in dataset.
    dataset = load_gowalla_austin(checkin_fraction=0.1)
    print(f"dataset: {dataset.name}, {dataset.n_checkins} check-ins, "
          f"{dataset.n_users} users, {dataset.bounds.side:.1f} km square")

    # The adversary prior: a histogram of past check-ins on a fine grid.
    fine_grid = RegularGrid(dataset.bounds, 16)
    prior = empirical_prior(fine_grid, dataset.points(), smoothing=0.1)
    print(f"prior entropy: {prior.entropy():.2f} bits "
          f"(uniform would be {np.log2(len(prior)):.2f})")

    # Build MSM: total budget eps = 0.5, per-level fanout 4 x 4.  The
    # budget allocator decides the index height and per-level split.
    msm = MultiStepMechanism.build(epsilon=0.5, granularity=4, prior=prior)
    plan = msm.plan
    print(f"\nbudget plan: height={plan.height}, "
          f"leaf grid {plan.leaf_granularity} x {plan.leaf_granularity}")
    for level, (budget, req) in enumerate(
        zip(plan.budgets, plan.requirements), start=1
    ):
        print(f"  level {level}: eps={budget:.4f} (model requirement {req:.4f})")

    # Optional offline step: precompute every per-node mechanism so that
    # online sanitisation is pure table lookup + sampling.
    solved = msm.precompute()
    print(f"precomputed {solved} node mechanisms "
          f"({msm.cache.size_bytes / 1024:.1f} KiB)")

    # Sanitise a few real check-ins.
    rng = np.random.default_rng(7)
    print("\nsanitised reports:")
    for x in dataset.sample_requests(5, rng):
        z = msm.sample(x, rng)
        print(f"  ({x.x:6.2f}, {x.y:6.2f}) km -> ({z.x:6.2f}, {z.y:6.2f}) km"
              f"   loss {EUCLIDEAN(x, z):.3f} km")

    # Exact expected loss at one location (no Monte Carlo).
    x = dataset.point(0)
    print(f"\nexact expected loss at ({x.x:.2f}, {x.y:.2f}): "
          f"{msm.expected_loss(x):.3f} km")


if __name__ == "__main__":
    main()
