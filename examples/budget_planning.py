"""Explore the budget-allocation model (Section 5 of the paper).

Shows how the same-cell probability estimate Phi behaves, how the
Problem-1 minimum budget scales with granularity and rho, and how
Algorithm 2 turns a total budget into an index height plus per-level
split — including the starvation regime the paper analyses.

Run with::

    python examples/budget_planning.py
"""

from repro.core.budget import (
    allocate_budget,
    min_epsilon_for_rho,
    phi_for_grid,
)

SIDE_KM = 20.0  # both evaluation cities use a 20 x 20 km window


def main() -> None:
    print("Phi = estimated Pr[x|x] on an L=20 km domain")
    print(f"{'g':>3} {'eps=0.1':>9} {'eps=0.3':>9} {'eps=0.5':>9} "
          f"{'eps=0.9':>9}")
    for g in (2, 3, 4, 6, 8):
        row = [phi_for_grid(eps, SIDE_KM, g) for eps in (0.1, 0.3, 0.5, 0.9)]
        print(f"{g:>3} " + " ".join(f"{v:>9.4f}" for v in row))

    print("\nProblem 1: minimum eps for a target rho (level-1 cells, L/g)")
    print(f"{'g':>3} {'rho=0.5':>9} {'rho=0.7':>9} {'rho=0.8':>9} "
          f"{'rho=0.9':>9}")
    for g in (2, 3, 4, 6):
        row = [min_epsilon_for_rho(rho, SIDE_KM / g)
               for rho in (0.5, 0.7, 0.8, 0.9)]
        print(f"{g:>3} " + " ".join(f"{v:>9.4f}" for v in row))

    print("\nAlgorithm 2: full plans (g=4, rho=0.8)")
    for epsilon in (0.3, 0.5, 0.9, 1.5, 3.0):
        plan = allocate_budget(epsilon, 4, SIDE_KM, rho=0.8)
        starved = (f", starved levels {plan.starved_levels}"
                   if plan.is_starved else "")
        split = " + ".join(f"{b:.3f}" for b in plan.budgets)
        print(f"  eps={epsilon:<4} -> height {plan.height}, "
              f"leaf {plan.leaf_granularity:>3} x {plan.leaf_granularity:<3} "
              f"[{split}]{starved}")

    print("\nTakeaways: the per-level requirement grows by a factor g per "
          "level (cells shrink by g), so height grows logarithmically "
          "with the total budget, and the deepest level is usually "
          "starved — by design, since errors near the root cost the "
          "most utility.")


if __name__ == "__main__":
    main()
