"""Compare every mechanism on utility, latency and attack resistance.

Puts planar Laplace, the exponential mechanism, flat OPT and MSM side by
side at several privacy levels: Monte-Carlo utility loss (the paper's
protocol), per-query latency, and the adversary's success under the
optimal Bayesian inference attack.

Run with::

    python examples/mechanism_comparison.py
"""

import numpy as np

from repro import (
    EUCLIDEAN,
    ExponentialMechanism,
    MultiStepMechanism,
    OptimalMechanism,
    PlanarLaplaceMechanism,
    RegularGrid,
    empirical_prior,
    load_gowalla_austin,
)
from repro.attacks import optimal_inference_attack
from repro.eval import evaluate_mechanism


def main() -> None:
    dataset = load_gowalla_austin(checkin_fraction=0.1)
    rng = np.random.default_rng(11)
    requests = dataset.sample_requests(500, rng)

    fine_grid = RegularGrid(dataset.bounds, 16)
    fine_prior = empirical_prior(fine_grid, dataset.points(), smoothing=0.1)

    # Flat mechanisms live on a coarse grid (OPT cannot go finer), MSM
    # reaches a finer leaf through its hierarchy.
    flat_grid = RegularGrid(dataset.bounds, 4)
    flat_prior = empirical_prior(flat_grid, dataset.points(), smoothing=0.1)

    for epsilon in (0.1, 0.5, 0.9):
        msm = MultiStepMechanism.build(epsilon, granularity=4, prior=fine_prior)
        msm.precompute()
        mechanisms = [
            PlanarLaplaceMechanism(
                epsilon,
                grid=RegularGrid(dataset.bounds, msm.plan.leaf_granularity),
            ),
            ExponentialMechanism(epsilon, flat_grid),
            OptimalMechanism(epsilon, flat_prior),
            msm,
        ]
        print(f"\n=== eps = {epsilon} "
              f"(MSM height {msm.height}, leaf "
              f"{msm.plan.leaf_granularity}x{msm.plan.leaf_granularity}) ===")
        header = (f"{'mechanism':<8}{'loss d (km)':>12}{'loss d2':>10}"
                  f"{'ms/query':>10}{'attack err (km)':>17}{'ident rate':>12}")
        print(header)
        print("-" * len(header))
        for mechanism in mechanisms:
            result = evaluate_mechanism(mechanism, requests, rng)
            matrix = None
            if hasattr(mechanism, "matrix"):
                matrix = mechanism.matrix
                attack_prior = (
                    flat_prior.probabilities
                    if matrix.shape[0] == len(flat_prior)
                    else np.full(matrix.shape[0], 1.0 / matrix.shape[0])
                )
            elif hasattr(mechanism, "to_matrix"):
                # MSM: its exact end-to-end matrix over leaf cells.
                from repro.priors import aggregate_prior

                matrix = mechanism.to_matrix()
                leaf_grid = mechanism.index.level_grid(
                    min(mechanism.height, mechanism.index.height)
                )
                attack_prior = aggregate_prior(
                    fine_prior, leaf_grid
                ).probabilities
            if matrix is not None:
                attack = optimal_inference_attack(
                    matrix, attack_prior, EUCLIDEAN
                )
                attack_err = f"{attack.expected_error:>17.3f}"
                ident = f"{attack.identification_rate:>12.3f}"
            else:
                attack_err = f"{'(continuous)':>17}"
                ident = f"{'-':>12}"
            print(
                f"{mechanism.name:<8}"
                f"{result.loss('euclidean'):>12.3f}"
                f"{result.loss('squared_euclidean'):>10.2f}"
                f"{result.ms_per_query:>10.3f}"
                f"{attack_err}{ident}"
            )
    print("\nReading guide: lower loss = better utility; higher attack "
          "error / lower identification rate = stronger protection "
          "against this prior.  OPT and MSM trade a little of PL's "
          "simplicity for several-fold utility gains at equal epsilon.")


if __name__ == "__main__":
    main()
