"""Bring your own city, and walk MSM over adaptive indexes.

Demonstrates the extension surface of the library: define a custom
synthetic city (a coastal strip town), generate check-ins, and run MSM
over three interchangeable index structures — the paper's balanced
hierarchical grid, a data-adaptive quadtree, and a k-d split tree (the
structures named in the paper's future work, Section 8).

Run with::

    python examples/custom_city_adaptive_index.py
"""

import numpy as np

from repro import EUCLIDEAN, RegularGrid, empirical_prior
from repro.core.budget import uniform_split
from repro.core.msm import MultiStepMechanism
from repro.datasets.synthetic import CityModel, Cluster, generate_checkins
from repro.eval import evaluate_mechanism
from repro.geo import BoundingBox, Point
from repro.grid import HierarchicalGrid, KDTreeIndex, QuadtreeIndex


def build_strip_town() -> CityModel:
    """A narrow coastal town: everything happens along the waterfront."""
    return CityModel(
        name="strip-town",
        bounds=BoundingBox.square(Point(0.0, 0.0), 16.0),
        clusters=(
            Cluster(cx=0.20, cy=0.15, std=0.03, weight=0.30),  # old port
            Cluster(cx=0.45, cy=0.15, std=0.04, weight=0.30),  # boardwalk
            Cluster(cx=0.70, cy=0.18, std=0.05, weight=0.25),  # marina
            Cluster(cx=0.50, cy=0.60, std=0.15, weight=0.15),  # inland sprawl
        ),
        n_pois=800,
        zipf_exponent=1.2,
        n_checkins=30_000,
        n_users=2_500,
        background_fraction=0.05,
    )


def main() -> None:
    epsilon = 0.6
    model = build_strip_town()
    dataset = generate_checkins(model, seed=5)
    print(f"custom city: {dataset.name}, {dataset.n_checkins} check-ins "
          f"on a {dataset.bounds.side:.0f} km square")

    rng = np.random.default_rng(17)
    prior = empirical_prior(
        RegularGrid(dataset.bounds, 16), dataset.points(), smoothing=0.1
    )
    requests = dataset.sample_requests(400, rng)
    sample = dataset.sample_requests(4000, np.random.default_rng(3))

    indexes = [
        ("hierarchical grid g=3, h=2",
         HierarchicalGrid(dataset.bounds, granularity=3, height=2)),
        ("adaptive quadtree",
         QuadtreeIndex(dataset.bounds, sample, capacity=400, max_depth=4)),
        ("k-d split tree",
         KDTreeIndex(dataset.bounds, sample, max_depth=4)),
    ]

    print(f"\nMSM over three index structures at eps = {epsilon} "
          f"(uniform per-level split):\n")
    header = (f"{'index':<28}{'nodes':>7}{'height':>8}"
              f"{'loss d (km)':>13}{'ms/query':>10}")
    print(header)
    print("-" * len(header))
    for name, index in indexes:
        height = index.max_height()
        msm = MultiStepMechanism(
            index, uniform_split(epsilon, height), prior
        )
        result = evaluate_mechanism(msm, requests, rng, metrics=(EUCLIDEAN,))
        print(f"{name:<28}{index.node_count():>7}{height:>8}"
              f"{result.loss(EUCLIDEAN):>13.3f}"
              f"{result.ms_per_query:>10.3f}")

    print("\nThe adaptive structures spend their resolution where the "
          "check-ins are — along the waterfront — which is exactly the "
          "refinement the paper's future work anticipates for skewed "
          "priors.")


if __name__ == "__main__":
    main()
