"""A day of check-ins under one lifetime privacy budget.

Every sanitised report spends privacy budget (sequential composition),
so a deployed client must ration a lifetime allowance across repeated
check-ins.  This example simulates a user's day — home, commute, office,
lunch, bar — through a :class:`SanitizationSession` that owns the
accounting: it builds one MSM per report budget, spends through an
auditable ledger, and refuses reports once the allowance is gone.

Run with::

    python examples/day_of_checkins.py
"""

import numpy as np

from repro import RegularGrid, empirical_prior, load_gowalla_austin
from repro.core import SanitizationSession
from repro.exceptions import BudgetError
from repro.geo import Point


def a_day_in_austin(bounds) -> list[tuple[str, Point]]:
    """A plausible day of places, scaled into the dataset window."""
    s = bounds.side

    def at(fx: float, fy: float) -> Point:
        return Point(bounds.min_x + fx * s, bounds.min_y + fy * s)

    return [
        ("home",        at(0.42, 0.31)),
        ("coffee",      at(0.47, 0.36)),
        ("office",      at(0.60, 0.43)),
        ("lunch",       at(0.61, 0.45)),
        ("office",      at(0.60, 0.43)),
        ("gym",         at(0.55, 0.40)),
        ("bar",         at(0.62, 0.41)),
        ("home",        at(0.42, 0.31)),
    ]


def main() -> None:
    dataset = load_gowalla_austin(checkin_fraction=0.1)
    prior = empirical_prior(
        RegularGrid(dataset.bounds, 16), dataset.points(), smoothing=0.1
    )

    session = SanitizationSession(
        lifetime_epsilon=3.0,       # today's total allowance
        per_report_epsilon=0.5,     # protection level per check-in
        prior=prior,
        granularity=4,
    )
    session.precompute()           # offline, before leaving the house
    print(f"lifetime budget 3.0, per report 0.5 -> "
          f"{session.reports_remaining} check-ins available today\n")

    rng = np.random.default_rng(8)
    print(f"{'place':<10}{'actual':>18}{'reported':>18}"
          f"{'loss km':>9}{'eps left':>10}")
    print("-" * 65)
    for label, x in a_day_in_austin(dataset.bounds):
        try:
            record = session.report(x, rng)
        except BudgetError:
            print(f"{label:<10}{'— refused: lifetime budget exhausted —':>46}")
            continue
        print(
            f"{label:<10}"
            f"({x.x:6.2f}, {x.y:6.2f})  "
            f"({record.reported.x:6.2f}, {record.reported.y:6.2f})  "
            f"{x.distance_to(record.reported):>7.2f}"
            f"{record.epsilon_remaining:>10.2f}"
        )

    print(f"\nledger: {len(session.history)} reports, "
          f"{session.spent:.1f} of 3.0 spent")
    print("The last check-ins were refused *before* any location was "
          "sampled — running out of budget never leaks a location.")


if __name__ == "__main__":
    main()
