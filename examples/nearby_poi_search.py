"""Private nearby-POI search — the paper's motivating workload.

A user asks an untrusted server for the nearest restaurants.  The device
sanitises the location first; the server answers the k-NN query at the
reported point, unchanged.  This example measures what the user actually
pays for privacy: extra walking distance to the answered "nearest" POI
and how much of the true top-k survives, for planar Laplace versus MSM
at the same privacy level.

Run with::

    python examples/nearby_poi_search.py
"""

import numpy as np

from repro import (
    MultiStepMechanism,
    PlanarLaplaceMechanism,
    RegularGrid,
    empirical_prior,
    load_yelp_las_vegas,
)
from repro.datasets import las_vegas_city_model
from repro.datasets.synthetic import generate_pois
from repro.lbs import LocationBasedService, POIStore


def main() -> None:
    epsilon = 0.5
    k = 5

    dataset = load_yelp_las_vegas(checkin_fraction=0.1)
    rng = np.random.default_rng(2019)

    # Server-side catalogue: POIs drawn from the same city shape the
    # check-ins come from (a real deployment would use the actual
    # business registry).
    model = las_vegas_city_model()
    store = POIStore.from_coordinates(
        generate_pois(model, np.random.default_rng(99)),
        category="restaurant",
    )
    service = LocationBasedService(store)
    print(f"server catalogue: {len(store)} POIs over "
          f"{dataset.bounds.side:.0f} km of {dataset.name}")

    # Client-side mechanisms at the same privacy level.
    fine_grid = RegularGrid(dataset.bounds, 16)
    prior = empirical_prior(fine_grid, dataset.points(), smoothing=0.1)
    msm = MultiStepMechanism.build(epsilon, granularity=4, prior=prior)
    pl = PlanarLaplaceMechanism(
        epsilon, grid=RegularGrid(dataset.bounds, msm.plan.leaf_granularity)
    )

    requests = dataset.sample_requests(400, rng)
    print(f"\nsimulating {len(requests)} '{k}-nearest restaurants' queries "
          f"at eps = {epsilon}:\n")
    header = f"{'mechanism':<22}{'extra walk (mean)':>18}{'(median)':>10}{'recall@5':>10}"
    print(header)
    print("-" * len(header))
    for mechanism in (msm, pl):
        report = service.evaluate_mechanism(mechanism, requests, rng, k=k)
        print(
            f"{mechanism.name:<22}"
            f"{report.mean_extra_distance:>15.3f} km"
            f"{report.median_extra_distance:>8.3f} km"
            f"{report.mean_recall_at_k:>10.2f}"
        )

    # What a single interaction looks like.
    x = requests[0]
    z = msm.sample(x, rng)
    answered = service.query(z, k)
    truth = service.query(x, k)
    print(f"\nexample query from ({x.x:.2f}, {x.y:.2f}):")
    print(f"  reported location   ({z.x:.2f}, {z.y:.2f}), "
          f"{x.distance_to(z):.2f} km away")
    print(f"  true top-{k} POI ids  {truth}")
    print(f"  answered POI ids    {answered}")


if __name__ == "__main__":
    main()
