"""Tests for MSM's end-to-end matrix and what it unlocks.

``MultiStepMechanism.to_matrix()`` turns the walk into a first-class
discrete mechanism, so remapping, attacks and exact losses compose with
it — plus closed-form PL anchors and per-user priors.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MechanismError, PriorError
from repro.geo.metric import EUCLIDEAN
from repro.geo.point import Point
from repro.grid.kdtree import KDTreeIndex
from repro.grid.regular import RegularGrid
from repro.attacks import optimal_inference_attack
from repro.mechanisms import expected_loss_continuous, remap_mechanism
from repro.mechanisms.planar_laplace import sample_planar_laplace
from repro.priors import (
    GridPrior,
    aggregate_prior,
    empirical_prior_for_user,
)
from repro.core.msm import MultiStepMechanism
from repro.privacy import verify_msm_composition


@pytest.fixture(scope="module")
def msm2(fine_prior):
    msm = MultiStepMechanism.build(0.9, 3, fine_prior, rho=0.8)
    assert msm.height == 2
    return msm


@pytest.fixture(scope="module")
def msm2_matrix(msm2):
    return msm2.to_matrix()


class TestToMatrix:
    def test_square_over_leaf_cells(self, msm2, msm2_matrix):
        assert msm2_matrix.shape == (81, 81)
        leaf = msm2.index.level_grid(2)
        assert msm2_matrix.inputs == leaf.centers()

    def test_rows_stochastic(self, msm2_matrix):
        assert msm2_matrix.k.sum(axis=1) == pytest.approx(np.ones(81))

    def test_matches_reported_distribution(self, msm2, msm2_matrix):
        leaf = msm2.index.level_grid(2)
        x = leaf.cell(4, 4).center
        i = leaf.locate(x).index
        points, probs = msm2.reported_distribution(x)
        rebuilt = np.zeros(81)
        for p, mass in zip(points, probs):
            rebuilt[leaf.locate(p).index] += mass
        assert np.allclose(msm2_matrix.k[i], rebuilt)

    def test_matrix_loss_matches_expected_loss(self, msm2, msm2_matrix):
        leaf = msm2.index.level_grid(2)
        x = leaf.cell(2, 6).center
        i = leaf.locate(x).index
        row_loss = float(
            msm2_matrix.k[i]
            @ EUCLIDEAN.pairwise([x], msm2_matrix.outputs)[0]
        )
        assert row_loss == pytest.approx(msm2.expected_loss(x), abs=1e-9)

    def test_generic_path_on_kdtree(self, fine_prior, small_dataset, rng):
        sample = small_dataset.sample_requests(200, rng)
        index = KDTreeIndex(small_dataset.bounds, sample, max_depth=2)
        msm = MultiStepMechanism(index, (0.2, 0.2), fine_prior)
        matrix = msm.to_matrix()
        stops = msm.stop_nodes()
        assert matrix.shape == (len(stops), len(stops))
        assert np.allclose(matrix.k.sum(axis=1), 1.0)
        # Each row is the exact reported distribution of that stop point.
        x = stops[0].center
        points, probs = msm.reported_distribution(x)
        rebuilt = np.zeros(len(stops))
        centers = [n.center for n in stops]
        for p, mass in zip(points, probs):
            rebuilt[centers.index(p)] += mass
        assert np.allclose(matrix.k[0], rebuilt)


class TestRemapAndAttackOnMSM:
    def test_remap_never_hurts_msm(self, msm2, msm2_matrix, fine_prior):
        leaf_prior = aggregate_prior(
            fine_prior, msm2.index.level_grid(2)
        ).probabilities
        before = msm2_matrix.expected_loss(leaf_prior, EUCLIDEAN)
        after = remap_mechanism(
            msm2_matrix, leaf_prior, EUCLIDEAN
        ).expected_loss(leaf_prior, EUCLIDEAN)
        assert after <= before + 1e-12

    def test_attack_on_msm_bounded_by_blind_guess(self, msm2, msm2_matrix,
                                                  fine_prior):
        leaf_prior = aggregate_prior(
            fine_prior, msm2.index.level_grid(2)
        ).probabilities
        report = optimal_inference_attack(msm2_matrix, leaf_prior)
        assert report.expected_error <= report.prior_error + 1e-9
        assert 0 <= report.identification_rate <= 1

    def test_tighter_msm_resists_attack_better(self, fine_prior):
        errors = []
        for eps in (0.2, 2.0):
            msm = MultiStepMechanism.build(eps, 3, fine_prior, rho=0.8)
            matrix = msm.to_matrix()
            prior = np.full(matrix.shape[0], 1.0 / matrix.shape[0])
            errors.append(
                optimal_inference_attack(matrix, prior).expected_error
            )
        assert errors[0] > errors[1]


class TestMSMCompositionProperty:
    @given(
        st.floats(min_value=0.3, max_value=2.0),
        st.sampled_from([2, 3]),
        st.floats(min_value=0.5, max_value=0.9),
    )
    @settings(max_examples=8, deadline=None)
    def test_random_configs_obey_bound(self, epsilon, g, rho):
        from repro.geo.bbox import BoundingBox

        bounds = BoundingBox.square(Point(0.0, 0.0), 20.0)
        prior = GridPrior.uniform(RegularGrid(bounds, g * g))
        msm = MultiStepMechanism.build(
            epsilon, g, prior, rho=rho, max_height=2
        )
        report = verify_msm_composition(msm)
        assert report.satisfied, (epsilon, g, rho, report.worst_margin)


class TestPLClosedForms:
    def test_mean_radius(self, rng):
        eps = 0.8
        x = Point(0, 0)
        mc = np.mean([
            x.distance_to(sample_planar_laplace(x, eps, rng))
            for _ in range(6000)
        ])
        assert mc == pytest.approx(expected_loss_continuous(eps), rel=0.05)

    def test_mean_squared_radius(self, rng):
        eps = 0.8
        x = Point(0, 0)
        mc = np.mean([
            x.squared_distance_to(sample_planar_laplace(x, eps, rng))
            for _ in range(8000)
        ])
        assert mc == pytest.approx(
            expected_loss_continuous(eps, "squared_euclidean"), rel=0.1
        )

    def test_validation(self):
        with pytest.raises(MechanismError):
            expected_loss_continuous(0.0)
        with pytest.raises(MechanismError, match="closed form"):
            expected_loss_continuous(1.0, "manhattan")


class TestUserPriors:
    def test_user_prior_concentrates_on_their_cells(self, small_dataset):
        grid = RegularGrid(small_dataset.bounds, 8)
        uid = int(small_dataset.user_ids[0])
        prior = empirical_prior_for_user(
            small_dataset, uid, grid, smoothing=0.0
        )
        mask = small_dataset.user_ids == uid
        own_points = small_dataset.xy[mask]
        own_cells = {
            grid.locate(Point(float(x), float(y))).index
            for x, y in own_points
        }
        support = set(np.nonzero(prior.probabilities > 0)[0])
        assert support == own_cells

    def test_unknown_user_without_smoothing_raises(self, small_dataset):
        grid = RegularGrid(small_dataset.bounds, 8)
        with pytest.raises(PriorError):
            empirical_prior_for_user(
                small_dataset, -99, grid, smoothing=0.0
            )

    def test_unknown_user_with_smoothing_is_uniform(self, small_dataset):
        grid = RegularGrid(small_dataset.bounds, 8)
        prior = empirical_prior_for_user(small_dataset, -99, grid)
        assert np.allclose(prior.probabilities, 1 / 64)

    def test_personal_opt_beats_global_opt_for_that_user(
        self, small_dataset
    ):
        """Tuning OPT to a user's own prior lowers that user's loss."""
        from repro.mechanisms import OptimalMechanism
        from repro.priors import empirical_prior

        grid = RegularGrid(small_dataset.bounds, 3)
        uid = int(small_dataset.user_ids[0])
        personal = empirical_prior_for_user(
            small_dataset, uid, grid, smoothing=0.01
        )
        global_prior = empirical_prior(
            grid, small_dataset.points(), smoothing=0.01
        )
        eps = 0.5
        opt_personal = OptimalMechanism(eps, personal)
        opt_global = OptimalMechanism(eps, global_prior)
        loss_personal = opt_personal.matrix.expected_loss(
            personal.probabilities, EUCLIDEAN
        )
        loss_global = opt_global.matrix.expected_loss(
            personal.probabilities, EUCLIDEAN
        )
        assert loss_personal <= loss_global + 1e-9
