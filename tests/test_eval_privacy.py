"""Property-based and statistical tests for the Oya-style metric panel.

The information-theoretic identities behind
:mod:`repro.eval.privacy` hold for *every* mechanism, not just the ones
in the benchmark matrix, so they are checked on randomly generated
row-stochastic matrices:

* ``0 <= H(X|Z) <= H(X)`` — conditioning never increases entropy;
* ``max_x E_z[d(x,z)] >= E[d(x,z)]`` — the worst case dominates the
  prior average;
* both quantities are invariant under a joint relabelling of the
  location sets (permuting rows/columns together with their labels and
  the prior is a change of names, not of mechanism).

The ``statistical``-marked test at the bottom pins the factored-out
empirical-epsilon estimator to the inline computation it replaced in
``tests/test_statistical.py``, on the same single-level MSM fixture —
if harness and test suite ever measure privacy drift differently, this
is the test that fails.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.msm import MultiStepMechanism
from repro.eval.privacy import (
    DEFAULT_MIN_COUNT,
    conditional_entropy,
    empirical_epsilon_from_counts,
    empirical_epsilon_sampled,
    per_input_expected_loss,
    prior_entropy,
    privacy_metrics,
    sample_leaf_counts,
    worst_case_expected_loss,
)
from repro.geo.bbox import BoundingBox
from repro.geo.metric import EUCLIDEAN
from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.regular import RegularGrid
from repro.mechanisms.matrix import MechanismMatrix
from repro.priors.base import GridPrior

#: Float tolerance for the entropy/loss inequalities (the quantities
#: are sums of ~36 well-scaled terms; 1e-9 is orders above round-off).
TOL = 1e-9


def _points(n: int, offset: float = 0.0) -> list[Point]:
    """``n`` distinct collinear locations, 1 km apart."""
    return [Point(offset + float(i), 0.0) for i in range(n)]


@st.composite
def mechanism_and_prior(draw):
    """A random small mechanism matrix plus a full-support prior."""
    n = draw(st.integers(min_value=2, max_value=6))
    m = draw(st.integers(min_value=2, max_value=6))
    weight = st.floats(min_value=0.01, max_value=1.0)
    k = np.array(
        [draw(st.lists(weight, min_size=m, max_size=m)) for _ in range(n)]
    )
    k /= k.sum(axis=1, keepdims=True)
    prior = np.array(draw(st.lists(weight, min_size=n, max_size=n)))
    prior /= prior.sum()
    matrix = MechanismMatrix(_points(n), _points(m, offset=0.5), k)
    return matrix, prior


@settings(max_examples=60, deadline=None)
@given(mechanism_and_prior())
def test_conditional_entropy_bounded_by_prior_entropy(mp):
    matrix, prior = mp
    h_cond = conditional_entropy(matrix, prior)
    h_prior = prior_entropy(prior)
    assert -TOL <= h_cond <= h_prior + TOL


@settings(max_examples=60, deadline=None)
@given(mechanism_and_prior())
def test_worst_case_loss_dominates_expected_loss(mp):
    matrix, prior = mp
    worst = worst_case_expected_loss(matrix, EUCLIDEAN)
    mean = matrix.expected_loss(prior, EUCLIDEAN)
    assert worst >= mean - TOL
    profile = per_input_expected_loss(matrix, EUCLIDEAN)
    assert worst == pytest.approx(profile.max())


@settings(max_examples=40, deadline=None)
@given(mechanism_and_prior(), st.data())
def test_metrics_invariant_under_joint_relabelling(mp, data):
    """Permuting locations together with the matrix changes nothing."""
    matrix, prior = mp
    n, m = matrix.shape
    row_perm = data.draw(st.permutations(range(n)))
    col_perm = data.draw(st.permutations(range(m)))
    relabelled = MechanismMatrix(
        [matrix.inputs[i] for i in row_perm],
        [matrix.outputs[j] for j in col_perm],
        matrix.k[np.ix_(row_perm, col_perm)],
    )
    relabelled_prior = prior[list(row_perm)]
    assert conditional_entropy(relabelled, relabelled_prior) == (
        pytest.approx(conditional_entropy(matrix, prior), abs=1e-9)
    )
    assert worst_case_expected_loss(relabelled, EUCLIDEAN) == (
        pytest.approx(worst_case_expected_loss(matrix, EUCLIDEAN), abs=1e-9)
    )
    assert prior_entropy(relabelled_prior) == (
        pytest.approx(prior_entropy(prior), abs=1e-9)
    )


def test_deterministic_mechanism_panel():
    """Identity mechanism: adversary learns everything, loses nothing."""
    pts = _points(3)
    matrix = MechanismMatrix(pts, pts, np.eye(3))
    prior = np.full(3, 1 / 3)
    panel = privacy_metrics(matrix, prior, EUCLIDEAN)
    assert panel.conditional_entropy_bits == pytest.approx(0.0, abs=1e-12)
    assert panel.prior_entropy_bits == pytest.approx(np.log2(3))
    assert panel.adversarial_error == pytest.approx(0.0, abs=1e-12)
    assert panel.identification_rate == pytest.approx(1.0)
    assert panel.worst_case_loss == pytest.approx(0.0, abs=1e-12)


def test_constant_mechanism_reveals_nothing():
    """A mechanism ignoring its input leaves the prior untouched."""
    pts = _points(4)
    matrix = MechanismMatrix(
        pts, pts, np.tile([1.0, 0.0, 0.0, 0.0], (4, 1))
    )
    prior = np.array([0.4, 0.3, 0.2, 0.1])
    assert conditional_entropy(matrix, prior) == (
        pytest.approx(prior_entropy(prior))
    )


def test_empirical_epsilon_needs_shared_support():
    """Disjoint well-sampled supports yield a 0.0 (no-evidence) estimate."""
    counts = np.array([[500.0, 0.0], [0.0, 500.0]])
    assert empirical_epsilon_from_counts(counts, _points(2)) == 0.0


@pytest.mark.statistical
class TestHarnessMatchesStatisticalSuite:
    """The harness estimator equals the legacy inline computation.

    Same single-level MSM instance as
    ``tests/test_statistical.py::TestEmpiricalEpsilon`` (g = 3, h = 1,
    epsilon = 0.5, uniform prior); the sampled histogram is computed
    once and pushed through (a) the shared library routine and (b) a
    re-statement of the original inline double loop.  They must agree
    exactly, and both must respect the configured budget within the
    documented 15% sampling tolerance.
    """

    EPSILON = 0.5
    TOLERANCE = 0.15

    def test_estimators_agree_and_respect_budget(self):
        square = BoundingBox.square(Point(0.0, 0.0), 20.0)
        prior = GridPrior.uniform(RegularGrid(square, 3))
        index = HierarchicalGrid(square, 3, 1)
        msm = MultiStepMechanism(index, (self.EPSILON,), prior)
        grid = index.level_grid(1)
        centers = grid.centers()
        rng = np.random.default_rng(6606)
        counts = sample_leaf_counts(msm, centers, grid, 4000, rng)

        shared = empirical_epsilon_from_counts(counts, centers)

        inline = 0.0
        for i in range(len(centers)):
            for j in range(len(centers)):
                if i == j:
                    continue
                both = (counts[i] >= DEFAULT_MIN_COUNT) & (
                    counts[j] >= DEFAULT_MIN_COUNT
                )
                if not both.any():
                    continue
                ratio = np.log(counts[i][both] / counts[j][both]).max()
                d = EUCLIDEAN(centers[i], centers[j])
                inline = max(inline, ratio / d)

        assert shared == pytest.approx(inline, abs=1e-12)
        assert 0.0 < shared <= self.EPSILON * (1.0 + self.TOLERANCE)

    def test_sampled_wrapper_is_deterministic_under_a_seed(self):
        square = BoundingBox.square(Point(0.0, 0.0), 20.0)
        prior = GridPrior.uniform(RegularGrid(square, 3))
        index = HierarchicalGrid(square, 3, 1)
        msm = MultiStepMechanism(index, (self.EPSILON,), prior)
        grid = index.level_grid(1)
        centers = grid.centers()[:4]
        runs = [
            empirical_epsilon_sampled(
                msm, centers, grid, 2000, np.random.default_rng(99)
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
