"""Smoke tests for the per-figure experiment functions.

Each experiment runs at miniature scale and is checked for the row
structure and the *qualitative shape* the paper reports (who wins, in
which direction trends move).  Full-scale runs live in benchmarks/.
"""

import math

import numpy as np
import pytest

from repro.eval import (
    ExperimentConfig,
    run_budget_strategy_ablation,
    run_fig3,
    run_fig5,
    run_fig6_7,
    run_fig8_9,
    run_fig10_11,
    run_index_ablation,
    run_latency,
    run_spanner_ablation,
    run_table2,
)


@pytest.fixture(scope="module")
def config() -> ExperimentConfig:
    return ExperimentConfig(n_requests=150, seed=7)


class TestFig3:
    def test_utility_falls_and_time_rises(self, small_dataset, config):
        table = run_fig3(
            small_dataset, granularities=(2, 4, 6), config=config
        )
        losses = table.column("utility_loss_km")
        times = table.column("opt_seconds")
        assert losses[0] > losses[-1]  # finer grid, better utility
        assert times[-1] > times[0]    # and much slower
        assert all(s == "optimal" for s in table.column("status"))

    def test_time_limit_rows(self, small_dataset, config):
        table = run_fig3(
            small_dataset, granularities=(6,), config=config,
            time_limit=1e-4,
        )
        assert table.column("status") == ["time-limit"]
        assert math.isnan(table.column("utility_loss_km")[0])


class TestFig5:
    def test_interior_cells_match_rho(self, small_dataset, config):
        table = run_fig5(
            small_dataset, granularities=(5,), rhos=(0.7, 0.8, 0.9),
            config=config,
        )
        for rho, interior in zip(
            table.column("rho"), table.column("interior_pr_xx")
        ):
            assert interior == pytest.approx(rho, abs=0.05)

    def test_empirical_mean_at_least_rho(self, small_dataset, config):
        """Boundary cells keep extra mass, so the mean overshoots rho."""
        table = run_fig5(
            small_dataset, granularities=(4,), rhos=(0.6, 0.8),
            config=config,
        )
        for rho, emp in zip(
            table.column("rho"), table.column("empirical_pr_xx")
        ):
            assert emp >= rho - 0.02


class TestTable2:
    def test_msm_much_faster_opt_slightly_better(self, small_dataset, config):
        table = run_table2(
            small_dataset, granularities=(2, 3), config=config,
            opt_time_limit=300.0,
        )
        for row in table.rows:
            effective, opt_loss, msm_loss, opt_s, msm_s, status = row
            assert status == "optimal"
            # OPT wins utility at equal granularity...
            assert opt_loss <= msm_loss * 1.3
            # ...but the search-space pruning pays off in time.
            if effective >= 9:
                assert msm_s < opt_s


class TestFig67:
    def test_msm_beats_pl_and_both_improve_with_eps(
        self, small_dataset, config
    ):
        table = run_fig6_7(
            small_dataset, granularities=(4,), epsilons=(0.1, 0.5, 0.9),
            config=config,
        )
        msm = table.filtered(mechanism="MSM")
        pl = table.filtered(mechanism="PL")
        for m_loss, p_loss in zip(msm.column("loss_d_km"),
                                  pl.column("loss_d_km")):
            assert m_loss < p_loss
        # Largest gap at the tightest privacy level (paper: ~3x at 0.1).
        gaps = [
            p / m
            for m, p in zip(msm.column("loss_d_km"), pl.column("loss_d_km"))
        ]
        assert gaps[0] == max(gaps)
        # Loss decreases with eps for both.
        assert msm.column("loss_d_km")[0] > msm.column("loss_d_km")[-1]
        assert pl.column("loss_d_km")[0] > pl.column("loss_d_km")[-1]

    def test_d2_gap_is_larger_than_d_gap(self, small_dataset, config):
        table = run_fig6_7(
            small_dataset, granularities=(4,), epsilons=(0.1,),
            config=config,
        )
        msm = table.filtered(mechanism="MSM")
        pl = table.filtered(mechanism="PL")
        gap_d = pl.column("loss_d_km")[0] / msm.column("loss_d_km")[0]
        gap_d2 = pl.column("loss_d2_km2")[0] / msm.column("loss_d2_km2")[0]
        assert gap_d2 > gap_d


class TestFig89:
    def test_rows_and_heights(self, small_dataset, config):
        table = run_fig8_9(
            small_dataset, granularities=(2, 4), rhos=(0.5, 0.9),
            config=config,
        )
        assert len(table) == 4
        assert all(h >= 1 for h in table.column("msm_height"))

    def test_coarsest_grid_is_not_best(self, small_dataset, config):
        """g=2's giant cells must lose to a mid granularity (U-shape)."""
        table = run_fig8_9(
            small_dataset, granularities=(2, 4), rhos=(0.9,), config=config,
        )
        losses = table.column("loss_d_km")
        assert losses[0] > losses[1]


class TestFig1011:
    def test_structure(self, small_dataset, config):
        table = run_fig10_11(
            small_dataset, rhos=(0.5, 0.9), granularities=(2,),
            config=config,
        )
        assert len(table) == 2
        # For g=2 the paper reports decreasing loss as rho grows.
        losses = table.column("loss_d_km")
        assert losses[1] <= losses[0] * 1.1


class TestLatencyAndAblations:
    def test_latency_ordering(self, small_dataset, config):
        table = run_latency(small_dataset, granularity=3, config=config)
        by_name = dict(
            zip(table.column("mechanism"), table.column("ms_per_query"))
        )
        assert by_name["PL"] < by_name["MSM (cold cache)"]
        assert by_name["MSM (warm cache)"] <= by_name["MSM (cold cache)"]

    def test_budget_strategy_rows(self, small_dataset, config):
        table = run_budget_strategy_ablation(
            small_dataset, granularity=3, config=config
        )
        assert len(table) == 4
        assert all(l > 0 for l in table.column("loss_d_km"))

    def test_spanner_reduces_constraints(self, small_dataset, config):
        table = run_spanner_ablation(
            small_dataset, granularities=(3,), dilations=(1.5,),
            config=config,
        )
        exact = table.filtered(dilation=1.0)
        reduced = table.filtered(dilation=1.5)
        assert reduced.column("n_constraints")[0] < (
            exact.column("n_constraints")[0]
        )
        assert reduced.column("utility_loss_km")[0] >= (
            exact.column("utility_loss_km")[0] - 1e-9
        )

    def test_index_ablation_rows(self, small_dataset, config):
        table = run_index_ablation(small_dataset, config=config)
        names = table.column("index")
        assert len(names) == 4
        assert all(l > 0 for l in table.column("loss_d_km"))

    def test_prior_ablation_personal_never_worse(self, small_dataset, config):
        from repro.eval import run_prior_ablation

        table = run_prior_ablation(
            small_dataset, granularity=3, n_users=3, config=config
        )
        assert len(table) == 3
        assert all(i >= -1e-6 for i in table.column("improvement_pct"))
