"""Unit tests for the greedy spanner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MechanismError
from repro.geo.point import Point
from repro.grid.regular import RegularGrid
from repro.mechanisms.spanner import greedy_spanner, verify_dilation


class TestGreedySpanner:
    def test_dilation_below_one_rejected(self):
        with pytest.raises(MechanismError):
            greedy_spanner([Point(0, 0), Point(1, 0)], 0.9)

    def test_trivial_sets(self):
        assert greedy_spanner([], 1.5).n_edges == 0
        assert greedy_spanner([Point(0, 0)], 1.5).n_edges == 0

    def test_two_points_always_connected(self):
        s = greedy_spanner([Point(0, 0), Point(3, 4)], 2.0)
        assert s.edges == ((0, 1),)

    def test_dilation_one_gives_complete_graph(self):
        pts = [Point(0, 0), Point(1, 0), Point(0, 1), Point(2, 2)]
        s = greedy_spanner(pts, 1.0)
        assert s.n_edges == 6  # all pairs

    def test_realised_dilation_within_bound(self, square20):
        pts = RegularGrid(square20, 4).centers()
        for t in (1.2, 1.5, 2.0):
            s = greedy_spanner(pts, t)
            assert verify_dilation(s, pts) <= t + 1e-9

    def test_larger_dilation_fewer_edges(self, square20):
        pts = RegularGrid(square20, 4).centers()
        tight = greedy_spanner(pts, 1.1)
        loose = greedy_spanner(pts, 2.5)
        assert loose.n_edges < tight.n_edges

    def test_ordered_pairs_doubles_edges(self):
        pts = [Point(0, 0), Point(1, 0), Point(0, 1)]
        s = greedy_spanner(pts, 1.5)
        pairs = s.ordered_pairs()
        assert len(pairs) == 2 * s.n_edges
        assert (0, 1) in pairs and (1, 0) in pairs

    @given(st.integers(min_value=2, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_spanner_is_connected(self, g):
        import networkx as nx

        pts = RegularGrid(
            __import__("repro.geo.bbox", fromlist=["BoundingBox"]).BoundingBox(
                0, 0, 10, 10
            ),
            g,
        ).centers()
        s = greedy_spanner(pts, 1.5)
        graph = nx.Graph()
        graph.add_nodes_from(range(len(pts)))
        graph.add_edges_from(s.edges)
        assert nx.is_connected(graph)
