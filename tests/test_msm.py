"""Unit and integration tests for the Multi-Step Mechanism."""

import numpy as np
import pytest

from repro.exceptions import BudgetError
from repro.geo.metric import EUCLIDEAN
from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.kdtree import KDTreeIndex
from repro.grid.quadtree import QuadtreeIndex
from repro.core.budget.allocation import allocate_budget_fixed_height
from repro.core.msm import MultiStepMechanism


@pytest.fixture
def msm2(fine_prior) -> MultiStepMechanism:
    """A two-level MSM at g = 3 (eps = 0.9 yields height 2 at rho 0.8)."""
    msm = MultiStepMechanism.build(0.9, 3, fine_prior, rho=0.8)
    assert msm.height == 2
    return msm


class TestConstruction:
    def test_build_uses_allocator(self, fine_prior):
        msm = MultiStepMechanism.build(0.5, 4, fine_prior)
        assert msm.plan is not None
        assert sum(msm.budgets) == pytest.approx(0.5)
        assert msm.epsilon == pytest.approx(0.5)

    def test_explicit_budgets(self, fine_prior, square20):
        index = HierarchicalGrid(square20, 3, 2)
        msm = MultiStepMechanism(index, (0.3, 0.2), fine_prior)
        assert msm.height == 2
        assert msm.plan is None

    def test_budget_validation(self, fine_prior, square20):
        index = HierarchicalGrid(square20, 3, 2)
        with pytest.raises(BudgetError):
            MultiStepMechanism(index, (), fine_prior)
        with pytest.raises(BudgetError):
            MultiStepMechanism(index, (0.3, 0.0), fine_prior)
        with pytest.raises(BudgetError):
            MultiStepMechanism(index, (0.3, -0.1), fine_prior)


class TestSampling:
    def test_output_is_a_leaf_center(self, msm2, rng):
        index = msm2.index
        leaf_centers = {
            leaf.bounds.center.as_tuple() for leaf in index.leaves()
        }
        for x in (Point(1, 1), Point(10, 10), Point(19, 19)):
            z = msm2.sample(x, rng)
            assert z.as_tuple() in leaf_centers

    def test_trace_levels(self, msm2, rng):
        _, trace = msm2.sample_with_trace(Point(5, 5), rng)
        assert [t.level for t in trace] == [1, 2]
        assert trace[0].node_path == ()
        assert len(trace[1].node_path) == 1

    def test_trace_records_descent(self, msm2, rng):
        _, trace = msm2.sample_with_trace(Point(5, 5), rng)
        # The level-2 node is the child picked at level 1.
        assert trace[1].node_path[0] == trace[0].reported_index

    def test_budget_concentration(self, fine_prior, square20, rng):
        """With a huge budget, MSM reports the true leaf cell."""
        index = HierarchicalGrid(square20, 3, 2)
        msm = MultiStepMechanism(index, (50.0, 50.0), fine_prior)
        x = Point(10.1, 9.9)
        hits = 0
        for _ in range(50):
            z = msm.sample(x, rng)
            leaf = index.level_grid(2).locate(x)
            if z == leaf.center:
                hits += 1
        assert hits >= 45

    def test_determinism_given_seed(self, msm2):
        a = msm2.sample(Point(3, 3), np.random.default_rng(5))
        b = msm2.sample(Point(3, 3), np.random.default_rng(5))
        assert a == b

    def test_walk_stops_at_index_leaves(self, fine_prior, square20, rng):
        """More budgets than index levels: walk ends at the index leaf."""
        index = HierarchicalGrid(square20, 3, 1)
        msm = MultiStepMechanism(index, (0.2, 0.2, 0.1), fine_prior)
        z = msm.sample(Point(5, 5), rng)
        level1_centers = {
            c.center.as_tuple() for c in index.level_grid(1).cells()
        }
        assert z.as_tuple() in level1_centers


class TestCacheAndPrecompute:
    def test_cache_reuse(self, msm2, rng):
        msm2.sample(Point(5, 5), rng)
        misses_after_first = msm2.cache.misses
        msm2.sample(Point(5, 5), rng)
        # The root mechanism is cached; the level-2 node may differ per
        # draw, but the root never misses again.
        assert msm2.cache.misses <= misses_after_first + 1
        assert msm2.cache.hits > 0

    def test_precompute_covers_reachable_tree(self, msm2):
        solved = msm2.precompute()
        # Root + 9 level-1 nodes.
        assert solved == 10
        assert len(msm2.cache) == 10
        # No more LP work afterwards.
        before = msm2.lp_seconds
        msm2.sample(Point(2, 2), np.random.default_rng(0))
        assert msm2.lp_seconds == before

    def test_precompute_max_nodes(self, fine_prior):
        msm = MultiStepMechanism.build(0.9, 3, fine_prior, rho=0.8)
        assert msm.precompute(max_nodes=3) == 3

    def test_cache_size_reporting(self, msm2):
        msm2.precompute()
        assert msm2.cache.size_bytes == 10 * 9 * 9 * 8


class TestExactDistribution:
    def test_distribution_sums_to_one(self, msm2):
        for x in (Point(0.5, 0.5), Point(10, 10), Point(19.5, 0.5)):
            _, probs = msm2.reported_distribution(x)
            assert probs.sum() == pytest.approx(1.0)

    def test_distribution_matches_monte_carlo(self, msm2, rng):
        x = Point(7, 13)
        points, probs = msm2.reported_distribution(x)
        exact = {p.as_tuple(): q for p, q in zip(points, probs)}
        counts: dict = {}
        n = 4000
        for _ in range(n):
            z = msm2.sample(x, rng).as_tuple()
            counts[z] = counts.get(z, 0) + 1
        for z, count in counts.items():
            # Match empirical frequencies within CLT noise.
            assert count / n == pytest.approx(
                exact.get(z, 0.0), abs=4 * np.sqrt(0.25 / n) + 0.01
            )

    def test_expected_loss_consistency(self, msm2, rng):
        x = Point(7, 13)
        exact = msm2.expected_loss(x)
        mc = np.mean(
            [x.distance_to(msm2.sample(x, rng)) for _ in range(3000)]
        )
        assert exact == pytest.approx(mc, rel=0.1)

    def test_expected_loss_metric_override(self, msm2):
        from repro.geo.metric import SQUARED_EUCLIDEAN

        x = Point(7, 13)
        d = msm2.expected_loss(x, dq=EUCLIDEAN)
        d2 = msm2.expected_loss(x, dq=SQUARED_EUCLIDEAN)
        # Jensen: E[d]^2 <= E[d^2].
        assert d * d <= d2 + 1e-9


class TestUtilityOrdering:
    def test_more_budget_less_loss(self, fine_prior, rng):
        """Across a wide budget range, average loss must fall."""
        xs = [Point(float(x), float(y))
              for x, y in rng.uniform(1, 19, size=(120, 2))]
        losses = []
        for eps in (0.1, 0.9):
            msm = MultiStepMechanism.build(eps, 3, fine_prior, rho=0.8)
            losses.append(
                np.mean([x.distance_to(msm.sample(x, rng)) for x in xs])
            )
        assert losses[1] < losses[0]

    def test_dq_is_passed_to_each_step(self, fine_prior, square20):
        """Each per-node OPT optimises the configured metric: at the root
        step, the d2-built matrix has (weakly) lower prior-weighted d2
        loss than the d-built one.  (Pointwise, or end-to-end through the
        greedy hierarchy, no such ordering is guaranteed.)"""
        from repro.geo.metric import SQUARED_EUCLIDEAN
        from repro.priors.aggregate import restrict_prior

        plan = allocate_budget_fixed_height(0.9, 3, square20.side, height=2)
        msm_d = MultiStepMechanism.from_plan(plan, fine_prior, dq=EUCLIDEAN)
        msm_d2 = MultiStepMechanism.from_plan(
            plan, fine_prior, dq=SQUARED_EUCLIDEAN
        )
        msm_d.precompute(max_nodes=1)
        msm_d2.precompute(max_nodes=1)
        root_d = msm_d.cache.get(())
        root_d2 = msm_d2.cache.get(())
        index = msm_d.index
        root_prior = restrict_prior(
            fine_prior, index.subgrid(index.root)
        ).probabilities
        assert root_d2.expected_loss(
            root_prior, SQUARED_EUCLIDEAN
        ) <= root_d.expected_loss(root_prior, SQUARED_EUCLIDEAN) + 1e-9
        assert not np.allclose(root_d.k, root_d2.k)


class TestAdaptiveIndexes:
    def test_msm_over_quadtree(self, fine_prior, small_dataset, rng):
        sample = small_dataset.sample_requests(1500, rng)
        index = QuadtreeIndex(
            small_dataset.bounds, sample, capacity=200, max_depth=3
        )
        msm = MultiStepMechanism(index, (0.2, 0.2, 0.2), fine_prior)
        z = msm.sample(sample[0], rng)
        assert small_dataset.bounds.contains(z)

    def test_msm_over_kdtree(self, fine_prior, small_dataset, rng):
        sample = small_dataset.sample_requests(800, rng)
        index = KDTreeIndex(small_dataset.bounds, sample, max_depth=4)
        msm = MultiStepMechanism(index, (0.1, 0.1, 0.2, 0.2), fine_prior)
        z = msm.sample(sample[0], rng)
        assert small_dataset.bounds.contains(z)

    def test_kdtree_distribution_sums_to_one(self, fine_prior,
                                             small_dataset, rng):
        sample = small_dataset.sample_requests(500, rng)
        index = KDTreeIndex(small_dataset.bounds, sample, max_depth=3)
        msm = MultiStepMechanism(index, (0.2, 0.2, 0.2), fine_prior)
        _, probs = msm.reported_distribution(Point(10, 10))
        assert probs.sum() == pytest.approx(1.0)

class TestBatchWalk:
    def test_empty_batch(self, msm2, rng):
        assert msm2.sanitize_batch([], rng) == []

    def test_outputs_are_leaf_centers(self, msm2, rng):
        leaf_centers = {
            leaf.bounds.center.as_tuple() for leaf in msm2.index.leaves()
        }
        xs = [Point(1, 1), Point(10, 10), Point(19, 19)] * 5
        walks = msm2.sanitize_batch(xs, rng)
        assert len(walks) == len(xs)
        for walk in walks:
            assert walk.point.as_tuple() in leaf_centers

    def test_traces_record_full_descent(self, msm2, rng):
        walks = msm2.sanitize_batch([Point(5, 5), Point(15, 2)], rng)
        for walk in walks:
            assert [t.level for t in walk.trace] == [1, 2]
            assert walk.trace[0].node_path == ()
            # Level 2 descends into the child reported at level 1.
            assert walk.trace[1].node_path == (
                walk.trace[0].reported_index,
            )
            # Output is the centre of the leaf the walk ended in.
            leaf_path = walk.trace[1].node_path + (
                walk.trace[1].reported_index,
            )
            node = msm2.index.root
            for child_index in leaf_path:
                node = msm2.index.children(node)[child_index]
            assert walk.point == node.bounds.center
            assert walk.degradation.clean

    def test_sample_many_matches_batch_points(self, msm2):
        xs = [Point(2, 2), Point(10, 10), Point(18, 18)] * 4
        points = msm2.sample_many(xs, np.random.default_rng(7))
        walks = msm2.sanitize_batch(xs, np.random.default_rng(7))
        assert points == [w.point for w in walks]

    def test_batch_determinism_given_seed(self, msm2):
        xs = [Point(3, 3), Point(12, 8)] * 10
        a = msm2.sanitize_batch(xs, np.random.default_rng(11))
        b = msm2.sanitize_batch(xs, np.random.default_rng(11))
        assert [w.point for w in a] == [w.point for w in b]
        assert [w.trace for w in a] == [w.trace for w in b]

    def test_precomputed_batch_does_no_lp_work(self, msm2):
        msm2.precompute()
        before = msm2.lp_seconds
        builds_before = msm2.cache.builds
        msm2.sanitize_batch(
            [Point(4, 4), Point(16, 16)] * 8, np.random.default_rng(3)
        )
        assert msm2.lp_seconds == before
        assert msm2.cache.builds == builds_before

    def test_cold_batch_solves_each_node_once(self, square20):
        from repro.grid.regular import RegularGrid
        from repro.priors.base import GridPrior

        prior = GridPrior.uniform(RegularGrid(square20, 9))
        index = HierarchicalGrid(square20, 3, 2)
        msm = MultiStepMechanism(index, (0.5, 0.7), prior)
        rng = np.random.default_rng(20190326)
        coords = rng.uniform(0.0, 20.0, size=(500, 2))
        msm.sanitize_batch(
            [Point(float(x), float(y)) for x, y in coords], rng
        )
        # 500 points over 9 level-1 cells reach every level-2 node, yet
        # each distinct node is built exactly once: root + 9 children.
        assert msm.cache.builds == 10
        assert len(msm.cache) == 10

    def test_outside_point_gets_random_x_hat(self, msm2, rng):
        walks = msm2.sanitize_batch([Point(-50.0, -50.0)], rng)
        assert walks[0].trace[0].x_hat_random
        in_domain = msm2.sanitize_batch([Point(5.0, 5.0)], rng)
        assert not in_domain[0].trace[0].x_hat_random

    def test_batch_over_adaptive_index(self, fine_prior, small_dataset, rng):
        sample = small_dataset.sample_requests(600, rng)
        index = QuadtreeIndex(
            small_dataset.bounds, sample, capacity=150, max_depth=3
        )
        msm = MultiStepMechanism(index, (0.2, 0.2, 0.2), fine_prior)
        walks = msm.sanitize_batch(sample[:40], rng)
        assert len(walks) == 40
        for walk in walks:
            assert small_dataset.bounds.contains(walk.point)
            # Uneven quadtree depth: traces may stop before 3 levels.
            assert 1 <= len(walk.trace) <= 3
