"""Tests for the evaluation harness and result tables."""

import numpy as np
import pytest

from repro.exceptions import EvaluationError
from repro.geo.metric import EUCLIDEAN, SQUARED_EUCLIDEAN
from repro.geo.point import Point
from repro.grid.regular import RegularGrid
from repro.mechanisms.base import Mechanism
from repro.mechanisms.planar_laplace import PlanarLaplaceMechanism
from repro.eval import EvaluationResult, ResultTable, evaluate_mechanism


class _Identity(Mechanism):
    """A no-op mechanism for harness arithmetic tests."""

    name = "identity"
    epsilon = float("inf")

    def sample(self, x, rng):
        return x


class _FixedShift(Mechanism):
    """Deterministic 3-4-5 shift: losses are exactly 5 (d) and 25 (d2)."""

    name = "shift"
    epsilon = float("inf")

    def sample(self, x, rng):
        return Point(x.x + 3.0, x.y + 4.0)


class TestHarness:
    def test_identity_has_zero_loss(self, rng):
        result = evaluate_mechanism(
            _Identity(), [Point(1, 1), Point(2, 2)], rng
        )
        assert result.loss(EUCLIDEAN) == 0.0
        assert result.loss(SQUARED_EUCLIDEAN) == 0.0
        assert result.n_requests == 2

    def test_fixed_shift_exact_losses(self, rng):
        result = evaluate_mechanism(
            _FixedShift(), [Point(0, 0)] * 10, rng
        )
        assert result.loss(EUCLIDEAN) == pytest.approx(5.0)
        assert result.loss(SQUARED_EUCLIDEAN) == pytest.approx(25.0)
        assert result.std_loss["euclidean"] == pytest.approx(0.0)

    def test_loss_lookup_by_name_and_object(self, rng):
        result = evaluate_mechanism(_FixedShift(), [Point(0, 0)], rng)
        assert result.loss("euclidean") == result.loss(EUCLIDEAN)
        with pytest.raises(EvaluationError):
            result.loss("manhattan")

    def test_validation(self, rng):
        with pytest.raises(EvaluationError):
            evaluate_mechanism(_Identity(), [], rng)
        with pytest.raises(EvaluationError):
            evaluate_mechanism(_Identity(), [Point(0, 0)], rng, metrics=())

    def test_latency_reported(self, square20, rng):
        pl = PlanarLaplaceMechanism(0.5, grid=RegularGrid(square20, 4))
        result = evaluate_mechanism(pl, [Point(5, 5)] * 50, rng)
        assert result.sample_seconds > 0
        assert result.ms_per_query == pytest.approx(
            1000 * result.sample_seconds / 50
        )

    def test_result_is_frozen(self, rng):
        result = evaluate_mechanism(_Identity(), [Point(0, 0)], rng)
        with pytest.raises(AttributeError):
            result.n_requests = 5


class TestResultTable:
    def test_add_and_column(self):
        t = ResultTable(title="t", columns=["a", "b"])
        t.add_row(1, "x")
        t.add_row(2, "y")
        assert len(t) == 2
        assert t.column("a") == [1, 2]
        assert t.column("b") == ["x", "y"]

    def test_arity_enforced(self):
        t = ResultTable(title="t", columns=["a", "b"])
        with pytest.raises(EvaluationError):
            t.add_row(1)

    def test_unknown_column(self):
        t = ResultTable(title="t", columns=["a"])
        with pytest.raises(EvaluationError):
            t.column("zzz")

    def test_filtered(self):
        t = ResultTable(title="t", columns=["mech", "eps", "loss"])
        t.add_row("PL", 0.1, 5.0)
        t.add_row("MSM", 0.1, 2.0)
        t.add_row("PL", 0.5, 3.0)
        sub = t.filtered(mech="PL")
        assert len(sub) == 2
        assert sub.column("loss") == [5.0, 3.0]
        both = t.filtered(mech="PL", eps=0.5)
        assert both.column("loss") == [3.0]

    def test_format_contains_everything(self):
        t = ResultTable(title="My Table", columns=["g", "loss"], notes="n=3")
        t.add_row(4, 1.2345)
        text = t.format()
        assert "My Table" in text
        assert "1.234" in text
        assert "note: n=3" in text

    def test_format_handles_special_floats(self):
        t = ResultTable(title="t", columns=["v"])
        t.add_row(float("nan"))
        t.add_row(0.0)
        t.add_row(1e-9)
        t.add_row(123456.0)
        text = t.format()
        assert "nan" in text
        assert "1e-09" in text

    def test_csv_roundtrip(self, tmp_path):
        import csv

        t = ResultTable(title="t", columns=["g", "loss"])
        t.add_row(4, 1.25)
        path = tmp_path / "out" / "t.csv"
        t.to_csv(path)
        with path.open() as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["g", "loss"]
        assert rows[1] == ["4", "1.25"]
