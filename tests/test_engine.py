"""Tests for the unified walk engine (`repro.core.engine`).

Covers the refactor's load-bearing claims: the scalar path is a batch
of one (byte-identical results under a shared seed), every stage works
in isolation, the sharded executor is distribution-equivalent to serial
execution and merges caches/provenance correctly, and the optimal-remap
post-processor transforms outputs without ever touching the guarantee
(the guarded step matrices are unchanged and the prior-expected loss
never goes up).
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.exceptions import MechanismError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.kdtree import KDTreeIndex
from repro.grid.quadtree import QuadtreeIndex
from repro.grid.regular import RegularGrid
from repro.priors.base import GridPrior
from repro.privacy.guard import guard_mechanism
from repro.core.cache import NodeMechanismCache
from repro.core.engine import (
    OptimalRemapPostProcessor,
    PostProcessor,
    SerialExecution,
    ShardedExecution,
    WalkEngine,
)
from repro.core.msm import MultiStepMechanism
from repro.core.resilience import ResilientSolver


@pytest.fixture(scope="module")
def square20() -> BoundingBox:
    return BoundingBox.square(Point(0.0, 0.0), 20.0)


@pytest.fixture(scope="module")
def uniform9(square20) -> GridPrior:
    return GridPrior.uniform(RegularGrid(square20, 9))


@pytest.fixture(scope="module")
def msm2(square20, uniform9) -> MultiStepMechanism:
    """A warm two-level MSM (g = 3, 81 leaves) over a uniform prior."""
    msm = MultiStepMechanism(
        HierarchicalGrid(square20, 3, 2), (0.5, 0.7), uniform9
    )
    msm.precompute()
    return msm


def uniform_points(n: int, seed: int, side: float = 20.0) -> list[Point]:
    coords = np.random.default_rng(seed).uniform(0.0, side, size=(n, 2))
    return [Point(float(x), float(y)) for x, y in coords]


# ----------------------------------------------------------------------
# the headline contract: scalar == batch of one
# ----------------------------------------------------------------------
class TestScalarIsBatchOfOne:
    @pytest.mark.parametrize(
        "x", [Point(3.3, 12.8), Point(10.0, 10.0), Point(-5.0, 40.0)],
        ids=["off-center", "center", "out-of-domain"],
    )
    def test_walkresult_equality_under_shared_seed(self, msm2, x):
        scalar = msm2.sample_with_report(x, np.random.default_rng(7))
        batch = msm2.sanitize_batch([x], np.random.default_rng(7))
        assert len(batch) == 1
        assert scalar == batch[0]

    def test_engine_run_is_the_shared_implementation(self, msm2, rng):
        x = Point(4.4, 4.4)
        via_facade = msm2.sample_with_report(x, np.random.default_rng(3))
        via_engine = msm2.engine.run([x], np.random.default_rng(3))[0]
        assert via_facade == via_engine

    def test_sample_many_matches_sanitize_batch(self, msm2):
        xs = uniform_points(40, seed=5)
        points = msm2.sample_many(xs, np.random.default_rng(13))
        walks = msm2.sanitize_batch(xs, np.random.default_rng(13))
        assert points == [w.point for w in walks]


# ----------------------------------------------------------------------
# per-stage unit tests
# ----------------------------------------------------------------------
class TestStages:
    @pytest.fixture()
    def engine(self, square20, uniform9) -> WalkEngine:
        return WalkEngine(
            HierarchicalGrid(square20, 3, 2), (0.5, 0.7), uniform9
        )

    def test_locate_snaps_inside_points(self, engine, rng):
        root = engine.index.root
        children = engine.index.children(root)
        coords = np.asarray([[1.0, 1.0], [19.0, 19.0], [10.0, 1.0]])
        x_hat, drifted = engine.locate(root, children, coords, rng)
        assert x_hat.tolist() == [0, 8, 1]
        assert not drifted.any()

    def test_locate_randomises_drifted_points(self, engine):
        root = engine.index.root
        children = engine.index.children(root)
        coords = np.asarray([[-3.0, 5.0], [25.0, 25.0]])
        draws = set()
        for seed in range(30):
            rng = np.random.default_rng(seed)
            x_hat, drifted = engine.locate(root, children, coords, rng)
            assert drifted.all()
            assert ((0 <= x_hat) & (x_hat < len(children))).all()
            draws.update(x_hat.tolist())
        assert len(draws) > 1  # actually random, not a constant fill

    def test_resolve_solves_once_then_hits_cache(self, engine):
        root = engine.index.root
        children = engine.index.children(root)
        first = engine.resolve(root, 1, children)
        builds = engine.cache.builds
        again = engine.resolve(root, 1, children)
        assert engine.cache.builds == builds
        assert again.matrix is first.matrix
        assert first.level == 1
        assert first.epsilon == pytest.approx(0.5)
        assert not first.degraded

    def test_resolve_many_skips_leaf_groups(self, engine):
        root = engine.index.root
        entries = engine.resolve_many(1, {root.path: root}, {root.path: []})
        assert entries == {}
        assert engine.cache.builds == 0

    def test_sample_is_vectorised_cdf_inversion(self, engine):
        root = engine.index.root
        children = engine.index.children(root)
        entry = engine.resolve(root, 1, children)
        x_hat = np.asarray([0, 4, 8, 4])
        a = engine.sample(entry, x_hat, np.random.default_rng(17))
        b = entry.matrix.sample_rows(x_hat, np.random.default_rng(17))
        assert a.tolist() == b.tolist()
        assert ((0 <= a) & (a < len(children))).all()

    def test_run_empty_batch(self, engine, rng):
        assert engine.run([], rng) == []

    def test_run_rejects_childless_root(self, square20, uniform9, rng):
        leaf_only = QuadtreeIndex(square20, [], capacity=64)
        engine = WalkEngine(leaf_only, (0.5,), uniform9)
        with pytest.raises(MechanismError, match="no children"):
            engine.run([Point(5.0, 5.0)], rng)

    def test_worker_copy_is_serial_and_shares_state(self, engine):
        engine.executor = ShardedExecution()
        engine.postprocessor = _IdentityPost()
        worker = engine.worker_copy()
        assert isinstance(worker.executor, SerialExecution)
        assert worker.postprocessor is None
        assert worker.cache is engine.cache
        assert worker.solver is engine.solver

    def test_lp_seconds_accounting_merges(self, engine):
        before = engine.lp_seconds
        engine.add_lp_seconds(1.25)
        assert engine.lp_seconds == pytest.approx(before + 1.25)


class _IdentityPost(PostProcessor):
    name = "identity"

    def finalise(self, results):
        return list(results)


class _DroppingPost(PostProcessor):
    name = "dropper"

    def finalise(self, results):
        return list(results)[:-1]


class TestFinaliseStage:
    def test_batch_size_change_is_rejected(self, square20, uniform9, rng):
        engine = WalkEngine(
            HierarchicalGrid(square20, 3, 1), (0.5,), uniform9,
            postprocessor=_DroppingPost(),
        )
        with pytest.raises(MechanismError, match="changed the batch size"):
            engine.run(uniform_points(4, seed=1), rng)

    def test_identity_post_preserves_results(self, square20, uniform9):
        plain = WalkEngine(HierarchicalGrid(square20, 3, 1), (0.5,), uniform9)
        posted = WalkEngine(
            HierarchicalGrid(square20, 3, 1), (0.5,), uniform9,
            postprocessor=_IdentityPost(),
        )
        xs = uniform_points(10, seed=2)
        a = plain.run(xs, np.random.default_rng(4))
        b = posted.run(xs, np.random.default_rng(4))
        assert a == b


# ----------------------------------------------------------------------
# execution policies
# ----------------------------------------------------------------------
class TestShardedExecution:
    def test_max_workers_validation(self):
        with pytest.raises(MechanismError, match="max_workers"):
            ShardedExecution(max_workers=0)

    def test_partition_groups_by_top_level_node(self, msm2):
        policy = ShardedExecution()
        points = [
            Point(1.0, 1.0),    # child 0
            Point(19.0, 1.0),   # child 2
            Point(1.5, 1.5),    # child 0 again
            Point(-9.0, 0.0),   # out of domain -> its own shard
        ]
        shards = policy.partition(msm2.engine, points)
        assert sorted(map(sorted, shards)) == [[0, 2], [1], [3]]

    def test_small_batch_falls_back_to_serial_byte_identical(self, msm2):
        xs = uniform_points(32, seed=3)
        serial = msm2.sanitize_batch(xs, np.random.default_rng(9))
        msm2.executor = ShardedExecution()  # min_batch_size default 2048
        try:
            sharded = msm2.sanitize_batch(xs, np.random.default_rng(9))
        finally:
            msm2.executor = SerialExecution()
        assert serial == sharded

    def test_single_shard_falls_back_to_serial(self, msm2):
        xs = [Point(1.0, 1.0)] * 8  # all in top-level child 0
        serial = msm2.sanitize_batch(xs, np.random.default_rng(21))
        msm2.executor = ShardedExecution(max_workers=2, min_batch_size=0)
        try:
            sharded = msm2.sanitize_batch(xs, np.random.default_rng(21))
        finally:
            msm2.executor = SerialExecution()
        assert serial == sharded

    def test_unpicklable_engine_degrades_to_serial(self, square20, uniform9):
        solver = ResilientSolver()
        solver.unpicklable_marker = lambda: None  # lambdas don't pickle
        msm = MultiStepMechanism(
            HierarchicalGrid(square20, 3, 1), (0.5,), uniform9,
            solver=solver,
            executor=ShardedExecution(max_workers=2, min_batch_size=0),
        )
        xs = uniform_points(24, seed=6)
        with pytest.warns(RuntimeWarning, match="not picklable"):
            walks = msm.sanitize_batch(xs, np.random.default_rng(2))
        assert len(walks) == len(xs)

    def test_sharded_run_merges_results_and_cache(self, square20, uniform9):
        msm = MultiStepMechanism(
            HierarchicalGrid(square20, 3, 2), (0.5, 0.7), uniform9,
            executor=ShardedExecution(max_workers=2, min_batch_size=0),
        )
        xs = uniform_points(60, seed=8)
        walks = msm.sanitize_batch(xs, np.random.default_rng(14))
        assert len(walks) == len(xs)
        # Results come back in input order with full per-point provenance,
        # and each trace is self-consistent across levels.
        for walk in walks:
            assert len(walk.trace) == 2
            assert walk.trace[0].node_path == ()
            assert walk.trace[1].node_path == (
                walk.trace[0].reported_index,
            )
            assert walk.degradation.clean
        # The parent adopted the workers' solved nodes: a follow-up
        # serial walk finds a warm cache (no new solves needed for the
        # nodes the shards visited).
        assert () in msm.cache
        assert len(msm.cache) >= 2
        builds_before = msm.cache.builds
        msm.executor = SerialExecution()
        msm.sanitize_batch(xs, np.random.default_rng(15))
        assert msm.cache.builds == builds_before

    def test_cache_merge_keeps_existing_entries(self):
        a, b = NodeMechanismCache(), NodeMechanismCache()
        msm_matrix = None  # filled below from a tiny solve-free matrix
        from repro.mechanisms.exponential import (
            exponential_matrix_from_locations,
        )
        locs = [Point(0.0, 0.0), Point(1.0, 0.0)]
        m1 = exponential_matrix_from_locations(locs, 1.0)
        m2 = exponential_matrix_from_locations(locs, 2.0)
        a.put((0,), m1, level=1, epsilon=1.0)
        b.put((0,), m2, level=1, epsilon=2.0)
        b.put((1,), m2, level=1, epsilon=2.0)
        adopted = a.merge(b.snapshot())
        assert adopted == 1
        assert a.get((0,)) is m1  # local entry wins
        assert a.get((1,)) is m2


@pytest.mark.statistical
class TestShardedDistributionEquivalence:
    N = 6000
    ALPHA = 0.01
    MIN_POOLED = 10

    def leaf_counts(self, msm, points):
        grid = msm.index.level_grid(min(msm.height, msm.index.height))
        counts = np.zeros(grid.n_cells, dtype=float)
        for p in points:
            counts[grid.locate(p).index] += 1
        return counts

    def test_chi_square_serial_vs_sharded(self, msm2):
        """Sharded execution is distribution-identical to serial.

        Same input workload, independent seeds; the two leaf histograms
        must be indistinguishable at alpha = 0.01 (fixed seeds, verified
        deterministic outcome).
        """
        xs = uniform_points(self.N, seed=20190326)
        serial = msm2.sanitize_batch(xs, np.random.default_rng(31))
        msm2.executor = ShardedExecution(max_workers=2, min_batch_size=0)
        try:
            sharded = msm2.sanitize_batch(xs, np.random.default_rng(32))
        finally:
            msm2.executor = SerialExecution()
        a = self.leaf_counts(msm2, [w.point for w in serial])
        b = self.leaf_counts(msm2, [w.point for w in sharded])
        pooled = a + b
        keep = pooled >= self.MIN_POOLED
        table = np.vstack([
            np.append(a[keep], a[~keep].sum()),
            np.append(b[keep], b[~keep].sum()),
        ])
        table = table[:, table.sum(axis=0) > 0]
        _, p_value, _, _ = stats.chi2_contingency(table)
        assert p_value >= self.ALPHA, (
            f"serial and sharded leaf distributions diverge "
            f"(p={p_value:.4g})"
        )


# ----------------------------------------------------------------------
# the optimal-remap post-processing stage
# ----------------------------------------------------------------------
class TestOptimalRemap:
    @pytest.fixture(scope="class")
    def msm_remap(self, square20, uniform9) -> MultiStepMechanism:
        msm = MultiStepMechanism(
            HierarchicalGrid(square20, 3, 2), (0.5, 0.7), uniform9,
            remap=True,
        )
        msm.precompute()
        return msm

    def test_remap_flag_wires_the_postprocessor(self, msm_remap):
        assert isinstance(msm_remap.postprocessor, OptimalRemapPostProcessor)

    def test_outputs_are_remapped_with_provenance(self, msm_remap, rng):
        walks = msm_remap.sanitize_batch(uniform_points(50, seed=4), rng)
        table = msm_remap.postprocessor.table
        grid = msm_remap.postprocessor.leaf_grid
        for walk in walks:
            assert walk.raw_point is not None
            assert walk.point == table[grid.locate(walk.raw_point).index]
            assert len(walk.trace) == 2  # walk provenance survives

    def test_scalar_batch_equality_holds_with_remap(self, msm_remap):
        x = Point(7.7, 2.2)
        scalar = msm_remap.sample_with_report(x, np.random.default_rng(5))
        batch = msm_remap.sanitize_batch([x], np.random.default_rng(5))
        assert scalar == batch[0]

    def test_remap_never_increases_expected_loss(self, msm_remap, uniform9):
        k = msm_remap.to_matrix()
        assignment = msm_remap.postprocessor.assignment()
        prior = np.full(len(k.inputs), 1.0 / len(k.inputs))
        before = k.expected_loss(prior, msm_remap.dq)
        after = k.with_remap(assignment).expected_loss(prior, msm_remap.dq)
        assert after <= before + 1e-12

    def test_remap_actually_moves_some_output(self, square20):
        """Under a skewed prior the stage is not a no-op: some walk
        output is remapped toward the mass.  (Under the uniform prior
        of the other tests the optimal remap is correctly the
        identity.)"""
        grid = RegularGrid(square20, 3)
        probs = np.full(grid.n_cells, 0.01)
        probs[0] = 1.0
        skewed = GridPrior(grid, probs / probs.sum())
        msm = MultiStepMechanism(
            HierarchicalGrid(square20, 3, 1), (0.4,), skewed, remap=True,
        )
        table = msm.postprocessor.table
        leaf_grid = msm.postprocessor.leaf_grid
        moved = [
            z_index for z_index, w in table.items()
            if leaf_grid.locate(w).index != z_index
        ]
        assert moved
        # and a walk that lands on a moved leaf really is rerouted
        from repro.core.engine import WalkResult
        from repro.core.resilience import DegradationReport

        landed = WalkResult(
            point=leaf_grid.cell_by_index(moved[0]).bounds.center,
            trace=(),
            degradation=DegradationReport(()),
        )
        (finalised,) = msm.postprocessor.finalise([landed])
        assert finalised.raw_point == landed.point
        assert leaf_grid.locate(finalised.point).index != moved[0]

    def test_step_matrices_still_pass_the_guard(self, msm_remap, rng):
        """Remap is output-only: every matrix the engine sampled from
        still satisfies per-level GeoInd exactly as without remap."""
        msm_remap.sanitize_batch(uniform_points(30, seed=9), rng)
        assert len(msm_remap.cache) > 0
        for path, entry in msm_remap.cache.snapshot().items():
            guard_mechanism(entry.matrix, entry.epsilon)

    def test_session_passthrough(self, square20):
        from repro.core.session import SanitizationSession
        from repro.priors.base import GridPrior as GP

        prior = GP.uniform(RegularGrid(square20, 4))
        session = SanitizationSession(
            10.0, 1.5, prior, granularity=2, remap=True,
        )
        assert isinstance(
            session.mechanism.postprocessor, OptimalRemapPostProcessor
        )
        report = session.report(Point(5.0, 5.0), np.random.default_rng(1))
        assert session.spent == pytest.approx(1.5)
        assert prior.grid.bounds.contains(report.reported)


# ----------------------------------------------------------------------
# the batch walk over adaptive indexes (vectorised locate overrides)
# ----------------------------------------------------------------------
class TestAdaptiveIndexBatch:
    @pytest.fixture(scope="class")
    def sample_points(self) -> list[Point]:
        return uniform_points(300, seed=77)

    @pytest.fixture(scope="class")
    def quadtree(self, square20, sample_points) -> QuadtreeIndex:
        return QuadtreeIndex(
            square20, sample_points, capacity=40, max_depth=4
        )

    @pytest.fixture(scope="class")
    def kdtree(self, square20, sample_points) -> KDTreeIndex:
        return KDTreeIndex(square20, sample_points, max_depth=3)

    @pytest.mark.parametrize("index_name", ["quadtree", "kdtree"])
    def test_vectorised_locate_agrees_with_scalar(
        self, index_name, request
    ):
        from repro.grid.index import SpatialIndex

        index = request.getfixturevalue(index_name)
        pts = uniform_points(500, seed=88) + [Point(-1.0, 5.0)]
        coords = np.asarray([(p.x, p.y) for p in pts])
        stack = [index.root]
        checked = 0
        while stack:
            node = stack.pop()
            kids = index.children(node)
            if not kids:
                continue
            stack.extend(kids)
            fast = index.locate_child_indices(node, coords)
            slow = SpatialIndex.locate_child_indices(index, node, coords)
            assert fast.tolist() == slow.tolist()
            checked += 1
        assert checked >= 3  # the walk above actually exercised the tree

    @pytest.mark.parametrize("index_name", ["quadtree", "kdtree"])
    def test_sanitize_batch_over_adaptive_index(
        self, index_name, request, square20, uniform9
    ):
        index = request.getfixturevalue(index_name)
        msm = MultiStepMechanism(index, (0.6, 0.6), uniform9)
        xs = uniform_points(80, seed=99)
        walks = msm.sanitize_batch(xs, np.random.default_rng(6))
        assert len(walks) == len(xs)
        for walk in walks:
            assert square20.contains(walk.point)
            assert 1 <= len(walk.trace) <= 2
        # scalar == batch-of-one holds over adaptive indexes too
        x = xs[0]
        scalar = msm.sample_with_report(x, np.random.default_rng(12))
        batch = msm.sanitize_batch([x], np.random.default_rng(12))
        assert scalar == batch[0]
