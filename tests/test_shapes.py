"""Unit tests for the trend-shape helpers."""

import pytest

from repro.exceptions import EvaluationError
from repro.eval.shapes import (
    crossover_index,
    dominates,
    gap_ratios,
    is_decreasing,
    is_increasing,
    is_u_shaped,
)


class TestMonotone:
    def test_strictly_decreasing(self):
        assert is_decreasing([5, 4, 3, 1])
        assert not is_decreasing([5, 4, 4.5, 1])

    def test_tolerance_absorbs_noise(self):
        # One 4% uptick is fine at 5% tolerance.
        assert is_decreasing([5.0, 4.0, 4.15, 1.0], tolerance=0.05)
        assert not is_decreasing([5.0, 4.0, 4.5, 1.0], tolerance=0.05)

    def test_overall_direction_required(self):
        # Flat series is not decreasing even with tolerance.
        assert not is_decreasing([3.0, 3.0, 3.0], tolerance=0.1)

    def test_increasing_mirror(self):
        assert is_increasing([1, 2, 4])
        assert not is_increasing([1, 2, 1.5])
        assert is_increasing([1.0, 0.97, 2.0], tolerance=0.05)

    def test_too_short(self):
        with pytest.raises(EvaluationError):
            is_decreasing([1.0])


class TestUShape:
    def test_clean_u(self):
        assert is_u_shaped([5, 3, 2, 3.5, 6])

    def test_monotone_is_not_u(self):
        assert not is_u_shaped([5, 4, 3, 2, 1])
        assert not is_u_shaped([1, 2, 3, 4, 5])

    def test_minimum_at_edge_is_not_u(self):
        assert not is_u_shaped([1, 2, 3, 2.5, 2.9])

    def test_needs_three_points(self):
        assert not is_u_shaped([2, 1])

    def test_noisy_u_with_tolerance(self):
        assert is_u_shaped([5, 3.0, 3.05, 2.0, 3.0, 6.0], tolerance=0.05)


class TestDominance:
    def test_dominates(self):
        assert dominates([1, 2, 3], [2, 3, 4])
        assert not dominates([1, 5, 3], [2, 3, 4])

    def test_min_ratio(self):
        assert dominates([1, 1], [3, 2.5], min_ratio=2.0)
        assert not dominates([1, 1], [3, 1.5], min_ratio=2.0)

    def test_gap_ratios(self):
        assert gap_ratios([1, 2], [3, 4]) == pytest.approx([3.0, 2.0])
        with pytest.raises(EvaluationError):
            gap_ratios([0.0, 1.0], [1.0, 2.0])

    def test_length_mismatch(self):
        with pytest.raises(EvaluationError):
            dominates([1, 2], [1, 2, 3])
        with pytest.raises(EvaluationError):
            gap_ratios([1, 2], [1])


class TestCrossover:
    def test_no_crossover(self):
        assert crossover_index([1, 2, 3], [5, 6, 7]) is None

    def test_crossover_position(self):
        assert crossover_index([1, 2, 3], [4, 2.5, 2.0]) == 2

    def test_immediate(self):
        assert crossover_index([5, 1], [4, 2]) == 0

    def test_length_mismatch(self):
        with pytest.raises(EvaluationError):
            crossover_index([1, 2], [1])
