"""Regression suite for the observability layer (:mod:`repro.obs`).

Locks in the contracts the instrumentation relies on:

* registry semantics — counter monotonicity, deterministic histogram
  buckets, and the snapshot algebra (associative + commutative merge)
  sharded execution depends on;
* span-tree shape — the exact stage nesting of a known g=2/h=2 walk;
* the no-overhead contract — enabling observability must not perturb
  the walk's outputs (byte-identity under a shared seed);
* exporter golden files — both text formats round-trip exactly;
* telemetry vs truth — the metrics the layer emits must equal the
  engine's own accounting (cache builds, degraded steps, LP seconds);
* sharded attribution — per-level LP metrics carry the same label sets
  whether a batch ran serially, sharded, or through a serial fallback.

The achieved-Pr[x|x] check over >= 20k samples lives at the bottom under
the ``statistical`` marker.
"""

from __future__ import annotations

from itertools import count
from pathlib import Path

import numpy as np
import pytest

from repro.core.cache import NodeMechanismCache
from repro.core.engine import SerialExecution, ShardedExecution
from repro.core.msm import MultiStepMechanism
from repro.core.resilience import ResilienceConfig, ResilientSolver
from repro.exceptions import DegradedModeWarning, ObservabilityError
from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.regular import RegularGrid
from repro.obs import (
    LATENCY_EDGES,
    MetricsRegistry,
    MetricsSnapshot,
    NOOP,
    Observability,
    RecordingTracer,
)
from repro.obs.export import (
    parse_jsonl,
    parse_prometheus,
    to_jsonl,
    to_prometheus,
)
from repro.priors.base import GridPrior
from repro.testing.faults import (
    FaultInjectingSolver,
    FlakyCacheProxy,
    RaiseFault,
)

DATA_DIR = Path(__file__).parent / "data"

SEED = 20190326


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def small_msm(
    square20,
    g: int = 2,
    h: int = 2,
    obs: Observability | None = None,
    **kwargs,
) -> MultiStepMechanism:
    """A tiny MSM instance on the standard square, optionally observed."""
    prior = GridPrior.uniform(RegularGrid(square20, g**h))
    index = HierarchicalGrid(square20, g, h)
    budgets = tuple(0.4 + 0.1 * i for i in range(h))
    return MultiStepMechanism(index, budgets, prior, obs=obs, **kwargs)


def batch(n: int, seed: int = SEED) -> list[Point]:
    coords = np.random.default_rng(seed).uniform(0.0, 20.0, size=(n, 2))
    return [Point(float(x), float(y)) for x, y in coords]


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------
class TestRegistrySemantics:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("events_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            c.inc(-1.0)
        assert c.value == 3.5  # the failed inc must not have landed

    def test_get_or_create_is_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total", level=1) is reg.counter(
            "x_total", level=1
        )
        # label order is canonicalised, values are stringified
        assert reg.counter("y_total", a=1, b=2) is reg.counter(
            "y_total", b="2", a="1"
        )
        assert len(reg) == 2

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ObservabilityError, match="is a Counter"):
            reg.gauge("thing")
        reg.histogram("lat_seconds")
        with pytest.raises(ObservabilityError, match="already registered"):
            reg.histogram("lat_seconds", edges=(1.0, 2.0))

    def test_gauge_is_a_level(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("budget_remaining")
        gauge.set(5.0)
        gauge.set(2.5)  # gauges go down; that is the point
        assert reg.snapshot().gauge_value("budget_remaining") == 2.5

    def test_histogram_buckets_deterministic(self):
        """Fixed edges, exact bucket placement — same data, same buckets."""
        def fill():
            reg = MetricsRegistry()
            hist = reg.histogram("lat", edges=(0.01, 0.1, 1.0))
            for v in (0.005, 0.01, 0.02, 0.5, 1.0, 2.0, 3.0):
                hist.observe(v)
            return reg.snapshot().histogram_value("lat")

        a, b = fill(), fill()
        assert a == b
        # upper bounds are inclusive (bisect_left): 0.01 -> bucket 0,
        # 1.0 -> bucket 2, everything above the last edge -> +Inf.
        assert a.counts == (2, 1, 2, 2)
        assert a.count == 7
        assert a.sum == pytest.approx(6.535)

    def test_histogram_rejects_bad_edges(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="strictly increasing"):
            reg.histogram("h", edges=(1.0, 1.0, 2.0))
        with pytest.raises(ObservabilityError, match="strictly increasing"):
            reg.histogram("h2", edges=())


# ----------------------------------------------------------------------
# snapshot algebra
# ----------------------------------------------------------------------
def _dyadic(rng: np.random.Generator) -> float:
    """A random dyadic rational: float sums of these are exact, so the
    associativity law can be asserted with ``==`` rather than approx."""
    return float(rng.integers(0, 1 << 20)) / 1024.0


def _snapshot(seed: int) -> MetricsSnapshot:
    """A small pseudo-random but deterministic registry state."""
    rng = np.random.default_rng(seed)
    reg = MetricsRegistry()
    for level in (1, 2, 3):
        reg.counter("lp_seconds_total", level=level).inc(_dyadic(rng))
    reg.counter("hits_total").inc(int(rng.integers(0, 50)))
    reg.gauge("epsilon_remaining").set(_dyadic(rng))
    hist = reg.histogram("latency", edges=LATENCY_EDGES)
    for _ in range(8):
        hist.observe(_dyadic(rng) / 1024.0)
    return reg.snapshot()


class TestSnapshotAlgebra:
    def test_merge_commutative(self):
        a, b = _snapshot(1), _snapshot(2)
        assert a.merge(b) == b.merge(a)

    def test_merge_associative(self):
        a, b, c = _snapshot(1), _snapshot(2), _snapshot(3)
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_merge_identity(self):
        a = _snapshot(4)
        empty = MetricsSnapshot()
        merged = a.merge(empty)
        assert merged.counters == a.counters
        assert merged.histograms == a.histograms
        assert merged.gauges == a.gauges

    def test_merge_semantics(self):
        a, b = _snapshot(1), _snapshot(2)
        m = a.merge(b)
        assert m.counter_value("hits_total") == (
            a.counter_value("hits_total") + b.counter_value("hits_total")
        )
        assert m.gauge_value("epsilon_remaining") == max(
            a.gauge_value("epsilon_remaining"),
            b.gauge_value("epsilon_remaining"),
        )
        ha, hb, hm = (
            s.histogram_value("latency") for s in (a, b, m)
        )
        assert hm.counts == tuple(
            x + y for x, y in zip(ha.counts, hb.counts)
        )
        assert hm.count == ha.count + hb.count

    def test_registry_merge_matches_snapshot_merge(self):
        """Folding into a live registry == the pure snapshot merge."""
        a, b = _snapshot(5), _snapshot(6)
        reg = MetricsRegistry()
        reg.merge(a)
        reg.merge(b)
        assert reg.snapshot() == a.merge(b)

    def test_shard_partition_order_irrelevant(self):
        """Any merge order over any shard partition: same result."""
        shards = [_snapshot(s) for s in range(8)]
        left = MetricsSnapshot()
        for s in shards:
            left = left.merge(s)
        right = MetricsSnapshot()
        for s in reversed(shards):
            right = right.merge(s)
        # pairwise tree merge, like a reduction over workers
        tree = shards
        while len(tree) > 1:
            tree = [
                tree[i].merge(tree[i + 1]) if i + 1 < len(tree) else tree[i]
                for i in range(0, len(tree), 2)
            ]
        assert left == right == tree[0]

    def test_since_is_a_delta(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc(3)
        reg.histogram("h", edges=(1.0, 2.0)).observe(0.5)
        before = reg.snapshot()
        reg.counter("a_total").inc(2)
        reg.counter("b_total").inc(1)
        reg.histogram("h", edges=(1.0, 2.0)).observe(1.5)
        delta = reg.snapshot().since(before)
        assert delta.counter_value("a_total") == 2.0
        assert delta.counter_value("b_total") == 1.0
        assert delta.histogram_value("h").counts == (0, 1, 0)
        assert delta.histogram_value("h").count == 1
        # unchanged series are dropped from the delta
        reg2 = MetricsRegistry()
        reg2.merge(before)
        assert reg2.snapshot().since(before).counters == ()


# ----------------------------------------------------------------------
# span-tree shape for a known walk
# ----------------------------------------------------------------------
class TestSpanTree:
    @pytest.fixture()
    def traced_walk(self, square20):
        obs = Observability.collecting(trace=True)
        msm = small_msm(square20, g=2, h=2, obs=obs)
        points = batch(40)
        walks = msm.sanitize_batch(points, np.random.default_rng(SEED))
        return obs, msm, walks

    def test_walk_root_and_stage_nesting(self, traced_walk):
        obs, msm, walks = traced_walk
        roots = obs.spans
        assert [r.name for r in roots] == ["walk"]
        walk = roots[0]
        assert walk.attributes == {"n": 40, "path": "staged"}
        # one level span per index level, then the finalise stage
        assert walk.child_names() == ["level", "level", "finalise"]
        for depth, level in enumerate(walk.find("level"), start=1):
            assert level.attributes["level"] == depth
            assert level.attributes["epsilon"] == msm.budgets[depth - 1]
            names = level.child_names()
            # resolve first, then locate/sample/descend per node group
            assert names[0] == "resolve"
            assert names[1:] and len(names[1:]) % 3 == 0
            for i in range(1, len(names), 3):
                assert names[i : i + 3] == ["locate", "sample", "descend"]
        finalise = walk.find("finalise")[0]
        assert finalise.attributes == {"n": 40, "post": "none"}

    def test_one_resolve_node_per_distinct_node(self, traced_walk):
        obs, msm, walks = traced_walk
        levels = obs.spans[0].find("level")
        for depth, level in enumerate(levels, start=1):
            distinct = {
                step.node_path
                for w in walks
                for step in w.trace
                if step.level == depth
            }
            node_spans = level.find("resolve.node")
            assert len(node_spans) == len(distinct)
            assert {
                tuple(
                    int(p) for p in str(s.attributes["path"]).split("/")
                    if p != ""
                )
                for s in node_spans
            } == distinct
            resolve = level.find("resolve")[0]
            assert resolve.attributes["nodes"] == len(distinct)

    def test_cache_spans_under_resolve_node(self, traced_walk):
        obs, _, _ = traced_walk
        for node_span in obs.spans[0].find("resolve.node"):
            names = node_span.child_names()
            assert names[0] == "cache.get"
            if node_span.attributes["cache_hit"]:
                assert "cache.build" not in names
            else:
                assert names == ["cache.get", "cache.build"]
                build = node_span.find("cache.build")[0]
                # the resilient chain ran under the build
                lp = build.find("lp.solve")
                assert len(lp) == 1
                assert lp[0].attributes["winner"] is not None
                assert lp[0].find("lp.backend")

    def test_locate_spans_record_drift(self, traced_walk):
        obs, _, walks = traced_walk
        drifted_truth = sum(
            1
            for w in walks
            for s in w.trace
            if s.level == 2 and s.x_hat_random
        )
        level2 = obs.spans[0].find("level")[1]
        recorded = sum(
            s.attributes["drifted"] for s in level2.find("locate")
        )
        assert recorded == drifted_truth

    def test_out_of_order_close_raises(self):
        tracer = RecordingTracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(ObservabilityError, match="out of order"):
            outer.__exit__(None, None, None)


# ----------------------------------------------------------------------
# the no-overhead contract: observing a walk must not change it
# ----------------------------------------------------------------------
class TestNoopIdentity:
    def test_observed_walk_is_byte_identical(self, square20):
        plain = small_msm(square20, g=2, h=2)
        observed = small_msm(
            square20, g=2, h=2, obs=Observability.collecting(trace=True)
        )
        points = batch(100)
        a = plain.sanitize_batch(points, np.random.default_rng(SEED))
        b = observed.sanitize_batch(points, np.random.default_rng(SEED))
        assert [w.point for w in a] == [w.point for w in b]
        assert [w.trace for w in a] == [w.trace for w in b]

    def test_observed_kernel_walk_is_byte_identical(self, square20):
        """Instrumentation changes nothing on the compiled path either:
        same points, same traces, with or without a collecting handle."""
        plain = small_msm(square20, g=2, h=2)
        observed = small_msm(
            square20, g=2, h=2, obs=Observability.collecting(trace=True)
        )
        for msm in (plain, observed):
            msm.precompute()
            msm.engine.kernel = "always"
            assert msm.engine.compile(build=False) is not None
        points = batch(100)
        a = plain.sanitize_batch(points, np.random.default_rng(SEED))
        b = observed.sanitize_batch(points, np.random.default_rng(SEED))
        assert [w.point for w in a] == [w.point for w in b]
        assert [w.trace for w in a] == [w.trace for w in b]
        # the observed run went down the kernel path, visibly so
        walk_spans = [
            s for s in observed.observability.spans if s.name == "walk"
        ]
        assert walk_spans
        assert all(s.attributes["path"] == "kernel" for s in walk_spans)

    def test_noop_handle_records_nothing(self, square20):
        msm = small_msm(square20, g=2, h=2)  # default NOOP handle
        msm.sanitize_batch(batch(20), np.random.default_rng(SEED))
        assert msm.observability is NOOP
        assert not msm.observability.enabled
        assert msm.observability.spans == []

    def test_run_report_without_obs_has_no_telemetry(self, square20):
        msm = small_msm(square20, g=2, h=2)
        report = msm.sanitize_batch_report(
            batch(20), np.random.default_rng(SEED)
        )
        assert len(report) == 20
        assert report.telemetry is None


# ----------------------------------------------------------------------
# exporters: golden files + round trips
# ----------------------------------------------------------------------
def golden_state() -> tuple[MetricsSnapshot, list]:
    """A deterministic registry + span tree (fake integer clock)."""
    reg = MetricsRegistry()
    reg.counter("repro_cache_hits_total").inc(7)
    reg.counter("repro_lp_solve_seconds_total", level=1).inc(0.125)
    reg.counter("repro_lp_solve_seconds_total", level=2).inc(0.0625)
    reg.counter(
        "repro_lp_backend_calls_total", method="highs-ds"
    ).inc(2)
    reg.gauge("repro_budget_level_epsilon", level=1).set(0.4)
    reg.gauge("repro_session_epsilon_remaining").set(1.5)
    # pathological label values: the exposition format must escape
    # backslashes, quotes and newlines, and the parser must undo it
    reg.counter(
        "repro_pathological_labels_total",
        path='C:\\data\\run "alpha"',
        note='first,\nsecond=}',
    ).inc(1)
    hist = reg.histogram("repro_sanitize_seconds", edges=LATENCY_EDGES)
    for v in (0.0005, 0.02, 0.02, 0.75, 45.0):
        hist.observe(v)

    clock = count()
    tracer = RecordingTracer(clock=lambda: float(next(clock)))
    with tracer.span("walk", n=3):
        with tracer.span("level", level=1, epsilon=0.4):
            with tracer.span("resolve", nodes=1):
                with tracer.span(
                    "resolve.node", path="", cache_hit=True, degraded=False
                ):
                    with tracer.span("cache.get"):
                        pass
            with tracer.span("locate", n=3) as sp:
                sp.attributes["drifted"] = 0
            with tracer.span("sample", n=3):
                pass
            with tracer.span("descend", n=3):
                pass
        with tracer.span("finalise", n=3, post="none"):
            pass
    return reg.snapshot(), tracer.roots


class TestExporters:
    def test_prometheus_golden_file(self):
        snapshot, _ = golden_state()
        golden = (DATA_DIR / "obs_golden.prom").read_text()
        assert to_prometheus(snapshot) == golden

    def test_prometheus_round_trip(self):
        snapshot, _ = golden_state()
        assert parse_prometheus(to_prometheus(snapshot)) == snapshot

    def test_jsonl_golden_file(self):
        snapshot, spans = golden_state()
        golden = (DATA_DIR / "obs_golden.jsonl").read_text()
        assert to_jsonl(snapshot, spans) == golden

    def test_jsonl_round_trip(self):
        snapshot, spans = golden_state()
        parsed_snapshot, parsed_spans = parse_jsonl(
            to_jsonl(snapshot, spans)
        )
        assert parsed_snapshot == snapshot
        assert parsed_spans == spans

    def test_formats_agree_on_the_same_snapshot(self):
        """Both exporters are lossless views of one snapshot."""
        snapshot, spans = golden_state()
        via_prom = parse_prometheus(to_prometheus(snapshot))
        via_jsonl, _ = parse_jsonl(to_jsonl(snapshot, spans))
        assert via_prom == via_jsonl


# ----------------------------------------------------------------------
# telemetry vs truth — the metrics must equal the engine's own accounts
# ----------------------------------------------------------------------
class TestTelemetryVersusTruth:
    def test_cache_builds_metric_equals_cache_builds(self, square20):
        obs = Observability.collecting()
        msm = small_msm(square20, g=2, h=2, obs=obs)
        msm.sanitize_batch(batch(60), np.random.default_rng(SEED))
        snap = obs.snapshot()
        assert msm.cache.builds > 0
        assert snap.counter_value("repro_cache_builds_total") == (
            msm.cache.builds
        )
        assert snap.counter_value("repro_cache_misses_total") == (
            msm.cache.misses
        )
        assert snap.counter_value("repro_cache_hits_total") == (
            msm.cache.hits
        )

    def test_lp_seconds_metric_equals_engine_account(self, square20):
        obs = Observability.collecting()
        msm = small_msm(square20, g=3, h=2, obs=obs)
        msm.sanitize_batch(batch(120), np.random.default_rng(SEED))
        snap = obs.snapshot()
        assert msm.lp_seconds > 0
        assert snap.counter_total(
            "repro_lp_solve_seconds_total"
        ) == pytest.approx(msm.lp_seconds, abs=1e-9)
        assert snap.counter_total("repro_lp_solves_total") == (
            msm.cache.builds
        )

    def test_degraded_step_metric_equals_trace_truth(self, square20):
        """Under injected faults, the degradation counters must equal a
        recount of the per-point :class:`StepTrace` provenance."""
        prior = GridPrior.uniform(RegularGrid(square20, 9))
        index = HierarchicalGrid(square20, 3, 2)
        healthy = MultiStepMechanism(index, (0.5, 0.7), prior)
        healthy.precompute()
        proxy = FlakyCacheProxy(healthy.cache, drop_paths=[(4,)])
        dead_solver = ResilientSolver(
            ResilienceConfig.starting_with("highs-ds"),
            solve_fn=FaultInjectingSolver([RaiseFault(message="outage")]),
        )
        obs = Observability.collecting()
        msm = MultiStepMechanism(
            index, (0.5, 0.7), prior,
            solver=dead_solver, cache=proxy, obs=obs,
        )
        rng = np.random.default_rng(SEED)
        points = batch(400)
        with pytest.warns(DegradedModeWarning):
            walks = msm.sanitize_batch(points, rng)
        snap = obs.snapshot()
        degraded_steps = sum(
            1 for w in walks for s in w.trace if s.degraded
        )
        degraded_walks = sum(1 for w in walks if not w.degradation.clean)
        assert degraded_steps > 0
        assert snap.counter_total(
            "repro_walk_degraded_steps_total"
        ) == degraded_steps
        assert snap.counter_value(
            "repro_walk_degraded_steps_total", level=2
        ) == degraded_steps  # only the level-2 node was dropped
        assert snap.counter_value(
            "repro_walk_degraded_walks_total"
        ) == degraded_walks
        assert snap.counter_total("repro_solver_exhausted_total") > 0

    def test_walk_report_telemetry_matches_metrics_delta(self, square20):
        obs = Observability.collecting()
        msm = small_msm(square20, g=2, h=2, obs=obs)
        # first batch warms the cache and accrues counters ...
        msm.sanitize_batch(batch(30, seed=1), np.random.default_rng(1))
        before = obs.snapshot()
        # ... the report of the second must cover only the second.
        report = msm.sanitize_batch_report(
            batch(50, seed=2), np.random.default_rng(2)
        )
        t = report.telemetry
        assert t is not None
        assert t.n_points == 50
        assert t.cache_builds == 0  # warm cache: nothing rebuilt
        assert t.cache_hits > 0
        assert t.lp_seconds == 0.0
        assert t.wall_seconds > 0
        assert t.points_per_second > 0
        delta = obs.snapshot().since(before)
        assert t.snapshot == delta
        assert delta.counter_value("repro_walk_points_total") == 50
        assert delta.counter_value("repro_walk_batches_total") == 1

    def test_steps_metric_counts_every_trace_step(self, square20):
        obs = Observability.collecting()
        msm = small_msm(square20, g=2, h=2, obs=obs)
        walks = msm.sanitize_batch(batch(80), np.random.default_rng(SEED))
        snap = obs.snapshot()
        for level in (1, 2):
            truth = sum(
                1 for w in walks for s in w.trace if s.level == level
            )
            assert snap.counter_value(
                "repro_walk_steps_total", level=level
            ) == truth
            drift_truth = sum(
                1
                for w in walks
                for s in w.trace
                if s.level == level and s.x_hat_random
            )
            assert snap.counter_value(
                "repro_walk_drifted_total", level=level
            ) == drift_truth


# ----------------------------------------------------------------------
# sharded execution: merge + attribution parity with serial runs
# ----------------------------------------------------------------------
class TestShardedAttribution:
    def _run(self, square20, executor, n=300):
        obs = Observability.collecting()
        msm = small_msm(square20, g=3, h=2, obs=obs)
        msm.executor = executor
        walks = msm.sanitize_batch(batch(n), np.random.default_rng(SEED))
        assert len(walks) == n
        return obs.snapshot(), msm

    def test_sharded_and_serial_attribution_agree(self, square20):
        serial_snap, _ = self._run(square20, SerialExecution())
        sharded_snap, msm = self._run(
            square20,
            ShardedExecution(max_workers=2, min_batch_size=0),
        )
        # the real sharded path ran — no fallback reason was recorded
        assert sharded_snap.counter_total(
            "repro_exec_serial_fallback_total"
        ) == 0
        assert sharded_snap.counter_value("repro_shards_total") > 0
        # identical per-level label sets: a sharded run attributes LP
        # time to the same levels a serial run does
        for name in (
            "repro_lp_solve_seconds_total",
            "repro_lp_solves_total",
            "repro_walk_steps_total",
        ):
            assert sharded_snap.label_values(name, "level") == (
                serial_snap.label_values(name, "level")
            )
        # merged worker registries reproduce the engine's own account
        assert sharded_snap.counter_total(
            "repro_lp_solve_seconds_total"
        ) == pytest.approx(msm.lp_seconds, abs=1e-9)
        # per-shard attribution sums to the same total
        shard_total = sum(
            sharded_snap.counter_value(
                "repro_shard_lp_seconds_total", shard=s
            )
            for s in sharded_snap.label_values(
                "repro_shard_lp_seconds_total", "shard"
            )
        )
        assert shard_total == pytest.approx(msm.lp_seconds, abs=1e-9)

    def test_cache_merge_metric_equals_cache_merges(self, square20):
        snap, msm = self._run(
            square20, ShardedExecution(max_workers=2, min_batch_size=0)
        )
        assert msm.cache.merges > 0
        assert snap.counter_value("repro_cache_merges_total") == (
            msm.cache.merges
        )
        hist = snap.histogram_value("repro_shard_points")
        assert hist is not None
        assert hist.count == snap.counter_value("repro_shards_total")

    def test_point_counts_identical_across_policies(self, square20):
        serial_snap, _ = self._run(square20, SerialExecution())
        sharded_snap, _ = self._run(
            square20, ShardedExecution(max_workers=2, min_batch_size=0)
        )
        for level in ("1", "2"):
            assert sharded_snap.counter_value(
                "repro_walk_steps_total", level=level
            ) == serial_snap.counter_value(
                "repro_walk_steps_total", level=level
            )

    @pytest.mark.parametrize(
        "executor_kwargs, points, reason",
        [
            (dict(max_workers=2, min_batch_size=2048), None, "small_batch"),
            (dict(max_workers=1, min_batch_size=0), None, "few_workers"),
            (dict(max_workers=2, min_batch_size=0), "clustered",
             "single_shard"),
        ],
    )
    def test_serial_fallback_reasons(
        self, square20, executor_kwargs, points, reason
    ):
        obs = Observability.collecting()
        msm = small_msm(square20, g=3, h=2, obs=obs)
        msm.executor = ShardedExecution(**executor_kwargs)
        if points == "clustered":  # all in one top-level child
            pts = [Point(1.0 + 0.01 * i, 1.0) for i in range(40)]
        else:
            pts = batch(40)
        walks = msm.sanitize_batch(pts, np.random.default_rng(SEED))
        assert len(walks) == len(pts)
        snap = obs.snapshot()
        assert snap.counter_value(
            "repro_exec_serial_fallback_total", reason=reason
        ) == 1
        # attribution parity: the fallback still labels LP time by level
        assert snap.label_values(
            "repro_lp_solve_seconds_total", "level"
        ) == ("1", "2")
        assert snap.counter_total(
            "repro_lp_solve_seconds_total"
        ) == pytest.approx(msm.lp_seconds, abs=1e-9)


# ----------------------------------------------------------------------
# budget gauges and session accounting
# ----------------------------------------------------------------------
class TestSessionAndBudgetMetrics:
    def test_budget_gauges_reflect_allocation(self, square20):
        obs = Observability.collecting()
        msm = small_msm(square20, g=2, h=2, obs=obs)
        snap = obs.snapshot()
        for level, eps in enumerate(msm.budgets, start=1):
            assert snap.gauge_value(
                "repro_budget_level_epsilon", level=level
            ) == eps

    def test_session_accounting(self, fine_prior):
        from repro.core.session import SanitizationSession

        session = SanitizationSession(
            lifetime_epsilon=2.0, per_report_epsilon=0.6,
            prior=fine_prior, granularity=3, metrics=True,
        )
        obs = session.observability
        assert obs.enabled
        assert obs.snapshot().gauge_value("repro_budget_rho_target") > 0
        rng = np.random.default_rng(SEED)
        session.report(Point(5.0, 5.0), rng)
        session.report(Point(6.0, 6.0), rng)
        snap = obs.snapshot()
        assert snap.counter_value("repro_session_reports_total") == 2
        assert snap.counter_value(
            "repro_session_epsilon_spent_total"
        ) == pytest.approx(1.2)
        assert snap.gauge_value(
            "repro_session_epsilon_remaining"
        ) == pytest.approx(session.remaining)
        from repro.exceptions import BudgetError

        session.report(Point(7.0, 7.0), rng)  # spends the rest
        with pytest.raises(BudgetError):
            session.report(Point(8.0, 8.0), rng)
        snap = obs.snapshot()
        assert snap.counter_value("repro_session_refusals_total") == 1
        assert snap.counter_value("repro_session_reports_total") == 3


# ----------------------------------------------------------------------
# achieved same-cell probability, read from the emitted metrics
# ----------------------------------------------------------------------
@pytest.mark.statistical
class TestAchievedRhoFromMetrics:
    def test_on_track_rate_meets_rho_at_every_level(self, square20):
        """Walk >= 20k fixed-seed samples and read the achieved
        Pr[x_hat = true cell | not drifted] off the registry; with every
        level funded at its Problem-1 requirement the rate must meet the
        configured rho at every level (small slack for sampling noise:
        the binomial std at n = 20k, p = 0.8 is ~0.3%)."""
        from repro.core.budget.allocation import (
            allocate_budget_fixed_height,
            min_epsilon_for_rho,
        )

        rho, g, side = 0.8, 3, 20.0
        epsilon = sum(
            min_epsilon_for_rho(rho, side / g**i) for i in (1, 2)
        )
        obs = Observability.collecting()
        prior = GridPrior.uniform(RegularGrid(square20, g**2))
        plan = allocate_budget_fixed_height(
            epsilon, g, side, height=2, rho=rho
        )
        msm = MultiStepMechanism.from_plan(plan, prior, obs=obs)
        assert msm.height == 2
        # every level is funded at its Problem-1 requirement
        assert all(
            b >= r * (1 - 1e-9)
            for b, r in zip(plan.budgets, plan.requirements)
        )
        n = 20_000
        msm.sanitize_batch(batch(n), np.random.default_rng(SEED))
        snap = obs.snapshot()
        assert snap.gauge_value("repro_budget_rho_target") == rho
        slack = 0.01
        for level in ("1", "2"):
            steps = snap.counter_value(
                "repro_walk_steps_total", level=level
            )
            drifted = snap.counter_value(
                "repro_walk_drifted_total", level=level
            )
            on_track = snap.counter_value(
                "repro_walk_on_track_total", level=level
            )
            assert steps == n
            achieved = on_track / (steps - drifted)
            assert achieved >= rho - slack, (
                f"level {level}: achieved Pr[x|x] {achieved:.4f} "
                f"< rho {rho}"
            )


# ----------------------------------------------------------------------
# worker-pool metrics: the merge algebra over a real 3-worker run
# ----------------------------------------------------------------------
class TestPoolSnapshotMerge:
    def test_three_worker_snapshots_fold_order_free(
        self, square20, tmp_path
    ):
        """Run a real 3-worker pool, pull each worker's registry
        snapshot over the pipe, and verify the merge algebra on live
        data: any fold order gives identical totals, and the folded
        counters equal the pool's ground truth."""
        from repro.core.msm import MultiStepMechanism
        from repro.serve import MechanismArena, ServerConfig, ServingPool

        index = HierarchicalGrid(square20, 2, 2)
        prior = GridPrior.uniform(RegularGrid(square20, 4))
        msm = MultiStepMechanism(index, (0.6, 0.9), prior)
        msm.precompute()
        arena = MechanismArena.freeze(
            msm.engine.compile(build=True), tmp_path / "arena"
        )
        config = ServerConfig(
            lifetime_epsilon=1000.0,
            per_report_epsilon=1.5,
            coalesce_window=0.005,
        )
        obs = Observability.collecting(trace=False)
        n = 90
        pool = ServingPool(arena, config, workers=3, obs=obs, seed=SEED)
        with pool:
            handles = [
                pool.submit(f"user-{i % 18}", Point(3.0, 3.0))
                for i in range(n)
            ]
            for handle in handles:
                handle.future.result(timeout=60)
            snapshots = pool.worker_snapshots()

        assert len(snapshots) == 3
        assert all(s is not None for s in snapshots)
        # every worker served (Zipf-free round-robin users hit all 3)
        assert all(
            s.counter_total("repro_pool_worker_points_total") > 0
            for s in snapshots
        )

        a, b, c = snapshots
        left = a.merge(b).merge(c)
        right = c.merge(b).merge(a)
        nested = a.merge(b.merge(c))
        assert left == right == nested

        # the folded totals are the pool's ground truth
        assert left.counter_total("repro_pool_worker_points_total") == n
        assert (
            left.counter_total("repro_pool_worker_batches_total")
            == sum(s.batches for s in pool.shard_stats())
        )
        hist = left.histogram_value("repro_pool_worker_batch_points")
        assert hist is not None and hist.count == sum(
            s.batches for s in pool.shard_stats()
        )

        # folding into a live frontend registry matches the pure merge
        reg = MetricsRegistry()
        for snapshot in snapshots:
            reg.merge(snapshot)
        assert reg.snapshot() == left

    def test_pool_server_stats_merge_matches_metrics_algebra(
        self, square20, tmp_path
    ):
        """ServerStats.merge is the same algebra: associative,
        commutative, counters add, high-water marks take max."""
        from repro.serve import ServerStats

        def stats(completed, batches, high):
            s = ServerStats()
            s.completed = completed
            s.batches = batches
            s.max_batch_points = high
            return s

        a, b, c = stats(3, 1, 7), stats(5, 2, 12), stats(2, 1, 4)
        left = a.merge(b).merge(c)
        right = c.merge(a).merge(b)
        nested = a.merge(b.merge(c))
        for merged in (right, nested):
            assert merged.as_dict() == left.as_dict()
        assert left.completed == 10
        assert left.batches == 4
        assert left.max_batch_points == 12
