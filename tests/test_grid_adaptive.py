"""Unit tests for the adaptive indexes (quadtree, k-d split tree)."""

import numpy as np
import pytest

from repro.exceptions import GridError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.grid.kdtree import KDTreeIndex
from repro.grid.quadtree import QuadtreeIndex


def clustered_points(n: int, seed: int = 0) -> list[Point]:
    """Points heavily clustered in the lower-left quadrant of [0,20]^2."""
    rng = np.random.default_rng(seed)
    cluster = rng.normal([4, 4], 1.0, size=(int(n * 0.8), 2))
    noise = rng.uniform(0, 20, size=(n - cluster.shape[0], 2))
    xy = np.clip(np.vstack([cluster, noise]), 0, 20)
    return [Point(float(x), float(y)) for x, y in xy]


@pytest.fixture
def domain() -> BoundingBox:
    return BoundingBox(0, 0, 20, 20)


class TestQuadtree:
    def test_parameter_validation(self, domain):
        with pytest.raises(GridError):
            QuadtreeIndex(domain, [], capacity=0)
        with pytest.raises(GridError):
            QuadtreeIndex(domain, [], max_depth=0)

    def test_no_points_means_no_split(self, domain):
        tree = QuadtreeIndex(domain, [], capacity=4, max_depth=3)
        assert tree.is_leaf(tree.root)
        assert tree.node_count() == 1

    def test_splits_where_data_is_dense(self, domain):
        pts = clustered_points(800)
        tree = QuadtreeIndex(domain, pts, capacity=50, max_depth=4)
        # Lower-left subtree must be deeper than upper-right.
        kids = tree.children(tree.root)
        ll, ur = kids[0], kids[3]

        def depth(node):
            ch = tree.children(node)
            return 0 if not ch else 1 + max(depth(k) for k in ch)

        assert depth(ll) > depth(ur)

    def test_children_partition_parent(self, domain):
        tree = QuadtreeIndex(domain, clustered_points(300), capacity=30)
        kids = tree.children(tree.root)
        assert len(kids) == 4
        assert sum(k.bounds.area for k in kids) == pytest.approx(
            domain.area
        )

    def test_max_depth_respected(self, domain):
        tree = QuadtreeIndex(
            domain, clustered_points(2000), capacity=1, max_depth=3
        )
        assert tree.max_height() <= 3

    def test_locate_child(self, domain):
        tree = QuadtreeIndex(domain, clustered_points(300), capacity=30)
        p = Point(3, 3)
        child = tree.locate_child(tree.root, p)
        assert child is not None and child.bounds.contains(p)
        assert tree.locate_child(tree.root, Point(25, 3)) is None

    def test_out_of_bounds_points_ignored(self, domain):
        pts = [Point(-5, -5)] * 100
        tree = QuadtreeIndex(domain, pts, capacity=4)
        assert tree.node_count() == 1


class TestKDTree:
    def test_parameter_validation(self, domain):
        with pytest.raises(GridError):
            KDTreeIndex(domain, [], max_depth=0)

    def test_complete_tree_when_always_split(self, domain):
        tree = KDTreeIndex(domain, [], max_depth=3, always_split=True)
        assert tree.max_height() == 3
        assert len(tree.leaves()) == 8

    def test_no_split_below_min_points(self, domain):
        tree = KDTreeIndex(
            domain, clustered_points(8), max_depth=4, min_points=100,
            always_split=False,
        )
        assert tree.node_count() == 1

    def test_children_partition_parent(self, domain):
        tree = KDTreeIndex(domain, clustered_points(500), max_depth=4)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            kids = tree.children(node)
            if not kids:
                continue
            assert len(kids) == 2
            assert sum(k.bounds.area for k in kids) == pytest.approx(
                node.bounds.area
            )
            stack.extend(kids)

    def test_median_split_tracks_density(self, domain):
        tree = KDTreeIndex(domain, clustered_points(800), max_depth=1)
        left, right = tree.children(tree.root)
        # 80% of mass near x=4: the first x-split lands left of centre,
        # but the sliver clamp keeps at least 20% width.
        assert 4.0 <= left.bounds.max_x <= 10.0

    def test_sliver_clamp(self, domain):
        # All points at the same x: the split must still leave both
        # children at least 20% of the parent width.
        pts = [Point(0.5, float(y)) for y in range(20)]
        tree = KDTreeIndex(domain, pts, max_depth=1)
        left, right = tree.children(tree.root)
        assert left.bounds.width >= 0.2 * domain.width - 1e-9
        assert right.bounds.width >= 0.2 * domain.width - 1e-9

    def test_locate_child_default_scan(self, domain):
        tree = KDTreeIndex(domain, clustered_points(200), max_depth=2)
        p = Point(12, 7)
        node = tree.root
        while not tree.is_leaf(node):
            node = tree.locate_child(node, p)
            assert node is not None
        assert node.bounds.contains(p)
