"""Tests for the location-based-service simulation."""

import numpy as np
import pytest

from repro.exceptions import DatasetError, EvaluationError
from repro.geo.point import Point
from repro.grid.regular import RegularGrid
from repro.lbs import (
    LocationBasedService,
    POI,
    POIStore,
    required_radius_expansion,
)
from repro.mechanisms.planar_laplace import PlanarLaplaceMechanism


@pytest.fixture
def store() -> POIStore:
    coords = np.array([
        [1.0, 1.0], [2.0, 2.0], [3.0, 3.0], [10.0, 10.0], [10.5, 10.0],
    ])
    return POIStore.from_coordinates(coords, category="bar")


class TestPOIStore:
    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            POIStore([])

    def test_from_coordinates(self, store):
        assert len(store) == 5
        assert store[0].category == "bar"
        assert store[0].location == Point(1.0, 1.0)

    def test_bounds(self, store):
        b = store.bounds()
        assert (b.min_x, b.min_y) == (1.0, 1.0)
        assert (b.max_x, b.max_y) == (10.5, 10.0)

    def test_knn_order(self, store):
        result = store.knn(Point(0, 0), 3)
        assert [p.poi_id for p in result] == [0, 1, 2]

    def test_knn_k_capped_at_catalogue(self, store):
        assert len(store.knn(Point(0, 0), 50)) == 5

    def test_knn_validation(self, store):
        with pytest.raises(DatasetError):
            store.knn(Point(0, 0), 0)

    def test_knn_matches_brute_force(self, rng):
        coords = rng.uniform(0, 20, size=(200, 2))
        store = POIStore.from_coordinates(coords)
        q = Point(7.3, 12.1)
        result = [p.poi_id for p in store.knn(q, 10)]
        d = np.hypot(coords[:, 0] - q.x, coords[:, 1] - q.y)
        expected = list(np.argsort(d)[:10])
        assert result == expected

    def test_within_radius(self, store):
        result = store.within_radius(Point(1, 1), 1.5)
        assert [p.poi_id for p in result] == [0, 1]
        with pytest.raises(DatasetError):
            store.within_radius(Point(1, 1), 0)


class TestService:
    def test_truthful_query_has_no_loss(self, store):
        service = LocationBasedService(store)
        outcome = service.evaluate_query(Point(0, 0), Point(0, 0), k=2)
        assert outcome.extra_distance == 0.0
        assert outcome.recall_at_k == 1.0

    def test_displaced_query_pays(self, store):
        service = LocationBasedService(store)
        # User near poi 0, reported near poi 3/4 cluster.
        outcome = service.evaluate_query(Point(1, 1), Point(10, 10), k=2)
        assert outcome.extra_distance > 5.0
        assert outcome.recall_at_k == 0.0

    def test_recall_denominator_is_truth_size_not_k(self, store):
        # k exceeds the catalogue: both queries return all five POIs, so
        # the answer is complete and recall must be 1.0 — dividing by k
        # would wrongly report 5/50.
        service = LocationBasedService(store)
        outcome = service.evaluate_query(Point(1, 1), Point(10, 10), k=50)
        assert outcome.recall_at_k == 1.0

    def test_recall_partial_overlap(self, store):
        # truth at (1,1) with k=3 is {0, 1, 2}; the displaced query
        # answers {3, 4, 2} — one of three true results survives.
        service = LocationBasedService(store)
        outcome = service.evaluate_query(Point(1, 1), Point(10, 10), k=3)
        assert outcome.recall_at_k == pytest.approx(1 / 3)

    def test_evaluate_mechanism_report(self, store, square20, rng):
        service = LocationBasedService(store)
        grid = RegularGrid(square20, 8)
        pl = PlanarLaplaceMechanism(1.0, grid=grid)
        requests = [Point(1, 1), Point(2, 2), Point(10, 10)]
        report = service.evaluate_mechanism(pl, requests, rng, k=2)
        assert report.n_queries == 3
        assert report.k == 2
        assert report.mean_extra_distance >= 0
        assert 0 <= report.mean_recall_at_k <= 1

    def test_evaluate_mechanism_validation(self, store, rng):
        service = LocationBasedService(store)
        pl = PlanarLaplaceMechanism(1.0)
        with pytest.raises(EvaluationError):
            service.evaluate_mechanism(pl, [], rng)
        with pytest.raises(EvaluationError):
            service.evaluate_mechanism(pl, [Point(1, 1)], rng, k=0)

    def test_tighter_privacy_costs_more_qos(self, store, square20, rng):
        service = LocationBasedService(store)
        grid = RegularGrid(square20, 8)
        requests = [Point(1.2, 1.1)] * 150
        strict = service.evaluate_mechanism(
            PlanarLaplaceMechanism(0.2, grid=grid), requests, rng, k=2
        )
        loose = service.evaluate_mechanism(
            PlanarLaplaceMechanism(3.0, grid=grid), requests, rng, k=2
        )
        assert loose.mean_extra_distance <= strict.mean_extra_distance


class TestRadiusExpansion:
    def test_no_displacement_no_expansion(self):
        assert required_radius_expansion(Point(1, 1), Point(1, 1), 2.0) == 1.0

    def test_expansion_formula(self):
        factor = required_radius_expansion(Point(0, 0), Point(3, 4), 5.0)
        assert factor == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(EvaluationError):
            required_radius_expansion(Point(0, 0), Point(1, 1), 0.0)
