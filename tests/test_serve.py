"""Concurrency suite for the serving stack: bounded cache, persistent
store, and the coalescing front-end.

Three layers, three contracts:

* :class:`NodeMechanismCache` under contention — parallel get-or-build
  races build each node exactly once (single-flight), eviction under
  concurrent access never serves a torn or invalid entry, and the
  resident footprint respects the byte budget at all times;
* :class:`MechanismStore` — a second engine with the same configuration
  warm-starts with **zero** LP solves, configuration drift lands on a
  different fingerprint, and a stale file under the right name is
  rejected rather than served;
* :class:`SanitizationServer` — concurrent users get exactly the
  reports their lifetime budgets afford (reservations close the racing
  overdraft), requests coalesce into micro-batches, overload sheds, and
  a chi-square check (under the ``statistical`` marker) confirms the
  batched server path is distribution-identical to direct
  ``sanitize_batch``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.cache import NodeMechanismCache
from repro.core.msm import MultiStepMechanism
from repro.core.store import MechanismStore, config_fingerprint
from repro.exceptions import BudgetError, MechanismError, ServeError
from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.regular import RegularGrid
from repro.mechanisms.matrix import MechanismMatrix
from repro.priors.base import GridPrior
from repro.serve import SanitizationServer, ServerConfig

SEED = 20190326


def _toy_matrix(n: int = 4, seed: int = 0) -> MechanismMatrix:
    rng = np.random.default_rng(seed)
    k = rng.random((n, n)) + 0.1
    k /= k.sum(axis=1, keepdims=True)
    pts = [Point(float(i), 0.0) for i in range(n)]
    return MechanismMatrix(pts, pts, k)


# ----------------------------------------------------------------------
# cache: bounded memory + thread safety
# ----------------------------------------------------------------------
class TestCacheEviction:
    def test_lru_eviction_respects_budget(self):
        m = _toy_matrix()
        cache = NodeMechanismCache(max_bytes=2 * m.k.nbytes)
        cache.put((0,), m)
        cache.put((1,), m)
        cache.put((2,), m)  # evicts (0,), the least recently used
        assert (0,) not in cache
        assert (1,) in cache and (2,) in cache
        assert cache.evictions == 1
        assert cache.evicted_bytes == m.k.nbytes
        assert cache.resident_bytes <= cache.max_bytes

    def test_hit_refreshes_recency(self):
        m = _toy_matrix()
        cache = NodeMechanismCache(max_bytes=2 * m.k.nbytes)
        cache.put((0,), m)
        cache.put((1,), m)
        cache.entry((0,))  # (0,) is now most recent; (1,) becomes LRU
        cache.put((2,), m)
        assert (0,) in cache and (1,) not in cache

    def test_oversized_entry_still_serves(self):
        """A single matrix above the budget is kept (cache of one)."""
        m = _toy_matrix(8)
        cache = NodeMechanismCache(max_bytes=m.k.nbytes // 2)
        cache.put((0,), m)
        assert (0,) in cache
        cache.put((1,), m)  # evicts (0,) but keeps the newcomer
        assert (1,) in cache and (0,) not in cache
        assert len(cache) == 1

    def test_shrinking_budget_evicts_immediately(self):
        m = _toy_matrix()
        cache = NodeMechanismCache()
        for i in range(6):
            cache.put((i,), m)
        cache.max_bytes = 2 * m.k.nbytes
        assert len(cache) == 2
        assert cache.resident_bytes <= cache.max_bytes
        with pytest.raises(ValueError):
            cache.max_bytes = 0

    def test_unbounded_cache_never_evicts(self):
        m = _toy_matrix()
        cache = NodeMechanismCache()
        for i in range(50):
            cache.put((i,), m)
        assert len(cache) == 50
        assert cache.evictions == 0


class TestCacheConcurrency:
    def test_parallel_get_or_build_single_flight(self):
        """Many threads racing on the same paths: each node is built
        exactly once and everyone adopts the winner's entry."""
        cache = NodeMechanismCache()
        paths = [(i,) for i in range(6)]
        build_calls: dict[tuple[int, ...], int] = {p: 0 for p in paths}
        call_lock = threading.Lock()
        barrier = threading.Barrier(8)

        def build(path):
            with call_lock:
                build_calls[path] += 1
            return _toy_matrix(seed=path[0]), {"level": 1}

        def worker():
            barrier.wait()  # maximise the race window
            return cache.get_or_build_many(paths, build)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = [pool.submit(worker).result for _ in range(8)]
            results = [r() for r in results]

        assert all(set(r) == set(paths) for r in results)
        assert all(calls == 1 for calls in build_calls.values())
        assert cache.builds == len(paths)
        # every thread got the same (immutable) entry per path
        for path in paths:
            entries = {id(r[path]) for r in results}
            assert len(entries) == 1

    def test_eviction_under_concurrent_access_never_torn(self):
        """Readers racing writers on a tightly bounded cache observe
        either nothing or a complete entry — never a torn one — and the
        byte budget holds at every observation point."""
        m = _toy_matrix()
        cache = NodeMechanismCache(max_bytes=3 * m.k.nbytes)
        n_paths, n_ops = 12, 300
        errors: list[str] = []

        def writer(seed):
            rng = np.random.default_rng(seed)
            for _ in range(n_ops):
                path = (int(rng.integers(n_paths)),)
                cache.put(path, _toy_matrix(seed=path[0]), level=1)
                if cache.resident_bytes > cache.max_bytes:
                    errors.append("budget exceeded")

        def reader(seed):
            rng = np.random.default_rng(seed)
            for _ in range(n_ops):
                path = (int(rng.integers(n_paths)),)
                entry = cache.entry(path)
                if entry is None:
                    continue
                k = entry.matrix.k
                if not np.allclose(k.sum(axis=1), 1.0):
                    errors.append(f"torn entry at {path}")
                if entry.size_bytes != k.nbytes:
                    errors.append(f"bad size accounting at {path}")

        threads = [
            threading.Thread(target=writer, args=(s,)) for s in range(3)
        ] + [
            threading.Thread(target=reader, args=(s,)) for s in range(3, 7)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert cache.resident_bytes <= cache.max_bytes
        assert cache.evictions > 0  # the budget actually bit

    def test_counters_consistent_after_race(self):
        """hits + misses == lookups even under contention."""
        cache = NodeMechanismCache()
        paths = [(i,) for i in range(4)]

        def build(path):
            return _toy_matrix(seed=path[0]), {}

        def worker():
            for _ in range(50):
                cache.get_or_build_many(paths, build)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.hits + cache.misses == 4 * 50 * len(paths)
        assert cache.builds == len(paths)


# ----------------------------------------------------------------------
# persistent store
# ----------------------------------------------------------------------
@pytest.fixture
def store_prior(square20) -> GridPrior:
    return GridPrior.uniform(RegularGrid(square20, 4))


def _store_msm(square20, prior, budgets=(0.5, 0.6)) -> MultiStepMechanism:
    index = HierarchicalGrid(square20, 2, 2)
    return MultiStepMechanism(index, budgets, prior)


class TestMechanismStore:
    def test_build_then_warm_start_zero_solves(
        self, tmp_path, square20, store_prior, rng
    ):
        store = MechanismStore(tmp_path / "store")
        first = _store_msm(square20, store_prior)
        record = store.get_or_build(first)
        assert record.outcome == "built"
        assert first.cache.builds > 0
        assert store.path_for(first).exists()

        second = _store_msm(square20, store_prior)
        record = store.get_or_build(second)
        assert record.outcome == "hit"
        assert record.adopted == len(second.cache)
        assert second.cache.builds == 0
        # the warm engine serves without a single further LP solve
        second.sanitize_batch(
            [Point(3.0, 3.0), Point(17.0, 12.0)], rng
        )
        assert second.cache.builds == 0
        sources = {
            e.source for e in second.cache.snapshot().values()
        }
        assert sources == {"store"}

    def test_bounded_cache_engine_persists_complete_bundle(
        self, tmp_path, square20, store_prior
    ):
        """Regression: an engine whose LRU cache cannot hold the full
        tree must still persist every node.  Eviction of the root
        between precompute and the save traversal used to truncate the
        bundle to zero nodes (the skipped node's subtree was never
        visited), silently defeating warm-start."""
        store = MechanismStore(tmp_path / "store")
        index = HierarchicalGrid(square20, 2, 2)
        tight = MultiStepMechanism(
            index,
            (0.5, 0.6),
            store_prior,
            cache=NodeMechanismCache(max_bytes=300),
        )
        record = store.get_or_build(tight)
        assert record.outcome == "built"
        assert tight.cache.evictions > 0  # the bound actually bit

        fresh = _store_msm(square20, store_prior)
        record = store.get_or_build(fresh)
        assert record.outcome == "hit"
        assert record.adopted == 5  # root + 4 level-1 nodes: complete
        assert fresh.cache.builds == 0

    def test_fingerprint_sensitive_to_config(self, square20, store_prior):
        a = _store_msm(square20, store_prior, budgets=(0.5, 0.6))
        b = _store_msm(square20, store_prior, budgets=(0.5, 0.7))
        assert config_fingerprint(a) != config_fingerprint(b)
        other_prior = GridPrior.uniform(RegularGrid(square20, 8))
        c = _store_msm(square20, other_prior)
        assert config_fingerprint(a) != config_fingerprint(c)
        assert config_fingerprint(a) == config_fingerprint(
            _store_msm(square20, store_prior)
        )

    def test_stale_entry_rejected_not_served(
        self, tmp_path, square20, store_prior
    ):
        """A file under the right fingerprint but wrong content (renamed
        or tampered) raises instead of silently serving."""
        store = MechanismStore(tmp_path / "store")
        a = _store_msm(square20, store_prior, budgets=(0.5, 0.6))
        store.get_or_build(a)
        b = _store_msm(square20, store_prior, budgets=(0.5, 0.7))
        # simulate an operator renaming a's bundle onto b's key
        store.path_for(a).rename(store.path_for(b))
        with pytest.raises(MechanismError, match="epsilon split"):
            store.warm_start(b)

    def test_concurrent_get_or_build_builds_once(
        self, tmp_path, square20, store_prior
    ):
        store = MechanismStore(tmp_path / "store")
        mechanisms = [
            _store_msm(square20, store_prior) for _ in range(4)
        ]
        with ThreadPoolExecutor(max_workers=4) as pool:
            records = list(pool.map(store.get_or_build, mechanisms))
        outcomes = sorted(r.outcome for r in records)
        assert outcomes == ["built", "hit", "hit", "hit"]
        assert len(store.entries()) == 1
        assert sum(m.cache.builds for m in mechanisms) == len(
            mechanisms[0].cache
        )

    def test_miss_returns_none(self, tmp_path, square20, store_prior):
        store = MechanismStore(tmp_path / "store")
        msm = _store_msm(square20, store_prior)
        assert store.warm_start(msm) is None
        assert msm not in store

    def test_racing_saves_on_cold_fingerprint_leave_valid_bundle(
        self, tmp_path, square20, store_prior
    ):
        """Two threads racing get_or_build on the *same* cold
        fingerprint through the save path: whatever interleaving wins,
        the published bundle (and its checksum sidecar) must be
        complete and warm-startable — no torn file, no stale sidecar."""
        store = MechanismStore(tmp_path / "store")
        barrier = threading.Barrier(2)
        outcomes: list[str] = []
        lock = threading.Lock()

        def racer():
            msm = _store_msm(square20, store_prior)
            barrier.wait()  # maximise overlap on the cold slot
            record = store.get_or_build(msm)
            with lock:
                outcomes.append(record.outcome)

        threads = [threading.Thread(target=racer) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(outcomes) == ["built", "hit"]
        assert len(store.entries()) == 1

        # the surviving bundle verifies end to end: checksum matches
        # and a fresh engine adopts every node without a solve
        fresh = _store_msm(square20, store_prior)
        record = store.get_or_build(fresh)
        assert record.outcome == "hit"
        assert fresh.cache.builds == 0
        sidecar = store.checksum_path(record.path)
        assert sidecar.exists()
        assert not (store.root / ".quarantine").exists()


# ----------------------------------------------------------------------
# serving front-end
# ----------------------------------------------------------------------
@pytest.fixture
def serve_prior(square20) -> GridPrior:
    return GridPrior.uniform(RegularGrid(square20, 4))


def _server(
    serve_prior,
    lifetime=4.0,
    per_report=1.0,
    window=0.01,
    max_batch=256,
    max_pending=10_000,
    seed=SEED,
) -> SanitizationServer:
    config = ServerConfig(
        lifetime_epsilon=lifetime,
        per_report_epsilon=per_report,
        coalesce_window=window,
        max_batch=max_batch,
        max_pending=max_pending,
    )
    return SanitizationServer.build(
        serve_prior, config, granularity=2, seed=seed
    )


class TestServerAdmission:
    def test_concurrent_users_get_exact_budget(self, serve_prior):
        """8 users x 6 racing requests against a 4-report lifetime:
        exactly 4 succeed per user, the rest fail as BudgetError."""
        completed: dict[str, int] = {}
        refused: dict[str, int] = {}
        lock = threading.Lock()

        with _server(serve_prior) as server:
            def client(uid):
                rng = np.random.default_rng(abs(hash(uid)) % 2**32)
                for _ in range(6):
                    x = Point(
                        float(rng.uniform(0, 20)), float(rng.uniform(0, 20))
                    )
                    try:
                        server.report(uid, x)
                        with lock:
                            completed[uid] = completed.get(uid, 0) + 1
                    except BudgetError:
                        with lock:
                            refused[uid] = refused.get(uid, 0) + 1

            threads = [
                threading.Thread(target=client, args=(f"u{i}",))
                for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert all(completed[f"u{i}"] == 4 for i in range(8))
        assert all(refused[f"u{i}"] == 2 for i in range(8))
        for session in server.sessions().values():
            assert session.reports_remaining == 0
            assert len(session.history) == 4

    def test_requests_coalesce_into_one_batch(self, serve_prior):
        """Submissions landing inside the window walk as one batch."""
        server = _server(serve_prior, lifetime=100.0, window=0.25)
        with server:
            pending = [
                server.submit("u", Point(5.0 + i * 0.1, 5.0))
                for i in range(10)
            ]
            for request in pending:
                assert request.done.wait(30)
                assert request.error is None
        assert server.stats.batches == 1
        assert server.stats.coalesced == 9
        assert server.stats.max_batch_points == 10

    def test_overload_sheds(self, serve_prior):
        server = _server(serve_prior, max_pending=0)
        with server:
            with pytest.raises(ServeError, match="shedding"):
                server.submit("u", Point(5.0, 5.0))
        assert server.stats.rejected_overload == 1

    def test_out_of_domain_rejected(self, serve_prior):
        with _server(serve_prior) as server:
            with pytest.raises(ServeError, match="outside the served"):
                server.report("u", Point(25.0, 5.0))
        assert server.stats.rejected_domain == 1

    def test_stopped_server_refuses(self, serve_prior):
        server = _server(serve_prior)
        with pytest.raises(ServeError, match="not running"):
            server.report("u", Point(5.0, 5.0))
        server.start()
        server.report("u", Point(5.0, 5.0))
        server.stop()
        with pytest.raises(ServeError, match="not running"):
            server.report("u", Point(5.0, 5.0))

    def test_server_reports_record_into_sessions(self, serve_prior):
        with _server(serve_prior) as server:
            r1 = server.report("u", Point(5.0, 5.0))
            r2 = server.report("u", Point(6.0, 6.0))
        assert (r1.sequence, r2.sequence) == (0, 1)
        session = server.sessions()["u"]
        assert session.spent == pytest.approx(2.0)
        assert [r.reported for r in session.history] == [
            r1.reported, r2.reported,
        ]

    def test_concurrent_stop_vs_submit_never_hangs(self, serve_prior):
        """Threads hammering submit() while stop() lands in the middle:
        every accepted request must resolve — completed, or failed
        closed with a ServeError — and none may hang on ``done.wait``.

        Guards the enqueue-under-lock invariant: a request slipping
        into the queue after stop()'s drain would wait forever."""
        server = _server(serve_prior, lifetime=1000.0, window=0.001)
        accepted: list = []
        lock = threading.Lock()
        start_gate = threading.Event()

        def submitter(seed):
            rng = np.random.default_rng(seed)
            start_gate.wait()
            for i in range(100):
                try:
                    r = server.submit(
                        f"u{seed}",
                        Point(float(rng.uniform(0, 20)),
                              float(rng.uniform(0, 20))),
                    )
                except ServeError:
                    continue  # refused at admission: fine, fail closed
                with lock:
                    accepted.append(r)

        server.start()
        threads = [
            threading.Thread(target=submitter, args=(s,))
            for s in range(4)
        ]
        for t in threads:
            t.start()
        start_gate.set()
        time.sleep(0.005)  # let submissions overlap the stop
        server.stop()
        for t in threads:
            t.join()

        assert accepted, "race never materialised"
        for request in accepted:
            assert request.done.wait(10), "request hung after stop()"
            assert (request.report is not None) ^ (
                request.error is not None
            )
            if request.error is not None:
                assert isinstance(request.error, ServeError)

    def test_stop_during_coalesce_window_fails_pending(self, serve_prior):
        """stop() landing while requests sit in the coalescing window:
        they fail closed (or complete if already gathered), promptly."""
        server = _server(serve_prior, lifetime=100.0, window=5.0)
        server.start()
        pending = [
            server.submit("u", Point(5.0 + i * 0.1, 5.0))
            for i in range(5)
        ]
        server.stop()  # well inside the 5 s window
        for request in pending:
            assert request.done.wait(10)
            if request.error is not None:
                assert isinstance(request.error, ServeError)

    def test_restart_after_stop_serves_again(self, serve_prior):
        """A stop immediately after submit may leave the dispatcher
        exiting via the batch path; the consumed sentinel must never
        linger to kill the *next* dispatcher."""
        server = _server(serve_prior, lifetime=100.0)
        for _ in range(3):
            server.start()
            server.submit("u", Point(5.0, 5.0))
            server.stop()
        server.start()
        report = server.report("u", Point(5.0, 5.0), timeout=30)
        server.stop()
        assert report is not None

    def test_shared_mechanism_epsilon_must_fit(self, serve_prior):
        """A session must refuse a shared mechanism spending more than
        its per-report budget."""
        from repro.core.session import SanitizationSession

        server = _server(serve_prior, per_report=1.0, lifetime=10.0)
        with pytest.raises(BudgetError, match="more than the session"):
            SanitizationSession(
                lifetime_epsilon=10.0,
                per_report_epsilon=0.5,
                mechanism=server.mechanism,
            )


@pytest.mark.statistical
class TestServerDistributionEquivalence:
    def test_server_matches_direct_batch_chi_square(self, serve_prior):
        """The coalesced server path and direct ``sanitize_batch`` are
        the same mechanism: two-sample chi-square over reported leaf
        cells must not reject at alpha = 1%."""
        from scipy import stats

        n = 1500
        x = Point(3.0, 3.0)
        server = _server(
            serve_prior,
            lifetime=float(n + 1),
            per_report=1.0,
            window=0.05,
            seed=SEED,
        )
        with server:
            with ThreadPoolExecutor(max_workers=8) as pool:
                reports = list(
                    pool.map(
                        lambda _: server.report("u", x, timeout=120),
                        range(n),
                    )
                )
        msm = server.mechanism
        leaf_grid = msm.index.level_grid(msm.height)
        served = np.zeros(leaf_grid.n_cells)
        for r in reports:
            served[leaf_grid.locate(r.reported).index] += 1

        direct_walks = msm.sanitize_batch(
            [x] * n, np.random.default_rng(SEED + 1)
        )
        direct = np.zeros(leaf_grid.n_cells)
        for w in direct_walks:
            direct[leaf_grid.locate(w.point).index] += 1

        keep = (served + direct) > 0
        table = np.vstack([served[keep], direct[keep]])
        _, p_value, _, _ = stats.chi2_contingency(table)
        assert p_value > 0.01, (
            f"server vs direct distributions diverge (p={p_value:.4f})"
        )


@pytest.mark.statistical
class TestPoolDistributionEquivalence:
    def test_pool_matches_direct_batch_chi_square(
        self, serve_prior, tmp_path
    ):
        """The multi-worker pool is the same mechanism: >= 20k samples
        across 4 worker processes (each with its own RNG stream,
        walking the shared zero-copy arena) against direct
        ``sanitize_batch``, two-sample chi-square at alpha = 1%.

        Process parallelism, micro-batching, and the mmap'd arena are
        all scheduling/storage concerns — none may perturb the sampled
        distribution."""
        from scipy import stats

        from repro.serve import MechanismArena, ServingPool

        n = 20_000
        n_users = 40
        x = Point(3.0, 3.0)
        msm = MultiStepMechanism.build(1.0, 2, serve_prior)
        msm.precompute()
        compiled = msm.engine.compile(build=True)
        arena = MechanismArena.freeze(compiled, tmp_path / "arena")
        config = ServerConfig(
            lifetime_epsilon=float(n + 1),
            per_report_epsilon=1.0,
            coalesce_window=0.02,
            max_batch=512,
            max_pending=2 * n,
        )
        pool = ServingPool(arena, config, workers=4, seed=SEED)
        with pool:
            handles = [
                pool.submit(f"user-{i % n_users}", x) for i in range(n)
            ]
            reports = [h.future.result(timeout=300) for h in handles]
        assert pool.stats().completed == n
        # all four workers actually sampled (no degenerate routing)
        assert all(s.batches > 0 for s in pool.shard_stats())

        leaf_grid = msm.index.level_grid(msm.height)
        pooled = np.zeros(leaf_grid.n_cells)
        for r in reports:
            pooled[leaf_grid.locate(r.reported).index] += 1

        direct_walks = msm.sanitize_batch(
            [x] * n, np.random.default_rng(SEED + 1)
        )
        direct = np.zeros(leaf_grid.n_cells)
        for w in direct_walks:
            direct[leaf_grid.locate(w.point).index] += 1

        keep = (pooled + direct) > 0
        table = np.vstack([pooled[keep], direct[keep]])
        _, p_value, _, _ = stats.chi2_contingency(table)
        assert p_value > 0.01, (
            f"pool vs direct distributions diverge (p={p_value:.4f})"
        )
