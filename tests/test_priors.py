"""Unit tests for repro.priors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PriorError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.regular import RegularGrid
from repro.priors import (
    GridPrior,
    aggregate_mass,
    aggregate_prior,
    empirical_prior,
    expected_distance_to_center,
    restrict_prior,
)


@pytest.fixture
def grid4(square20) -> RegularGrid:
    return RegularGrid(square20, 4)


class TestGridPrior:
    def test_normalisation(self, grid4):
        prior = GridPrior(grid4, np.arange(16, dtype=float))
        assert prior.probabilities.sum() == pytest.approx(1.0)

    def test_shape_validation(self, grid4):
        with pytest.raises(PriorError):
            GridPrior(grid4, np.ones(7))

    def test_negative_mass_rejected(self, grid4):
        probs = np.ones(16)
        probs[3] = -0.1
        with pytest.raises(PriorError):
            GridPrior(grid4, probs)

    def test_zero_mass_rejected(self, grid4):
        with pytest.raises(PriorError):
            GridPrior(grid4, np.zeros(16))

    def test_nan_rejected(self, grid4):
        probs = np.ones(16)
        probs[0] = np.nan
        with pytest.raises(PriorError):
            GridPrior(grid4, probs)

    def test_probabilities_read_only(self, grid4):
        prior = GridPrior.uniform(grid4)
        with pytest.raises(ValueError):
            prior.probabilities[0] = 0.5

    def test_uniform(self, grid4):
        prior = GridPrior.uniform(grid4)
        assert prior[0] == pytest.approx(1 / 16)
        assert prior.entropy() == pytest.approx(4.0)  # log2(16)

    def test_from_counts_with_smoothing(self, grid4):
        counts = np.zeros(16)
        counts[5] = 10
        prior = GridPrior.from_counts(grid4, counts, smoothing=1.0)
        assert prior[5] == pytest.approx(11 / 26)
        assert prior[0] == pytest.approx(1 / 26)

    def test_from_counts_rejects_negative_smoothing(self, grid4):
        with pytest.raises(PriorError):
            GridPrior.from_counts(grid4, np.ones(16), smoothing=-1)

    def test_max_cell(self, grid4):
        counts = np.ones(16)
        counts[9] = 5
        assert GridPrior.from_counts(grid4, counts).max_cell() == 9

    def test_sample_cell_follows_distribution(self, grid4, rng):
        probs = np.zeros(16)
        probs[2] = 0.75
        probs[7] = 0.25
        prior = GridPrior(grid4, probs)
        draws = [prior.sample_cell(rng) for _ in range(2000)]
        assert set(draws) <= {2, 7}
        assert np.mean([d == 2 for d in draws]) == pytest.approx(0.75, abs=0.05)

    def test_total_variation(self, grid4):
        a = GridPrior.uniform(grid4)
        probs = np.zeros(16)
        probs[0] = 1.0
        b = GridPrior(grid4, probs)
        assert a.total_variation_distance(a) == 0.0
        assert a.total_variation_distance(b) == pytest.approx(15 / 16)

    def test_tv_requires_same_grid_size(self, grid4, square20):
        other = GridPrior.uniform(RegularGrid(square20, 3))
        with pytest.raises(PriorError):
            GridPrior.uniform(grid4).total_variation_distance(other)


class TestEmpirical:
    def test_counts_where_points_fall(self, grid4):
        pts = [Point(1, 1)] * 3 + [Point(19, 19)]
        prior = empirical_prior(grid4, pts)
        assert prior[0] == pytest.approx(0.75)
        assert prior[15] == pytest.approx(0.25)

    def test_no_points_no_smoothing_raises(self, grid4):
        with pytest.raises(PriorError):
            empirical_prior(grid4, [])

    def test_no_points_with_smoothing_is_uniform(self, grid4):
        prior = empirical_prior(grid4, [], smoothing=1.0)
        assert np.allclose(prior.probabilities, 1 / 16)


class TestAggregation:
    def test_aggregate_to_coarser_grid_preserves_mass(self, square20):
        fine = RegularGrid(square20, 8)
        coarse = RegularGrid(square20, 2)
        rng = np.random.default_rng(0)
        prior = GridPrior(fine, rng.uniform(0.1, 1.0, fine.n_cells))
        mass = aggregate_mass(prior, coarse)
        assert mass.sum() == pytest.approx(1.0)

    def test_aggregate_exact_on_nested_grids(self, square20):
        fine = RegularGrid(square20, 4)
        coarse = RegularGrid(square20, 2)
        probs = np.zeros(16)
        probs[grid_index(fine, Point(1, 1))] = 1.0
        prior = GridPrior(fine, probs)
        mass = aggregate_mass(prior, coarse)
        assert mass[0] == pytest.approx(1.0)

    def test_aggregate_prior_renormalises(self, square20):
        fine = RegularGrid(square20, 8)
        node_box = BoundingBox(0, 0, 10, 10)
        sub = RegularGrid(node_box, 2)
        prior = GridPrior.uniform(fine)
        restricted = aggregate_prior(prior, sub)
        assert restricted.probabilities.sum() == pytest.approx(1.0)
        # The quarter domain holds 16 of 64 fine cells, uniformly.
        assert np.allclose(restricted.probabilities, 0.25)

    def test_restrict_prior_zero_mass_falls_back_to_uniform(self, square20):
        fine = RegularGrid(square20, 8)
        probs = np.zeros(64)
        probs[63] = 1.0  # all mass in the far corner
        prior = GridPrior(fine, probs)
        sub = RegularGrid(BoundingBox(0, 0, 2.5, 2.5), 2)
        restricted = restrict_prior(prior, sub)
        assert np.allclose(restricted.probabilities, 0.25)

    def test_restriction_matches_hierarchy_subgrids(self, square20):
        """Aggregating a fine prior into GIHI subgrids conserves mass."""
        index = HierarchicalGrid(square20, 3, 2)
        fine = RegularGrid(square20, 9)
        rng = np.random.default_rng(1)
        prior = GridPrior(fine, rng.uniform(0.1, 1, fine.n_cells))
        total = 0.0
        for node in index.children(index.root):
            total += aggregate_mass(prior, index.subgrid(node)).sum()
        assert total == pytest.approx(1.0)

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_aggregation_idempotent_on_same_grid(self, g):
        box = BoundingBox(0, 0, 20, 20)
        grid = RegularGrid(box, g)
        rng = np.random.default_rng(g)
        prior = GridPrior(grid, rng.uniform(0.1, 1, grid.n_cells))
        again = aggregate_prior(prior, grid)
        assert np.allclose(again.probabilities, prior.probabilities)


def grid_index(grid: RegularGrid, p: Point) -> int:
    return grid.locate(p).index


class TestExpectedSnap:
    def test_matches_grid_estimate(self, grid4):
        prior = GridPrior.uniform(grid4)
        assert expected_distance_to_center(prior) == pytest.approx(
            grid4.expected_snap_distance()
        )
