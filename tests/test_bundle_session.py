"""Tests for offline bundles and sanitisation sessions."""

import numpy as np
import pytest

from repro.exceptions import BudgetError, MechanismError
from repro.geo.point import Point
from repro.grid.kdtree import KDTreeIndex
from repro.core.bundle import (
    load_bundle,
    sample_from_bundle,
    save_bundle,
)
from repro.core.msm import MultiStepMechanism
from repro.core.session import SanitizationSession


@pytest.fixture
def msm(fine_prior) -> MultiStepMechanism:
    return MultiStepMechanism.build(0.9, 3, fine_prior, rho=0.8)


class TestBundle:
    def test_roundtrip_preserves_everything(self, msm, tmp_path):
        info = save_bundle(msm, tmp_path / "austin.npz")
        assert info.n_nodes == 10  # root + 9 level-1 nodes
        assert info.size_bytes > 0
        assert info.epsilon == pytest.approx(0.9)

        restored = load_bundle(info.path)
        assert restored.budgets == pytest.approx(msm.budgets)
        assert restored.height == msm.height
        assert len(restored.cache) == 10
        # Matrices must match bit-for-bit.
        for path in [(), (0,), (4,), (8,)]:
            original = msm.cache.get(path)
            again = restored.cache.get(path)
            assert np.array_equal(original.k, again.k)

    def test_restored_mechanism_needs_no_lp(self, msm, tmp_path, rng):
        info = save_bundle(msm, tmp_path / "b.npz")
        restored = load_bundle(info.path)
        before = restored.lp_seconds
        for _ in range(20):
            restored.sample(Point(10, 10), rng)
        assert restored.lp_seconds == before

    def test_restored_distribution_matches(self, msm, tmp_path):
        info = save_bundle(msm, tmp_path / "b.npz")
        restored = load_bundle(info.path)
        x = Point(7.3, 12.8)
        pts_a, probs_a = msm.reported_distribution(x)
        pts_b, probs_b = restored.reported_distribution(x)
        dist_a = {p.as_tuple(): q for p, q in zip(pts_a, probs_a)}
        dist_b = {p.as_tuple(): q for p, q in zip(pts_b, probs_b)}
        assert set(dist_a) == set(dist_b)
        for key, value in dist_a.items():
            assert dist_b[key] == pytest.approx(value, abs=1e-12)

    def test_sample_from_bundle_one_shot(self, msm, tmp_path):
        info = save_bundle(msm, tmp_path / "b.npz")
        z = sample_from_bundle(
            info.path, Point(5, 5), np.random.default_rng(3)
        )
        assert msm.index.bounds.contains(z)

    def test_missing_file(self, tmp_path):
        with pytest.raises(MechanismError, match="not found"):
            load_bundle(tmp_path / "nope.npz")

    def test_adaptive_index_rejected(self, fine_prior, small_dataset,
                                     rng, tmp_path):
        sample = small_dataset.sample_requests(200, rng)
        index = KDTreeIndex(small_dataset.bounds, sample, max_depth=2)
        msm = MultiStepMechanism(index, (0.2, 0.2), fine_prior)
        with pytest.raises(MechanismError, match="HierarchicalGrid"):
            save_bundle(msm, tmp_path / "b.npz")

    def test_dq_metric_survives_roundtrip(self, fine_prior, tmp_path):
        from repro.geo.metric import SQUARED_EUCLIDEAN

        msm = MultiStepMechanism.build(
            0.9, 3, fine_prior, rho=0.8, dq=SQUARED_EUCLIDEAN
        )
        info = save_bundle(msm, tmp_path / "b.npz")
        restored = load_bundle(info.path)
        assert restored.dq.name == "squared_euclidean"


class TestSession:
    def test_budget_arithmetic(self, fine_prior, rng):
        session = SanitizationSession(
            lifetime_epsilon=1.0, per_report_epsilon=0.3, prior=fine_prior,
            granularity=3,
        )
        assert session.reports_remaining == 3
        x = Point(10, 10)
        session.report(x, rng)
        session.report(x, rng)
        assert session.spent == pytest.approx(0.6)
        assert session.remaining == pytest.approx(0.4)
        assert session.reports_remaining == 1

    def test_exhaustion_refuses_and_preserves_privacy(self, fine_prior, rng):
        session = SanitizationSession(
            lifetime_epsilon=0.5, per_report_epsilon=0.25, prior=fine_prior,
            granularity=3,
        )
        x = Point(5, 5)
        session.report(x, rng)
        session.report(x, rng)
        assert not session.can_report()
        with pytest.raises(BudgetError, match="exhausted"):
            session.report(x, rng)
        assert len(session.history) == 2

    def test_history_records(self, fine_prior, rng):
        session = SanitizationSession(
            lifetime_epsilon=0.6, per_report_epsilon=0.2, prior=fine_prior,
            granularity=3,
        )
        r0 = session.report(Point(4, 4), rng)
        r1 = session.report(Point(6, 6), rng)
        assert r0.sequence == 0 and r1.sequence == 1
        assert r0.epsilon_remaining == pytest.approx(0.4)
        assert r1.epsilon_remaining == pytest.approx(0.2)
        assert session.history[0].actual == Point(4, 4)

    def test_parameter_validation(self, fine_prior):
        with pytest.raises(BudgetError):
            SanitizationSession(1.0, 0.0, fine_prior)
        with pytest.raises(BudgetError):
            SanitizationSession(0.2, 0.5, fine_prior)

    def test_precompute_then_fast_reports(self, fine_prior, rng):
        session = SanitizationSession(
            lifetime_epsilon=3.0, per_report_epsilon=0.3, prior=fine_prior,
            granularity=3,
        )
        session.precompute()
        lp_before = session.mechanism.lp_seconds
        for _ in range(5):
            session.report(Point(10, 10), rng)
        assert session.mechanism.lp_seconds == lp_before
