"""Tests for the benchmark-matrix harness (schema, compare, report).

The ``compare`` and ``report`` renderings are golden-file tested in the
style of the exporter tests in ``tests/test_obs.py``: a synthetic,
fully deterministic artifact pair is pushed through the real formatting
code and the output must match ``tests/data/bench_*_golden.txt`` byte
for byte.  The perturbation test is the PR's acceptance criterion: an
artifact with epsilon inflated by 20% and throughput halved must fail
the gate with a per-metric diagnosis naming both regressions.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.bench import (
    ArtifactError,
    CellSpec,
    Comparison,
    DatasetSpec,
    IndexSpec,
    MatrixSpec,
    REQUIRED_CELL_METRICS,
    SCHEMA_VERSION,
    Tolerance,
    compare_artifacts,
    format_comparison,
    format_report,
    get_matrix,
    load_artifact,
    parse_tolerance_overrides,
    run_matrix,
    save_artifact,
    validate_artifact,
    validation_errors,
    wrap_legacy,
)
from repro.cli import main
from repro.exceptions import EvaluationError

DATA_DIR = Path(__file__).parent / "data"
REPO_ROOT = Path(__file__).resolve().parent.parent
SMOKE_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "smoke.json"


def _metrics(**overrides) -> dict:
    """A plausible, fully-populated metric panel."""
    metrics = {
        "throughput_pts_per_s": 50_000.0,
        "mean_loss_km": 3.1,
        "worst_case_loss_km": 4.2,
        "adversarial_error_km": 3.0,
        "identification_rate": 0.05,
        "conditional_entropy_bits": 5.8,
        "prior_entropy_bits": 6.3,
        "empirical_epsilon": 0.45,
        "epsilon_tight": 1.2,
    }
    metrics.update(overrides)
    return metrics


def _cell(mechanism: str, epsilon: float, **metric_overrides) -> dict:
    return {
        "cell_id": f"{mechanism}|gihi-g3h2|uniform|eps{epsilon:g}",
        "mechanism": mechanism,
        "index": "gihi-g3h2",
        "dataset": "uniform",
        "epsilon": epsilon,
        "budgets": [0.2, 0.3],
        "n_leaves": 81,
        "build_seconds": 0.5,
        "sample_seconds": 0.1,
        "metrics": _metrics(**metric_overrides),
    }


def fake_artifact(*cells: dict) -> dict:
    """A deterministic matrix artifact (fixed sha/host — golden-safe)."""
    return validate_artifact({
        "schema_version": SCHEMA_VERSION,
        "kind": "matrix",
        "git_sha": "0123456789abcdef0123456789abcdef01234567",
        "created_unix": 1700000000.0,
        "seed": 20190326,
        "host": {
            "python": "3.12.0",
            "platform": "Linux-test",
            "machine": "x86_64",
            "cpu_count": 8,
        },
        "matrix": "smoke",
        "config": {
            "n_points": 20000,
            "n_eval_inputs": 6,
            "n_eval_samples": 3000,
            "rho": 0.8,
        },
        "cells": list(cells) or [_cell("msm", 0.5), _cell("pl", 1.0)],
    })


class TestArtifactSchema:
    def test_fake_artifact_is_valid(self):
        assert validation_errors(fake_artifact()) == []

    def test_wrap_legacy_is_valid(self):
        artifact = wrap_legacy("some-bench", {"speedup": 11.0}, 20190326)
        assert validation_errors(artifact) == []
        assert artifact["kind"] == "bench"

    def test_errors_accumulate_instead_of_stopping(self):
        bad = fake_artifact()
        bad = copy.deepcopy(bad)
        bad["schema_version"] = 99
        bad["cells"][0]["epsilon"] = "half"
        del bad["cells"][1]["metrics"]["empirical_epsilon"]
        errors = validation_errors(bad)
        assert len(errors) == 3
        assert any("schema_version" in e for e in errors)
        assert any("epsilon must be a number" in e for e in errors)
        assert any("empirical_epsilon" in e for e in errors)

    def test_non_matrix_kind_rejected(self):
        assert validation_errors({"schema_version": SCHEMA_VERSION})
        with pytest.raises(ArtifactError, match="kind"):
            validate_artifact({"schema_version": SCHEMA_VERSION})

    def test_every_required_metric_is_enforced(self):
        for metric in REQUIRED_CELL_METRICS:
            bad = copy.deepcopy(fake_artifact())
            del bad["cells"][0]["metrics"][metric]
            assert any(metric in e for e in validation_errors(bad))

    def test_save_load_round_trip(self, tmp_path):
        artifact = fake_artifact()
        path = save_artifact(artifact, tmp_path / "run.json")
        assert load_artifact(path) == artifact
        assert path.read_text().endswith("\n")

    def test_load_missing_path_raises(self, tmp_path):
        with pytest.raises(ArtifactError, match="no artifact"):
            load_artifact(tmp_path / "absent.json")

    def test_load_invalid_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ArtifactError, match="not valid JSON"):
            load_artifact(path)


class TestTolerances:
    def test_directions(self):
        higher = Tolerance("higher_is_worse", 0.10)
        assert higher.regressed(1.2, 1.0)
        assert not higher.regressed(1.05, 1.0)
        assert not higher.regressed(0.5, 1.0)
        lower = Tolerance("lower_is_worse", 0.45)
        assert lower.regressed(0.5, 1.0)
        assert not lower.regressed(0.6, 1.0)
        assert not lower.regressed(2.0, 1.0)

    def test_nan_always_regresses(self):
        tol = Tolerance("higher_is_worse", 0.10)
        assert tol.regressed(float("nan"), 1.0)
        assert tol.regressed(1.0, float("nan"))

    def test_infinite_baseline_gates_nothing_upward(self):
        tol = Tolerance("higher_is_worse", 0.10)
        assert not tol.regressed(5.0, float("inf"))
        assert not tol.regressed(float("inf"), float("inf"))

    def test_zero_baseline_uses_absolute_slack(self):
        """A 0.0 baseline (no-evidence estimate) must not fail on any
        positive measurement — only past the band as absolute slack."""
        tol = Tolerance("higher_is_worse", 0.10)
        assert not tol.regressed(0.05, 0.0)
        assert tol.regressed(0.2, 0.0)

    def test_overrides_parse_and_reject_unknown(self):
        merged = parse_tolerance_overrides(["throughput_pts_per_s=0.75"])
        assert merged["throughput_pts_per_s"].rel_tol == 0.75
        assert merged["mean_loss_km"].rel_tol == 0.10
        with pytest.raises(EvaluationError, match="unknown gated metric"):
            parse_tolerance_overrides(["made_up_metric=0.5"])
        with pytest.raises(EvaluationError, match="metric=FLOAT"):
            parse_tolerance_overrides(["mean_loss_km=banana"])


class TestCompare:
    def test_identical_artifacts_pass(self):
        artifact = fake_artifact()
        comparison = compare_artifacts(artifact, artifact)
        assert comparison.ok
        assert not comparison.failures
        assert not comparison.new_cells

    def test_matrix_name_mismatch_rejected(self):
        other = copy.deepcopy(fake_artifact())
        other["matrix"] = "full"
        with pytest.raises(EvaluationError, match="matrix mismatch"):
            compare_artifacts(fake_artifact(), other)

    def test_verdict_taxonomy(self):
        baseline = fake_artifact(_cell("msm", 0.5), _cell("pl", 1.0))
        run = fake_artifact(
            _cell("msm", 0.5, empirical_epsilon=0.45 * 1.2,
                  throughput_pts_per_s=25_000.0),
            _cell("exp", 2.0),
        )
        comparison = compare_artifacts(run, baseline)
        assert not comparison.ok
        by_kind = {}
        for v in comparison.verdicts:
            by_kind.setdefault(v.verdict, []).append(v)
        failed = {(v.cell_id, v.metric) for v in by_kind["fail"]}
        assert failed == {
            ("msm|gihi-g3h2|uniform|eps0.5", "empirical_epsilon"),
            ("msm|gihi-g3h2|uniform|eps0.5", "throughput_pts_per_s"),
        }
        assert [v.cell_id for v in by_kind["missing-run"]] == [
            "pl|gihi-g3h2|uniform|eps1"
        ]
        assert [v.cell_id for v in by_kind["missing-baseline"]] == [
            "exp|gihi-g3h2|uniform|eps2"
        ]


class TestGoldenFiles:
    """Byte-exact rendering, in the ``tests/test_obs.py`` style."""

    def test_report_golden(self):
        golden = (DATA_DIR / "bench_report_golden.txt").read_text()
        assert format_report(fake_artifact()) + "\n" == golden

    def test_compare_golden(self):
        baseline = fake_artifact(_cell("msm", 0.5), _cell("pl", 1.0))
        run = fake_artifact(
            _cell("msm", 0.5, empirical_epsilon=0.45 * 1.2,
                  throughput_pts_per_s=25_000.0),
            _cell("exp", 2.0),
        )
        golden = (DATA_DIR / "bench_compare_golden.txt").read_text()
        assert (
            format_comparison(compare_artifacts(run, baseline)) + "\n"
            == golden
        )

    def test_compare_pass_golden(self):
        artifact = fake_artifact()
        golden = (DATA_DIR / "bench_compare_pass_golden.txt").read_text()
        assert (
            format_comparison(compare_artifacts(artifact, artifact)) + "\n"
            == golden
        )


class TestPerturbationGate:
    """Acceptance: a deliberately degraded artifact must fail the gate.

    Uses the *committed* smoke baseline so the test also guards the
    artifact CI actually compares against.
    """

    def _perturbed(self) -> dict:
        artifact = copy.deepcopy(load_artifact(SMOKE_BASELINE))
        for cell in artifact["cells"]:
            cell["metrics"]["empirical_epsilon"] *= 1.2
            cell["metrics"]["throughput_pts_per_s"] *= 0.5
        return artifact

    def test_epsilon_inflation_and_throughput_halving_fail(self):
        baseline = load_artifact(SMOKE_BASELINE)
        comparison = compare_artifacts(self._perturbed(), baseline)
        assert not comparison.ok
        failed_metrics = {v.metric for v in comparison.failures}
        assert failed_metrics == {
            "empirical_epsilon", "throughput_pts_per_s"
        }
        # Every cell is diagnosed individually, not just the first.
        failed_cells = {v.cell_id for v in comparison.failures}
        assert failed_cells == {
            c["cell_id"] for c in baseline["cells"]
        }
        text = format_comparison(comparison)
        assert "above the 10% band" in text
        assert "below the 45% band" in text

    def test_cli_exit_codes(self, tmp_path, capsys):
        perturbed_path = tmp_path / "perturbed.json"
        save_artifact(self._perturbed(), perturbed_path)
        code = main([
            "bench", "compare",
            "--baseline", str(SMOKE_BASELINE),
            "--run", str(perturbed_path),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "empirical_epsilon" in out
        assert "throughput_pts_per_s" in out
        assert "verdict: FAIL" in out

        clean_path = tmp_path / "clean.json"
        save_artifact(copy.deepcopy(load_artifact(SMOKE_BASELINE)),
                      clean_path)
        code = main([
            "bench", "compare",
            "--baseline", str(SMOKE_BASELINE),
            "--run", str(clean_path),
        ])
        assert code == 0
        assert "verdict: PASS" in capsys.readouterr().out

    def test_cli_missing_baseline_policy(self, tmp_path, capsys):
        run_path = tmp_path / "run.json"
        save_artifact(fake_artifact(), run_path)
        absent = tmp_path / "no-baseline.json"
        with pytest.raises(SystemExit, match="missing-baseline"):
            main([
                "bench", "compare",
                "--baseline", str(absent), "--run", str(run_path),
            ])
        code = main([
            "bench", "compare", "--baseline", str(absent),
            "--run", str(run_path), "--allow-missing-baseline",
        ])
        assert code == 0
        assert "no baseline committed yet" in capsys.readouterr().out


class TestCliReport:
    def test_report_renders_committed_baseline(self, capsys):
        code = main([
            "bench", "report", "--run", str(SMOKE_BASELINE),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Benchmark matrix 'smoke'" in out
        assert "H(X|Z)_bits" in out


class TestLiveTinyMatrix:
    """End-to-end ``run_matrix`` on a seconds-scale synthetic matrix."""

    def test_run_matrix_produces_valid_artifact(self):
        spec = MatrixSpec(
            name="smoke",  # reuse a registered name: artifact-compatible
            mechanisms=("exp",),
            indexes=(IndexSpec(granularity=2, height=1),),
            datasets=(DatasetSpec("uniform"),),
            epsilons=(1.0,),
            n_points=64,
            n_eval_inputs=2,
            n_eval_samples=200,
            n_timing_repeats=1,
        )
        artifact = run_matrix(spec, root_seed=7)
        assert validation_errors(artifact) == []
        (cell,) = artifact["cells"]
        assert cell["cell_id"] == "exp|gihi-g2h1|uniform|eps1"
        metrics = cell["metrics"]
        for key in REQUIRED_CELL_METRICS:
            assert key in metrics
        assert metrics["worst_case_loss_km"] >= metrics["mean_loss_km"]
        assert 0.0 <= metrics["conditional_entropy_bits"] <= (
            metrics["prior_entropy_bits"]
        )
        # Same seed, same draws: the run is reproducible end to end.
        again = run_matrix(spec, root_seed=7)
        a = {k: v for k, v in artifact["cells"][0]["metrics"].items()
             if k != "throughput_pts_per_s"}
        b = {k: v for k, v in again["cells"][0]["metrics"].items()
             if k != "throughput_pts_per_s"}
        assert a == b

    def test_registry_knows_smoke_and_full(self):
        assert len(get_matrix("smoke")) == 10
        assert len(get_matrix("full")) == 48
        with pytest.raises(EvaluationError, match="unknown benchmark"):
            get_matrix("nope")
        # The two extra smoke cells are the road-network pair, appended
        # after the planar cross product.
        cells = list(get_matrix("smoke").cells())
        assert len(cells) == 10
        assert [c.cell_id for c in cells[-2:]] == [
            "msm|graph-f4h2|graph-city|eps0.5",
            "msm|graph-f4h2|graph-city|eps1",
        ]


class TestGraphCells:
    """The road-network cells: spec validation and a live tiny run."""

    def test_graph_index_requires_graph_dataset(self):
        with pytest.raises(EvaluationError, match="graph cells"):
            CellSpec(
                "msm",
                IndexSpec(4, 2, kind="graph"),
                DatasetSpec("uniform"),
                1.0,
            )
        with pytest.raises(EvaluationError, match="graph cells"):
            CellSpec(
                "msm",
                IndexSpec(3, 2),
                DatasetSpec("graph-city"),
                1.0,
            )

    def test_graph_cells_are_msm_only(self):
        with pytest.raises(EvaluationError, match="only the staged"):
            CellSpec(
                "pl",
                IndexSpec(4, 2, kind="graph"),
                DatasetSpec("graph-city"),
                1.0,
            )

    def test_unknown_index_kind_rejected(self):
        with pytest.raises(EvaluationError, match="index kind"):
            IndexSpec(4, 2, kind="voronoi")

    def test_live_graph_cell_produces_valid_artifact(self):
        spec = MatrixSpec(
            name="smoke",  # reuse a registered name: artifact-compatible
            mechanisms=("msm",),
            indexes=(IndexSpec(granularity=4, height=2, kind="graph"),),
            datasets=(DatasetSpec("graph-city"),),
            epsilons=(1.0,),
            n_points=64,
            n_eval_inputs=2,
            n_eval_samples=200,
            n_timing_repeats=1,
        )
        artifact = run_matrix(spec, root_seed=7)
        assert validation_errors(artifact) == []
        (cell,) = artifact["cells"]
        assert cell["cell_id"] == "msm|graph-f4h2|graph-city|eps1"
        assert cell["budgets"] == [0.5, 0.5]
        metrics = cell["metrics"]
        for key in REQUIRED_CELL_METRICS:
            assert key in metrics
        assert metrics["worst_case_loss_km"] >= metrics["mean_loss_km"]
        # Network distance dominates the planar distance, so the losses
        # must be at least plausible for a ~4x4 km city window.
        assert 0.0 < metrics["mean_loss_km"] < 10.0
