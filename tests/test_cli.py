"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["experiment", "fig5"])
        assert args.name == "fig5"
        with pytest.raises(SystemExit):
            parser.parse_args(["experiment", "fig99"])

    def test_dataset_choices(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["info", "--dataset", "foursquare"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--dataset", "gowalla", "--fraction", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "gowalla-austin" in out
        assert "check-ins" in out

    def test_plan(self, capsys):
        assert main(["plan", "--epsilon", "0.9", "--g", "3"]) == 0
        out = capsys.readouterr().out
        assert "index height : 2" in out
        assert "STARVED" in out

    def test_sanitize(self, capsys):
        code = main([
            "sanitize", "--dataset", "gowalla", "--fraction", "0.01",
            "--epsilon", "0.5", "--g", "3", "--x", "10.0", "--y", "10.0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "reported" in out

    def test_sanitize_out_of_domain(self):
        with pytest.raises(SystemExit, match="outside"):
            main([
                "sanitize", "--dataset", "gowalla", "--fraction", "0.01",
                "--epsilon", "0.5", "--x", "500.0", "--y", "10.0",
            ])

    def test_experiment_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "ablation.csv"
        code = main([
            "experiment", "ablation-budget", "--dataset", "gowalla",
            "--fraction", "0.01", "--requests", "50",
            "--csv", str(csv_path),
        ])
        assert code == 0
        assert csv_path.exists()
        out = capsys.readouterr().out
        assert "budget split" in out


class TestBundleCommands:
    def test_bundle_roundtrip_via_cli(self, capsys, tmp_path):
        bundle_path = tmp_path / "b.npz"
        assert main([
            "bundle", "--dataset", "gowalla", "--fraction", "0.01",
            "--epsilon", "0.9", "--g", "3", "--out", str(bundle_path),
        ]) == 0
        assert bundle_path.exists()
        assert main([
            "sanitize", "--bundle", str(bundle_path),
            "--x", "10.0", "--y", "10.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "node LPs" in out
        assert "reported" in out

    def test_sanitize_requires_epsilon_without_bundle(self):
        with pytest.raises(SystemExit, match="epsilon"):
            main(["sanitize", "--x", "1.0", "--y", "1.0",
                  "--fraction", "0.01"])
