"""Multi-worker serving pool suite: arena, sharding, crash recovery.

Four contracts, mirroring the serve-stack suite one layer up:

* :class:`MechanismArena` — freezing a compiled walk and mapping it
  back is **bitwise** (``CompiledWalk.equals``), the manifest checksums
  make tampering and truncation detectable (an unverifiable arena must
  never serve), and publication is atomic (no manifest ⇒ no arena);
* :class:`ServingPool` routing — users land on the shard the stable
  hash names, budgets are enforced per user exactly as in the serial
  session, and the pool-wide stats fold from per-shard stats through
  the associative merge;
* restart — a pool reopened over the same per-shard journals replays
  every shard's spend before admitting a request (fail closed);
* chaos (``chaos`` marker) — SIGKILL of one worker mid-batch is
  detected, the shard respawns with its journal replayed, and no other
  shard's sessions are disturbed.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.core.msm import MultiStepMechanism
from repro.exceptions import BudgetError, ServeError
from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.regular import RegularGrid
from repro.priors.base import GridPrior
from repro.serve import (
    ArenaError,
    MechanismArena,
    ServerConfig,
    ServingPool,
    shard_for_user,
)

SEED = 20190326


@pytest.fixture(scope="module")
def pool_msm(square20) -> MultiStepMechanism:
    """A small warmed mechanism shared by the pool tests (g=2, h=2)."""
    index = HierarchicalGrid(square20, 2, 2)
    prior = GridPrior.uniform(RegularGrid(square20, 4))
    msm = MultiStepMechanism(index, (0.6, 0.9), prior)
    msm.precompute()
    return msm


@pytest.fixture(scope="module")
def frozen_arena(pool_msm, tmp_path_factory) -> MechanismArena:
    compiled = pool_msm.engine.compile(build=True)
    assert compiled is not None
    return MechanismArena.freeze(
        compiled, tmp_path_factory.mktemp("arena") / "msm.arena"
    )


def _config(lifetime=6.0, per_report=1.5, window=0.01, **kw) -> ServerConfig:
    return ServerConfig(
        lifetime_epsilon=lifetime,
        per_report_epsilon=per_report,
        coalesce_window=window,
        **kw,
    )


def _pool(arena, workers=2, ledger_dir=None, **kw) -> ServingPool:
    return ServingPool(
        arena,
        kw.pop("config", _config()),
        workers=workers,
        ledger_dir=ledger_dir,
        seed=kw.pop("seed", SEED),
        **kw,
    )


def _user_on_shard(shard: int, n_shards: int, salt: str = "u") -> str:
    """A user id the stable hash places on ``shard``."""
    for i in range(10_000):
        user = f"{salt}{i}"
        if shard_for_user(user, n_shards) == shard:
            return user
    raise AssertionError("no user found for shard")  # pragma: no cover


# ----------------------------------------------------------------------
# the stable shard hash
# ----------------------------------------------------------------------
class TestShardHash:
    def test_pinned_values(self):
        """The routing function is part of the on-disk contract (it
        names which journal holds a user's spend), so its values are
        pinned forever — a change here is a data-migration event."""
        assert shard_for_user("user-0007", 4) == 1
        assert shard_for_user("alice", 4) == 3
        assert shard_for_user("bob", 7) == 1
        assert shard_for_user("", 3) == 1

    def test_range_and_determinism(self):
        for i in range(100):
            user = f"user-{i}"
            for n in (1, 2, 3, 8):
                shard = shard_for_user(user, n)
                assert 0 <= shard < n
                assert shard == shard_for_user(user, n)

    def test_rejects_empty_pool(self):
        with pytest.raises(ServeError):
            shard_for_user("u", 0)


# ----------------------------------------------------------------------
# the arena
# ----------------------------------------------------------------------
class TestArena:
    def test_roundtrip_is_bitwise(self, pool_msm, frozen_arena):
        compiled = pool_msm.engine.compile(build=True)
        assert frozen_arena.compiled().equals(compiled)

    def test_mapped_arrays_are_readonly(self, frozen_arena):
        walk = frozen_arena.compiled()
        with pytest.raises(ValueError):
            walk.center_x[0] = 99.0

    def test_walks_match_direct_engine(self, pool_msm, frozen_arena):
        """Same seed through the arena-mapped walk and the engine's own
        compiled walk: identical leaf ids (zero-copy, zero drift)."""
        compiled = pool_msm.engine.compile(build=True)
        coords = np.column_stack(
            [
                np.linspace(0.5, 19.5, 64),
                np.linspace(19.5, 0.5, 64),
            ]
        )
        direct, _ = compiled.walk_arrays(
            coords, np.random.default_rng(SEED)
        )
        mapped, _ = frozen_arena.compiled().walk_arrays(
            coords, np.random.default_rng(SEED)
        )
        assert np.array_equal(direct, mapped)

    def test_bounds_and_contains(self, frozen_arena):
        min_x, min_y, max_x, max_y = frozen_arena.bounds
        assert (min_x, min_y) == (0.0, 0.0)
        assert max_x == max_y == 20.0
        assert frozen_arena.contains(3.0, 3.0)
        assert not frozen_arena.contains(-1.0, 3.0)

    def test_tampered_array_refuses_to_open(self, pool_msm, tmp_path):
        compiled = pool_msm.engine.compile(build=True)
        arena = MechanismArena.freeze(compiled, tmp_path / "a")
        victim = next(arena.directory.glob("*.npy"))
        blob = bytearray(victim.read_bytes())
        blob[-1] ^= 0xFF
        victim.write_bytes(bytes(blob))
        with pytest.raises(ArenaError):
            MechanismArena.open(arena.directory)

    def test_missing_manifest_is_no_arena(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ArenaError):
            MechanismArena.open(tmp_path / "empty")

    def test_store_exports_arena(self, pool_msm, square20, tmp_path):
        """The store-side hook freezes the same bitwise artifact."""
        from repro.core.store import MechanismStore

        store = MechanismStore(tmp_path / "store")
        store.get_or_build(pool_msm)
        arena = store.export_arena(pool_msm)
        assert arena.directory == store.arena_dir_for(pool_msm)
        assert arena.compiled().equals(pool_msm.engine.compile(build=True))


# ----------------------------------------------------------------------
# pool serving
# ----------------------------------------------------------------------
class TestPoolServing:
    def test_reports_across_workers(self, frozen_arena):
        """40 users x 2 reports over 2 workers: every report lands in
        the domain, spends exactly per-report, and the merged stats
        equal the submitted totals."""
        with _pool(frozen_arena, workers=2) as pool:
            handles = [
                pool.submit(f"user-{i}", Point(3.0 + i % 5, 4.0))
                for i in range(40)
                for _ in range(2)
            ]
            reports = [h.future.result(timeout=60) for h in handles]
        for report in reports:
            assert frozen_arena.contains(
                report.reported.x, report.reported.y
            )
            assert report.epsilon_spent == 1.5
        stats = pool.stats()
        assert stats.requests == stats.completed == 80
        assert stats.sessions == 40
        shard_sessions = [s.sessions for s in pool.shard_stats()]
        assert sum(shard_sessions) == 40
        assert all(n > 0 for n in shard_sessions)

    def test_budget_enforced_per_user(self, frozen_arena):
        """lifetime 6.0 / per-report 1.5 = exactly 4 reports, then
        BudgetError — same arithmetic as the serial session."""
        with _pool(frozen_arena, workers=2) as pool:
            for _ in range(4):
                report = pool.report("greedy", Point(3.0, 3.0))
            assert report.epsilon_remaining == pytest.approx(0.0)
            with pytest.raises(BudgetError):
                pool.report("greedy", Point(3.0, 3.0))
            # other users (even on the same shard) are unaffected
            other = _user_on_shard(
                pool.shard_for("greedy"), pool.workers, salt="other"
            )
            assert pool.report(other, Point(3.0, 3.0)).sequence == 0

    def test_out_of_domain_rejected_at_frontend(self, frozen_arena):
        with _pool(frozen_arena, workers=1) as pool:
            with pytest.raises(ServeError) as err:
                pool.submit("u", Point(-5.0, 3.0))
            assert err.value.reason == "domain"
        assert pool.stats().rejected_domain == 1

    def test_stopped_pool_refuses(self, frozen_arena):
        pool = _pool(frozen_arena, workers=1)
        pool.start()
        pool.stop()
        with pytest.raises(ServeError) as err:
            pool.submit("u", Point(3.0, 3.0))
        assert err.value.reason == "stopped"

    def test_users_route_to_their_hash_shard(self, frozen_arena):
        """Each shard's session count equals the number of distinct
        users whose stable hash names that shard."""
        users = [f"user-{i}" for i in range(30)]
        with _pool(frozen_arena, workers=3) as pool:
            for user in users:
                pool.report(user, Point(9.0, 9.0))
            per_shard = [s.sessions for s in pool.shard_stats()]
        expected = [0, 0, 0]
        for user in users:
            expected[shard_for_user(user, 3)] += 1
        assert per_shard == expected

    def test_worker_metrics_fold_into_frontend(self, frozen_arena):
        from repro.obs import Observability

        obs = Observability.collecting(trace=False)
        with _pool(frozen_arena, workers=2, obs=obs) as pool:
            for i in range(20):
                pool.report(f"user-{i}", Point(5.0, 5.0))
            merged = pool.collect_metrics()
        assert (
            merged.counter_total("repro_pool_worker_points_total") == 20
        )
        assert merged.counter_total("repro_pool_requests_total") == 20


class TestAsyncFrontend:
    def test_async_reports_and_stats(self, frozen_arena):
        import asyncio

        from repro.serve import AsyncSanitizationFrontend

        async def scenario():
            pool = _pool(frozen_arena, workers=2)
            async with AsyncSanitizationFrontend(pool) as frontend:
                results = await frontend.report_many(
                    [(f"user-{i}", Point(4.0, 6.0)) for i in range(12)]
                )
                stats = frontend.stats()
                return results, stats

        results, stats = asyncio.run(scenario())
        assert len(results) == 12
        for report in results:
            assert not isinstance(report, Exception)
            assert report.epsilon_spent == 1.5
        assert stats.completed == 12

    def test_async_budget_error_propagates(self, frozen_arena):
        import asyncio

        from repro.serve import AsyncSanitizationFrontend

        async def scenario():
            pool = _pool(frozen_arena, workers=1)
            async with AsyncSanitizationFrontend(pool) as frontend:
                return await frontend.report_many(
                    [("one-user", Point(4.0, 6.0))] * 6
                )

        results = asyncio.run(scenario())
        delivered = [r for r in results if not isinstance(r, Exception)]
        refused = [r for r in results if isinstance(r, BudgetError)]
        assert len(delivered) == 4  # lifetime 6.0 / per-report 1.5
        assert len(refused) == 2


# ----------------------------------------------------------------------
# restart: per-shard journals replay
# ----------------------------------------------------------------------
class TestPoolRestart:
    def test_restart_replays_every_shard(self, frozen_arena, tmp_path):
        ledgers = tmp_path / "ledgers"
        users = [f"user-{i}" for i in range(12)]
        with _pool(frozen_arena, workers=3, ledger_dir=ledgers) as pool:
            for user in users:
                pool.report(user, Point(3.0, 3.0))
                pool.report(user, Point(7.0, 7.0))
        # a fresh pool over the same journals: every shard pre-charged
        with _pool(frozen_arena, workers=3, ledger_dir=ledgers) as pool:
            stats = pool.stats()
            assert stats.replayed_users == 12
            assert stats.replayed_epsilon == pytest.approx(12 * 2 * 1.5)
            # lifetime 6.0 at 1.5/report: 2 spent + 2 left per user
            for user in users:
                pool.report(user, Point(5.0, 5.0))
                report = pool.report(user, Point(5.0, 5.0))
                assert report.epsilon_remaining == pytest.approx(0.0)
                with pytest.raises(BudgetError):
                    pool.report(user, Point(5.0, 5.0))

    def test_replay_merge_covers_all_shards(self, frozen_arena, tmp_path):
        """``ledger_replay`` (the offline merge over shard journals)
        agrees with what the pool actually charged."""
        ledgers = tmp_path / "ledgers"
        with _pool(frozen_arena, workers=2, ledger_dir=ledgers) as pool:
            for i in range(10):
                pool.report(f"user-{i}", Point(3.0, 3.0))
            replay = pool.ledger_replay()
        assert len(replay.spent) == 10
        for user, spent in replay.spent.items():
            assert spent == pytest.approx(1.5)


# ----------------------------------------------------------------------
# chaos: SIGKILL one worker mid-batch
# ----------------------------------------------------------------------
@pytest.mark.chaos
class TestPoolChaos:
    def test_sigkill_one_worker_respawns_and_replays(
        self, frozen_arena, tmp_path
    ):
        """Kill shard 0's worker while it holds traffic.  The
        dispatcher must detect the dead shard, respawn it with its
        journal replayed (spend restored fail-closed), and leave shard
        1's users entirely undisturbed."""
        ledgers = tmp_path / "ledgers"
        config = _config(
            lifetime=1000.0 * 1.5, per_report=1.5, window=0.002
        )
        victim_user = _user_on_shard(0, 2, salt="victim")
        bystander = _user_on_shard(1, 2, salt="bystander")
        with _pool(
            frozen_arena, workers=2, ledger_dir=ledgers, config=config
        ) as pool:
            # establish spend on both shards
            for _ in range(5):
                pool.report(victim_user, Point(3.0, 3.0))
                pool.report(bystander, Point(7.0, 7.0))
            spent_before = pool.ledger_replay().spent_for(victim_user)
            assert spent_before == pytest.approx(5 * 1.5)

            # load shard 0 and kill its worker mid-stream
            victim_pid = pool.worker_pids()[0]
            handles = [
                pool.submit(victim_user, Point(3.0, 3.0))
                for _ in range(64)
            ]
            os.kill(victim_pid, signal.SIGKILL)
            crashed = delivered = 0
            for handle in handles:
                try:
                    handle.future.result(timeout=60)
                    delivered += 1
                except ServeError as exc:
                    assert exc.reason == "worker-crashed"
                    crashed += 1
            assert crashed + delivered == 64

            # the shard is serving again, with a fresh worker
            deadline = time.monotonic() + 30.0
            while pool.worker_pids()[0] in (victim_pid, None):
                assert time.monotonic() < deadline
                time.sleep(0.01)
            report = pool.report(victim_user, Point(3.0, 3.0))
            assert report.epsilon_spent == 1.5
            stats = pool.stats()
            assert stats.respawns >= 1

            # fail closed: everything journalled before and during the
            # crash replays as spend — never less than was delivered
            replayed = pool.ledger_replay().spent_for(victim_user)
            assert replayed >= spent_before + delivered * 1.5

            # the other shard never noticed
            bystander_shard = pool.shard_stats()[1]
            assert bystander_shard.failed == 0
            assert bystander_shard.respawns == 0
            assert pool.report(
                bystander, Point(7.0, 7.0)
            ).epsilon_spent == 1.5
