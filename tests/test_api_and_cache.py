"""Public-API surface and cache-bookkeeping tests."""

import numpy as np
import pytest

import repro
from repro.exceptions import (
    BudgetError,
    DatasetError,
    GeometryError,
    GridError,
    InfeasibleProblemError,
    MechanismError,
    PriorError,
    PrivacyViolationError,
    ReproError,
    SolverError,
    UnboundedProblemError,
)
from repro.geo.point import Point
from repro.mechanisms.matrix import MechanismMatrix
from repro.core.cache import NodeMechanismCache


class TestPublicAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackage_exports_resolve(self):
        import repro.core as core
        import repro.datasets as datasets
        import repro.eval as eval_pkg
        import repro.geo as geo
        import repro.grid as grid
        import repro.lbs as lbs
        import repro.lp as lp
        import repro.mechanisms as mechanisms
        import repro.priors as priors
        import repro.privacy as privacy

        for module in (core, datasets, eval_pkg, geo, grid, lbs, lp,
                       mechanisms, priors, privacy):
            for name in module.__all__:
                assert getattr(module, name) is not None, (
                    module.__name__, name,
                )


class TestExceptionHierarchy:
    @pytest.mark.parametrize("exc", [
        GeometryError, GridError, PriorError, DatasetError, SolverError,
        MechanismError, PrivacyViolationError, BudgetError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_solver_subtypes(self):
        assert issubclass(InfeasibleProblemError, SolverError)
        assert issubclass(UnboundedProblemError, SolverError)


class TestNodeMechanismCache:
    def _matrix(self) -> MechanismMatrix:
        pts = [Point(0, 0), Point(1, 0)]
        return MechanismMatrix(pts, pts, np.eye(2))

    def test_hit_miss_accounting(self):
        cache = NodeMechanismCache()
        assert cache.get(()) is None
        assert cache.misses == 1
        cache.put((), self._matrix())
        assert cache.get(()) is not None
        assert cache.hits == 1
        assert () in cache
        assert len(cache) == 1

    def test_clear_resets_everything(self):
        cache = NodeMechanismCache()
        cache.put((1, 2), self._matrix())
        cache.get((1, 2))
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_size_bytes(self):
        cache = NodeMechanismCache()
        cache.put((0,), self._matrix())
        cache.put((1,), self._matrix())
        assert cache.size_bytes == 2 * 4 * 8  # two 2x2 float64 matrices

    def test_get_or_build_many_builds_only_misses(self):
        cache = NodeMechanismCache()
        cache.put((0,), self._matrix(), source="opt")
        built: list[tuple[int, ...]] = []

        def build(path):
            built.append(path)
            return (self._matrix(), dict(source="opt", level=1, epsilon=0.5))

        entries = cache.get_or_build_many([(0,), (1,), (2,)], build)
        assert set(entries) == {(0,), (1,), (2,)}
        assert built == [(1,), (2,)]
        assert cache.builds == 2
        assert cache.hits == 1 and cache.misses == 2
        assert entries[(1,)].epsilon == 0.5
        # Everything is cached now: a second bulk call builds nothing.
        cache.get_or_build_many([(0,), (1,), (2,)], build)
        assert cache.builds == 2
        assert cache.hits == 4

    def test_get_or_build_many_keeps_partial_progress_on_failure(self):
        cache = NodeMechanismCache()

        def build(path):
            if path == (1,):
                raise SolverError("boom")
            return (self._matrix(), dict(source="opt"))

        with pytest.raises(SolverError):
            cache.get_or_build_many([(0,), (1,), (2,)], build)
        # The node built before the failure is cached; later ones are not.
        assert (0,) in cache
        assert (1,) not in cache and (2,) not in cache
        assert cache.builds == 1

    def test_clear_resets_builds(self):
        cache = NodeMechanismCache()
        cache.get_or_build_many(
            [(0,)], lambda p: (self._matrix(), dict(source="opt"))
        )
        assert cache.builds == 1
        cache.clear()
        assert cache.builds == 0
