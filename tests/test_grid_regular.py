"""Unit tests for repro.grid.regular."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import GridError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.grid.regular import RegularGrid


@pytest.fixture
def grid(square20) -> RegularGrid:
    return RegularGrid(square20, 4)


class TestAddressing:
    def test_basic_properties(self, grid):
        assert grid.granularity == 4
        assert grid.n_cells == 16
        assert len(grid) == 16
        assert grid.cell_width == pytest.approx(5.0)

    def test_invalid_granularity(self, square20):
        with pytest.raises(GridError):
            RegularGrid(square20, 0)

    def test_cell_index_roundtrip(self, grid):
        for cell in grid.cells():
            again = grid.cell_by_index(cell.index)
            assert (again.row, again.col) == (cell.row, cell.col)

    def test_cell_out_of_range(self, grid):
        with pytest.raises(GridError):
            grid.cell(4, 0)
        with pytest.raises(GridError):
            grid.cell_by_index(16)

    def test_row_major_order(self, grid):
        assert grid.cell(0, 0).index == 0
        assert grid.cell(0, 3).index == 3
        assert grid.cell(1, 0).index == 4
        assert grid.cell(3, 3).index == 15

    def test_cell_bounds_tile_domain(self, grid):
        total_area = sum(c.bounds.area for c in grid.cells())
        assert total_area == pytest.approx(grid.bounds.area)


class TestLocate:
    def test_locate_interior(self, grid):
        assert grid.locate(Point(0.1, 0.1)).index == 0
        assert grid.locate(Point(19.9, 19.9)).index == 15
        assert grid.locate(Point(7.5, 2.5)).index == 1

    def test_locate_on_max_boundary_folds_into_last_cell(self, grid):
        assert grid.locate(Point(20.0, 20.0)).index == 15

    def test_locate_outside_raises(self, grid):
        with pytest.raises(GridError):
            grid.locate(Point(-0.1, 5))

    def test_snap_returns_cell_center(self, grid):
        assert grid.snap(Point(1, 1)) == Point(2.5, 2.5)

    def test_snap_clamped_accepts_outside_points(self, grid):
        assert grid.snap_clamped(Point(-5, 25)) == Point(2.5, 17.5)

    @given(
        st.floats(min_value=0, max_value=20),
        st.floats(min_value=0, max_value=20),
        st.integers(min_value=1, max_value=9),
    )
    def test_every_domain_point_has_exactly_one_cell(self, x, y, g):
        grid = RegularGrid(BoundingBox(0, 0, 20, 20), g)
        cell = grid.locate(Point(x, y))
        assert cell.contains(Point(x, y))


class TestBulk:
    def test_centers_match_cells(self, grid):
        centers = grid.centers()
        for cell, center in zip(grid.cells(), centers):
            assert cell.center == center

    def test_centers_array_matches_centers(self, grid):
        arr = grid.centers_array()
        pts = grid.centers()
        assert arr.shape == (16, 2)
        for (x, y), p in zip(arr, pts):
            assert (x, y) == pytest.approx((p.x, p.y))

    def test_histogram_counts(self, grid):
        pts = [Point(1, 1), Point(1.2, 0.7), Point(18, 18), Point(-5, 3)]
        counts = grid.histogram(pts)
        assert counts.sum() == 3  # the out-of-bounds point is dropped
        assert counts[0] == 2
        assert counts[15] == 1

    def test_histogram_empty(self, grid):
        assert grid.histogram([]).sum() == 0

    def test_histogram_matches_locate(self, grid, rng):
        pts = [
            Point(float(x), float(y))
            for x, y in rng.uniform(0, 20, size=(200, 2))
        ]
        counts = grid.histogram(pts)
        manual = np.zeros(16, dtype=int)
        for p in pts:
            manual[grid.locate(p).index] += 1
        assert np.array_equal(counts, manual)

    def test_neighbors_interior(self, grid):
        cell = grid.cell(1, 1)
        assert len(grid.neighbors(cell)) == 4
        assert len(grid.neighbors(cell, diagonal=True)) == 8

    def test_neighbors_corner(self, grid):
        cell = grid.cell(0, 0)
        assert len(grid.neighbors(cell)) == 2
        assert len(grid.neighbors(cell, diagonal=True)) == 3

    def test_expected_snap_distance_scales_with_cell(self, square20):
        coarse = RegularGrid(square20, 2).expected_snap_distance()
        fine = RegularGrid(square20, 8).expected_snap_distance()
        assert coarse == pytest.approx(4 * fine)
        # ~0.3826 * cell side for the unit-square constant.
        assert fine == pytest.approx(0.3826 * 2.5, abs=0.01)

    def test_expected_snap_distance_is_empirically_right(self, rng):
        grid = RegularGrid(BoundingBox(0, 0, 1, 1), 1)
        pts = [
            Point(float(x), float(y)) for x, y in rng.uniform(0, 1, (4000, 2))
        ]
        empirical = np.mean([p.distance_to(Point(0.5, 0.5)) for p in pts])
        assert empirical == pytest.approx(grid.expected_snap_distance(), abs=0.01)
