"""Tier-1 wiring for the repo's static checks.

Runs ``scripts/check_privacy_guards.py`` against the real source tree
(so an unguarded ``MechanismMatrix(...)`` construction fails the test
suite, not just CI scripts nobody runs) and pins the checker's own
matching rules on a synthetic tree.  Also keeps the test *tooling*
honest: every pytest marker used anywhere in ``tests/`` or
``benchmarks/`` must be declared in ``pyproject.toml`` (an undeclared
marker silently stops matching ``-m`` deselection), and every committed
``BENCH_*.json`` at the repository root must parse against the
versioned benchmark-artifact schema.
"""

import re
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.faults

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_privacy_guards.py"

#: Markers provided by pytest itself or by installed plugins; everything
#: else used in the suites must be declared in ``pyproject.toml``.
BUILTIN_OR_PLUGIN_MARKERS = {
    "parametrize",
    "skip",
    "skipif",
    "xfail",
    "usefixtures",
    "filterwarnings",
    "benchmark",  # pytest-benchmark
}

_MARK_USE = re.compile(r"pytest\.mark\.([A-Za-z_][A-Za-z0-9_]*)")


def _declared_markers() -> set[str]:
    """Marker names declared under ``[tool.pytest.ini_options]``."""
    text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    block = re.search(r"markers\s*=\s*\[(.*?)\]", text, re.DOTALL)
    assert block, "pyproject.toml has no pytest markers declaration"
    return {
        entry.split(":")[0].strip()
        for entry in re.findall(r'"([^"]+)"', block.group(1))
    }


def _used_markers() -> dict[str, set[str]]:
    """``marker name -> files using it`` over tests/ and benchmarks/."""
    used: dict[str, set[str]] = {}
    for directory in ("tests", "benchmarks"):
        for path in sorted((REPO_ROOT / directory).glob("*.py")):
            for name in _MARK_USE.findall(path.read_text(encoding="utf-8")):
                used.setdefault(name, set()).add(
                    str(path.relative_to(REPO_ROOT))
                )
    return used


class TestMarkersDeclared:
    def test_every_used_marker_is_declared(self):
        declared = _declared_markers()
        undeclared = {
            name: sorted(files)
            for name, files in _used_markers().items()
            if name not in declared and name not in BUILTIN_OR_PLUGIN_MARKERS
        }
        assert not undeclared, (
            "markers used but not declared in pyproject.toml: "
            f"{undeclared}"
        )

    def test_scanner_sees_the_known_markers(self):
        """Guard the scanner itself against silently matching nothing."""
        used = _used_markers()
        for expected in ("faults", "statistical", "chaos"):
            assert expected in used, f"scanner lost track of {expected!r}"


class TestCommittedBenchArtifacts:
    def test_every_bench_json_matches_the_schema(self):
        from repro.bench.artifact import validation_errors

        paths = sorted(REPO_ROOT.glob("BENCH_*.json"))
        assert paths, "no BENCH_*.json artifacts at the repository root"
        problems = {}
        for path in paths:
            import json

            try:
                artifact = json.loads(path.read_text(encoding="utf-8"))
            except json.JSONDecodeError as exc:
                problems[path.name] = [f"not valid JSON: {exc}"]
                continue
            errors = validation_errors(artifact)
            if errors:
                problems[path.name] = errors
        assert not problems, f"invalid committed artifacts: {problems}"

    def test_baselines_match_the_schema(self):
        from repro.bench.artifact import load_artifact

        baselines = sorted(
            (REPO_ROOT / "benchmarks" / "baselines").glob("*.json")
        )
        assert baselines, "no committed baselines under benchmarks/baselines"
        for path in baselines:
            artifact = load_artifact(path)  # raises on schema violations
            assert artifact["kind"] == "matrix"


def _load_checker():
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "check_privacy_guards", SCRIPT
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestSourceTreeIsClean:
    def test_script_exits_zero_on_this_repo(self):
        proc = subprocess.run(
            [sys.executable, str(SCRIPT)],
            capture_output=True,
            text=True,
            check=False,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout

    def test_no_violations_via_api(self):
        checker = _load_checker()
        assert checker.find_violations() == []


class TestCheckerRules:
    @pytest.fixture
    def checker(self):
        return _load_checker()

    def _tree(self, tmp_path, rel_path, content):
        path = tmp_path / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
        return tmp_path

    def test_flags_direct_construction(self, checker, tmp_path):
        root = self._tree(
            tmp_path, "core/bad.py", "m = MechanismMatrix(a, b, k)\n"
        )
        violations = checker.find_violations(root)
        assert len(violations) == 1
        assert violations[0][1] == 1

    def test_allows_mechanisms_and_testing(self, checker, tmp_path):
        root = self._tree(
            tmp_path, "mechanisms/ok.py", "m = MechanismMatrix(a, b, k)\n"
        )
        self._tree(
            root, "testing/ok.py", "m = MechanismMatrix(a, b, k)\n"
        )
        self._tree(
            root, "privacy/guard.py", "m = MechanismMatrix(a, b, k)\n"
        )
        assert checker.find_violations(root) == []

    def test_guard_exempt_comment_opts_out(self, checker, tmp_path):
        root = self._tree(
            tmp_path,
            "core/annotated.py",
            "m = MechanismMatrix(a, b, k)  # guard-exempt: frozen test vector\n",
        )
        assert checker.find_violations(root) == []

    def test_mentions_in_comments_and_imports_ignored(self, checker, tmp_path):
        root = self._tree(
            tmp_path,
            "core/fine.py",
            "# MechanismMatrix(...) is built elsewhere\n"
            "from repro.mechanisms.matrix import MechanismMatrix\n"
            "def f(m: MechanismMatrix) -> None: ...\n",
        )
        assert checker.find_violations(root) == []
