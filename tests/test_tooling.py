"""Tier-1 wiring for the repo's static checks.

Runs ``scripts/check_privacy_guards.py`` against the real source tree
(so an unguarded ``MechanismMatrix(...)`` construction fails the test
suite, not just CI scripts nobody runs) and pins the checker's own
matching rules on a synthetic tree.
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.faults

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_privacy_guards.py"


def _load_checker():
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "check_privacy_guards", SCRIPT
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestSourceTreeIsClean:
    def test_script_exits_zero_on_this_repo(self):
        proc = subprocess.run(
            [sys.executable, str(SCRIPT)],
            capture_output=True,
            text=True,
            check=False,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout

    def test_no_violations_via_api(self):
        checker = _load_checker()
        assert checker.find_violations() == []


class TestCheckerRules:
    @pytest.fixture
    def checker(self):
        return _load_checker()

    def _tree(self, tmp_path, rel_path, content):
        path = tmp_path / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
        return tmp_path

    def test_flags_direct_construction(self, checker, tmp_path):
        root = self._tree(
            tmp_path, "core/bad.py", "m = MechanismMatrix(a, b, k)\n"
        )
        violations = checker.find_violations(root)
        assert len(violations) == 1
        assert violations[0][1] == 1

    def test_allows_mechanisms_and_testing(self, checker, tmp_path):
        root = self._tree(
            tmp_path, "mechanisms/ok.py", "m = MechanismMatrix(a, b, k)\n"
        )
        self._tree(
            root, "testing/ok.py", "m = MechanismMatrix(a, b, k)\n"
        )
        self._tree(
            root, "privacy/guard.py", "m = MechanismMatrix(a, b, k)\n"
        )
        assert checker.find_violations(root) == []

    def test_guard_exempt_comment_opts_out(self, checker, tmp_path):
        root = self._tree(
            tmp_path,
            "core/annotated.py",
            "m = MechanismMatrix(a, b, k)  # guard-exempt: frozen test vector\n",
        )
        assert checker.find_violations(root) == []

    def test_mentions_in_comments_and_imports_ignored(self, checker, tmp_path):
        root = self._tree(
            tmp_path,
            "core/fine.py",
            "# MechanismMatrix(...) is built elsewhere\n"
            "from repro.mechanisms.matrix import MechanismMatrix\n"
            "def f(m: MechanismMatrix) -> None: ...\n",
        )
        assert checker.find_violations(root) == []
