"""Unit tests for alternative budget-split strategies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import BudgetError
from repro.core.budget.strategies import (
    geometric_split,
    named_strategy,
    reverse_geometric_split,
    uniform_split,
)


class TestUniform:
    def test_equal_shares(self):
        assert uniform_split(0.9, 3) == pytest.approx((0.3, 0.3, 0.3))

    def test_single_level(self):
        assert uniform_split(0.5, 1) == (0.5,)

    def test_validation(self):
        with pytest.raises(BudgetError):
            uniform_split(0.0, 2)
        with pytest.raises(BudgetError):
            uniform_split(0.5, 0)


class TestGeometric:
    def test_growth_by_ratio(self):
        budgets = geometric_split(0.7, 3, ratio=2.0)
        assert budgets[1] == pytest.approx(2 * budgets[0])
        assert budgets[2] == pytest.approx(4 * budgets[0])
        assert sum(budgets) == pytest.approx(0.7)

    def test_ratio_one_is_uniform(self):
        assert geometric_split(0.6, 3, ratio=1.0) == pytest.approx(
            uniform_split(0.6, 3)
        )

    def test_reverse_is_mirrored(self):
        fwd = geometric_split(1.0, 4, ratio=3.0)
        rev = reverse_geometric_split(1.0, 4, ratio=3.0)
        assert rev == tuple(reversed(fwd))

    def test_validation(self):
        with pytest.raises(BudgetError):
            geometric_split(0.5, 2, ratio=0.0)

    @given(
        st.floats(min_value=0.01, max_value=10),
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.2, max_value=5.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_splits_conserve_budget_and_stay_positive(self, eps, h, ratio):
        for budgets in (
            uniform_split(eps, h),
            geometric_split(eps, h, ratio),
            reverse_geometric_split(eps, h, ratio),
        ):
            assert len(budgets) == h
            assert sum(budgets) == pytest.approx(eps, rel=1e-9)
            assert all(b > 0 for b in budgets)


class TestRegistry:
    def test_named_lookup(self):
        assert named_strategy("uniform")(0.6, 2) == pytest.approx((0.3, 0.3))
        assert named_strategy("geometric", ratio=2.0)(0.6, 2) == pytest.approx(
            (0.2, 0.4)
        )
        assert named_strategy("reverse-geometric", ratio=2.0)(
            0.6, 2
        ) == pytest.approx((0.4, 0.2))

    def test_unknown_strategy(self):
        with pytest.raises(BudgetError, match="unknown budget strategy"):
            named_strategy("fibonacci")
