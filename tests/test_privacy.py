"""Tests for GeoInd verification, composition and the MSM privacy bound."""

import numpy as np
import pytest

from repro.exceptions import BudgetError, PrivacyViolationError
from repro.geo.metric import EUCLIDEAN
from repro.geo.point import Point
from repro.grid.regular import RegularGrid
from repro.mechanisms.exponential import exponential_matrix
from repro.mechanisms.matrix import MechanismMatrix
from repro.core.msm import MultiStepMechanism
from repro.privacy import (
    BudgetAccountant,
    assert_geoind,
    empirical_epsilon,
    hierarchical_bound,
    sequential_composition,
    verify_geoind,
    verify_msm_composition,
)


def line(n):
    return [Point(float(i), 0.0) for i in range(n)]


class TestEmpiricalEpsilon:
    def test_two_point_hand_computed(self):
        pts = line(2)
        k = np.array([[0.8, 0.2], [0.2, 0.8]])
        m = MechanismMatrix(pts, pts, k)
        eps, triple = empirical_epsilon(m)
        assert eps == pytest.approx(np.log(4.0))
        assert triple is not None

    def test_uniform_mechanism_is_zero_epsilon(self):
        pts = line(3)
        m = MechanismMatrix(pts, pts, np.full((3, 3), 1 / 3))
        eps, _ = empirical_epsilon(m)
        assert eps == pytest.approx(0.0, abs=1e-12)

    def test_deterministic_distinct_outputs_is_infinite(self):
        pts = line(2)
        m = MechanismMatrix(pts, pts, np.eye(2))
        eps, triple = empirical_epsilon(m)
        assert eps == float("inf")
        assert triple is not None

    def test_single_row_is_zero(self):
        pts = line(1)
        m = MechanismMatrix(pts, pts, np.ones((1, 1)))
        assert empirical_epsilon(m)[0] == 0.0

    def test_worst_triple_realises_the_ratio(self, square20):
        grid = RegularGrid(square20, 3)
        m = exponential_matrix(grid, 0.7)
        eps, (i, j, z) = empirical_epsilon(m)
        d = grid.centers()[i].distance_to(grid.centers()[j])
        realised = np.log(m.k[i, z] / m.k[j, z]) / d
        assert realised == pytest.approx(eps, rel=1e-9)


class TestVerify:
    def test_verify_accepts_valid_claim(self, square20):
        m = exponential_matrix(RegularGrid(square20, 3), 0.5)
        report = verify_geoind(m, 0.5)
        assert report.satisfied
        assert report.slack >= 0

    def test_verify_rejects_overclaim(self, square20):
        m = exponential_matrix(RegularGrid(square20, 3), 0.5)
        tight = verify_geoind(m, 0.5).epsilon_tight
        report = verify_geoind(m, tight / 2)
        assert not report.satisfied

    def test_assert_raises_on_violation(self, square20):
        m = exponential_matrix(RegularGrid(square20, 3), 0.5)
        with pytest.raises(PrivacyViolationError):
            assert_geoind(m, 0.01)

    def test_assert_returns_report_on_success(self, square20):
        m = exponential_matrix(RegularGrid(square20, 3), 0.5)
        assert assert_geoind(m, 0.5).satisfied


class TestComposition:
    def test_sequential_sum(self):
        assert sequential_composition([0.1, 0.2, 0.3]) == pytest.approx(0.6)

    def test_validation(self):
        with pytest.raises(BudgetError):
            sequential_composition([])
        with pytest.raises(BudgetError):
            sequential_composition([0.1, 0.0])

    def test_composed_matrices_satisfy_summed_epsilon(self, square20):
        """Numerical check of the composability property on one grid."""
        grid = RegularGrid(square20, 3)
        m1 = exponential_matrix(grid, 0.3)
        m2 = exponential_matrix(grid, 0.4)
        composed = m1.compose(m2)
        assert verify_geoind(composed, 0.7).satisfied


class TestAccountant:
    def test_spend_and_remaining(self):
        acc = BudgetAccountant(total=1.0)
        acc.spend(0.3, "report-1")
        acc.spend(0.2, "report-2")
        assert acc.spent == pytest.approx(0.5)
        assert acc.remaining == pytest.approx(0.5)
        assert [label for label, _ in acc.spent_items] == [
            "report-1", "report-2",
        ]

    def test_overdraft_refused(self):
        acc = BudgetAccountant(total=0.5)
        acc.spend(0.4)
        assert not acc.can_spend(0.2)
        with pytest.raises(BudgetError, match="exhausted"):
            acc.spend(0.2)

    def test_exact_exhaustion_allowed(self):
        acc = BudgetAccountant(total=0.5)
        acc.spend(0.5)
        assert acc.remaining == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(BudgetError):
            BudgetAccountant(total=0.0)
        with pytest.raises(BudgetError):
            BudgetAccountant(total=1.0).spend(-0.1)


class TestMSMComposition:
    def test_two_level_msm_obeys_hierarchical_bound(self, fine_prior):
        msm = MultiStepMechanism.build(0.9, 3, fine_prior, rho=0.8)
        assert msm.height == 2
        report = verify_msm_composition(msm)
        assert report.satisfied
        assert report.n_pairs == 81 * 80

    def test_single_level_msm_is_plain_opt_bound(self, fine_prior):
        msm = MultiStepMechanism.build(0.4, 3, fine_prior, rho=0.8)
        assert msm.height == 1
        report = verify_msm_composition(msm)
        assert report.satisfied

    def test_uniform_prior_msm_obeys_bound(self, square20):
        from repro.priors.base import GridPrior

        prior = GridPrior.uniform(RegularGrid(square20, 9))
        msm = MultiStepMechanism.build(1.0, 3, prior, rho=0.8)
        report = verify_msm_composition(msm)
        assert report.satisfied

    def test_hierarchical_bound_structure(self, fine_prior):
        msm = MultiStepMechanism.build(0.9, 3, fine_prior, rho=0.8)
        index = msm.index
        leaf = index.level_grid(2)
        a = leaf.cell(0, 0).center
        b = leaf.cell(0, 1).center  # same level-1 parent
        c = leaf.cell(0, 8).center  # different level-1 parent
        bound_near = hierarchical_bound(msm, a, b)
        bound_far = hierarchical_bound(msm, a, c)
        # Same-parent pair: eps_2 * leaf distance only (level-1 cells equal).
        assert bound_near == pytest.approx(
            msm.budgets[1] * a.distance_to(b)
        )
        assert bound_far > bound_near

    def test_bound_requires_hierarchical_grid(self, fine_prior,
                                              small_dataset, rng):
        from repro.grid.kdtree import KDTreeIndex

        sample = small_dataset.sample_requests(200, rng)
        index = KDTreeIndex(small_dataset.bounds, sample, max_depth=2)
        msm = MultiStepMechanism(index, (0.2, 0.2), fine_prior)
        with pytest.raises(TypeError):
            hierarchical_bound(msm, Point(1, 1), Point(2, 2))
        with pytest.raises(TypeError):
            verify_msm_composition(msm)
