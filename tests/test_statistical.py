"""Statistical verification of the batch sanitisation engine.

Two claims are verified by sampling rather than by construction:

1. **Batch/single equivalence** — ``sanitize_batch`` and repeated
   ``sanitize`` draw from the same per-leaf output distribution.  The
   batch path consumes the random stream in a different order (grouped,
   vectorised CDF inversion vs per-point ``rng.choice``), so outputs are
   not bit-identical under a shared seed; what must hold is equality in
   distribution, checked with a two-sample chi-square test.

2. **Empirical privacy** — the epsilon *estimated from samples* of a
   small MSM instance never exceeds the configured budget (plus a
   documented sampling tolerance).  This closes the loop the exact
   matrix tests cannot: it validates the sampler actually implementing
   the verified matrices.

All tests are fixed-seed and therefore deterministic; they carry the
``statistical`` marker so slow chi-square runs can be deselected locally
with ``-m "not statistical"``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy import stats

from repro.core.msm import MultiStepMechanism
from repro.eval.privacy import empirical_epsilon_from_counts
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.regular import RegularGrid
from repro.priors.base import GridPrior
from repro.privacy.hierarchical import hierarchical_bound

pytestmark = pytest.mark.statistical

#: Significance level for the goodness-of-fit checks; a *passing* test
#: sees p above this, so at alpha = 0.01 a correct implementation fails
#: spuriously 1% of the time per test *under reseeding* — with the fixed
#: seeds below the outcomes are deterministic and were verified to pass.
ALPHA = 0.01

#: Minimum pooled count per chi-square bin; sparser bins are merged into
#: one tail bucket so the chi-square approximation stays valid.
MIN_POOLED = 10


@pytest.fixture(scope="module")
def square20() -> BoundingBox:
    return BoundingBox.square(Point(0.0, 0.0), 20.0)


@pytest.fixture(scope="module")
def msm2(square20) -> MultiStepMechanism:
    """A warm two-level MSM (g = 3, 81 leaves) over a uniform prior."""
    prior = GridPrior.uniform(RegularGrid(square20, 9))
    index = HierarchicalGrid(square20, 3, 2)
    msm = MultiStepMechanism(index, (0.5, 0.7), prior)
    msm.precompute()
    return msm


def leaf_counts(
    msm: MultiStepMechanism, points: list[Point]
) -> np.ndarray:
    """Histogram reported points over the walk's leaf grid."""
    depth = min(msm.height, msm.index.height)
    grid = msm.index.level_grid(depth)
    counts = np.zeros(grid.n_cells, dtype=float)
    for p in points:
        counts[grid.locate(p).index] += 1
    return counts


def merged_table(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """2 x k contingency table with sparse bins pooled into a tail bucket."""
    pooled = a + b
    keep = pooled >= MIN_POOLED
    row_a = np.append(a[keep], a[~keep].sum())
    row_b = np.append(b[keep], b[~keep].sum())
    table = np.vstack([row_a, row_b])
    return table[:, table.sum(axis=0) > 0]


class TestBatchSingleEquivalence:
    N = 6000

    @pytest.mark.parametrize(
        "x", [Point(3.3, 12.8), Point(10.0, 10.0), Point(18.7, 1.2)],
        ids=["off-center", "center", "corner"],
    )
    def test_chi_square_two_sample(self, msm2, x):
        """Batch and single sampling are indistinguishable at alpha=0.01."""
        rng_single = np.random.default_rng(1101)
        rng_batch = np.random.default_rng(2202)
        single = [msm2.sample(x, rng_single) for _ in range(self.N)]
        batch = [
            w.point for w in msm2.sanitize_batch([x] * self.N, rng_batch)
        ]
        table = merged_table(
            leaf_counts(msm2, single), leaf_counts(msm2, batch)
        )
        _, p_value, _, _ = stats.chi2_contingency(table)
        assert p_value >= ALPHA, (
            f"batch and single leaf distributions diverge (p={p_value:.4g})"
        )

    def test_both_match_exact_distribution(self, msm2):
        """Both samplers match ``reported_distribution`` in closed form."""
        x = Point(3.3, 12.8)
        grid = msm2.index.level_grid(2)
        exact = np.zeros(grid.n_cells)
        for point, mass in zip(*msm2.reported_distribution(x)):
            exact[grid.locate(point).index] += mass
        rng = np.random.default_rng(3303)
        for sampler in (
            lambda: [msm2.sample(x, rng) for _ in range(self.N)],
            lambda: [
                w.point for w in msm2.sanitize_batch([x] * self.N, rng)
            ],
        ):
            counts = leaf_counts(msm2, sampler())
            expected = exact * self.N
            keep = expected >= 5
            f_obs = np.append(counts[keep], counts[~keep].sum())
            f_exp = np.append(expected[keep], expected[~keep].sum())
            # Guard the test itself: everything must be accounted for.
            assert f_obs.sum() == pytest.approx(self.N)
            p_value = stats.chisquare(f_obs, f_exp).pvalue
            assert p_value >= ALPHA, f"sampler diverges from exact (p={p_value:.4g})"

    def test_mixed_batch_groups_by_node(self, msm2):
        """A heterogeneous batch equals per-point sampling, point by point.

        Feeds two distinct inputs interleaved, so the grouping machinery
        has to split and re-merge the batch; each input's marginal must
        still match its own single-point distribution.
        """
        a, b = Point(2.0, 2.0), Point(17.5, 16.5)
        n = 4000
        rng_batch = np.random.default_rng(4404)
        rng_single = np.random.default_rng(5505)
        walks = msm2.sanitize_batch([a, b] * n, rng_batch)
        batch_a = [w.point for w in walks[0::2]]
        batch_b = [w.point for w in walks[1::2]]
        single_a = [msm2.sample(a, rng_single) for _ in range(n)]
        single_b = [msm2.sample(b, rng_single) for _ in range(n)]
        for batch, single in ((batch_a, single_a), (batch_b, single_b)):
            table = merged_table(
                leaf_counts(msm2, single), leaf_counts(msm2, batch)
            )
            _, p_value, _, _ = stats.chi2_contingency(table)
            assert p_value >= ALPHA


class TestEmpiricalEpsilon:
    """Sampled-frequency epsilon never exceeds the configured budget.

    Tolerance (documented, fail-open): only cells sampled at least
    ``MIN_COUNT = 100`` times on both sides enter the estimate, so the
    standard error of a log-ratio is at most ``sqrt(2 / 100) ~= 0.14``
    which, divided by the >= 6.6 km separation of distinct cell
    centres, is ~0.02 in epsilon units (~4% of the configured 0.5); we
    allow 15% relative headroom, far above that noise floor, so the
    test only fires on a genuine privacy regression, not on sampling
    luck.
    """

    MIN_COUNT = 100
    TOLERANCE = 0.15

    def test_single_level_empirical_epsilon(self, square20):
        """Height-1 MSM: one guarded OPT step, Euclidean guarantee.

        The estimation itself lives in
        :func:`repro.eval.privacy.empirical_epsilon_from_counts` — the
        same routine the benchmark harness reports per matrix cell — so
        this test and the harness cannot drift apart.
        """
        epsilon = 0.5
        prior = GridPrior.uniform(RegularGrid(square20, 3))
        index = HierarchicalGrid(square20, 3, 1)
        msm = MultiStepMechanism(index, (epsilon,), prior)
        grid = index.level_grid(1)
        centers = grid.centers()
        n_per_input = 4000  # 9 inputs x 4000 = 36k samples (>= 20k)
        rng = np.random.default_rng(6606)
        counts = np.zeros((len(centers), grid.n_cells))
        for i, x in enumerate(centers):
            walks = msm.sanitize_batch([x] * n_per_input, rng)
            counts[i] = leaf_counts(msm, [w.point for w in walks])
        eps_hat = empirical_epsilon_from_counts(
            counts, centers, min_count=self.MIN_COUNT
        )
        assert eps_hat > 0.0  # the estimate actually saw binding pairs
        assert eps_hat <= epsilon * (1.0 + self.TOLERANCE), (
            f"empirical epsilon {eps_hat:.4f} exceeds configured "
            f"{epsilon} beyond the {self.TOLERANCE:.0%} sampling tolerance"
        )

    def test_multi_level_hierarchical_bound(self, msm2):
        """Height-2 MSM: log-ratios respect the hierarchical bound.

        The rigorous multi-level guarantee is stated against the
        hierarchical distinguishability metric
        (:mod:`repro.privacy.hierarchical`), so the sampled log-ratio of
        any output between two inputs must stay below
        ``hierarchical_bound(x, x')`` — the exponent whose budget sum is
        the configured epsilon — within the same sampling tolerance.
        """
        grid = msm2.index.level_grid(2)
        # Close pairs (adjacent leaf cells) so distributions overlap
        # enough for well-sampled shared outputs; the far fourth input
        # checks that disjoint-support pairs are skipped, not failed.
        inputs = [
            Point(3.3, 3.3),
            Point(5.5, 3.3),
            Point(3.3, 5.5),
            Point(10.0, 10.0),
        ]
        n_per_input = 8000  # 4 x 8000 = 32k samples (>= 20k)
        rng = np.random.default_rng(7707)
        counts = np.zeros((len(inputs), grid.n_cells))
        for i, x in enumerate(inputs):
            walks = msm2.sanitize_batch([x] * n_per_input, rng)
            counts[i] = leaf_counts(msm2, [w.point for w in walks])
        checked = 0
        for i in range(len(inputs)):
            for j in range(len(inputs)):
                if i == j:
                    continue
                bound = hierarchical_bound(msm2, inputs[i], inputs[j])
                both = (counts[i] >= self.MIN_COUNT) & (
                    counts[j] >= self.MIN_COUNT
                )
                if not both.any():
                    continue
                ratio = np.log(counts[i][both] / counts[j][both]).max()
                assert ratio <= bound * (1.0 + self.TOLERANCE) + math.sqrt(
                    2.0 / self.MIN_COUNT
                )
                checked += 1
        assert checked > 0
