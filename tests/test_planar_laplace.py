"""Unit tests for the planar Laplace mechanism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MechanismError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.grid.regular import RegularGrid
from repro.mechanisms.planar_laplace import (
    PlanarLaplaceMechanism,
    planar_laplace_density,
    planar_laplace_matrix,
    planar_laplace_radius,
    sample_planar_laplace,
)
from repro.privacy import verify_geoind


class TestRadialInverse:
    def test_p_zero_gives_zero_radius(self):
        assert planar_laplace_radius(0.0, 1.0) == pytest.approx(0.0, abs=1e-9)

    def test_radius_increases_with_p(self):
        rs = planar_laplace_radius(np.array([0.1, 0.5, 0.9]), 1.0)
        assert rs[0] < rs[1] < rs[2]

    def test_radius_scales_inversely_with_epsilon(self):
        r1 = planar_laplace_radius(0.5, 1.0)
        r2 = planar_laplace_radius(0.5, 2.0)
        assert r1 == pytest.approx(2 * r2)

    def test_inverse_of_radial_cdf(self):
        """C_eps(C_eps^-1(p)) == p for the documented CDF."""
        eps = 0.7
        for p in (0.05, 0.3, 0.6, 0.95):
            r = float(planar_laplace_radius(p, eps))
            cdf = 1.0 - (1.0 + eps * r) * np.exp(-eps * r)
            assert cdf == pytest.approx(p, abs=1e-9)

    def test_validation(self):
        with pytest.raises(MechanismError):
            planar_laplace_radius(0.5, 0.0)
        with pytest.raises(MechanismError):
            planar_laplace_radius(1.0, 1.0)
        with pytest.raises(MechanismError):
            planar_laplace_radius(-0.1, 1.0)


class TestContinuousSampling:
    def test_mean_radius_matches_theory(self, rng):
        """E[r] = 2 / eps for the planar Laplace radial law."""
        eps = 0.5
        x = Point(0, 0)
        rs = [
            x.distance_to(sample_planar_laplace(x, eps, rng))
            for _ in range(4000)
        ]
        assert np.mean(rs) == pytest.approx(2 / eps, rel=0.05)

    def test_angles_are_uniform(self, rng):
        x = Point(0, 0)
        zs = [sample_planar_laplace(x, 1.0, rng) for _ in range(4000)]
        angles = np.arctan2([z.y for z in zs], [z.x for z in zs])
        # Quadrant counts should be balanced.
        quadrants = np.histogram(angles, bins=4, range=(-np.pi, np.pi))[0]
        assert quadrants.min() > 0.8 * quadrants.max()

    def test_density_integrates_to_one(self):
        """Numerically integrate the bivariate density over a wide disk."""
        eps = 1.0
        xs = np.linspace(-15, 15, 301)
        grid_pts = np.array(np.meshgrid(xs, xs)).reshape(2, -1).T
        dens = planar_laplace_density(Point(0, 0), grid_pts, eps)
        cell = (xs[1] - xs[0]) ** 2
        assert dens.sum() * cell == pytest.approx(1.0, abs=0.01)


class TestMechanism:
    def test_epsilon_validation(self):
        with pytest.raises(MechanismError):
            PlanarLaplaceMechanism(0.0)

    def test_raw_output_is_continuous(self, rng):
        pl = PlanarLaplaceMechanism(1.0)
        z = pl.sample(Point(5, 5), rng)
        assert isinstance(z, Point)

    def test_grid_remap_snaps_to_centers(self, square20, rng):
        grid = RegularGrid(square20, 4)
        pl = PlanarLaplaceMechanism(0.5, grid=grid)
        centers = {c.as_tuple() for c in grid.centers()}
        for _ in range(50):
            z = pl.sample(Point(10, 10), rng)
            assert z.as_tuple() in centers

    def test_bounds_clamp(self, rng):
        box = BoundingBox(0, 0, 2, 2)
        pl = PlanarLaplaceMechanism(0.2, bounds=box)
        for _ in range(100):
            z = pl.sample(Point(1, 1), rng)
            assert box.contains(z)

    def test_sample_many_matches_sample_statistically(self, square20, rng):
        grid = RegularGrid(square20, 4)
        pl = PlanarLaplaceMechanism(0.8, grid=grid)
        xs = [Point(10, 10)] * 2000
        zs = pl.sample_many(xs, rng)
        losses_batch = np.mean([x.distance_to(z) for x, z in zip(xs, zs)])
        losses_single = np.mean(
            [Point(10, 10).distance_to(pl.sample(Point(10, 10), rng))
             for _ in range(2000)]
        )
        assert losses_batch == pytest.approx(losses_single, rel=0.1)

    def test_sample_many_empty(self, rng):
        assert PlanarLaplaceMechanism(1.0).sample_many([], rng) == []

    @given(st.floats(min_value=0.2, max_value=2.0))
    @settings(max_examples=10, deadline=None)
    def test_more_budget_means_less_noise(self, eps):
        rng = np.random.default_rng(0)
        x = Point(0, 0)
        loss_lo = np.mean(
            [x.distance_to(sample_planar_laplace(x, eps, rng))
             for _ in range(500)]
        )
        loss_hi = np.mean(
            [x.distance_to(sample_planar_laplace(x, 2 * eps, rng))
             for _ in range(500)]
        )
        assert loss_hi < loss_lo


class TestDiscretisedMatrix:
    def test_rows_stochastic(self, square20):
        grid = RegularGrid(square20, 3)
        m = planar_laplace_matrix(grid, 0.5)
        assert m.k.sum(axis=1) == pytest.approx(np.ones(9))

    def test_diagonal_dominates_neighbours(self, square20):
        grid = RegularGrid(square20, 3)
        m = planar_laplace_matrix(grid, 0.5)
        center = 4  # middle cell
        assert m.k[center, center] == m.k[center].max()

    def test_satisfies_geoind_with_slack(self, square20):
        """The snapped PL matrix must stay within eps on cell centres.

        The underlying continuous mechanism is exactly eps-GeoInd; the
        matrix discretisation (midpoint quadrature + renormalisation)
        can only distort ratios slightly, so the verification runs with
        a small multiplicative margin.
        """
        grid = RegularGrid(square20, 3)
        eps = 0.5
        m = planar_laplace_matrix(grid, eps, quadrature=6)
        report = verify_geoind(m, eps * 1.05)
        assert report.satisfied

    def test_quadrature_validation(self, square20):
        with pytest.raises(MechanismError):
            planar_laplace_matrix(RegularGrid(square20, 2), 0.5, quadrature=0)

    def test_matrix_loss_close_to_monte_carlo(self, square20, rng):
        """Exact matrix loss ~ sampled loss of the real mechanism."""
        from repro.geo.metric import EUCLIDEAN

        grid = RegularGrid(square20, 4)
        eps = 0.7
        m = planar_laplace_matrix(grid, eps, quadrature=6)
        prior = np.zeros(16)
        prior[5] = 1.0
        exact = m.expected_loss(prior, EUCLIDEAN)

        pl = PlanarLaplaceMechanism(eps, grid=grid)
        x = grid.cell_by_index(5).center
        mc = np.mean(
            [x.distance_to(pl.sample(x, rng)) for _ in range(4000)]
        )
        assert exact == pytest.approx(mc, rel=0.15)
