"""Unit and property tests for the budget model (lattice sums, Phi,
Problem 1, Algorithm 2)."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.exceptions import BudgetError
from repro.core.budget import (
    allocate_budget,
    allocate_budget_fixed_height,
    dirichlet_beta,
    lattice_sum,
    lattice_sum_direct,
    lattice_sum_series,
    min_epsilon_for_rho,
    min_lattice_parameter,
    phi,
    phi_for_grid,
    riemann_zeta,
    series_coefficient,
    truncation_radius,
)


class TestSpecialFunctions:
    def test_dirichlet_beta_known_values(self):
        # beta(1) = pi/4, beta(2) = Catalan, beta(3) = pi^3/32.
        assert dirichlet_beta(1.0) == pytest.approx(math.pi / 4, abs=1e-12)
        assert dirichlet_beta(2.0) == pytest.approx(0.9159655941772190, abs=1e-12)
        assert dirichlet_beta(3.0) == pytest.approx(math.pi**3 / 32, abs=1e-12)

    def test_dirichlet_beta_matches_series(self):
        u = 1.5
        direct = sum((-1) ** n / (2 * n + 1) ** u for n in range(200000))
        assert dirichlet_beta(u) == pytest.approx(direct, abs=1e-7)

    def test_riemann_zeta_known_value(self):
        assert riemann_zeta(2.0) == pytest.approx(math.pi**2 / 6, abs=1e-12)

    def test_domain_validation(self):
        with pytest.raises(BudgetError):
            dirichlet_beta(0.0)
        with pytest.raises(BudgetError):
            riemann_zeta(1.0)
        with pytest.raises(BudgetError):
            series_coefficient(0)


class TestLatticeSum:
    def test_validation(self):
        with pytest.raises(BudgetError):
            lattice_sum_direct(0.0)
        with pytest.raises(BudgetError):
            lattice_sum_series(-1.0)
        with pytest.raises(BudgetError):
            lattice_sum_series(7.0)  # beyond 2 pi

    def test_truncation_radius_monotone(self):
        assert truncation_radius(0.5) > truncation_radius(2.0)

    def test_limits(self):
        # T -> 1 as s -> inf (only the origin survives).
        assert lattice_sum_direct(50.0) == pytest.approx(1.0, abs=1e-12)
        # T ~ 2 pi / s^2 as s -> 0 (Poisson leading term).
        s = 0.01
        assert lattice_sum(s) == pytest.approx(2 * math.pi / s**2, rel=1e-3)

    def test_first_shells_dominate_at_large_s(self):
        # T(s) ~ 1 + 4 e^{-s} + 4 e^{-s sqrt(2)} for large s (the four
        # axis neighbours plus the four diagonal ones).
        s = 12.0
        two_shells = 4 * math.exp(-s) + 4 * math.exp(-s * math.sqrt(2))
        assert lattice_sum_direct(s) - 1.0 == pytest.approx(
            two_shells, rel=1e-4
        )

    @given(st.floats(min_value=0.2, max_value=3.9))
    @settings(max_examples=40, deadline=None)
    def test_series_matches_direct_sum(self, s):
        """The paper's Eq. (8)/(9) agrees with brute-force summation."""
        assert lattice_sum_series(s) == pytest.approx(
            lattice_sum_direct(s), rel=1e-10
        )

    @given(
        st.floats(min_value=0.1, max_value=3.0),
        st.floats(min_value=0.1, max_value=3.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_monotone_decreasing(self, a, b):
        lo, hi = sorted((a, b))
        if hi - lo < 1e-9:
            return
        assert lattice_sum(lo) > lattice_sum(hi)

    def test_dispatch_is_continuous_at_cutoff(self):
        below = lattice_sum(3.999999)
        above = lattice_sum(4.000001)
        assert below == pytest.approx(above, rel=1e-6)


class TestPhi:
    def test_phi_in_unit_interval(self):
        for eps in (0.05, 0.5, 2.0):
            for side in (1.0, 5.0, 10.0):
                value = phi(eps, side)
                assert 0.0 < value < 1.0

    def test_phi_increases_with_budget(self):
        assert phi(0.2, 5.0) < phi(0.5, 5.0) < phi(1.5, 5.0)

    def test_phi_increases_with_cell_size(self):
        assert phi(0.5, 2.0) < phi(0.5, 10.0)

    def test_phi_for_grid_parametrisation(self):
        assert phi_for_grid(0.5, 20.0, 4) == pytest.approx(phi(0.5, 5.0))

    def test_validation(self):
        with pytest.raises(BudgetError):
            phi(0.0, 5.0)
        with pytest.raises(BudgetError):
            phi(0.5, 0.0)
        with pytest.raises(BudgetError):
            phi_for_grid(0.5, 20.0, 0)


class TestProblem1:
    @pytest.mark.parametrize("rho", [0.3, 0.5, 0.8, 0.95])
    def test_root_achieves_target(self, rho):
        s = min_lattice_parameter(rho)
        assert 1.0 / lattice_sum(s) == pytest.approx(rho, abs=1e-8)

    def test_monotone_in_rho(self):
        assert min_lattice_parameter(0.5) < min_lattice_parameter(0.9)

    def test_epsilon_scales_inversely_with_cell(self):
        e1 = min_epsilon_for_rho(0.8, 10.0)
        e2 = min_epsilon_for_rho(0.8, 5.0)
        assert e2 == pytest.approx(2 * e1, rel=1e-9)

    def test_phi_at_solution_meets_rho(self):
        eps = min_epsilon_for_rho(0.7, 6.67)
        assert phi(eps, 6.67) == pytest.approx(0.7, abs=1e-6)

    def test_validation(self):
        with pytest.raises(BudgetError):
            min_lattice_parameter(0.0)
        with pytest.raises(BudgetError):
            min_lattice_parameter(1.0)
        with pytest.raises(BudgetError):
            min_epsilon_for_rho(0.8, 0.0)


class TestAlgorithm2:
    def test_budgets_sum_to_total(self):
        for eps in (0.1, 0.5, 1.3, 4.0):
            plan = allocate_budget(eps, 3, 20.0, rho=0.8)
            assert sum(plan.budgets) == pytest.approx(eps)

    def test_all_budgets_positive(self):
        plan = allocate_budget(2.0, 3, 20.0, rho=0.8)
        assert all(b > 0 for b in plan.budgets)

    def test_requirements_grow_by_g(self):
        plan = allocate_budget(5.0, 3, 20.0, rho=0.8)
        for r1, r2 in zip(plan.requirements, plan.requirements[1:]):
            assert r2 == pytest.approx(3 * r1, rel=1e-9)

    def test_height_grows_with_budget(self):
        h = [
            allocate_budget(eps, 3, 20.0, rho=0.8).height
            for eps in (0.3, 0.9, 3.0)
        ]
        assert h[0] <= h[1] <= h[2]
        assert h[0] == 1 and h[2] >= 2

    def test_small_budget_single_starved_level(self):
        plan = allocate_budget(0.1, 4, 20.0, rho=0.8)
        assert plan.height == 1
        assert plan.is_starved
        assert plan.starved_levels == (0,)

    def test_exact_requirement_not_starved(self):
        req = min_epsilon_for_rho(0.8, 20.0 / 3)
        plan = allocate_budget(req, 3, 20.0, rho=0.8)
        assert plan.height == 1
        assert not plan.is_starved

    def test_upper_levels_fully_funded(self):
        plan = allocate_budget(1.5, 3, 20.0, rho=0.8)
        assert plan.height >= 2
        for i in range(plan.height - 1):
            assert plan.budgets[i] == pytest.approx(plan.requirements[i])

    def test_max_height_respected(self):
        plan = allocate_budget(100.0, 2, 20.0, rho=0.5, max_height=3)
        assert plan.height == 3
        assert sum(plan.budgets) == pytest.approx(100.0)

    def test_leaf_granularity(self):
        plan = allocate_budget(0.9, 4, 20.0, rho=0.8)
        assert plan.leaf_granularity == 4**plan.height

    def test_validation(self):
        with pytest.raises(BudgetError):
            allocate_budget(0.0, 3, 20.0)
        with pytest.raises(BudgetError):
            allocate_budget(0.5, 1, 20.0)
        with pytest.raises(BudgetError):
            allocate_budget(0.5, 3, 0.0)
        with pytest.raises(BudgetError):
            allocate_budget(0.5, 3, 20.0, max_height=0)

    @given(
        st.floats(min_value=0.05, max_value=5.0),
        st.integers(min_value=2, max_value=6),
        st.floats(min_value=0.4, max_value=0.95),
    )
    @settings(max_examples=50, deadline=None)
    def test_invariants_hold_for_any_inputs(self, eps, g, rho):
        plan = allocate_budget(eps, g, 20.0, rho=rho)
        assert sum(plan.budgets) == pytest.approx(eps)
        assert all(b > 0 for b in plan.budgets)
        assert 1 <= plan.height <= 16
        # Only the last level may be starved.
        assert all(i == plan.height - 1 for i in plan.starved_levels)


class TestBudgetProperties:
    """Property layer for the budget model (PR-2 satellite).

    Pins down the three contracts the batch engine leans on: the
    allocation responds monotonically to the same-cell target ``rho``,
    no allocator ever hands out more budget than the caller configured,
    and the two ``T(s)`` implementations agree to 1e-9 across the
    crossover region where the library switches between them.
    """

    @given(
        st.floats(min_value=0.35, max_value=0.95),
        st.floats(min_value=0.35, max_value=0.95),
        st.floats(min_value=2.0, max_value=15.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_requirement_monotone_in_rho(self, a, b, side):
        """A stricter same-cell target never gets cheaper."""
        lo, hi = sorted((a, b))
        assume(hi - lo > 1e-6)
        assert min_epsilon_for_rho(lo, side) <= min_epsilon_for_rho(hi, side)

    @given(
        st.floats(min_value=0.1, max_value=4.0),
        st.integers(min_value=2, max_value=5),
        st.floats(min_value=0.35, max_value=0.9),
        st.floats(min_value=0.35, max_value=0.9),
    )
    @settings(max_examples=50, deadline=None)
    def test_allocation_monotone_in_rho(self, eps, g, a, b):
        """Raising rho never deepens the tree and never lowers the
        per-level requirements the allocator funds against."""
        lo, hi = sorted((a, b))
        assume(hi - lo > 1e-6)
        plan_lo = allocate_budget(eps, g, 20.0, rho=lo)
        plan_hi = allocate_budget(eps, g, 20.0, rho=hi)
        assert plan_hi.height <= plan_lo.height
        shared = min(plan_lo.height, plan_hi.height)
        for i in range(shared):
            assert (
                plan_hi.requirements[i]
                >= plan_lo.requirements[i] * (1.0 - 1e-9)
            )

    @given(
        st.floats(min_value=0.05, max_value=5.0),
        st.integers(min_value=2, max_value=6),
        st.floats(min_value=0.4, max_value=0.95),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_budgets_sum_at_most_epsilon(self, eps, g, rho, height):
        """No allocator hands out more than the configured budget."""
        free = allocate_budget(eps, g, 20.0, rho=rho)
        pinned = allocate_budget_fixed_height(
            eps, g, 20.0, height=height, rho=rho
        )
        for plan in (free, pinned):
            assert sum(plan.budgets) <= eps * (1.0 + 1e-9)
            assert all(b > 0 for b in plan.budgets)

    @given(st.floats(min_value=3.0, max_value=5.5))
    @settings(max_examples=60, deadline=None)
    def test_series_matches_direct_in_crossover_region(self, s):
        """Eq. (8)/(9) series vs brute-force lattice sum around the
        dispatch cutoff at s = 4: both sides of the switch must agree
        to 1e-9 so the budget model is continuous in s."""
        assert lattice_sum_series(s) == pytest.approx(
            lattice_sum_direct(s), rel=1e-9
        )


class TestFixedHeight:
    def test_respects_height_and_total(self):
        plan = allocate_budget_fixed_height(0.5, 4, 20.0, height=2)
        assert plan.height == 2
        assert sum(plan.budgets) == pytest.approx(0.5)
        assert all(b > 0 for b in plan.budgets)

    def test_greedy_when_affordable(self):
        """Matches free allocation when Algorithm 2 would pick the height."""
        free = allocate_budget(0.5, 3, 20.0, rho=0.8)
        assert free.height == 2
        pinned = allocate_budget_fixed_height(0.5, 3, 20.0, height=2, rho=0.8)
        assert pinned.budgets == pytest.approx(free.budgets)

    def test_top_heavy_fallback_when_starved(self):
        plan = allocate_budget_fixed_height(0.5, 4, 20.0, height=2, rho=0.8)
        # requirement at level 1 (0.62) exceeds the whole budget: the
        # split is top-heavy with inverse-requirement weights g : 1.
        assert plan.budgets[0] == pytest.approx(0.4, rel=1e-6)
        assert plan.budgets[1] == pytest.approx(0.1, rel=1e-6)

    def test_validation(self):
        with pytest.raises(BudgetError):
            allocate_budget_fixed_height(0.5, 4, 20.0, height=0)
        with pytest.raises(BudgetError):
            allocate_budget_fixed_height(0.0, 4, 20.0, height=2)


class TestAccountantAdmissionConsistency:
    """The unified relative-tolerance admission rule
    (:func:`repro.privacy.composition.fits_budget`) must make the
    accountant's *prediction* of affordable reports equal the number of
    spends that actually succeed — the two code paths used to apply
    different nudges and could disagree by one report near exact
    exhaustion (e.g. total=1.0, per-report=0.1: ten spends succeed but
    the old floor-division predicted nine)."""

    @given(
        total=st.floats(min_value=1e-6, max_value=1e4),
        divisor=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=200, deadline=None)
    def test_affordable_equals_successful_spends(self, total, divisor):
        from repro.privacy.composition import BudgetAccountant

        per_report = total / divisor
        accountant = BudgetAccountant(total=total)
        predicted = accountant.affordable(per_report)
        succeeded = 0
        while accountant.can_spend(per_report):
            accountant.spend(per_report)
            succeeded += 1
            assert succeeded <= predicted + divisor  # runaway guard
        assert succeeded == predicted
        # and afterwards the accountant predicts exactly zero more
        assert accountant.affordable(per_report) == 0

    @given(
        total=st.floats(min_value=1e-3, max_value=100.0),
        per_report=st.floats(min_value=1e-4, max_value=10.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_affordable_with_unrelated_amounts(self, total, per_report):
        """Same property when per-report does not divide the total."""
        from repro.privacy.composition import BudgetAccountant

        assume(per_report <= total)
        accountant = BudgetAccountant(total=total)
        predicted = accountant.affordable(per_report)
        succeeded = 0
        while accountant.can_spend(per_report):
            accountant.spend(per_report)
            succeeded += 1
        assert succeeded == predicted

    @given(divisor=st.integers(min_value=1, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_session_reports_remaining_is_exact(self, divisor):
        """Session-level end-to-end: ``reports_remaining`` equals the
        number of ``report()`` calls that actually succeed, through a
        stub mechanism (no LP work, pure accounting)."""
        from repro.geo.point import Point
        from repro.core.engine import WalkResult
        from repro.core.resilience import DegradationReport
        from repro.core.session import SanitizationSession
        from repro.exceptions import BudgetError

        class _EchoMechanism:
            epsilon = 1.0 / divisor
            name = "echo"

            def sample_with_report(self, x, rng):
                return WalkResult(
                    point=x, trace=(), degradation=DegradationReport(())
                )

        session = SanitizationSession(
            lifetime_epsilon=1.0,
            per_report_epsilon=1.0 / divisor,
            mechanism=_EchoMechanism(),
        )
        predicted = session.reports_remaining
        rng = np.random.default_rng(0)
        succeeded = 0
        while session.can_report():
            session.report(Point(1.0, 1.0), rng)
            succeeded += 1
        assert succeeded == predicted
        assert session.reports_remaining == 0
        with pytest.raises(BudgetError):
            session.report(Point(1.0, 1.0), rng)


# ----------------------------------------------------------------------
# sharded serving: routing purity + the cross-restart spend invariant
# ----------------------------------------------------------------------
class TestShardRoutingProperty:
    """The pool's shard router must be a stable *pure* function of
    ``(user_id, n_workers)`` — it names which journal file owns a
    user's spend, so any ambient dependence (process hash salt, map
    iteration order, locale) would double-track budgets."""

    @given(
        user=st.text(max_size=64),
        workers=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_stable_pure_and_in_range(self, user, workers):
        import hashlib

        from repro.serve.pool import shard_for_user

        shard = shard_for_user(user, workers)
        assert 0 <= shard < workers
        # idempotent under repetition (no hidden state)
        assert shard_for_user(user, workers) == shard
        # pinned to the documented definition: SHA-256 of the UTF-8
        # id, first 8 bytes big-endian, mod the worker count —
        # changing this is an on-disk data-migration event
        digest = hashlib.sha256(user.encode("utf-8")).digest()
        assert shard == int.from_bytes(digest[:8], "big") % workers

    @given(user=st.text(max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_single_worker_pool_is_total(self, user):
        from repro.serve.pool import shard_for_user

        assert shard_for_user(user, 1) == 0


class TestCrossRestartBudgetInvariant:
    """Per-user spend summed across shard restarts never exceeds the
    lifetime budget: every incarnation of a shard worker replays its
    journal into a fresh :class:`ShardBudgetBook` before admitting,
    so delivered reports across any kill/restart schedule stay within
    what one uninterrupted accountant would have allowed."""

    @given(
        attempts_per_life=st.lists(
            st.integers(min_value=0, max_value=6),
            min_size=1,
            max_size=4,
        ),
        affordable=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_delivered_spend_bounded_across_restarts(
        self, attempts_per_life, affordable
    ):
        import tempfile
        from pathlib import Path

        from repro.core.ledger import BudgetLedger, replay_journal
        from repro.serve.pool import ShardBudgetBook

        per = 0.5  # dyadic: multiples are exact in floats
        lifetime = per * affordable
        delivered = 0
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "shard.journal"
            for attempts in attempts_per_life:
                ledger = BudgetLedger(path, sync=False)
                book = ShardBudgetBook(lifetime, per, ledger=ledger)
                for _ in range(attempts):
                    try:
                        entry_id = book.admit("u")
                    except BudgetError:
                        continue
                    book.settle("u", entry_id)
                    delivered += 1
                ledger.close()  # the restart boundary
            replay = replay_journal(path)
        # the invariant: total delivered spend fits the lifetime
        assert delivered * per <= lifetime
        # and restarts lose nothing: exactly the affordable count is
        # delivered, no more (no reset) and no less (no phantom spend)
        assert delivered == min(affordable, sum(attempts_per_life))
        assert replay.spent_for("u") == delivered * per

    @given(
        plan=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # settled
                st.integers(min_value=0, max_value=2),  # orphaned
            ),
            min_size=1,
            max_size=4,
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_orphaned_reservations_replay_as_spend(self, plan):
        """A reservation with no commit (the worker died holding it)
        must replay as spend — fail closed — so delivered + orphaned
        together never exceed the lifetime."""
        import tempfile
        from pathlib import Path

        from repro.core.ledger import BudgetLedger, replay_journal
        from repro.serve.pool import ShardBudgetBook

        per = 0.5
        lifetime = 2.0  # affords 4 reports
        delivered = orphaned = 0
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "shard.journal"
            for settled_n, orphan_n in plan:
                ledger = BudgetLedger(path, sync=False)
                book = ShardBudgetBook(lifetime, per, ledger=ledger)
                for _ in range(settled_n):
                    try:
                        entry_id = book.admit("u")
                    except BudgetError:
                        continue
                    book.settle("u", entry_id)
                    delivered += 1
                for _ in range(orphan_n):
                    try:
                        book.admit("u")  # reserved, never settled
                        orphaned += 1
                    except BudgetError:
                        continue
                ledger.close()  # orphans stay open in the journal
            replay = replay_journal(path)
        assert (delivered + orphaned) * per <= lifetime
        # replay counts every orphan as spent: >= the delivered spend
        assert replay.spent_for("u") == (delivered + orphaned) * per
