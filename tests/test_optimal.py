"""Unit tests for the optimal mechanism (OPT)."""

import numpy as np
import pytest

from repro.exceptions import MechanismError, SolverError
from repro.geo.metric import EUCLIDEAN, SQUARED_EUCLIDEAN
from repro.geo.point import Point
from repro.grid.regular import RegularGrid
from repro.mechanisms.exponential import exponential_matrix
from repro.mechanisms.optimal import (
    OptimalMechanism,
    build_optimal_program,
    optimal_mechanism_from_locations,
)
from repro.mechanisms.planar_laplace import planar_laplace_matrix
from repro.priors.base import GridPrior
from repro.privacy import verify_geoind


def line(n: int) -> list[Point]:
    return [Point(float(i), 0.0) for i in range(n)]


class TestProgramConstruction:
    def test_variable_and_constraint_counts(self):
        pts = line(4)
        prior = np.full(4, 0.25)
        program = build_optimal_program(0.5, pts, prior, EUCLIDEAN)
        assert program.n_vars == 16
        # n^2 (n-1) GeoInd rows + n equality rows.
        assert program.a_ub.shape[0] == 16 * 3
        assert program.a_eq.shape[0] == 4

    def test_restricted_constraint_pairs(self):
        pts = line(4)
        prior = np.full(4, 0.25)
        pairs = [(0, 1), (1, 0)]
        program = build_optimal_program(
            0.5, pts, prior, EUCLIDEAN, constraint_pairs=pairs
        )
        assert program.a_ub.shape[0] == 2 * 4

    def test_validation(self):
        with pytest.raises(MechanismError):
            build_optimal_program(0.0, line(2), np.ones(2) / 2, EUCLIDEAN)
        with pytest.raises(MechanismError):
            build_optimal_program(0.5, [], np.ones(0), EUCLIDEAN)
        with pytest.raises(MechanismError):
            build_optimal_program(0.5, line(2), np.ones(3), EUCLIDEAN)
        with pytest.raises(MechanismError):
            build_optimal_program(
                0.5, line(2), np.ones(2) / 2, EUCLIDEAN,
                constraint_pairs=[(0, 5)],
            )


class TestOptimality:
    def test_two_point_closed_form(self):
        """For two locations at distance d, the optimal diagonal is
        e^(eps d) / (1 + e^(eps d)) under a uniform prior."""
        eps, d = 0.8, 1.0
        pts = line(2)
        res = optimal_mechanism_from_locations(
            eps, pts, np.array([0.5, 0.5]), EUCLIDEAN
        )
        expected = np.exp(eps * d) / (1 + np.exp(eps * d))
        diag = np.diag(res.matrix.k)
        assert diag == pytest.approx([expected, expected], abs=1e-6)

    def test_satisfies_geoind_tightly(self, uniform3):
        opt = OptimalMechanism(0.5, uniform3)
        report = verify_geoind(opt.matrix, 0.5)
        assert report.satisfied
        # The optimum saturates its constraints.
        assert report.epsilon_tight == pytest.approx(0.5, rel=1e-3)

    def test_beats_exponential_and_pl_matrices(self, coarse_prior):
        """OPT's expected loss is the minimum over GeoInd mechanisms."""
        eps = 0.5
        grid = coarse_prior.grid
        opt = OptimalMechanism(eps, coarse_prior)
        opt_loss = opt.matrix.expected_loss(
            coarse_prior.probabilities, EUCLIDEAN
        )
        for rival in (
            exponential_matrix(grid, eps),
            planar_laplace_matrix(grid, eps),
        ):
            rival_loss = rival.expected_loss(
                coarse_prior.probabilities, EUCLIDEAN
            )
            assert opt_loss <= rival_loss + 1e-9

    def test_objective_equals_matrix_expected_loss(self, coarse_prior):
        opt = OptimalMechanism(0.5, coarse_prior)
        assert opt.result.expected_loss == pytest.approx(
            opt.matrix.expected_loss(coarse_prior.probabilities, EUCLIDEAN),
            abs=1e-8,
        )

    def test_loss_decreases_with_epsilon(self, coarse_prior):
        losses = [
            OptimalMechanism(eps, coarse_prior).result.expected_loss
            for eps in (0.1, 0.5, 1.0)
        ]
        assert losses[0] >= losses[1] >= losses[2]

    def test_squared_euclidean_objective(self, coarse_prior):
        opt = OptimalMechanism(0.5, coarse_prior, dq=SQUARED_EUCLIDEAN)
        report = verify_geoind(opt.matrix, 0.5)
        assert report.satisfied
        # d2-optimised mechanism should beat d-optimised on d2 loss.
        opt_d = OptimalMechanism(0.5, coarse_prior, dq=EUCLIDEAN)
        assert opt.matrix.expected_loss(
            coarse_prior.probabilities, SQUARED_EUCLIDEAN
        ) <= opt_d.matrix.expected_loss(
            coarse_prior.probabilities, SQUARED_EUCLIDEAN
        ) + 1e-9

    def test_prior_tilts_output(self, square20):
        """A concentrated prior pulls reported mass towards its mode."""
        grid = RegularGrid(square20, 3)
        probs = np.full(9, 0.01)
        probs[4] = 0.92
        prior = GridPrior(grid, probs)
        opt = OptimalMechanism(0.3, prior)
        out = opt.matrix.output_distribution(prior.probabilities)
        assert out[4] == out.max()

    def test_single_location_degenerate(self):
        res = optimal_mechanism_from_locations(
            0.5, [Point(0, 0)], np.ones(1), EUCLIDEAN
        )
        assert res.matrix.k == pytest.approx(np.ones((1, 1)))

    def test_backends_agree(self, uniform3):
        a = OptimalMechanism(0.5, uniform3, backend="highs-ds")
        b = OptimalMechanism(0.5, uniform3, backend="highs-ipm")
        assert a.result.expected_loss == pytest.approx(
            b.result.expected_loss, abs=1e-6
        )

    def test_simplex_backend_on_tiny_instance(self, square20):
        grid = RegularGrid(square20, 2)
        prior = GridPrior.uniform(grid)
        a = OptimalMechanism(0.5, prior, backend="simplex")
        b = OptimalMechanism(0.5, prior, backend="highs-ds")
        assert a.result.expected_loss == pytest.approx(
            b.result.expected_loss, abs=1e-7
        )

    def test_time_limit_raises(self, small_dataset):
        """An absurdly small time limit must surface as SolverError."""
        grid = RegularGrid(small_dataset.bounds, 7)
        prior = GridPrior.uniform(grid)
        with pytest.raises(SolverError):
            OptimalMechanism(0.5, prior, time_limit=1e-4)

    def test_grid_mechanism_sampling(self, coarse_prior, rng):
        opt = OptimalMechanism(0.5, coarse_prior)
        centers = {c.as_tuple() for c in coarse_prior.grid.centers()}
        z = opt.sample(Point(1.0, 1.0), rng)
        assert z.as_tuple() in centers


class TestSpannerMode:
    def test_spanner_reduces_constraints_and_keeps_privacy(self, uniform3):
        exact = OptimalMechanism(0.5, uniform3)
        spanner = OptimalMechanism(0.5, uniform3, spanner_dilation=1.5)
        assert spanner.result.n_constraints < exact.result.n_constraints
        assert verify_geoind(spanner.matrix, 0.5).satisfied

    def test_spanner_utility_never_better_than_exact(self, uniform3):
        """Running edges at eps/dilation is conservative: loss >= exact."""
        exact = OptimalMechanism(0.5, uniform3).result.expected_loss
        reduced = OptimalMechanism(
            0.5, uniform3, spanner_dilation=1.5
        ).result.expected_loss
        assert reduced >= exact - 1e-9
