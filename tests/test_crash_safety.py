"""Crash-safety suite: the durable budget ledger under scripted deaths.

The invariant under test, at every injected crash point and every form
of file corruption: **the replayed per-user spend is at least what the
user actually received, and never exceeds the configured lifetime
budget.**  Failures may cost utility (a refused request, a rebuilt
bundle); they must never refund epsilon.

Layers:

* journal semantics — replay, idempotent ids, torn tails, mid-file
  corruption, compaction, sequence continuity;
* crash points — :class:`~repro.testing.CrashingLedger` dies between
  reserve and commit (and around every other op) while the journal
  survives for a restarted server to replay;
* deadlines and cancellation — an abandoned request refunds *before*
  sampling, an expired one never samples;
* the circuit breaker — trips after consecutive chain failures,
  short-circuits while open, half-opens on a (fake) timer, closes on a
  good probe;
* store recovery — corrupt or truncated bundles are quarantined and
  rebuilt, never served and never fatal;
* process level (``chaos`` marker) — SIGKILL against a live serving
  process, then replay + warm restart over the surviving journal.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.core.ledger import BudgetLedger, replay_journal
from repro.core.resilience import (
    BreakerConfig,
    CircuitBreakerSolver,
    ResilienceConfig,
    ResilientSolver,
)
from repro.core.store import MechanismStore
from repro.exceptions import (
    BudgetError,
    CircuitOpenError,
    LedgerError,
    ServeError,
    SolverRetryExhaustedError,
)
from repro.geo.point import Point
from repro.grid.regular import RegularGrid
from repro.lp import LinearProgramBuilder
from repro.priors.base import GridPrior
from repro.serve import SanitizationServer, ServerConfig
from repro.testing import (
    CrashError,
    CrashFault,
    CrashingLedger,
    CrashPoint,
    FaultInjectingSolver,
    RaiseFault,
    corrupt_journal_entry,
    flip_byte,
    truncate_tail,
)

SEED = 20190326
EPS = 1.0


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
@pytest.fixture
def serve_prior(square20) -> GridPrior:
    return GridPrior.uniform(RegularGrid(square20, 4))


def _server(
    serve_prior,
    ledger,
    lifetime=4.0,
    window=0.01,
    retry_attempts=0,
    retry_backoff=0.001,
) -> SanitizationServer:
    config = ServerConfig(
        lifetime_epsilon=lifetime,
        per_report_epsilon=EPS,
        coalesce_window=window,
        retry_attempts=retry_attempts,
        retry_backoff=retry_backoff,
    )
    return SanitizationServer.build(
        serve_prior, config, granularity=2, seed=SEED, ledger=ledger
    )


def _journal_invariant(path, delivered: dict[str, int], lifetime: float):
    """The acceptance invariant: replayed spend bounds what each user
    received, without exceeding the lifetime budget."""
    replay = replay_journal(path)
    for user, n in delivered.items():
        assert replay.spent_for(user) >= n * EPS - 1e-9, (
            f"{user}: replayed {replay.spent_for(user)} < delivered {n}"
        )
    for user, spent in replay.spent.items():
        assert spent <= lifetime + 1e-9, (
            f"{user}: replayed {spent} exceeds lifetime {lifetime}"
        )
    return replay


# ----------------------------------------------------------------------
# journal semantics
# ----------------------------------------------------------------------
class TestLedgerReplay:
    def test_reserve_commit_release_roundtrip(self, tmp_path):
        path = tmp_path / "journal"
        with BudgetLedger(path) as ledger:
            a = ledger.reserve("u1", 0.5)
            b = ledger.reserve("u1", 0.5)
            c = ledger.reserve("u2", 1.0)
            ledger.commit(a)
            ledger.release(b)  # provably never sampled
            assert ledger.spent_for("u1") == pytest.approx(0.5)
            assert ledger.spent_for("u2") == pytest.approx(1.0)

        replay = replay_journal(path)
        assert replay.spent_for("u1") == pytest.approx(0.5)
        # c was never settled: an open reservation still counts as spend
        assert replay.spent_for("u2") == pytest.approx(1.0)
        assert set(replay.open_reservations) == {c}
        assert replay.corrupt_lines == 0

    def test_open_reservation_is_spend_after_crash(self, tmp_path):
        """Reserve, then 'crash' (drop the handle without commit): the
        epsilon is gone — fail closed."""
        path = tmp_path / "journal"
        ledger = BudgetLedger(path)
        ledger.reserve("u", 2.0)
        # no commit, no close: simulate the process dying here
        del ledger
        replay = replay_journal(path)
        assert replay.spent_for("u") == pytest.approx(2.0)
        assert len(replay.open_reservations) == 1

    def test_duplicate_reserve_id_counts_once(self, tmp_path):
        """A retried append after an ambiguous crash cannot
        double-charge: replay dedups reservations by id."""
        path = tmp_path / "journal"
        with BudgetLedger(path) as ledger:
            ledger.reserve("u", 1.0)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines) + lines[-1])  # replayed append
        replay = replay_journal(path)
        assert replay.spent_for("u") == pytest.approx(1.0)

    def test_release_after_commit_is_noop(self, tmp_path):
        path = tmp_path / "journal"
        with BudgetLedger(path) as ledger:
            a = ledger.reserve("u", 1.0)
            ledger.commit(a)
            ledger.release(a)  # late refund attempt: the commit wins
            ledger.commit(a)  # and double-settle is idempotent
            assert ledger.spent_for("u") == pytest.approx(1.0)
        assert replay_journal(path).spent_for("u") == pytest.approx(1.0)

    def test_settle_unknown_id_raises(self, tmp_path):
        with BudgetLedger(tmp_path / "journal") as ledger:
            with pytest.raises(LedgerError, match="unknown"):
                ledger.commit("ghost-1")
            with pytest.raises(LedgerError, match="unknown"):
                ledger.release("ghost-1")
            with pytest.raises(LedgerError, match="positive"):
                ledger.reserve("u", 0.0)

    def test_torn_tail_skipped_never_fatal(self, tmp_path):
        """The classic crash artefact: a partial final line.  Replay
        skips it, counts it, and keeps every whole entry."""
        path = tmp_path / "journal"
        with BudgetLedger(path) as ledger:
            a = ledger.reserve("u", 1.0)
            ledger.commit(a)
            ledger.reserve("u", 1.0)
        truncate_tail(path, 7)  # tear the last reserve mid-line
        replay = replay_journal(path)
        assert replay.corrupt_lines == 1
        # the torn reserve is lost, the committed one fully counted
        assert replay.spent_for("u") == pytest.approx(1.0)
        # and a fresh ledger opens over the damage without raising
        with BudgetLedger(path) as reopened:
            assert reopened.spent_for("u") == pytest.approx(1.0)

    def test_corrupt_release_never_refunds(self, tmp_path):
        """A flipped byte in a *release* line must not matter: releases
        only ever subtract, so losing one errs toward counting spend."""
        path = tmp_path / "journal"
        with BudgetLedger(path) as ledger:
            a = ledger.reserve("u", 1.0)
            ledger.release(a)
            assert ledger.spent_for("u") == 0.0
        corrupt_journal_entry(path, 1)  # destroy the release line
        replay = replay_journal(path)
        assert replay.corrupt_lines == 1
        # without its release the reservation replays as spend: the
        # corruption *increased* the account, never refunded it
        assert replay.spent_for("u") == pytest.approx(1.0)

    def test_corruption_only_increases_spend(self, tmp_path):
        """Flip a byte in every line, one at a time: no single-line
        corruption may ever make any user's replayed spend exceed the
        uncorrupted account... in the refund direction.  (Losing a
        reserve loses its spend; losing its release regains it — both
        safe; a *gain* above reserved epsilon would be a bug.)"""
        path = tmp_path / "journal"
        with BudgetLedger(path) as ledger:
            a = ledger.reserve("u1", 1.0)
            b = ledger.reserve("u2", 2.0)
            ledger.commit(a)
            ledger.release(b)
        baseline = replay_journal(path)
        n_lines = len(path.read_bytes().splitlines())
        pristine = path.read_bytes()
        for line_no in range(n_lines):
            path.write_bytes(pristine)
            corrupt_journal_entry(path, line_no)
            replay = replay_journal(path)
            assert replay.corrupt_lines == 1
            # total reserved epsilon is the hard ceiling per user
            assert replay.spent_for("u1") <= 1.0 + 1e-9
            assert replay.spent_for("u2") <= 2.0 + 1e-9
        assert baseline.spent_for("u1") == pytest.approx(1.0)

    def test_compaction_preserves_accounts_and_open_entries(
        self, tmp_path
    ):
        path = tmp_path / "journal"
        with BudgetLedger(path) as ledger:
            for _ in range(5):
                ledger.commit(ledger.reserve("u1", 0.5))
            open_id = ledger.reserve("u2", 1.5)
            size_before = path.stat().st_size
            entries = ledger.compact()
            assert entries == 2  # one snapshot + one open reserve
            assert path.stat().st_size < size_before
            assert ledger.spent_for("u1") == pytest.approx(2.5)
            # the re-emitted reservation is still settleable
            ledger.commit(open_id)

        replay = replay_journal(path)
        assert replay.spent_for("u1") == pytest.approx(2.5)
        assert replay.spent_for("u2") == pytest.approx(1.5)
        assert replay.open_reservations == {}

    def test_sequence_continues_after_compaction_and_reopen(
        self, tmp_path
    ):
        """Fresh ids after compaction/reopen never collide with ids
        still live in the journal (a collision would dedup a *real*
        reservation away — an undercount)."""
        path = tmp_path / "journal"
        with BudgetLedger(path) as ledger:
            ids = [ledger.reserve("u", 0.1) for _ in range(4)]
            ledger.compact()
            ids.append(ledger.reserve("u", 0.1))
        with BudgetLedger(path) as reopened:
            ids.append(reopened.reserve("u", 0.1))
            assert len(set(ids)) == len(ids)
            assert reopened.spent_for("u") == pytest.approx(0.6)


# ----------------------------------------------------------------------
# crash points: die between reserve and commit (and everywhere else)
# ----------------------------------------------------------------------
@pytest.mark.filterwarnings(
    # a CrashError on the dispatcher thread *is* the simulated death;
    # nothing in production may catch it, so pytest sees it unhandled
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
class TestCrashPoints:
    def test_crash_between_reserve_and_commit(self, tmp_path):
        """The canonical window: the reservation is durable, the commit
        never happens.  Replay counts the spend."""
        path = tmp_path / "journal"
        ledger = CrashingLedger(
            BudgetLedger(path),
            [CrashPoint("commit", nth=1, when="before")],
        )
        entry = ledger.reserve("u", EPS)
        with pytest.raises(CrashError):
            ledger.commit(entry)
        # the "dead process" leaves an open reservation behind
        replay = replay_journal(path)
        assert replay.spent_for("u") == pytest.approx(EPS)
        assert entry in replay.open_reservations

    def test_crash_after_commit_counts_once(self, tmp_path):
        path = tmp_path / "journal"
        ledger = CrashingLedger(
            BudgetLedger(path),
            [CrashPoint("commit", nth=1, when="after")],
        )
        entry = ledger.reserve("u", EPS)
        with pytest.raises(CrashError):
            ledger.commit(entry)  # durable, but the caller never knew
        assert replay_journal(path).spent_for("u") == pytest.approx(EPS)

    def test_crash_after_reserve_in_server_fails_closed(
        self, tmp_path, serve_prior
    ):
        """A server process dying right after journalling an admission:
        the caller gets an error, no report is delivered, and a
        restarted server replays the epsilon as spent."""
        path = tmp_path / "journal"
        crashing = CrashingLedger(
            BudgetLedger(path),
            [CrashPoint("reserve", nth=2, when="after")],
        )
        delivered = 0
        server = _server(serve_prior, crashing)
        with server:
            server.report("u", Point(5.0, 5.0))
            delivered += 1
            with pytest.raises(CrashError):
                server.submit("u", Point(6.0, 6.0))
        crashing.close()

        replay = _journal_invariant(path, {"u": delivered}, lifetime=4.0)
        assert replay.spent_for("u") == pytest.approx(2 * EPS)

        # the restarted server pre-charges the session and settles the
        # orphaned reservation as final spend
        restarted = _server(serve_prior, BudgetLedger(path))
        assert restarted.stats.replayed_users == 1
        assert restarted.stats.replayed_epsilon == pytest.approx(2 * EPS)
        session = restarted.session("u")
        assert session.spent == pytest.approx(2 * EPS)
        assert restarted.ledger.open_reservations() == {}
        with restarted:
            restarted.report("u", Point(5.0, 5.0))  # 2 of 4 remain
            restarted.report("u", Point(6.0, 6.0))
            with pytest.raises(BudgetError):
                restarted.report("u", Point(7.0, 7.0))
        restarted.ledger.close()

    def test_every_crash_point_upholds_invariant(
        self, tmp_path, serve_prior
    ):
        """Sweep the crash schedule across the protocol: wherever the
        process dies, replayed spend >= delivered reports."""
        points = [
            CrashPoint("reserve", nth=1, when="before"),
            CrashPoint("reserve", nth=1, when="after"),
            CrashPoint("reserve", nth=3, when="after"),
            CrashPoint("commit", nth=1, when="before"),
            CrashPoint("commit", nth=2, when="after"),
        ]
        for i, point in enumerate(points):
            path = tmp_path / f"journal-{i}"
            crashing = CrashingLedger(BudgetLedger(path), [point])
            delivered = 0
            server = _server(serve_prior, crashing, lifetime=10.0)
            try:
                with server:
                    for _ in range(4):
                        server.report("u", Point(5.0, 5.0), timeout=30)
                        delivered += 1
            except (CrashError, ServeError):
                pass
            finally:
                crashing.close()
            # commits run on the dispatcher thread; a crash there fails
            # the batch *after* delivery decisions, so re-read delivered
            # conservatively from what the test observed
            _journal_invariant(path, {"u": delivered}, lifetime=10.0)

    def test_mid_batch_solver_crash_charges_budget(
        self, tmp_path, serve_prior
    ):
        """A crash tearing through the engine mid-batch: sampling may
        already have begun, so every request in the batch is *charged*
        and its reservation committed — failed requests cost utility,
        never privacy.

        The fault is injected through a *bare* solver, not the
        resilience chain: :class:`ResilientSolver` is fail-closed
        against any substrate exception and would absorb the crash
        into a degraded (but delivered) walk.  Raw, the exception
        escapes ``sanitize_batch`` and exercises the server's
        batch-failure path."""
        from repro.core.msm import MultiStepMechanism

        class _BareCrashSolver:
            """LPSolver-protocol shim with no resilience chain."""

            def __init__(self):
                self._inner = FaultInjectingSolver([CrashFault()])

            def solve(self, problem, time_limit=None):
                return self._inner(problem, time_limit=time_limit)

        msm = MultiStepMechanism.build(
            1.0, 2, serve_prior, solver=_BareCrashSolver(), degrade=True
        )
        path = tmp_path / "journal"
        config = ServerConfig(
            lifetime_epsilon=4.0,
            per_report_epsilon=EPS,
            coalesce_window=0.2,
        )
        server = SanitizationServer(
            msm, config, ledger=BudgetLedger(path)
        )
        with server:
            pending = [
                server.submit("u", Point(5.0 + i, 5.0)) for i in range(2)
            ]
            for request in pending:
                assert request.done.wait(30)
                assert isinstance(request.error, CrashError)
        assert server.stats.failed == 2
        assert server.stats.completed == 0
        # fail closed: the epsilon is gone on both sides of the ledger
        assert server.session("u").spent == pytest.approx(2 * EPS)
        server.ledger.close()
        replay = replay_journal(path)
        assert replay.spent_for("u") == pytest.approx(2 * EPS)
        assert replay.open_reservations == {}

    def test_restart_continuity_without_crash(self, tmp_path, serve_prior):
        """Plain restart: spend carries over and admission continues
        exactly where it left off."""
        path = tmp_path / "journal"
        server = _server(serve_prior, BudgetLedger(path))
        with server:
            server.report("u", Point(5.0, 5.0))
            server.report("u", Point(6.0, 6.0))
        server.ledger.close()

        again = _server(serve_prior, BudgetLedger(path))
        with again:
            assert again.session("u").spent == pytest.approx(2 * EPS)
            again.report("u", Point(5.0, 5.0))
            again.report("u", Point(6.0, 6.0))
            with pytest.raises(BudgetError):
                again.report("u", Point(7.0, 7.0))
        again.ledger.close()
        _journal_invariant(path, {"u": 4}, lifetime=4.0)

    def test_overdrawn_journal_fails_closed(self, tmp_path, serve_prior):
        """A journal showing more spend than the lifetime (e.g. the
        budget was lowered between runs) exhausts the session rather
        than resetting it."""
        path = tmp_path / "journal"
        with BudgetLedger(path) as ledger:
            for _ in range(6):
                ledger.commit(ledger.reserve("u", EPS))
        server = _server(serve_prior, BudgetLedger(path), lifetime=4.0)
        with server:
            assert server.session("u").remaining <= 0
            with pytest.raises(BudgetError):
                server.report("u", Point(5.0, 5.0))
        server.ledger.close()


# ----------------------------------------------------------------------
# deadlines, abandonment, retry
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_timeout_abandons_and_refunds_before_sampling(
        self, tmp_path, serve_prior
    ):
        """A caller timing out while its request is still coalescing:
        the dispatcher refuses to sample it and releases the
        reservation — the user keeps the epsilon."""
        path = tmp_path / "journal"
        server = _server(
            serve_prior, BudgetLedger(path), window=0.6
        )
        with server:
            with pytest.raises(ServeError, match="timed out") as err:
                server.report("u", Point(5.0, 5.0), timeout=0.05)
            assert err.value.reason == "timeout"
            deadline = time.monotonic() + 5.0
            while (
                server.stats.abandoned == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
        assert server.stats.abandoned == 1
        assert server.stats.completed == 0
        assert server.session("u").spent == 0.0
        server.ledger.close()
        # the release made it to the journal: nothing replays as spend
        assert replay_journal(path).spent_for("u") == 0.0

    def test_expired_deadline_never_samples(self, serve_prior):
        server = _server(serve_prior, ledger=None, window=0.01)
        with server:
            request = server.submit(
                "u", Point(5.0, 5.0), deadline=time.monotonic() - 1.0
            )
            assert request.done.wait(30)
            assert isinstance(request.error, ServeError)
            assert request.error.reason == "abandoned"
        assert server.stats.abandoned == 1
        assert server.session("u").spent == 0.0

    def test_overload_retries_with_backoff_then_gives_up(
        self, serve_prior
    ):
        config = ServerConfig(
            lifetime_epsilon=4.0,
            per_report_epsilon=EPS,
            max_pending=0,  # permanently overloaded
            retry_attempts=2,
            retry_backoff=0.001,
        )
        server = SanitizationServer.build(
            serve_prior, config, granularity=2, seed=SEED
        )
        with server:
            with pytest.raises(ServeError, match="shedding") as err:
                server.report("u", Point(5.0, 5.0))
            assert err.value.reason == "overload"
        assert server.stats.retries == 2
        assert server.stats.rejected_overload == 3  # initial + 2 retries


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class _FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def tiny_lp():
    b = LinearProgramBuilder(1)
    b.set_objective({0: 1.0})
    b.add_ge({0: 1.0}, 1.0)
    return b.build()


def _breaker(rules, threshold=2, reset=10.0):
    clock = _FakeClock()
    injector = FaultInjectingSolver(rules)
    inner = ResilientSolver(
        ResilienceConfig(
            backends=("highs-ds",), max_attempts_per_backend=1
        ),
        solve_fn=injector,
    )
    breaker = CircuitBreakerSolver(
        inner,
        BreakerConfig(failure_threshold=threshold, reset_timeout=reset),
        clock=clock,
    )
    return breaker, injector, clock


@pytest.mark.faults
class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self, tiny_lp):
        breaker, injector, _ = _breaker([RaiseFault()])
        for _ in range(2):
            with pytest.raises(SolverRetryExhaustedError):
                breaker.solve(tiny_lp)
        assert breaker.state == breaker.OPEN
        assert breaker.trips == 1
        # open: refused instantly, the substrate is not touched
        calls_before = injector.n_calls
        with pytest.raises(CircuitOpenError):
            breaker.solve(tiny_lp)
        assert injector.n_calls == calls_before
        assert breaker.short_circuits == 1

    def test_success_resets_failure_streak(self, tiny_lp):
        # a matching rule consumes the call before later rules see it,
        # so the second rule's counter only ticks on delegated calls:
        # this script fails overall calls 1 and 3, delegating call 2
        breaker, _, _ = _breaker([RaiseFault(nth=1), RaiseFault(nth=2)])
        with pytest.raises(SolverRetryExhaustedError):
            breaker.solve(tiny_lp)
        breaker.solve(tiny_lp)  # success wipes the streak
        with pytest.raises(SolverRetryExhaustedError):
            breaker.solve(tiny_lp)
        assert breaker.state == breaker.CLOSED
        assert breaker.trips == 0

    def test_half_open_probe_failure_reopens(self, tiny_lp):
        breaker, _, clock = _breaker([RaiseFault()], reset=10.0)
        for _ in range(2):
            with pytest.raises(SolverRetryExhaustedError):
                breaker.solve(tiny_lp)
        clock.t = 10.0
        assert breaker.state == breaker.HALF_OPEN
        with pytest.raises(SolverRetryExhaustedError):
            breaker.solve(tiny_lp)  # the probe is attempted, fails
        assert breaker.state == breaker.OPEN
        assert breaker.trips == 2

    def test_half_open_probe_success_closes(self, tiny_lp):
        breaker, injector, clock = _breaker([RaiseFault(first_n=2)])
        for _ in range(2):
            with pytest.raises(SolverRetryExhaustedError):
                breaker.solve(tiny_lp)
        assert breaker.state == breaker.OPEN
        clock.t = 10.0
        result = breaker.solve(tiny_lp)  # probe delegates to real solve
        assert result.x[0] == pytest.approx(1.0)
        assert breaker.state == breaker.CLOSED
        # and normal traffic flows again
        breaker.solve(tiny_lp)
        assert injector.n_calls == 4

    def test_open_breaker_degrades_walk_not_crashes(self, uniform3):
        """End to end: a tripped breaker inside an MSM build degrades
        every node to the closed-form fallback — the walk still serves
        at full epsilon, with provenance recorded."""
        from repro.core.msm import MultiStepMechanism
        from repro.exceptions import DegradedModeWarning

        breaker, _, _ = _breaker([RaiseFault()], threshold=1)
        msm = MultiStepMechanism.build(
            0.9, 3, uniform3, solver=breaker, degrade=True
        )
        with pytest.warns(DegradedModeWarning):
            walk = msm.sample_with_report(
                Point(5.0, 5.0), np.random.default_rng(SEED)
            )
        assert uniform3.grid.bounds.contains(walk.point)
        assert not walk.degradation.clean
        assert breaker.trips >= 1
        assert breaker.short_circuits >= 1  # later nodes short-circuit


# ----------------------------------------------------------------------
# store recovery
# ----------------------------------------------------------------------
class TestStoreRecovery:
    def _msm(self, square20, prior):
        from repro.grid.hierarchy import HierarchicalGrid
        from repro.core.msm import MultiStepMechanism

        index = HierarchicalGrid(square20, 2, 2)
        return MultiStepMechanism(index, (0.5, 0.6), prior)

    def test_save_publishes_checksum_sidecar(
        self, tmp_path, square20, serve_prior
    ):
        store = MechanismStore(tmp_path / "store")
        record = store.get_or_build(self._msm(square20, serve_prior))
        sidecar = store.checksum_path(record.path)
        assert sidecar.exists()
        digest = sidecar.read_text().strip()
        assert len(digest) == 64  # SHA-256 hex

    def test_flipped_byte_quarantined_and_rebuilt(
        self, tmp_path, square20, serve_prior
    ):
        store = MechanismStore(tmp_path / "store")
        first = self._msm(square20, serve_prior)
        record = store.get_or_build(first)
        flip_byte(record.path, 100)

        fresh = self._msm(square20, serve_prior)
        rebuilt = store.get_or_build(fresh)
        assert rebuilt.outcome == "built"
        assert fresh.cache.builds > 0
        quarantined = list((store.root / ".quarantine").iterdir())
        assert len(quarantined) == 2  # bundle + sidecar
        # the rebuilt bundle is valid: a third engine warm-starts clean
        third = self._msm(square20, serve_prior)
        assert store.get_or_build(third).outcome == "hit"
        assert third.cache.builds == 0

    def test_truncated_bundle_quarantined(
        self, tmp_path, square20, serve_prior
    ):
        store = MechanismStore(tmp_path / "store")
        record = store.get_or_build(self._msm(square20, serve_prior))
        truncate_tail(record.path, record.path.stat().st_size // 2)

        fresh = self._msm(square20, serve_prior)
        assert store.warm_start(fresh) is None  # a miss, not a crash
        assert not record.path.exists()
        assert (store.root / ".quarantine").exists()

    def test_unreadable_bundle_without_sidecar_quarantined(
        self, tmp_path, square20, serve_prior
    ):
        """Legacy bundles (no sidecar) still recover: a load failure
        quarantines instead of raising into the serving path."""
        store = MechanismStore(tmp_path / "store")
        record = store.get_or_build(self._msm(square20, serve_prior))
        store.checksum_path(record.path).unlink()
        record.path.write_bytes(b"not a zip archive at all")

        fresh = self._msm(square20, serve_prior)
        assert store.warm_start(fresh) is None
        assert not record.path.exists()

    def test_stale_config_still_raises_not_quarantined(
        self, tmp_path, square20, serve_prior
    ):
        """A *readable* bundle under the wrong key is an operator
        error: it must raise, and must not be silently destroyed."""
        from repro.exceptions import MechanismError
        from repro.grid.hierarchy import HierarchicalGrid
        from repro.core.msm import MultiStepMechanism

        store = MechanismStore(tmp_path / "store")
        a = self._msm(square20, serve_prior)
        store.get_or_build(a)
        index = HierarchicalGrid(square20, 2, 2)
        b = MultiStepMechanism(index, (0.5, 0.7), serve_prior)
        path_a, path_b = store.path_for(a), store.path_for(b)
        path_a.rename(path_b)
        store.checksum_path(path_a).rename(store.checksum_path(path_b))
        with pytest.raises(MechanismError, match="epsilon split"):
            store.warm_start(b)
        assert path_b.exists()  # evidence preserved


# ----------------------------------------------------------------------
# distribution equivalence with the ledger in the hot path
# ----------------------------------------------------------------------
@pytest.mark.statistical
class TestLedgerDistributionEquivalence:
    def test_server_with_ledger_matches_direct_chi_square(
        self, tmp_path, serve_prior
    ):
        """The two-phase ledger protocol must not perturb the served
        distribution: chi-square server-vs-direct, ledger enabled
        (``sync=False`` — durability is not under test here)."""
        from concurrent.futures import ThreadPoolExecutor

        from scipy import stats

        n = 1500
        x = Point(3.0, 3.0)
        ledger = BudgetLedger(tmp_path / "journal", sync=False)
        config = ServerConfig(
            lifetime_epsilon=float(n + 1),
            per_report_epsilon=EPS,
            coalesce_window=0.05,
        )
        server = SanitizationServer.build(
            serve_prior, config, granularity=2, seed=SEED, ledger=ledger
        )
        with server:
            with ThreadPoolExecutor(max_workers=8) as pool:
                reports = list(
                    pool.map(
                        lambda _: server.report("u", x, timeout=120),
                        range(n),
                    )
                )
        assert server.ledger.spent_for("u") == pytest.approx(n * EPS)

        msm = server.mechanism
        leaf_grid = msm.index.level_grid(msm.height)
        served = np.zeros(leaf_grid.n_cells)
        for r in reports:
            served[leaf_grid.locate(r.reported).index] += 1
        direct_walks = msm.sanitize_batch(
            [x] * n, np.random.default_rng(SEED + 1)
        )
        direct = np.zeros(leaf_grid.n_cells)
        for w in direct_walks:
            direct[leaf_grid.locate(w.point).index] += 1

        keep = (served + direct) > 0
        table = np.vstack([served[keep], direct[keep]])
        _, p_value, _, _ = stats.chi2_contingency(table)
        assert p_value > 0.01, (
            f"ledger-enabled server diverges from direct (p={p_value:.4f})"
        )


# ----------------------------------------------------------------------
# process-level chaos: SIGKILL against a live server
# ----------------------------------------------------------------------
_CHILD = textwrap.dedent("""
    import sys
    from repro.geo import BoundingBox, Point
    from repro.grid import RegularGrid
    from repro.priors import GridPrior
    from repro.serve import SanitizationServer, ServerConfig

    journal = sys.argv[1]
    square = BoundingBox.square(Point(0.0, 0.0), 20.0)
    prior = GridPrior.uniform(RegularGrid(square, 4))
    config = ServerConfig(
        lifetime_epsilon=1000.0,
        per_report_epsilon=1.0,
        coalesce_window=0.001,
    )
    server = SanitizationServer.build(
        prior, config, granularity=2, seed=7, ledger=journal
    )
    print("replayed", server.stats.replayed_epsilon, flush=True)
    with server:
        for i in range(10_000):
            server.report("u", Point(5.0, 5.0))
            print("delivered", i + 1, flush=True)
""")


@pytest.mark.chaos
class TestSigkill:
    def test_sigkill_mid_serve_replays_spend(self, tmp_path):
        """Kill -9 a serving process mid-stream; the journal left on
        disk must replay at least every delivered report, and a warm
        restart must continue from that account."""
        journal = tmp_path / "journal"
        script = tmp_path / "child.py"
        script.write_text(_CHILD)
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, str(script), str(journal)],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        delivered = 0
        try:
            assert proc.stdout is not None
            for line in proc.stdout:
                if line.startswith("delivered"):
                    delivered = int(line.split()[1])
                if delivered >= 3:
                    break
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=30)
            if proc.stdout is not None:
                proc.stdout.close()
        assert delivered >= 3

        replay = _journal_invariant(
            journal, {"u": delivered}, lifetime=1000.0
        )
        assert replay.spent_for("u") >= delivered * EPS

        # warm restart over the same journal in-process: the account
        # carries, orphaned reservations settle, serving continues
        spent_before = replay.spent_for("u")
        from repro.geo import BoundingBox

        square_prior = GridPrior.uniform(
            RegularGrid(BoundingBox.square(Point(0.0, 0.0), 20.0), 4)
        )
        config = ServerConfig(
            lifetime_epsilon=1000.0,
            per_report_epsilon=EPS,
            coalesce_window=0.001,
        )
        server = SanitizationServer.build(
            square_prior, config, granularity=2, seed=7, ledger=journal
        )
        with server:
            assert server.stats.replayed_epsilon == pytest.approx(
                spent_before
            )
            assert server.ledger.open_reservations() == {}
            server.report("u", Point(5.0, 5.0))
        server.ledger.close()
        final = replay_journal(journal)
        assert final.spent_for("u") == pytest.approx(spent_before + EPS)
