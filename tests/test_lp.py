"""Unit and property tests for the LP substrate.

The built-in simplex is cross-validated against HiGHS on fixed programs
and on randomly generated feasible programs (hypothesis), which is what
lets the rest of the library trust either backend interchangeably.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    InfeasibleProblemError,
    SolverError,
    UnboundedProblemError,
)
from repro.lp import (
    BACKENDS,
    LinearProgram,
    LinearProgramBuilder,
    LPStatus,
    solve,
    solve_or_raise,
)


def simple_lp() -> LinearProgram:
    """min x + 2y  s.t.  x + y >= 1, x, y >= 0  ->  (1, 0), objective 1."""
    b = LinearProgramBuilder(2)
    b.set_objective({0: 1.0, 1: 2.0})
    b.add_ge({0: 1.0, 1: 1.0}, 1.0)
    return b.build()


class TestBuilder:
    def test_objective_dense_and_sparse_agree(self):
        b1 = LinearProgramBuilder(3)
        b1.set_objective(np.array([1.0, 0.0, 2.0]))
        b2 = LinearProgramBuilder(3)
        b2.set_objective({0: 1.0, 2: 2.0})
        assert np.array_equal(b1.build().c, b2.build().c)

    def test_variable_index_validation(self):
        b = LinearProgramBuilder(2)
        with pytest.raises(SolverError):
            b.add_le({5: 1.0}, 1.0)
        with pytest.raises(SolverError):
            b.set_bounds(2, 0, 1)

    def test_empty_constraint_rejected(self):
        b = LinearProgramBuilder(2)
        with pytest.raises(SolverError):
            b.add_eq({}, 1.0)

    def test_dimension_mismatches_rejected(self):
        with pytest.raises(SolverError):
            LinearProgram(c=np.array([]))
        with pytest.raises(SolverError):
            LinearProgram(
                c=np.ones(2),
                a_ub=np.ones((1, 3)),
                b_ub=np.ones(1),
            )
        with pytest.raises(SolverError):
            LinearProgram(c=np.ones(2), a_ub=np.ones((2, 2)), b_ub=np.ones(3))

    def test_matrix_without_rhs_rejected(self):
        with pytest.raises(SolverError):
            LinearProgram(c=np.ones(2), a_ub=np.ones((1, 2)))

    def test_inverted_bounds_rejected(self):
        with pytest.raises(SolverError):
            LinearProgram(c=np.ones(1), lb=np.array([2.0]), ub=np.array([1.0]))

    def test_counts(self):
        p = simple_lp()
        assert p.n_vars == 2
        assert p.n_constraints == 1


class TestBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_simple_lp_all_backends(self, backend):
        result = solve(simple_lp(), backend=backend)
        assert result.is_optimal
        assert result.objective == pytest.approx(1.0, abs=1e-8)
        assert result.x[0] == pytest.approx(1.0, abs=1e-7)
        assert result.x[1] == pytest.approx(0.0, abs=1e-7)

    def test_unknown_backend(self):
        with pytest.raises(SolverError, match="unknown LP backend"):
            solve(simple_lp(), backend="cplex")

    @pytest.mark.parametrize("backend", ["highs-ds", "simplex"])
    def test_equality_constraints(self, backend):
        # min x + y  s.t.  x + y = 2, x - y <= 0  ->  x = y = 1.
        b = LinearProgramBuilder(2)
        b.set_objective({0: 1.0, 1: 1.0})
        b.add_eq({0: 1.0, 1: 1.0}, 2.0)
        b.add_le({0: 1.0, 1: -1.0}, 0.0)
        result = solve(b.build(), backend=backend)
        assert result.is_optimal
        assert result.objective == pytest.approx(2.0, abs=1e-8)

    @pytest.mark.parametrize("backend", ["highs-ds", "simplex"])
    def test_infeasible_detected(self, backend):
        b = LinearProgramBuilder(1)
        b.set_objective({0: 1.0})
        b.add_le({0: 1.0}, -1.0)  # x <= -1 with x >= 0
        result = solve(b.build(), backend=backend)
        assert result.status is LPStatus.INFEASIBLE
        with pytest.raises(InfeasibleProblemError):
            solve_or_raise(b.build(), backend=backend)

    @pytest.mark.parametrize("backend", ["highs-ds", "simplex"])
    def test_unbounded_detected(self, backend):
        b = LinearProgramBuilder(1)
        b.set_objective({0: -1.0})  # min -x, x >= 0, no other constraint
        result = solve(b.build(), backend=backend)
        assert result.status is LPStatus.UNBOUNDED
        with pytest.raises(UnboundedProblemError):
            solve_or_raise(b.build(), backend=backend)

    @pytest.mark.parametrize("backend", ["highs-ds", "simplex"])
    def test_upper_bounds(self, backend):
        # min -x with x <= 3 via bounds.
        b = LinearProgramBuilder(1)
        b.set_objective({0: -1.0})
        b.set_bounds(0, 0.0, 3.0)
        result = solve(b.build(), backend=backend)
        assert result.is_optimal
        assert result.x[0] == pytest.approx(3.0, abs=1e-7)

    @pytest.mark.parametrize("backend", ["highs-ds", "simplex"])
    def test_nonzero_lower_bounds(self, backend):
        # min x + y with x >= 1, y >= 2.
        b = LinearProgramBuilder(2)
        b.set_objective({0: 1.0, 1: 1.0})
        b.set_bounds(0, 1.0)
        b.set_bounds(1, 2.0)
        result = solve(b.build(), backend=backend)
        assert result.is_optimal
        assert result.objective == pytest.approx(3.0, abs=1e-7)

    def test_simplex_rejects_free_variables(self):
        p = LinearProgram(c=np.ones(1), lb=np.array([-np.inf]))
        with pytest.raises(SolverError, match="finite lower bounds"):
            solve(p, backend="simplex")

    def test_degenerate_stochastic_like_program(self):
        """A tiny OPT-shaped program: massively degenerate equalities."""
        n = 3
        b = LinearProgramBuilder(n * n)
        cost = {i * n + j: abs(i - j) for i in range(n) for j in range(n)}
        b.set_objective(cost)
        for i in range(n):
            b.add_eq({i * n + j: 1.0 for j in range(n)}, 1.0)
        for i in range(n):
            for ip in range(n):
                if i == ip:
                    continue
                for z in range(n):
                    b.add_le(
                        {i * n + z: 1.0, ip * n + z: -np.e ** abs(i - ip)},
                        0.0,
                    )
        p = b.build()
        r1 = solve(p, backend="highs-ds")
        r2 = solve(p, backend="simplex")
        assert r1.is_optimal and r2.is_optimal
        assert r1.objective == pytest.approx(r2.objective, abs=1e-7)


@st.composite
def feasible_programs(draw):
    """Random LPs guaranteed feasible: constraints are satisfied by x0."""
    n = draw(st.integers(min_value=1, max_value=4))
    m = draw(st.integers(min_value=0, max_value=4))
    c = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=5),  # positive => bounded
            min_size=n, max_size=n,
        )
    )
    x0 = draw(
        st.lists(
            st.floats(min_value=0, max_value=3), min_size=n, max_size=n
        )
    )
    rows = []
    rhs = []
    for _ in range(m):
        coeffs = draw(
            st.lists(
                st.floats(min_value=-2, max_value=2), min_size=n, max_size=n
            )
        )
        slack = draw(st.floats(min_value=0, max_value=2))
        rows.append(coeffs)
        rhs.append(float(np.dot(coeffs, x0)) + slack)
    builder = LinearProgramBuilder(n)
    builder.set_objective(np.asarray(c))
    for coeffs, r in zip(rows, rhs):
        row = {j: v for j, v in enumerate(coeffs) if v != 0.0}
        if row:
            builder.add_le(row, r)
    return builder.build()


class TestCrossValidation:
    @given(feasible_programs())
    @settings(max_examples=60, deadline=None)
    def test_simplex_matches_highs_on_random_programs(self, program):
        highs = solve(program, backend="highs-ds")
        simplex = solve(program, backend="simplex")
        assert highs.is_optimal
        assert simplex.is_optimal
        assert simplex.objective == pytest.approx(
            highs.objective, rel=1e-6, abs=1e-6
        )

    def test_sub_tolerance_coefficients_are_not_unbounded(self):
        # Regression (found by the property above): two rows of
        # 1e-9 * y0 <= 0 make column 0's phase-1 reduced cost cross the
        # entering tolerance while every individual entry sits below the
        # old ratio-test cutoff, so the solver declared a bounded program
        # (c > 0, y >= 0: optimum is y = 0) an unbounded ray.
        builder = LinearProgramBuilder(3)
        builder.set_objective(np.ones(3))
        builder.add_le({0: 1e-9}, 0.0)
        builder.add_le({0: 1e-9}, 0.0)
        program = builder.build()
        simplex = solve(program, backend="simplex")
        highs = solve(program, backend="highs-ds")
        assert highs.is_optimal
        assert simplex.is_optimal
        assert simplex.objective == pytest.approx(0.0, abs=1e-9)

    def test_redundant_equality_rows_leave_artificial_priced_at_zero(self):
        # Regression: a duplicated equality row leaves a zero-value
        # artificial basic after phase 1; phase 2's cost lookup must not
        # index past the structural columns.
        builder = LinearProgramBuilder(2)
        builder.set_objective(np.asarray([1.0, 2.0]))
        builder.add_eq({0: 1.0, 1: 1.0}, 1.0)
        builder.add_eq({0: 1.0, 1: 1.0}, 1.0)
        program = builder.build()
        simplex = solve(program, backend="simplex")
        highs = solve(program, backend="highs-ds")
        assert simplex.is_optimal
        assert simplex.objective == pytest.approx(highs.objective, abs=1e-9)
