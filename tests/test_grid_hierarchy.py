"""Unit tests for repro.grid.hierarchy (the GIHI)."""

import pytest

from repro.exceptions import GridError
from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid


@pytest.fixture
def gihi(square20) -> HierarchicalGrid:
    return HierarchicalGrid(square20, granularity=3, height=2)


class TestStructure:
    def test_invalid_parameters(self, square20):
        with pytest.raises(GridError):
            HierarchicalGrid(square20, 1, 2)
        with pytest.raises(GridError):
            HierarchicalGrid(square20, 3, 0)

    def test_root(self, gihi, square20):
        assert gihi.root.level == 0
        assert gihi.root.path == ()
        assert gihi.root.bounds == square20

    def test_children_fanout(self, gihi):
        kids = gihi.children(gihi.root)
        assert len(kids) == 9
        assert all(k.level == 1 for k in kids)
        assert [k.path for k in kids] == [(i,) for i in range(9)]

    def test_leaves_have_no_children(self, gihi):
        leaf = gihi.children(gihi.children(gihi.root)[0])[0]
        assert leaf.level == 2
        assert gihi.children(leaf) == []
        assert gihi.is_leaf(leaf)

    def test_heights_and_granularities(self, gihi):
        assert gihi.height == 2
        assert gihi.max_height() == 2
        assert gihi.leaf_granularity == 9
        assert gihi.level_granularity(0) == 1
        assert gihi.level_granularity(2) == 9
        with pytest.raises(GridError):
            gihi.level_granularity(3)

    def test_node_count_and_leaves(self, gihi):
        # 1 root + 9 + 81.
        assert gihi.node_count() == 91
        assert len(gihi.leaves()) == 81

    def test_cell_side_shrinks_by_g(self, gihi):
        assert gihi.cell_side(1) == pytest.approx(20 / 3)
        assert gihi.cell_side(2) == pytest.approx(20 / 9)

    def test_children_partition_parent(self, gihi):
        node = gihi.children(gihi.root)[4]
        kids = gihi.children(node)
        assert sum(k.bounds.area for k in kids) == pytest.approx(
            node.bounds.area
        )
        assert all(node.bounds.contains_box(k.bounds) for k in kids)


class TestLocation:
    def test_locate_child_consistent_with_subgrid(self, gihi):
        p = Point(1.0, 1.0)
        child = gihi.locate_child(gihi.root, p)
        assert child is not None
        assert child.bounds.contains(p)
        assert child.path == (0,)

    def test_locate_child_outside_returns_none(self, gihi):
        node = gihi.children(gihi.root)[0]
        assert gihi.locate_child(node, Point(19, 19)) is None

    def test_locate_child_at_leaf_returns_none(self, gihi):
        node = gihi.children(gihi.root)[0]
        leaf = gihi.children(node)[0]
        assert gihi.locate_child(leaf, Point(0.1, 0.1)) is None

    def test_enclosing_cell_matches_level_grid(self, gihi):
        p = Point(13.7, 4.2)
        for level in (1, 2):
            cell = gihi.enclosing_cell(p, level)
            assert cell.contains(p)
            assert cell.index == gihi.level_grid(level).locate(p).index

    def test_walk_to_leaf_via_locate_child(self, gihi):
        p = Point(7.77, 15.3)
        node = gihi.root
        while not gihi.is_leaf(node):
            node = gihi.locate_child(node, p)
        assert node.level == 2
        assert node.bounds.contains(p)

    def test_node_for_cell_roundtrip(self, gihi):
        for level in (1, 2):
            grid = gihi.level_grid(level)
            for cell in list(grid.cells())[:: max(1, grid.n_cells // 7)]:
                node = gihi.node_for_cell(level, cell.row, cell.col)
                assert node.level == level
                assert node.bounds.center.distance_to(cell.center) < 1e-9
                # The path must be walkable from the root.
                walk = gihi.root
                for step in node.path:
                    walk = gihi.children(walk)[step]
                assert walk.bounds.center.distance_to(cell.center) < 1e-9

    def test_node_for_cell_root_special_case(self, gihi):
        assert gihi.node_for_cell(0, 0, 0) is gihi.root

    def test_node_cell_rejects_root(self, gihi):
        with pytest.raises(GridError):
            gihi.node_cell(gihi.root)

    def test_subgrid_of_internal_node(self, gihi):
        node = gihi.children(gihi.root)[5]
        sub = gihi.subgrid(node)
        assert sub.granularity == 3
        assert sub.bounds == node.bounds

    def test_subgrid_of_leaf_raises(self, gihi):
        node = gihi.children(gihi.children(gihi.root)[0])[0]
        with pytest.raises(GridError):
            gihi.subgrid(node)

    def test_level_grid_is_cached(self, gihi):
        assert gihi.level_grid(1) is gihi.level_grid(1)
