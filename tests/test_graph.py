"""Road-network scenario tests: city generator, shortest-path metric,
graph partition index, and the MSM walk running unchanged over them.

The graph analogue of ``test_grid_hierarchy``: partition invariants
(children partition the parent's vertex set exactly — no overlap, no
gap), metric-axiom properties (Hypothesis: the triangle inequality on
random weighted graphs), locate agreement between the scalar and
vectorised paths, and an end-to-end walk with the privacy guard
enabled at every node mechanism.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.core.msm import MultiStepMechanism
from repro.exceptions import GridError, PrivacyViolationError
from repro.geo.point import Point
from repro.graph import (
    GraphMetric,
    GraphPartitionIndex,
    RoadGraph,
    VertexBins,
    synthetic_city,
)
from repro.grid.regular import RegularGrid
from repro.priors.base import GridPrior
from repro.privacy.guard import guard_mechanism


@pytest.fixture(scope="module")
def city() -> RoadGraph:
    return synthetic_city(blocks=7, block_km=0.5, seed=42)


@pytest.fixture(scope="module")
def metric(city) -> GraphMetric:
    return GraphMetric(city)


@pytest.fixture(scope="module")
def partition(city) -> GraphPartitionIndex:
    return GraphPartitionIndex(city, fanout=4, height=2)


@pytest.fixture(scope="module")
def graph_msm(city, partition, metric) -> MultiStepMechanism:
    prior = GridPrior.uniform(RegularGrid(city.bounds, 8))
    msm = MultiStepMechanism(
        partition, (0.8, 0.8), prior, dq=metric, dx=metric
    )
    msm.precompute()
    return msm


class TestSyntheticCity:
    def test_deterministic_in_seed(self):
        a = synthetic_city(blocks=4, seed=7)
        b = synthetic_city(blocks=4, seed=7)
        assert np.array_equal(a.coords, b.coords)
        assert (a.csr != b.csr).nnz == 0

    def test_seed_changes_graph(self):
        a = synthetic_city(blocks=4, seed=7)
        b = synthetic_city(blocks=4, seed=8)
        assert not np.array_equal(a.coords, b.coords)

    def test_vertex_count_and_connectivity(self, city):
        assert city.n_vertices == 64
        # Connectivity is validated in the constructor; a finite
        # all-pairs row from any source re-checks it end to end.
        m = GraphMetric(city)
        row = m.pairwise([city.vertex_point(0)], city.vertex_points())
        assert np.all(np.isfinite(row))

    def test_weights_at_least_planar_length(self, city):
        m = GraphMetric(city)
        for v, w in [(0, 1), (3, 50), (10, 60)]:
            planar = city.vertex_point(v).distance_to(city.vertex_point(w))
            assert m.vertex_distance(v, w) >= planar - 1e-9

    def test_disconnected_graph_rejected(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 5.0], [6.0, 5.0]])
        edges = np.array([[0, 1], [2, 3]])
        with pytest.raises(GridError, match="connected"):
            RoadGraph(coords, edges, np.ones(2))


class TestGraphMetric:
    def test_identity_and_symmetry(self, city, metric):
        p = city.vertex_point(12)
        q = city.vertex_point(40)
        assert metric(p, p) == 0.0
        assert metric(p, q) == pytest.approx(metric(q, p))

    def test_snapping_pseudometric(self, city, metric):
        """Two points snapping to the same vertex are at distance 0."""
        v = city.vertex_point(5)
        nearby = Point(v.x + 1e-6, v.y + 1e-6)
        assert metric(v, nearby) == 0.0

    def test_axioms_pass_on_vertices(self, city, metric):
        metric.check_axioms(city.vertex_points()[:50])

    def test_row_cache_grows_then_hits(self, city):
        m = GraphMetric(city)
        xs = [city.vertex_point(v) for v in (1, 2, 3)]
        m.pairwise(xs, xs)
        assert m.cached_sources == 3
        m.pairwise(xs, [city.vertex_point(9)])  # all sources cached
        assert m.cached_sources == 3

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_triangle_inequality_random_graphs(self, seed):
        """Shortest-path distance on random positively weighted graphs
        satisfies the triangle inequality (the axiom SQUARED_EUCLIDEAN
        famously breaks) — on every vertex triple."""
        g = synthetic_city(
            blocks=3,
            jitter=0.4,
            drop_probability=0.4,
            max_weight_factor=3.0,
            seed=seed,
        )
        m = GraphMetric(g)
        m.check_axioms(g.vertex_points())

    def test_guard_accepts_graph_metric_as_dx(self, city, metric, graph_msm):
        """Every cached node mechanism re-passes the guard at its level
        epsilon under the graph metric (the acceptance criterion: guard
        passes on every graph node mechanism at full epsilon)."""
        entries = graph_msm.cache.snapshot()
        assert entries, "precompute should have populated the cache"
        for entry in entries.values():
            assert entry.epsilon is not None
            guard_mechanism(entry.matrix, entry.epsilon, dx=metric)


class TestGraphPartitionIndex:
    def test_children_partition_parent_exactly(self, partition):
        """No overlap, no gap — at every internal node."""
        stack = [partition.root]
        while stack:
            node = stack.pop()
            kids = partition.children(node)
            if not kids:
                continue
            union: set[int] = set()
            for kid in kids:
                vs = set(kid.vertex_ids)
                assert vs, f"empty child at {kid.path}"
                assert not (union & vs), f"overlap at {kid.path}"
                union |= vs
            assert union == set(node.vertex_ids), f"gap under {node.path}"
            stack.extend(kids)

    def test_balanced_fanout(self, partition):
        kids = partition.children(partition.root)
        sizes = [len(k.vertex_ids) for k in kids]
        assert len(kids) == 4
        assert max(sizes) - min(sizes) <= 1

    def test_medoid_is_member_vertex(self, partition, city):
        for node in partition.leaves():
            assert node.medoid in node.vertex_ids
            assert node.center == city.vertex_point(node.medoid)

    def test_scalar_vectorised_locate_agree(self, partition, city):
        rng = np.random.default_rng(3)
        b = city.bounds
        coords = np.stack(
            [
                rng.uniform(b.min_x, b.max_x, 300),
                rng.uniform(b.min_y, b.max_y, 300),
            ],
            axis=1,
        )
        stack = [partition.root]
        while stack:
            node = stack.pop()
            kids = partition.children(node)
            if not kids:
                continue
            vec = partition.locate_child_indices(node, coords)
            for (x, y), v in zip(coords, vec):
                child = partition.locate_child(node, Point(x, y))
                expect = -1 if child is None else child.path[-1]
                assert v == expect
            stack.extend(kids)

    def test_contains_mask_is_vertex_membership(self, partition, city):
        coords = city.coords
        for kid in partition.children(partition.root):
            mask = partition.contains_mask(kid, coords)
            members = np.zeros(city.n_vertices, dtype=bool)
            members[list(kid.vertex_ids)] = True
            assert np.array_equal(mask, members)

    def test_uncompilable_stays_staged(self, partition):
        assert partition.child_geometry(partition.root) is None
        for node in partition.children(partition.root):
            assert partition.child_geometry(node) is None

    def test_too_small_graph_rejected(self):
        g = synthetic_city(blocks=1, seed=0)  # 4 vertices
        with pytest.raises(GridError, match="at least"):
            GraphPartitionIndex(g, fanout=4, height=2)

    def test_drifted_point_gets_none(self, partition, city):
        """A point snapping to a vertex outside the node drifts (None /
        -1), triggering Algorithm 1's uniform fallback."""
        kids = partition.children(partition.root)
        inner = partition.children(kids[0])[0]
        outside_vertex = next(
            v
            for v in range(city.n_vertices)
            if v not in kids[0].vertex_ids
        )
        p = city.vertex_point(outside_vertex)
        assert partition.locate_child(inner, p) is None


class TestGraphWalk:
    def test_walk_unchanged_over_graph_nodes(self, graph_msm, city):
        """The staged engine runs the graph index with no special-casing:
        every reported point is a stop-node medoid vertex."""
        rng = np.random.default_rng(0)
        xs = [city.vertex_point(v) for v in rng.integers(0, 64, 40)]
        stops = {n.center for n in graph_msm.stop_nodes()}
        for z in graph_msm.sample_many(xs, rng):
            assert z in stops

    def test_scalar_equals_batch_of_one(self, graph_msm, city):
        x = city.vertex_point(17)
        a = graph_msm.sample(x, np.random.default_rng(99))
        [b] = graph_msm.sample_many([x], np.random.default_rng(99))
        assert a == b

    def test_to_matrix_generic_path(self, graph_msm):
        matrix = graph_msm.to_matrix()
        n = len(graph_msm.stop_nodes())
        assert matrix.shape == (n, n)
        assert np.allclose(matrix.k.sum(axis=1), 1.0)

    def test_uncompilable_index_stays_staged(self, graph_msm, city):
        """``child_geometry`` is None everywhere, so the kernel compile
        must refuse the graph index and the engine must keep serving on
        the staged path — even under ``kernel='always'``."""
        engine = graph_msm.engine
        old = engine.kernel
        try:
            engine.kernel = "always"
            assert engine.compile(build=True) is None
            out = graph_msm.sample_many(
                [city.vertex_point(1)], np.random.default_rng(1)
            )
            assert len(out) == 1
        finally:
            engine.kernel = old


@pytest.mark.statistical
class TestGraphStatistical:
    N = 5000
    ALPHA = 0.01
    MIN_POOLED = 10

    def _vertex_counts(self, city, points) -> np.ndarray:
        bins = VertexBins(city)
        counts = np.zeros(bins.n_cells, dtype=float)
        for p in points:
            counts[bins.locate(p).index] += 1
        return counts

    def test_chi_square_scalar_vs_batch(self, graph_msm, city):
        """Graph-MSM scalar and batch walks draw from the same
        stop-vertex distribution (two-sample chi-square, fixed seeds)."""
        x = city.vertex_point(27)
        single = [
            graph_msm.sample(x, rng)
            for rng in [np.random.default_rng(1101)]
            for _ in range(self.N)
        ]
        batch = graph_msm.sample_many(
            [x] * self.N, np.random.default_rng(2202)
        )
        a = self._vertex_counts(city, single)
        b = self._vertex_counts(city, batch)
        pooled = a + b
        keep = pooled >= self.MIN_POOLED
        table = np.vstack(
            [
                np.append(a[keep], a[~keep].sum()),
                np.append(b[keep], b[~keep].sum()),
            ]
        )
        table = table[:, table.sum(axis=0) > 0]
        _, p_value, _, _ = stats.chi2_contingency(table)
        assert p_value >= self.ALPHA, (
            f"graph scalar and batch walks diverge (p={p_value:.4g})"
        )
