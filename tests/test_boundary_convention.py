"""Boundary-convention properties for all four planar indexes.

Children tile their parent, so a point exactly on a shared internal
edge is inside *two* closed child boxes.  The repo-wide convention
(:mod:`repro.grid.index`) resolves the tie half-open: child extents are
min-closed / max-open, and each node's own max edges fold into its last
cell — applied recursively, only the domain's max edges behave closed.

These tests pin the convention where it actually bites: points placed
*exactly* on internal child edges and corners (no float fuzz — the
coordinates are the very floats the index computed for its child
bounds).  For every such point and every internal node, the scalar
``locate_child`` and the vectorised ``locate_child_indices`` must agree
byte-for-byte, the located child must half-open-contain the point
unless it lies on the node's max edge, and the k-d tree must send a
point on the split plane to the *right* child — the side its own build
bucketing (``p.x >= coord``) put the median sample point on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.kdtree import KDTreeIndex
from repro.grid.quadtree import QuadtreeIndex
from repro.grid.str_index import STRIndex


def _sample_points(bounds: BoundingBox, seed: int, n: int = 60) -> list[Point]:
    rng = np.random.default_rng(seed)
    xs = rng.uniform(bounds.min_x, bounds.max_x, n)
    ys = rng.uniform(bounds.min_y, bounds.max_y, n)
    return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


def _build_index(kind: str, bounds: BoundingBox, seed: int):
    pts = _sample_points(bounds, seed)
    if kind == "hierarchy":
        return HierarchicalGrid(bounds, 3, 2)
    if kind == "quadtree":
        return QuadtreeIndex(bounds, pts, capacity=4, max_depth=3)
    if kind == "kdtree":
        return KDTreeIndex(bounds, pts, max_depth=4)
    if kind == "str":
        return STRIndex(bounds, pts, fanout=3, height=2)
    raise AssertionError(kind)


def _internal_nodes(index):
    out = []
    stack = [index.root]
    while stack:
        node = stack.pop()
        kids = index.children(node)
        if kids:
            out.append((node, kids))
            stack.extend(kids)
    return out


def _edge_points(node, kids) -> list[Point]:
    """Every child-edge coordinate crossed with every other: exact
    internal edges, corners where four cells meet, and the node's own
    boundary — the adversarial set for a tiling convention."""
    xs = sorted({b for k in kids for b in (k.bounds.min_x, k.bounds.max_x)})
    ys = sorted({b for k in kids for b in (k.bounds.min_y, k.bounds.max_y)})
    mid_x = [(a + b) / 2 for a, b in zip(xs, xs[1:])]
    mid_y = [(a + b) / 2 for a, b in zip(ys, ys[1:])]
    points = [Point(x, y) for x in xs for y in ys]          # corners
    points += [Point(x, y) for x in xs for y in mid_y]      # vertical edges
    points += [Point(x, y) for x in mid_x for y in ys]      # horizontal edges
    return points


KINDS = ("hierarchy", "quadtree", "kdtree", "str")

# Deliberately awkward domains: non-square-friendly widths whose child
# edges are not representable "nice" floats, plus the unit square.
DOMAINS = (
    BoundingBox(0.0, 0.0, 1.0, 1.0),
    BoundingBox(-3.7, 2.1, 7.3, 13.1),
    BoundingBox(0.1, 0.1, 1.2, 1.2),
)


class TestScalarVectorisedAgreement:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("domain", DOMAINS, ids=("unit", "offset", "drift"))
    def test_edge_points_agree_byte_for_byte(self, kind, domain):
        if kind == "hierarchy" and domain.width != domain.height:
            pytest.skip("hierarchy requires a square domain")
        index = _build_index(kind, domain, seed=20190326)
        for node, kids in _internal_nodes(index):
            pts = _edge_points(node, kids)
            coords = np.asarray([(p.x, p.y) for p in pts])
            vec = index.locate_child_indices(node, coords)
            for p, v in zip(pts, vec):
                child = index.locate_child(node, p)
                if child is None:
                    assert v == -1, (kind, node.path, p)
                else:
                    assert v == child.path[-1], (kind, node.path, p)

    @pytest.mark.parametrize("kind", KINDS)
    def test_located_child_contains_point(self, kind):
        """The located child always closed-contains the point (true for
        every kind, including the arithmetic grids whose floor division
        may assign an edge-equal float to either neighbour — see the
        comparison-based test below for the exact tie-break)."""
        index = _build_index(kind, DOMAINS[0], seed=7)
        for node, kids in _internal_nodes(index):
            for p in _edge_points(node, kids):
                child = index.locate_child(node, p)
                if child is None:
                    continue
                assert child.bounds.contains(p), (kind, node.path, p)

    @pytest.mark.parametrize("kind", ("kdtree", "str"))
    def test_comparison_based_tie_break_is_exactly_half_open(self, kind):
        """Where the tie-break is a direct comparison against the stored
        edge float (k-d split plane, STR scan) the half-open convention
        is *exact*: unless the point sits on the node's own max edge
        (where it folds into the last cell), the located child
        half-open contains it.  Arithmetic grids realise the same
        convention through floor-and-clamp, where an edge-equal float
        may consistently land either side of the stored edge — there
        the byte-identity test above is the contract."""
        index = _build_index(kind, DOMAINS[0], seed=7)
        for node, kids in _internal_nodes(index):
            for p in _edge_points(node, kids):
                child = index.locate_child(node, p)
                if child is None:
                    continue
                b = child.bounds
                on_node_max = (
                    p.x == node.bounds.max_x or p.y == node.bounds.max_y
                )
                if not on_node_max:
                    assert b.min_x <= p.x < b.max_x, (kind, node.path, p)
                    assert b.min_y <= p.y < b.max_y, (kind, node.path, p)
                else:
                    assert b.contains(p), (kind, node.path, p)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_random_samples_all_kinds(self, seed):
        """Hypothesis sweep: data-adaptive builds driven by arbitrary
        seeds keep scalar and vectorised location identical on the
        exact edge/corner floats those builds produce."""
        domain = DOMAINS[1]
        for kind in ("quadtree", "kdtree", "str"):
            index = _build_index(kind, domain, seed=seed)
            for node, kids in _internal_nodes(index):
                pts = _edge_points(node, kids)
                coords = np.asarray([(p.x, p.y) for p in pts])
                vec = index.locate_child_indices(node, coords)
                for p, v in zip(pts, vec):
                    child = index.locate_child(node, p)
                    expect = -1 if child is None else child.path[-1]
                    assert v == expect, (kind, seed, node.path, p)


class TestKDTreeSplitTieBreak:
    def test_split_plane_point_goes_right_like_build_bucketing(self):
        """The build puts ``p.x >= coord`` in the right bucket; locate
        must send a point on the split plane to the same side, or the
        median sample point would be 'lost' by its own tree."""
        domain = DOMAINS[0]
        index = _build_index("kdtree", domain, seed=11)
        root = index.root
        kids = index.children(root)
        split = kids[0].bounds.max_x
        p = Point(split, (domain.min_y + domain.max_y) / 2)
        child = index.locate_child(root, p)
        assert child is kids[1] or child.path == kids[1].path
        vec = index.locate_child_indices(root, np.asarray([[p.x, p.y]]))
        assert vec[0] == 1

    def test_domain_max_edge_folds_into_last_cell(self):
        index = _build_index("kdtree", DOMAINS[0], seed=11)
        root = index.root
        kids = index.children(root)
        p = Point(root.bounds.max_x, root.bounds.max_y)
        child = index.locate_child(root, p)
        assert child is not None and child.path == kids[1].path
        vec = index.locate_child_indices(root, np.asarray([[p.x, p.y]]))
        assert vec[0] == 1


class TestContainsMask:
    @pytest.mark.parametrize("kind", KINDS)
    def test_children_partition_interior_points(self, kind):
        """contains_mask over siblings must be a partition (each point
        in exactly one child) for points strictly inside the parent."""
        index = _build_index(kind, DOMAINS[0], seed=3)
        rng = np.random.default_rng(5)
        for node, kids in _internal_nodes(index):
            b = node.bounds
            coords = np.stack(
                [
                    rng.uniform(b.min_x, b.max_x, 200),
                    rng.uniform(b.min_y, b.max_y, 200),
                ],
                axis=1,
            )
            # Keep strictly-interior points (uniform draws exclude the
            # max edge already; guard against min-edge coincidences).
            interior = (
                (coords[:, 0] > b.min_x)
                & (coords[:, 0] < b.max_x)
                & (coords[:, 1] > b.min_y)
                & (coords[:, 1] < b.max_y)
            )
            coords = coords[interior]
            total = np.zeros(coords.shape[0], dtype=int)
            for kid in kids:
                total += index.contains_mask(kid, coords).astype(int)
            assert np.all(total == 1), (kind, node.path)
