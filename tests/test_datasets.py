"""Unit tests for repro.datasets."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.geo.projection import GeoBounds
from repro.datasets import (
    CheckInDataset,
    CityModel,
    Cluster,
    austin_city_model,
    dataset_from_geo,
    generate_checkins,
    generate_pois,
    las_vegas_city_model,
    load_gowalla_austin,
    load_yelp_las_vegas,
    read_checkins_csv,
    write_checkins_csv,
    zipf_weights,
)
from repro.grid.regular import RegularGrid


class TestCheckInDataset:
    def test_construction_and_accessors(self, square20):
        xy = np.array([[1.0, 2.0], [3.0, 4.0], [1.0, 2.0]])
        ds = CheckInDataset("t", np.array([1, 2, 1]), xy, square20)
        assert ds.n_checkins == 3
        assert ds.n_users == 2
        assert ds.point(1) == Point(3.0, 4.0)
        assert len(list(ds)) == 3

    def test_out_of_bounds_rejected(self, square20):
        xy = np.array([[1.0, 2.0], [25.0, 4.0]])
        with pytest.raises(DatasetError, match="outside"):
            CheckInDataset("t", np.array([1, 2]), xy, square20)

    def test_shape_validation(self, square20):
        with pytest.raises(DatasetError):
            CheckInDataset("t", np.array([1]), np.ones((1, 3)), square20)
        with pytest.raises(DatasetError):
            CheckInDataset("t", np.array([1, 2]), np.ones((1, 2)), square20)

    def test_arrays_read_only(self, square20):
        ds = CheckInDataset(
            "t", np.array([1]), np.array([[1.0, 1.0]]), square20
        )
        with pytest.raises(ValueError):
            ds.xy[0, 0] = 5.0

    def test_sample_requests(self, small_dataset, rng):
        requests = small_dataset.sample_requests(50, rng)
        assert len(requests) == 50
        assert all(small_dataset.bounds.contains(p) for p in requests)

    def test_sample_requests_validation(self, small_dataset, rng):
        with pytest.raises(DatasetError):
            small_dataset.sample_requests(0, rng)

    def test_subsample(self, small_dataset, rng):
        sub = small_dataset.subsample(100, rng)
        assert sub.n_checkins == 100
        assert sub.bounds == small_dataset.bounds
        with pytest.raises(DatasetError):
            small_dataset.subsample(small_dataset.n_checkins + 1, rng)


class TestSynthetic:
    def test_zipf_weights(self):
        w = zipf_weights(100, 1.0)
        assert w.sum() == pytest.approx(1.0)
        assert w[0] > w[1] > w[50]
        assert w[0] / w[1] == pytest.approx(2.0)

    def test_cluster_validation(self):
        with pytest.raises(DatasetError):
            Cluster(cx=1.5, cy=0.5, std=0.1, weight=1)
        with pytest.raises(DatasetError):
            Cluster(cx=0.5, cy=0.5, std=0.0, weight=1)

    def test_city_model_validation(self, square20):
        with pytest.raises(DatasetError):
            CityModel(name="x", bounds=square20, clusters=())
        good = Cluster(cx=0.5, cy=0.5, std=0.1, weight=1)
        with pytest.raises(DatasetError):
            CityModel(name="x", bounds=square20, clusters=(good,), n_pois=0)
        with pytest.raises(DatasetError):
            CityModel(
                name="x", bounds=square20, clusters=(good,),
                background_fraction=1.5,
            )

    def test_pois_inside_bounds(self, square20):
        model = CityModel(
            name="t", bounds=square20,
            clusters=(Cluster(cx=0.1, cy=0.1, std=0.3, weight=1),),
            n_pois=500,
        )
        pois = generate_pois(model, np.random.default_rng(0))
        assert pois.shape == (500, 2)
        assert (pois >= 0).all() and (pois <= 20).all()

    def test_generation_is_deterministic(self, square20):
        model = CityModel(
            name="t", bounds=square20,
            clusters=(Cluster(cx=0.5, cy=0.5, std=0.1, weight=1),),
            n_pois=100, n_checkins=500, n_users=50,
        )
        a = generate_checkins(model, seed=9)
        b = generate_checkins(model, seed=9)
        assert np.array_equal(a.xy, b.xy)
        assert np.array_equal(a.user_ids, b.user_ids)

    def test_different_seeds_differ(self, square20):
        model = CityModel(
            name="t", bounds=square20,
            clusters=(Cluster(cx=0.5, cy=0.5, std=0.1, weight=1),),
            n_pois=100, n_checkins=500, n_users=50,
        )
        a = generate_checkins(model, seed=1)
        b = generate_checkins(model, seed=2)
        assert not np.array_equal(a.xy, b.xy)

    def test_scaled_model(self):
        model = austin_city_model().scaled(0.1)
        assert model.n_checkins == 26_557
        assert model.n_users == 1_215
        with pytest.raises(DatasetError):
            austin_city_model().scaled(0.0)

    def test_checkins_are_spatially_skewed(self, square20):
        """The generated prior must be far from uniform (city-like)."""
        ds = load_gowalla_austin(checkin_fraction=0.05, seed=3)
        grid = RegularGrid(ds.bounds, 8)
        counts = grid.histogram(ds.points())
        top_share = np.sort(counts)[-6:].sum() / counts.sum()
        assert top_share > 0.5  # top ~10% of cells hold most mass


class TestCityConfigs:
    def test_gowalla_counts_match_paper(self):
        model = austin_city_model()
        assert model.n_checkins == 265_571
        assert model.n_users == 12_155

    def test_yelp_counts_match_paper(self):
        model = las_vegas_city_model()
        assert model.n_checkins == 81_201
        assert model.n_users == 7_581

    def test_loaders_produce_square_20km_windows(self):
        for loader in (load_gowalla_austin, load_yelp_las_vegas):
            ds = loader(checkin_fraction=0.01)
            assert ds.bounds.side == pytest.approx(20.0, abs=0.6)
            assert ds.geo_bounds is not None


class TestIO:
    def test_roundtrip(self, tmp_path):
        ds = load_gowalla_austin(checkin_fraction=0.005, seed=4)
        path = tmp_path / "x.csv"
        write_checkins_csv(ds, path)
        again = read_checkins_csv(path, ds.name, ds.geo_bounds)
        assert again.n_checkins == ds.n_checkins
        # Lat/lon rounding at 6 decimals keeps points within ~15 cm.
        d = np.abs(again.xy - ds.xy).max()
        assert d < 2e-4

    def test_loader_prefers_real_file(self, tmp_path):
        ds = load_gowalla_austin(checkin_fraction=0.005, seed=4)
        path = tmp_path / "gowalla.csv"
        write_checkins_csv(ds, path)
        loaded = load_gowalla_austin(data_path=path)
        assert loaded.n_checkins == ds.n_checkins

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            read_checkins_csv(
                tmp_path / "nope.csv", "x",
                GeoBounds(30, -98, 31, -97),
            )

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,30.2,-97.7\n")
        with pytest.raises(DatasetError, match="header"):
            read_checkins_csv(path, "x", GeoBounds(30, -98, 31, -97))

    def test_bad_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("user_id,lat,lon\n1,not-a-number,-97.7\n")
        with pytest.raises(DatasetError, match="bad row"):
            read_checkins_csv(path, "x", GeoBounds(30, -98, 31, -97))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DatasetError, match="empty"):
            read_checkins_csv(path, "x", GeoBounds(30, -98, 31, -97))

    def test_window_filtering(self):
        window = GeoBounds(30.0, -98.0, 31.0, -97.0)
        records = [(1, 30.5, -97.5), (2, 40.0, -97.5), (3, 30.6, -97.4)]
        ds = dataset_from_geo("t", records, window)
        assert ds.n_checkins == 2

    def test_all_outside_raises(self):
        window = GeoBounds(30.0, -98.0, 31.0, -97.0)
        with pytest.raises(DatasetError):
            dataset_from_geo("t", [(1, 50.0, 10.0)], window)

    def test_write_requires_geo_bounds(self, tmp_path, square20):
        ds = CheckInDataset(
            "t", np.array([1]), np.array([[1.0, 1.0]]), square20
        )
        with pytest.raises(DatasetError, match="geographic window"):
            write_checkins_csv(ds, tmp_path / "x.csv")
