"""End-to-end integration tests across the whole library.

These tests wire full pipelines the way a downstream application would:
dataset -> prior -> mechanism -> service / attack / verification, and
assert the cross-module invariants the README promises.
"""

import numpy as np
import pytest

from repro import (
    EUCLIDEAN,
    MultiStepMechanism,
    OptimalMechanism,
    PlanarLaplaceMechanism,
    RegularGrid,
    empirical_prior,
    load_gowalla_austin,
    load_yelp_las_vegas,
)
from repro.attacks import optimal_inference_attack
from repro.datasets.synthetic import generate_pois
from repro.datasets.gowalla import austin_city_model
from repro.eval import evaluate_mechanism
from repro.lbs import LocationBasedService, POIStore
from repro.privacy import (
    BudgetAccountant,
    verify_geoind,
    verify_msm_composition,
)


class TestFullPipeline:
    def test_readme_quickstart(self):
        dataset = load_gowalla_austin(checkin_fraction=0.02)
        grid = RegularGrid(dataset.bounds, 16)
        prior = empirical_prior(grid, dataset.points(), smoothing=0.1)
        msm = MultiStepMechanism.build(
            epsilon=0.5, granularity=4, prior=prior
        )
        rng = np.random.default_rng(7)
        reported = msm.sample(dataset.point(0), rng)
        assert dataset.bounds.contains(reported)

    def test_both_datasets_end_to_end(self, rng):
        for loader in (load_gowalla_austin, load_yelp_las_vegas):
            dataset = loader(checkin_fraction=0.02)
            prior = empirical_prior(
                RegularGrid(dataset.bounds, 9), dataset.points(),
                smoothing=0.1,
            )
            msm = MultiStepMechanism.build(0.9, 3, prior, rho=0.8)
            requests = dataset.sample_requests(100, rng)
            result = evaluate_mechanism(
                msm, requests, rng, metrics=(EUCLIDEAN,)
            )
            assert 0 < result.loss(EUCLIDEAN) < dataset.bounds.side

    def test_msm_beats_pl_at_tight_privacy(self, small_dataset,
                                           fine_prior, rng):
        """The paper's headline claim, end to end."""
        epsilon = 0.1
        requests = small_dataset.sample_requests(400, rng)
        msm = MultiStepMechanism.build(epsilon, 4, fine_prior)
        pl = PlanarLaplaceMechanism(
            epsilon,
            grid=RegularGrid(small_dataset.bounds, msm.plan.leaf_granularity),
        )
        msm_loss = evaluate_mechanism(
            msm, requests, rng, metrics=(EUCLIDEAN,)
        ).loss(EUCLIDEAN)
        pl_loss = evaluate_mechanism(
            pl, requests, rng, metrics=(EUCLIDEAN,)
        ).loss(EUCLIDEAN)
        assert msm_loss < pl_loss / 1.5

    def test_privacy_chain_flat_and_multistep(self, coarse_prior,
                                              fine_prior):
        """Both mechanism families pass their own verifier."""
        opt = OptimalMechanism(0.5, coarse_prior)
        assert verify_geoind(opt.matrix, 0.5).satisfied

        msm = MultiStepMechanism.build(0.9, 3, fine_prior, rho=0.8)
        assert verify_msm_composition(msm).satisfied

    def test_service_quality_pipeline(self, small_dataset, fine_prior, rng):
        store = POIStore.from_coordinates(
            generate_pois(
                austin_city_model().scaled(0.2), np.random.default_rng(0)
            )
        )
        service = LocationBasedService(store)
        msm = MultiStepMechanism.build(0.5, 4, fine_prior)
        requests = small_dataset.sample_requests(60, rng)
        report = service.evaluate_mechanism(msm, requests, rng, k=3)
        assert report.n_queries == 60
        assert report.mean_extra_distance < small_dataset.bounds.side

    def test_attack_pipeline_on_opt(self, coarse_prior):
        opt = OptimalMechanism(0.5, coarse_prior)
        report = optimal_inference_attack(
            opt.matrix, coarse_prior.probabilities
        )
        assert 0 <= report.identification_rate <= 1
        assert report.expected_error <= report.prior_error + 1e-9

    def test_budget_accounting_across_reports(self, fine_prior, rng):
        """A user issuing several reports under one lifetime budget."""
        accountant = BudgetAccountant(total=1.0)
        x = fine_prior.grid.bounds.center
        reports = []
        while accountant.can_spend(0.3):
            msm = MultiStepMechanism.build(0.3, 3, fine_prior)
            reports.append(msm.sample(x, rng))
            accountant.spend(0.3, "checkin")
        assert len(reports) == 3
        assert accountant.remaining == pytest.approx(0.1)

    def test_offline_cache_makes_online_fast(self, fine_prior, rng):
        msm = MultiStepMechanism.build(0.9, 3, fine_prior, rho=0.8)
        msm.precompute()
        lp_before = msm.lp_seconds
        requests = [fine_prior.grid.bounds.center] * 200
        result = evaluate_mechanism(
            msm, requests, rng, metrics=(EUCLIDEAN,)
        )
        assert msm.lp_seconds == lp_before  # no online LP work
        assert result.ms_per_query < 10.0
