"""Tests for the fault-injection harness itself (repro.testing.faults).

The harness is trusted by every resilience test, so its own semantics —
which calls a rule matches, what each fault kind produces, what gets
logged — are pinned down here first.
"""

import numpy as np
import pytest

from repro.core.cache import NodeMechanismCache
from repro.core.msm import MultiStepMechanism
from repro.core.resilience import ResilienceConfig, ResilientSolver
from repro.exceptions import DegradedModeWarning, SolverError
from repro.lp import LinearProgramBuilder, solve
from repro.lp.result import LPStatus
from repro.geo.point import Point
from repro.mechanisms.exponential import exponential_matrix
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.regular import RegularGrid
from repro.priors.base import GridPrior
from repro.testing.faults import (
    FaultInjectingSolver,
    FlakyCacheProxy,
    LatencyFault,
    RaiseFault,
    StatusFault,
)

pytestmark = pytest.mark.faults


@pytest.fixture
def tiny_lp():
    """min x0  s.t.  x0 >= 1  — solves instantly on any backend."""
    b = LinearProgramBuilder(1)
    b.set_objective({0: 1.0})
    b.add_ge({0: 1.0}, 1.0)
    return b.build()


class TestRuleMatching:
    def test_nth_fires_exactly_once(self, tiny_lp):
        inj = FaultInjectingSolver([RaiseFault(nth=2)])
        assert inj(tiny_lp).is_optimal
        with pytest.raises(SolverError, match="injected"):
            inj(tiny_lp)
        assert inj(tiny_lp).is_optimal
        assert [kind for _, kind in inj.log] == [
            "delegate", "raise:injected solver fault", "delegate",
        ]

    def test_first_n_is_flaky_then_recover(self, tiny_lp):
        inj = FaultInjectingSolver([RaiseFault(first_n=2)])
        for _ in range(2):
            with pytest.raises(SolverError):
                inj(tiny_lp)
        assert inj(tiny_lp).is_optimal

    def test_after_is_works_then_breaks(self, tiny_lp):
        inj = FaultInjectingSolver([RaiseFault(after=1)])
        assert inj(tiny_lp).is_optimal
        for _ in range(3):
            with pytest.raises(SolverError):
                inj(tiny_lp)

    def test_backend_filter_counts_independently(self, tiny_lp):
        inj = FaultInjectingSolver([RaiseFault(backend="highs", nth=1)])
        # simplex calls are invisible to the rule's counter
        assert inj(tiny_lp, backend="simplex").is_optimal
        with pytest.raises(SolverError):
            inj(tiny_lp, backend="highs-ds")
        assert inj(tiny_lp, backend="highs-ipm").is_optimal

    def test_backend_prefix_matches_both_highs_methods(self, tiny_lp):
        inj = FaultInjectingSolver([RaiseFault(backend="highs")])
        with pytest.raises(SolverError):
            inj(tiny_lp, backend="highs-ds")
        with pytest.raises(SolverError):
            inj(tiny_lp, backend="highs-ipm")
        assert inj(tiny_lp, backend="simplex").is_optimal

    def test_match_parameter_validation(self):
        with pytest.raises(ValueError):
            RaiseFault(nth=0)
        with pytest.raises(ValueError):
            RaiseFault(first_n=0)
        with pytest.raises(ValueError):
            RaiseFault(after=-1)


class TestFaultKinds:
    def test_status_fault_returns_doctored_result(self, tiny_lp):
        inj = FaultInjectingSolver([StatusFault(LPStatus.NUMERICAL)])
        result = inj(tiny_lp)
        assert result.status is LPStatus.NUMERICAL
        assert not result.is_optimal
        assert result.raw_status == -1
        assert "injected" in result.message
        assert result.backend.startswith("fault:")

    def test_status_fault_rejects_optimal(self):
        with pytest.raises(ValueError):
            StatusFault(LPStatus.OPTIMAL)

    def test_latency_below_limit_delegates_with_added_time(self, tiny_lp):
        inj = FaultInjectingSolver([LatencyFault(seconds=0.5)])
        result = inj(tiny_lp, time_limit=2.0)
        assert result.is_optimal
        assert result.solve_seconds >= 0.5

    def test_latency_above_limit_times_out(self, tiny_lp):
        inj = FaultInjectingSolver([LatencyFault(seconds=0.5)])
        result = inj(tiny_lp, time_limit=0.1)
        assert result.status is LPStatus.TIME_LIMIT
        assert not result.is_optimal
        assert result.solve_seconds == pytest.approx(0.1)

    def test_latency_without_limit_delegates(self, tiny_lp):
        inj = FaultInjectingSolver([LatencyFault(seconds=3600.0)])
        assert inj(tiny_lp).is_optimal  # no wall clock actually spent

    def test_raise_fault_custom_exception(self, tiny_lp):
        inj = FaultInjectingSolver(
            [RaiseFault(message="boom", exc_factory=RuntimeError)]
        )
        with pytest.raises(RuntimeError, match="boom"):
            inj(tiny_lp)


class TestInjectorBookkeeping:
    def test_clean_passthrough_matches_real_solver(self, tiny_lp):
        inj = FaultInjectingSolver([])
        direct = solve(tiny_lp, backend="highs-ds")
        via = inj(tiny_lp, backend="highs-ds")
        assert via.is_optimal
        assert via.objective == pytest.approx(direct.objective)

    def test_calls_are_recorded(self, tiny_lp):
        inj = FaultInjectingSolver([])
        inj(tiny_lp, backend="simplex")
        inj(tiny_lp, backend="highs-ds", time_limit=1.0)
        assert inj.n_calls == 2
        assert inj.calls[0].backend == "simplex"
        assert inj.calls[1].time_limit == 1.0
        assert inj.calls[1].index == 2
        assert inj.calls[1].n_vars == 1

    def test_first_matching_rule_wins(self, tiny_lp):
        inj = FaultInjectingSolver(
            [StatusFault(LPStatus.NUMERICAL), RaiseFault()]
        )
        result = inj(tiny_lp)  # StatusFault shadows RaiseFault
        assert result.status is LPStatus.NUMERICAL


class TestFlakyCacheProxy:
    @pytest.fixture
    def matrix(self, square20):
        return exponential_matrix(RegularGrid(square20, 2), 1.0)

    def test_drop_all_forces_misses(self, matrix):
        proxy = FlakyCacheProxy(drop_all=True)
        proxy.put((0,), matrix)
        assert proxy.get((0,)) is None
        assert proxy.dropped_lookups == 1
        assert (0,) not in proxy
        assert len(proxy) == 1  # the entry exists, lookups just fail

    def test_targeted_drop(self, matrix):
        inner = NodeMechanismCache()
        proxy = FlakyCacheProxy(inner, drop_paths=[(1,)])
        proxy.put((0,), matrix)
        proxy.put((1,), matrix, degraded=True, source="exponential")
        assert proxy.get((0,)) is matrix
        assert proxy.get((1,)) is None
        assert set(proxy.degraded_entries()) == {(1,)}
        assert proxy.size_bytes == inner.size_bytes

    def test_clear_resets(self, matrix):
        proxy = FlakyCacheProxy(drop_all=True)
        proxy.put((0,), matrix)
        proxy.get((0,))
        proxy.clear()
        assert len(proxy) == 0
        assert proxy.dropped_lookups == 0


class TestBatchFaultSafety:
    """The bulk cache path must be fault-safe: a mid-batch solver
    failure degrades only the affected node's group and leaves every
    other point's walk undegraded."""

    def test_mid_batch_failure_degrades_only_affected_node(self, square20):
        prior = GridPrior.uniform(RegularGrid(square20, 9))
        index = HierarchicalGrid(square20, 3, 2)
        # Warm a real cache with a healthy solver, then serve a batch
        # through a proxy that drops exactly one level-2 node while the
        # solver is hard down: re-solving the dropped node is
        # unrecoverable, so precisely that node's group must degrade.
        healthy = MultiStepMechanism(index, (0.5, 0.7), prior)
        healthy.precompute()
        dropped = (4,)  # the level-2 node under the centre child
        proxy = FlakyCacheProxy(healthy.cache, drop_paths=[dropped])
        dead_solver = ResilientSolver(
            ResilienceConfig.starting_with("highs-ds"),
            solve_fn=FaultInjectingSolver(
                [RaiseFault(message="mid-batch outage")]
            ),
        )
        msm = MultiStepMechanism(
            index, (0.5, 0.7), prior, solver=dead_solver, cache=proxy
        )
        rng = np.random.default_rng(20190326)
        coords = rng.uniform(0.0, 20.0, size=(400, 2))
        points = [Point(float(x), float(y)) for x, y in coords]
        with pytest.warns(DegradedModeWarning, match="exponential fallback"):
            walks = msm.sanitize_batch(points, rng)
        assert len(walks) == len(points)
        through_dropped = 0
        for walk in walks:
            for step in walk.trace:
                if step.node_path == dropped:
                    assert step.degraded
                    assert step.mechanism == "exponential"
                    through_dropped += 1
                else:
                    assert not step.degraded
                    assert step.mechanism in ("opt", "bundle")
            if any(s.node_path == dropped for s in walk.trace):
                assert walk.degradation.degraded_levels == (2,)
            else:
                assert walk.degradation.clean
        # The scenario actually exercised the failure: some points
        # walked through the dead node, and only one re-solve happened.
        assert through_dropped > 0
        assert through_dropped < len(points)
        assert proxy.dropped_lookups >= 1
        assert proxy.builds == 1
