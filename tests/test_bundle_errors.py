"""Failure-injection tests for the offline bundle format."""

import numpy as np
import pytest

from repro.exceptions import DegradedModeWarning, MechanismError
from repro.core.bundle import load_bundle, save_bundle
from repro.core.msm import MultiStepMechanism


@pytest.fixture
def bundle_path(fine_prior, tmp_path):
    msm = MultiStepMechanism.build(0.9, 3, fine_prior, rho=0.8)
    return save_bundle(msm, tmp_path / "b.npz").path


class TestBundleFailureModes:
    def test_unsupported_version_rejected(self, bundle_path):
        with np.load(bundle_path) as data:
            payload = {k: data[k] for k in data.files}
        payload["meta_scalars"] = payload["meta_scalars"].copy()
        payload["meta_scalars"][0] = 99  # future format version
        np.savez_compressed(bundle_path, **payload)
        with pytest.raises(MechanismError, match="version"):
            load_bundle(bundle_path)

    def test_corrupted_matrix_rejected(self, bundle_path):
        """A tampered (non-stochastic) node matrix must not load."""
        with np.load(bundle_path) as data:
            payload = {k: data[k] for k in data.files}
        payload["node_root"] = payload["node_root"] * 0.5  # rows sum to 0.5
        np.savez_compressed(bundle_path, **payload)
        with pytest.raises(MechanismError, match="stochastic"):
            load_bundle(bundle_path)

    def test_negative_matrix_rejected(self, bundle_path):
        with np.load(bundle_path) as data:
            payload = {k: data[k] for k in data.files}
        bad = payload["node_root"].copy()
        bad[0, 0] -= 0.25
        bad[0, 1] += 0.25  # still row-stochastic...
        bad[0, 0] -= 1.0   # ...now clearly negative
        bad[0, 1] += 1.0
        payload["node_root"] = bad
        np.savez_compressed(bundle_path, **payload)
        with pytest.raises(MechanismError):
            load_bundle(bundle_path)

    def test_truncated_file_rejected(self, bundle_path):
        raw = bundle_path.read_bytes()
        bundle_path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(Exception):
            load_bundle(bundle_path)

    def test_v1_bundle_loads_with_assumption_warning(self, bundle_path):
        """Version-1 bundles predate degradation flags: they load, but
        the all-nodes-non-degraded assumption must be flagged."""
        with np.load(bundle_path) as data:
            payload = {
                k: data[k] for k in data.files if k != "meta_degraded"
            }
        payload["meta_scalars"] = payload["meta_scalars"].copy()
        payload["meta_scalars"][0] = 1
        np.savez_compressed(bundle_path, **payload)
        with pytest.warns(DegradedModeWarning, match="assumed non-degraded"):
            msm = load_bundle(bundle_path)
        assert len(msm.cache) > 0
        assert not msm.cache.degraded_entries()
    def test_partial_bundle_still_samples_with_lazy_solves(
        self, bundle_path, rng
    ):
        """Dropping cached nodes degrades to lazy LP solving, not failure."""
        with np.load(bundle_path) as data:
            payload = {
                k: data[k]
                for k in data.files
                if not (k.startswith("node_") and k != "node_root")
            }
        np.savez_compressed(bundle_path, **payload)
        msm = load_bundle(bundle_path)
        assert len(msm.cache) == 1  # only the root survived
        from repro.geo.point import Point

        z = msm.sample(Point(10, 10), rng)
        assert msm.index.bounds.contains(z)
        assert len(msm.cache) >= 2  # a level-1 node was solved lazily


class TestBundleConfigVerification:
    """A bundle solved for a different configuration is never served."""

    def test_matching_expectations_load(self, bundle_path, fine_prior):
        msm = MultiStepMechanism.build(0.9, 3, fine_prior, rho=0.8)
        restored = load_bundle(
            bundle_path, expect_budgets=msm.budgets, expect_metric=msm.dq
        )
        assert restored.budgets == msm.budgets

    def test_budget_split_mismatch_rejected(self, bundle_path, fine_prior):
        other = MultiStepMechanism.build(1.7, 3, fine_prior, rho=0.8)
        with pytest.raises(MechanismError, match="epsilon split"):
            load_bundle(bundle_path, expect_budgets=other.budgets)

    def test_budget_length_mismatch_rejected(self, bundle_path):
        with pytest.raises(MechanismError, match="epsilon split"):
            load_bundle(bundle_path, expect_budgets=(0.9,))

    def test_metric_mismatch_rejected(self, bundle_path):
        with pytest.raises(MechanismError, match="metric"):
            load_bundle(bundle_path, expect_metric="manhattan")

    def test_tolerant_to_float_noise_in_budgets(
        self, bundle_path, fine_prior
    ):
        """A split differing only by float round-trip noise still loads."""
        msm = MultiStepMechanism.build(0.9, 3, fine_prior, rho=0.8)
        noisy = tuple(b * (1 + 1e-12) for b in msm.budgets)
        restored = load_bundle(bundle_path, expect_budgets=noisy)
        assert restored.budgets == msm.budgets

