"""The compiled array-walk kernel (:mod:`repro.core.kernel`).

Four angles:

* **compile contract** — what compiles (regular warm trees), what
  refuses (adaptive tilings, cold caches), and how the cache-version
  handshake invalidates a stale arena after eviction;
* **differential fuzz** — Hypothesis-driven byte-identity of the
  compiled kernel against the staged walk across {GIHI, quadtree,
  k-d tree} x remap x mid-batch cache faults, under a shared seed.
  The two paths are one mechanism expressed two ways, so points,
  traces and degradation reports must match *exactly*, not just in
  distribution;
* **chi-square equivalence** (``statistical`` marker) — independent
  seeds, same leaf histogram: the distribution-level complement of
  the byte-level fuzz;
* **spanner guard** — matrices built over a Δ-spanner constraint
  subset at ``eps / Δ`` still pass the privacy guard at the full
  ``eps`` (the accounting the ``--dilation`` knob relies on).

Plus the store round trip: the persisted ``.kernel.npz`` arena adopts
bitwise on warm start and quarantines on tamper.
"""

from __future__ import annotations

import hashlib
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.core.cache import NodeMechanismCache
from repro.core.kernel import CompiledWalk, compile_walk
from repro.core.msm import MultiStepMechanism
from repro.core.resilience import ResilienceConfig, ResilientSolver
from repro.core.store import MechanismStore, config_fingerprint
from repro.exceptions import DegradedModeWarning, MechanismError
from repro.geo import BoundingBox, Point
from repro.geo.metric import EUCLIDEAN
from repro.grid import RegularGrid
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.kdtree import KDTreeIndex
from repro.grid.quadtree import QuadtreeIndex
from repro.grid.str_index import STRIndex
from repro.mechanisms.optimal import optimal_mechanism_from_locations
from repro.priors import GridPrior
from repro.privacy.guard import guard_mechanism
from repro.testing.faults import (
    FaultInjectingSolver,
    FlakyCacheProxy,
    RaiseFault,
)

SEED = 20190326

BOUNDS = BoundingBox.square(Point(0.0, 0.0), 20.0)


def _sample_points(n: int = 200) -> list[Point]:
    coords = np.random.default_rng(7).uniform(0.0, 20.0, size=(n, 2))
    return [Point(float(x), float(y)) for x, y in coords]


#: name -> (index factory, walk height, prior granularity)
_CONFIGS = {
    "gihi": (lambda: HierarchicalGrid(BOUNDS, 3, 2), 2, 9),
    "quad": (
        lambda: QuadtreeIndex(BOUNDS, _sample_points(), capacity=1,
                              max_depth=3),
        3,
        16,
    ),
    "kd": (
        lambda: KDTreeIndex(BOUNDS, _sample_points(), max_depth=3),
        3,
        16,
    ),
}

#: config name -> warmed clean cache snapshot, built once per run (the
#: LP sweep is the expensive part; every fuzz example reuses it)
_WARM: dict[str, dict] = {}


def _warm_snapshot(kind: str) -> dict:
    if kind not in _WARM:
        make_index, h, g = _CONFIGS[kind]
        msm = MultiStepMechanism(
            make_index(),
            [1.0 / h] * h,
            GridPrior.uniform(RegularGrid(BOUNDS, g)),
        )
        msm.precompute()
        _WARM[kind] = msm.cache.snapshot()
    return _WARM[kind]


def _dead_solver() -> ResilientSolver:
    return ResilientSolver(
        ResilienceConfig.starting_with("highs-ds"),
        solve_fn=FaultInjectingSolver(
            [RaiseFault(message="kernel-fuzz outage")]
        ),
    )


def _drop_path(index) -> tuple[int, ...]:
    """A root child that has children itself: dropping it forces a
    mid-walk re-solve, which the dead solver turns into degradation."""
    for child in index.children(index.root):
        if index.children(child):
            return child.path
    raise AssertionError("no internal root child to drop")


def _make_pair(kind: str, remap: bool, faults: bool):
    """Kernel and staged MSMs, identically configured over *independent*
    caches.

    Independence matters: were the caches shared, the staged engine's
    re-solve of a dropped path would bump the shared version and
    silently invalidate the kernel engine's arena, turning the
    differential test vacuous (both sides would run staged).
    """
    make_index, h, g = _CONFIGS[kind]
    snapshot = _warm_snapshot(kind)
    drop = _drop_path(make_index()) if faults else None

    def make() -> MultiStepMechanism:
        inner = NodeMechanismCache()
        inner.merge(snapshot)
        cache = (
            FlakyCacheProxy(inner, drop_paths=[drop]) if faults else inner
        )
        return MultiStepMechanism(
            make_index(),
            [1.0 / h] * h,
            GridPrior.uniform(RegularGrid(BOUNDS, g)),
            remap=remap,
            cache=cache,
            solver=_dead_solver() if faults else None,
        )

    kernel_msm, staged_msm = make(), make()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedModeWarning)
        kernel_msm.engine.kernel = "always"
        assert kernel_msm.engine.compile() is not None
    staged_msm.engine.kernel = "never"
    return kernel_msm, staged_msm, drop


def _workload(seed: int, n: int = 60) -> list[Point]:
    rng = np.random.default_rng(seed)
    pts = [
        Point(float(x), float(y))
        for x, y in rng.uniform(0.0, 20.0, size=(n, 2))
    ]
    # out-of-domain points exercise the uniform-drift draw at level 1
    pts.append(Point(-1.0, 5.0))
    pts.append(Point(21.0, 25.0))
    return pts


def _gihi_msm(granularity: int = 3, height: int = 2, **kwargs):
    return MultiStepMechanism(
        HierarchicalGrid(BOUNDS, granularity, height),
        [0.5] * height,
        GridPrior.uniform(RegularGrid(BOUNDS, granularity**height)),
        **kwargs,
    )


# ----------------------------------------------------------------------
# compile contract
# ----------------------------------------------------------------------
class TestCompileContract:
    def test_warm_gihi_compiles_with_expected_shape(self):
        msm = _gihi_msm()
        msm.precompute()
        compiled = msm.engine.compile(build=False)
        assert compiled is not None
        # root + 9 children + 81 grandchildren, two arena levels
        assert compiled.n_nodes == 1 + 9 + 81
        assert compiled.n_levels == 2
        assert compiled.cdf_levels[0].shape == (9, 9)
        assert compiled.cdf_levels[1].shape == (81, 9)
        assert compiled.row_offset[0] == 0
        leaves = compiled.child_count == 0
        assert leaves.sum() == 81
        assert np.all(compiled.row_offset[leaves] == -1)
        assert compiled.cache_version == msm.cache.version

    def test_cold_cache_does_not_compile_without_build(self):
        msm = _gihi_msm(granularity=2)
        assert msm.engine.compile(build=False) is None
        assert msm.engine.compiled is None
        # build=True solves the tree and succeeds
        assert msm.engine.compile(build=True) is not None
        assert len(msm.cache) == 1 + 4  # root + level-1 internal nodes

    def test_adaptive_str_index_is_uncompilable(self):
        index = STRIndex(BOUNDS, _sample_points(), fanout=3, height=2)
        msm = MultiStepMechanism(
            index,
            [0.5, 0.5],
            GridPrior.uniform(RegularGrid(BOUNDS, 16)),
        )
        msm.precompute()
        assert msm.engine.compile(build=False) is None
        # and the engine keeps serving via the staged path even when
        # dispatch asks for the kernel on every batch size
        msm.engine.kernel = "auto"
        msm.engine.kernel_min_batch = 1
        walks = msm.sanitize_batch(
            _workload(SEED), np.random.default_rng(SEED)
        )
        assert len(walks) == 62

    def test_eviction_bumps_version_and_invalidates(self):
        msm = _gihi_msm(granularity=2)
        msm.precompute()
        engine = msm.engine
        compiled = engine.compile(build=False)
        assert compiled is not None
        before = msm.cache.version
        msm.cache.clear()
        assert msm.cache.version > before
        # the stale arena is never used: auto mode on the now-cold cache
        # sees the version mismatch, fails the (build=False) recompile,
        # and falls back to the staged walk — which re-solves
        engine.kernel = "auto"
        engine.kernel_min_batch = 1
        walks = msm.sanitize_batch(
            _workload(SEED, n=8), np.random.default_rng(SEED)
        )
        assert len(walks) == 10
        assert engine.compiled is None  # dropped, not silently reused
        # a rebuild re-arms the kernel against the new cache version
        assert engine.compile(build=True) is not None
        assert engine.compiled.cache_version == msm.cache.version

    def test_always_mode_builds_missing_entries(self):
        msm = _gihi_msm(granularity=2)
        msm.engine.kernel = "always"
        walks = msm.sanitize_batch(
            _workload(SEED, n=4), np.random.default_rng(SEED)
        )
        assert len(walks) == 6
        assert msm.engine.compiled is not None

    def test_invalid_kernel_mode_rejected(self):
        msm = _gihi_msm(granularity=2)
        with pytest.raises(MechanismError, match="kernel"):
            msm.engine.kernel = "sometimes"

    def test_to_from_arrays_roundtrip(self):
        msm = _gihi_msm()
        msm.precompute()
        compiled = msm.engine.compile(build=False)
        clone = CompiledWalk.from_arrays(compiled.to_arrays())
        assert compiled.equals(clone)
        assert clone.paths == compiled.paths

    def test_auto_mode_keeps_small_batches_staged(self):
        msm = _gihi_msm(granularity=2)
        msm.precompute()
        engine = msm.engine
        assert engine.kernel == "auto"
        assert engine.kernel_min_batch > 8
        msm.sanitize_batch(
            _workload(SEED, n=6), np.random.default_rng(SEED)
        )
        assert engine.compiled is None  # never compiled for a tiny batch


# ----------------------------------------------------------------------
# differential fuzz: kernel == staged, byte for byte
# ----------------------------------------------------------------------
class TestByteIdentity:
    @pytest.mark.parametrize(
        "kind,remap,faults",
        [
            ("gihi", False, False),
            ("gihi", True, False),
            ("gihi", False, True),
            ("gihi", True, True),
            ("quad", False, False),
            ("quad", False, True),
            ("kd", False, False),
            ("kd", False, True),
        ],
    )
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=6, deadline=None, derandomize=True)
    def test_kernel_matches_staged(self, kind, remap, faults, seed):
        kernel_msm, staged_msm, drop = _make_pair(kind, remap, faults)
        points = _workload(seed)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedModeWarning)
            a = kernel_msm.sanitize_batch(points, np.random.default_rng(seed))
            b = staged_msm.sanitize_batch(points, np.random.default_rng(seed))
        assert [w.point for w in a] == [w.point for w in b]
        assert [w.trace for w in a] == [w.trace for w in b]
        assert [w.degradation for w in a] == [w.degradation for w in b]
        if faults:
            # the walks really ran through the degraded fallback: any
            # step through the dropped node is marked
            assert all(
                s.degraded
                for w in b
                for s in w.trace
                if s.node_path == drop
            )

    def test_traceless_run_same_points_empty_traces(self):
        kernel_msm, _, _ = _make_pair("gihi", remap=False, faults=False)
        points = _workload(SEED)
        a = kernel_msm.sanitize_batch(points, np.random.default_rng(SEED))
        b = kernel_msm.sanitize_batch(
            points, np.random.default_rng(SEED), trace=False
        )
        assert [w.point for w in a] == [w.point for w in b]
        assert all(w.trace == () for w in b)
        assert [w.degradation for w in a] == [w.degradation for w in b]


# ----------------------------------------------------------------------
# distributional equivalence (independent seeds)
# ----------------------------------------------------------------------
@pytest.mark.statistical
class TestChiSquareEquivalence:
    N = 6000
    ALPHA = 0.01
    MIN_POOLED = 10

    def test_chi_square_kernel_vs_staged(self):
        """Kernel and staged leaf distributions are indistinguishable
        under *independent* seeds (alpha = 0.01; fixed seeds, verified
        deterministic outcome)."""
        msm = _gihi_msm()
        msm.precompute()
        assert msm.engine.compile(build=False) is not None
        xs = [
            Point(float(x), float(y))
            for x, y in np.random.default_rng(SEED).uniform(
                0.0, 20.0, size=(self.N, 2)
            )
        ]
        msm.engine.kernel = "never"
        staged = msm.sanitize_batch(xs, np.random.default_rng(31))
        msm.engine.kernel = "always"
        kernel = msm.sanitize_batch(xs, np.random.default_rng(32))

        grid = msm.index.level_grid(min(msm.height, msm.index.height))

        def leaf_counts(walks):
            counts = np.zeros(grid.n_cells, dtype=float)
            for w in walks:
                counts[grid.locate(w.point).index] += 1
            return counts

        a, b = leaf_counts(staged), leaf_counts(kernel)
        pooled = a + b
        keep = pooled >= self.MIN_POOLED
        table = np.vstack([
            np.append(a[keep], a[~keep].sum()),
            np.append(b[keep], b[~keep].sum()),
        ])
        table = table[:, table.sum(axis=0) > 0]
        _, p_value, _, _ = stats.chi2_contingency(table)
        assert p_value >= self.ALPHA, (
            f"kernel and staged leaf distributions diverge "
            f"(p={p_value:.4g})"
        )


# ----------------------------------------------------------------------
# spanner dilation: the guard holds at the full epsilon
# ----------------------------------------------------------------------
class TestSpannerGuard:
    @pytest.mark.parametrize("dilation", [1.1, 1.5, 2.0])
    def test_spanner_solve_passes_guard_at_full_epsilon(self, dilation):
        """Solving over the spanner's edge set at ``eps / dilation``
        yields a mechanism the guard verifies at ``eps`` over *all*
        pairs — fewer constraints, same guarantee."""
        epsilon = 0.8
        grid = RegularGrid(BOUNDS, 4)
        locations = grid.centers()
        prior = np.full(len(locations), 1.0 / len(locations))

        exact = optimal_mechanism_from_locations(
            epsilon, locations, prior, EUCLIDEAN
        )
        spanned = optimal_mechanism_from_locations(
            epsilon, locations, prior, EUCLIDEAN,
            spanner_dilation=dilation,
        )
        assert spanned.n_constraints < exact.n_constraints
        report = guard_mechanism(spanned.matrix, epsilon)
        assert report.satisfied
        # utility can only get worse under a tighter effective epsilon
        assert spanned.expected_loss >= exact.expected_loss - 1e-9

    def test_msm_built_with_dilation_guards_every_node(self):
        msm = _gihi_msm(spanner_dilation=1.5)
        msm.precompute()
        assert msm.spanner_dilation == 1.5
        for entry in msm.cache.snapshot().values():
            report = guard_mechanism(
                entry.matrix, entry.epsilon, dx=msm.engine.dx
            )
            assert report.satisfied
        # and the dilated tree compiles like any other
        assert msm.engine.compile(build=False) is not None


# ----------------------------------------------------------------------
# store round trip: the persisted arena sidecar
# ----------------------------------------------------------------------
class TestKernelSidecar:
    def test_sidecar_written_and_adopted_bitwise(self, tmp_path):
        store = MechanismStore(tmp_path / "store")
        builder = _gihi_msm()
        store.get_or_build(builder)
        sidecar = store.kernel_path_for(builder)
        assert sidecar.exists()
        assert MechanismStore.checksum_path(sidecar).exists()
        assert sidecar not in store.entries()  # not a bundle

        warm = _gihi_msm()
        record = store.get_or_build(warm)
        assert record.outcome == "hit"
        assert sidecar.exists()  # verified, not quarantined
        assert warm.engine.compiled is not None
        # the adopted arena IS a fresh compile of the adopted cache
        recompiled = compile_walk(warm.engine, build_missing=False)
        assert warm.engine.compiled.equals(recompiled)

    def test_warm_started_kernel_run_matches_staged(self, tmp_path):
        store = MechanismStore(tmp_path / "store")
        store.get_or_build(_gihi_msm())
        warm = _gihi_msm()
        store.get_or_build(warm)
        points = _workload(SEED)
        warm.engine.kernel = "always"
        a = warm.sanitize_batch(points, np.random.default_rng(SEED))
        warm.engine.kernel = "never"
        b = warm.sanitize_batch(points, np.random.default_rng(SEED))
        assert [w.point for w in a] == [w.point for w in b]
        assert [w.trace for w in a] == [w.trace for w in b]

    def test_tampered_sidecar_quarantined_fresh_compile_survives(
        self, tmp_path
    ):
        store = MechanismStore(tmp_path / "store")
        store.get_or_build(_gihi_msm())
        probe = _gihi_msm()
        sidecar = store.kernel_path_for(probe)
        with np.load(sidecar) as data:
            arrays = dict(data)
        arrays["cdf_0"] = arrays["cdf_0"].copy()
        arrays["cdf_0"][0, 0] += 1e-9  # below any statistical radar
        with open(sidecar, "wb") as fh:
            np.savez(fh, **arrays)
        MechanismStore.checksum_path(sidecar).write_text(
            hashlib.sha256(sidecar.read_bytes()).hexdigest() + "\n"
        )
        warm = _gihi_msm()
        record = store.warm_start(warm)
        assert record is not None and record.outcome == "hit"
        assert not sidecar.exists()
        quarantined = list(
            (store.root / ".quarantine").glob("*.kernel.npz*")
        )
        assert quarantined
        # serving is unaffected: the fresh compile took over
        assert warm.engine.compiled is not None

    def test_dilation_is_part_of_the_fingerprint(self):
        assert config_fingerprint(_gihi_msm()) != config_fingerprint(
            _gihi_msm(spanner_dilation=1.5)
        )
