"""Shared fixtures for the test suite.

Heavy objects (datasets, priors) are session-scoped; anything stateful
(RNGs, mechanisms) is function-scoped so tests stay independent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_gowalla_austin
from repro.geo import BoundingBox, Point
from repro.grid import RegularGrid
from repro.priors import GridPrior, empirical_prior


@pytest.fixture(scope="session")
def square20() -> BoundingBox:
    """A 20 x 20 km square domain (the paper's city window size)."""
    return BoundingBox.square(Point(0.0, 0.0), 20.0)


@pytest.fixture(scope="session")
def small_dataset():
    """A scaled-down synthetic Gowalla-Austin (fast, deterministic)."""
    return load_gowalla_austin(checkin_fraction=0.02, seed=123)


@pytest.fixture(scope="session")
def fine_prior(small_dataset) -> GridPrior:
    """Empirical prior on a 16 x 16 grid over the small dataset."""
    grid = RegularGrid(small_dataset.bounds, 16)
    return empirical_prior(grid, small_dataset.points(), smoothing=0.1)


@pytest.fixture(scope="session")
def coarse_prior(small_dataset) -> GridPrior:
    """Empirical prior on a 3 x 3 grid (small enough for fast OPT)."""
    grid = RegularGrid(small_dataset.bounds, 3)
    return empirical_prior(grid, small_dataset.points(), smoothing=0.1)


@pytest.fixture(scope="session")
def uniform3(square20) -> GridPrior:
    """Uniform prior over a 3 x 3 grid on the standard square."""
    return GridPrior.uniform(RegularGrid(square20, 3))


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(20190326)
