"""Unit tests for repro.geo.bbox."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import GeometryError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point


@pytest.fixture
def unit() -> BoundingBox:
    return BoundingBox(0, 0, 1, 1)


class TestConstruction:
    def test_degenerate_boxes_rejected(self):
        with pytest.raises(GeometryError):
            BoundingBox(0, 0, 0, 1)
        with pytest.raises(GeometryError):
            BoundingBox(0, 0, 1, 0)
        with pytest.raises(GeometryError):
            BoundingBox(2, 0, 1, 1)

    def test_square_factory(self):
        b = BoundingBox.square(Point(1, 2), 3.0)
        assert (b.min_x, b.min_y, b.max_x, b.max_y) == (1, 2, 4, 5)
        assert b.side == pytest.approx(3.0)

    def test_square_factory_rejects_nonpositive_side(self):
        with pytest.raises(GeometryError):
            BoundingBox.square(Point(0, 0), 0.0)

    def test_side_raises_for_rectangles(self):
        with pytest.raises(GeometryError):
            BoundingBox(0, 0, 2, 1).side


class TestGeometry:
    def test_dimensions(self, unit):
        assert unit.width == 1 and unit.height == 1 and unit.area == 1

    def test_center(self):
        assert BoundingBox(0, 0, 4, 2).center == Point(2, 1)

    def test_corners(self, unit):
        assert unit.lower_left == Point(0, 0)
        assert unit.upper_right == Point(1, 1)

    def test_contains_interior_and_boundary(self, unit):
        assert unit.contains(Point(0.5, 0.5))
        assert unit.contains(Point(0, 0))
        assert unit.contains(Point(1, 1))
        assert not unit.contains(Point(1.01, 0.5))

    def test_clamp(self, unit):
        assert unit.clamp(Point(2, -1)) == Point(1, 0)
        assert unit.clamp(Point(0.3, 0.7)) == Point(0.3, 0.7)

    def test_intersects(self, unit):
        assert unit.intersects(BoundingBox(0.5, 0.5, 2, 2))
        assert unit.intersects(BoundingBox(1, 1, 2, 2))  # shared corner
        assert not unit.intersects(BoundingBox(1.1, 1.1, 2, 2))

    def test_contains_box(self, unit):
        assert unit.contains_box(BoundingBox(0.1, 0.1, 0.9, 0.9))
        assert unit.contains_box(unit)
        assert not unit.contains_box(BoundingBox(0.5, 0.5, 1.5, 0.9))

    def test_scaled_to_square_keeps_center_and_covers(self):
        rect = BoundingBox(0, 0, 4, 2)
        sq = rect.scaled_to_square()
        assert sq.side == pytest.approx(4.0)
        assert sq.center == rect.center
        assert sq.contains_box(rect)


class TestSplit:
    def test_split_counts_and_order(self, unit):
        cells = unit.split(2)
        assert len(cells) == 4
        # Row-major from bottom-left.
        assert cells[0].contains(Point(0.25, 0.25))
        assert cells[1].contains(Point(0.75, 0.25))
        assert cells[2].contains(Point(0.25, 0.75))
        assert cells[3].contains(Point(0.75, 0.75))

    def test_split_partitions_area(self, unit):
        cells = unit.split(3)
        assert sum(c.area for c in cells) == pytest.approx(unit.area)

    def test_split_invalid(self, unit):
        with pytest.raises(GeometryError):
            unit.split(0)

    @given(st.integers(min_value=1, max_value=7))
    def test_split_cells_tile_exactly(self, g):
        box = BoundingBox(-3, 2, 5, 10)
        cells = box.split(g)
        assert len(cells) == g * g
        assert all(box.contains_box(c) for c in cells)
        # Adjacent cells share edges exactly (no gaps): x breakpoints align.
        xs = sorted({c.min_x for c in cells})
        assert len(xs) == g
