"""Unit tests for the STR-packed (R+-style) index."""

import numpy as np
import pytest

from repro.exceptions import GridError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.grid.str_index import STRIndex


def skewed_points(n: int, seed: int = 0) -> list[Point]:
    rng = np.random.default_rng(seed)
    dense = rng.normal([15, 15], 1.2, size=(int(n * 0.7), 2))
    sparse = rng.uniform(0, 20, size=(n - dense.shape[0], 2))
    xy = np.clip(np.vstack([dense, sparse]), 0, 20)
    return [Point(float(x), float(y)) for x, y in xy]


@pytest.fixture
def domain() -> BoundingBox:
    return BoundingBox(0, 0, 20, 20)


class TestConstruction:
    def test_validation(self, domain):
        with pytest.raises(GridError):
            STRIndex(domain, [], fanout=1)
        with pytest.raises(GridError):
            STRIndex(domain, [], height=0)

    def test_complete_tree(self, domain):
        index = STRIndex(domain, skewed_points(400), fanout=3, height=2)
        assert index.max_height() == 2
        assert len(index.leaves()) == 81
        assert index.node_count() == 1 + 9 + 81

    def test_empty_sample_falls_back_to_even_tiling(self, domain):
        index = STRIndex(domain, [], fanout=2, height=1)
        kids = index.children(index.root)
        assert len(kids) == 4
        widths = sorted({round(k.bounds.width, 9) for k in kids})
        assert widths == [10.0]

    def test_children_partition_parent_exactly(self, domain):
        index = STRIndex(domain, skewed_points(500), fanout=3, height=2)
        stack = [index.root]
        while stack:
            node = stack.pop()
            kids = index.children(node)
            if not kids:
                continue
            assert len(kids) == 9
            assert sum(k.bounds.area for k in kids) == pytest.approx(
                node.bounds.area
            )
            assert all(node.bounds.contains_box(k.bounds) for k in kids)
            stack.extend(kids)

    def test_cells_shrink_where_data_is_dense(self, domain):
        index = STRIndex(domain, skewed_points(2000), fanout=3, height=1)
        kids = index.children(index.root)
        dense_cell = index.locate_child(index.root, Point(15, 15))
        areas = [k.bounds.area for k in kids]
        assert dense_cell.bounds.area < np.mean(areas)

    def test_sliver_clamp(self, domain):
        """Degenerate samples still yield usable cell extents."""
        pts = [Point(10.0, 10.0)] * 500
        index = STRIndex(domain, pts, fanout=3, height=1)
        for kid in index.children(index.root):
            assert kid.bounds.width >= 0.08 * 20 - 1e-9
            assert kid.bounds.height >= 0.08 * 20 - 1e-9

    def test_out_of_bounds_points_ignored(self, domain):
        index = STRIndex(
            domain, [Point(-1, -1), Point(30, 5)], fanout=2, height=1
        )
        assert len(index.children(index.root)) == 4


class TestLocation:
    def test_locate_child_total_over_domain(self, domain, rng):
        index = STRIndex(domain, skewed_points(600), fanout=3, height=2)
        for _ in range(100):
            p = Point(*rng.uniform(0, 20, 2))
            node = index.root
            while not index.is_leaf(node):
                child = index.locate_child(node, p)
                assert child is not None, p
                assert child.bounds.contains(p)
                node = child

    def test_locate_child_outside(self, domain):
        index = STRIndex(domain, skewed_points(100), fanout=2, height=1)
        assert index.locate_child(index.root, Point(25, 5)) is None

    def test_each_point_in_exactly_one_child(self, domain, rng):
        index = STRIndex(domain, skewed_points(300), fanout=3, height=1)
        kids = index.children(index.root)
        for _ in range(200):
            p = Point(*rng.uniform(0.01, 19.99, 2))
            hits = [
                k for k in kids
                if k.bounds.min_x <= p.x < k.bounds.max_x
                and k.bounds.min_y <= p.y < k.bounds.max_y
            ]
            assert len(hits) == 1


class TestWithMSM:
    def test_msm_walks_str_index(self, domain, fine_prior,
                                 small_dataset, rng):
        from repro.core.msm import MultiStepMechanism

        sample = small_dataset.sample_requests(1000, rng)
        index = STRIndex(
            small_dataset.bounds, sample, fanout=3, height=2
        )
        msm = MultiStepMechanism(index, (0.3, 0.2), fine_prior)
        x = sample[0]
        z = msm.sample(x, rng)
        assert small_dataset.bounds.contains(z)
        _, probs = msm.reported_distribution(x)
        assert probs.sum() == pytest.approx(1.0)
