"""Unit tests for the exponential mechanism and Bayesian remapping."""

import numpy as np
import pytest

from repro.exceptions import MechanismError
from repro.geo.metric import EUCLIDEAN
from repro.geo.point import Point
from repro.grid.regular import RegularGrid
from repro.mechanisms.exponential import ExponentialMechanism, exponential_matrix
from repro.mechanisms.matrix import MechanismMatrix
from repro.mechanisms.remap import (
    optimal_remap_assignment,
    posterior_matrix,
    remap_mechanism,
)
from repro.privacy import verify_geoind


class TestExponential:
    def test_epsilon_validation(self, square20):
        with pytest.raises(MechanismError):
            exponential_matrix(RegularGrid(square20, 2), 0.0)

    def test_rows_stochastic_and_diagonal_max(self, square20):
        grid = RegularGrid(square20, 3)
        m = exponential_matrix(grid, 0.5)
        assert m.k.sum(axis=1) == pytest.approx(np.ones(9))
        for i in range(9):
            assert m.k[i, i] == m.k[i].max()

    def test_satisfies_geoind(self, square20):
        grid = RegularGrid(square20, 3)
        m = exponential_matrix(grid, 0.5)
        assert verify_geoind(m, 0.5).satisfied

    def test_half_epsilon_exponent_is_necessary(self, square20):
        """With exponent -eps*d (no half), GeoInd can be violated: the
        normalisation constants contribute the second eps/2 factor."""
        grid = RegularGrid(square20, 3)
        centers = grid.centers()
        d = EUCLIDEAN.pairwise(centers, centers)
        k = np.exp(-0.5 * d)  # full exponent at eps = 0.5
        k /= k.sum(axis=1, keepdims=True)
        m = MechanismMatrix(centers, centers, k)
        assert not verify_geoind(m, 0.5).satisfied

    def test_mechanism_sampling(self, square20, rng):
        grid = RegularGrid(square20, 3)
        mech = ExponentialMechanism(2.0, grid)
        x = Point(10, 10)  # centre cell
        zs = [mech.sample(x, rng) for _ in range(300)]
        stay = np.mean([z == grid.snap(x) for z in zs])
        assert stay > 0.5  # high budget concentrates on the true cell


class TestPosterior:
    def test_posterior_rows_sum_to_one(self, square20):
        grid = RegularGrid(square20, 3)
        m = exponential_matrix(grid, 0.5)
        prior = np.full(9, 1 / 9)
        sigma = posterior_matrix(m, prior)
        assert sigma.sum(axis=1) == pytest.approx(np.ones(9))

    def test_posterior_bayes_by_hand(self):
        pts = [Point(0, 0), Point(1, 0)]
        k = np.array([[0.8, 0.2], [0.4, 0.6]])
        m = MechanismMatrix(pts, pts, k)
        prior = np.array([0.5, 0.5])
        sigma = posterior_matrix(m, prior)
        # Pr[x=0 | z=0] = 0.8 / (0.8 + 0.4)
        assert sigma[0, 0] == pytest.approx(0.8 / 1.2)
        assert sigma[1, 1] == pytest.approx(0.6 / 0.8)

    def test_never_emitted_output_gets_uniform_posterior(self):
        pts = [Point(0, 0), Point(1, 0)]
        k = np.array([[1.0, 0.0], [1.0, 0.0]])
        m = MechanismMatrix(pts, pts, k)
        sigma = posterior_matrix(m, np.array([0.5, 0.5]))
        assert sigma[1] == pytest.approx([0.5, 0.5])

    def test_prior_size_validation(self, square20):
        m = exponential_matrix(RegularGrid(square20, 2), 0.5)
        with pytest.raises(MechanismError):
            posterior_matrix(m, np.ones(3))


class TestRemap:
    def test_identity_matrix_remaps_to_itself(self):
        pts = [Point(0, 0), Point(5, 0)]
        m = MechanismMatrix(pts, pts, np.eye(2))
        assignment = optimal_remap_assignment(
            m, np.array([0.5, 0.5]), EUCLIDEAN
        )
        assert np.array_equal(assignment, [0, 1])

    def test_remap_never_hurts(self, coarse_prior):
        m = exponential_matrix(coarse_prior.grid, 0.3)
        before = m.expected_loss(coarse_prior.probabilities, EUCLIDEAN)
        after = remap_mechanism(
            m, coarse_prior.probabilities, EUCLIDEAN
        ).expected_loss(coarse_prior.probabilities, EUCLIDEAN)
        assert after <= before + 1e-12

    def test_remap_preserves_geoind(self, coarse_prior):
        """Post-processing cannot weaken the privacy guarantee."""
        eps = 0.5
        m = exponential_matrix(coarse_prior.grid, eps)
        remapped = remap_mechanism(m, coarse_prior.probabilities, EUCLIDEAN)
        assert verify_geoind(remapped, eps).satisfied

    def test_skewed_prior_pulls_remap_to_mode(self, square20):
        """With an overwhelming prior mode, every output remaps there."""
        grid = RegularGrid(square20, 3)
        m = exponential_matrix(grid, 0.05)  # very diffuse mechanism
        prior = np.full(9, 1e-4)
        prior[4] = 1 - 8e-4
        assignment = optimal_remap_assignment(m, prior, EUCLIDEAN)
        assert (assignment == 4).all()
