"""Smoke tests for the example scripts.

Each example is a deliverable; these tests run the fast ones end to end
in a subprocess (so import side effects and ``__main__`` guards are
exercised exactly as a user would) and sanity-check the slow ones'
structure.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

ALL_EXAMPLES = [
    "quickstart.py",
    "nearby_poi_search.py",
    "mechanism_comparison.py",
    "budget_planning.py",
    "custom_city_adaptive_index.py",
    "day_of_checkins.py",
]

#: Examples cheap enough to execute in the unit-test suite.
FAST_EXAMPLES = [
    "budget_planning.py",
    "quickstart.py",
    "day_of_checkins.py",
]


class TestExamplesExist:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_present_with_main_guard(self, name):
        source = (EXAMPLES_DIR / name).read_text()
        assert "def main(" in source
        assert '__name__ == "__main__"' in source
        assert source.startswith('"""')  # documented

    def test_at_least_three_domain_examples(self):
        assert len(ALL_EXAMPLES) >= 3


class TestExamplesRun:
    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_runs_cleanly(self, name):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / name)],
            capture_output=True,
            text=True,
            timeout=300,
            cwd=EXAMPLES_DIR.parent,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip()

    def test_quickstart_reports_losses(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
            cwd=EXAMPLES_DIR.parent,
        )
        assert "sanitised reports" in result.stdout
        assert "budget plan" in result.stdout
