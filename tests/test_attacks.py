"""Tests for the Bayesian inference attack."""

import numpy as np
import pytest

from repro.geo.metric import EUCLIDEAN
from repro.geo.point import Point
from repro.grid.regular import RegularGrid
from repro.attacks import blind_guess_error, optimal_inference_attack
from repro.mechanisms.exponential import exponential_matrix
from repro.mechanisms.matrix import MechanismMatrix
from repro.mechanisms.optimal import OptimalMechanism
from repro.priors.base import GridPrior


def line(n):
    return [Point(float(i), 0.0) for i in range(n)]


class TestBlindGuess:
    def test_point_mass_prior_has_zero_error(self):
        pts = line(3)
        m = MechanismMatrix(pts, pts, np.full((3, 3), 1 / 3))
        prior = np.array([0.0, 1.0, 0.0])
        assert blind_guess_error(prior, m) == 0.0

    def test_uniform_line_prior(self):
        pts = line(3)
        m = MechanismMatrix(pts, pts, np.full((3, 3), 1 / 3))
        prior = np.full(3, 1 / 3)
        # Best blind guess is the middle point: error (1 + 0 + 1)/3.
        assert blind_guess_error(prior, m) == pytest.approx(2 / 3)


class TestAttack:
    def test_identity_mechanism_is_fully_broken(self):
        pts = line(3)
        m = MechanismMatrix(pts, pts, np.eye(3))
        report = optimal_inference_attack(m, np.full(3, 1 / 3))
        assert report.expected_error == pytest.approx(0.0)
        assert report.identification_rate == pytest.approx(1.0)

    def test_constant_mechanism_reveals_nothing(self):
        """A mechanism ignoring its input leaves the adversary at the
        blind-guess baseline."""
        pts = line(3)
        k = np.tile(np.array([0.2, 0.5, 0.3]), (3, 1))
        m = MechanismMatrix(pts, pts, k)
        prior = np.array([0.2, 0.5, 0.3])
        report = optimal_inference_attack(m, prior)
        assert report.expected_error == pytest.approx(report.prior_error)
        assert report.identification_rate == pytest.approx(
            report.prior_identification_rate
        )
        assert report.error_reduction == pytest.approx(0.0, abs=1e-12)

    def test_attack_bounded_by_blind_guess(self, coarse_prior):
        """Observing output can only help the adversary."""
        m = exponential_matrix(coarse_prior.grid, 0.5)
        report = optimal_inference_attack(m, coarse_prior.probabilities)
        assert report.expected_error <= report.prior_error + 1e-9
        assert (
            report.identification_rate
            >= report.prior_identification_rate - 1e-9
        )

    def test_more_budget_helps_the_adversary(self, coarse_prior):
        errors = []
        for eps in (0.1, 0.5, 2.0):
            m = exponential_matrix(coarse_prior.grid, eps)
            errors.append(
                optimal_inference_attack(
                    m, coarse_prior.probabilities
                ).expected_error
            )
        assert errors[0] >= errors[1] >= errors[2]

    def test_opt_leaks_no_more_than_its_epsilon_implies(self, square20):
        """Sanity: at tiny eps, identification stays near the prior mode."""
        grid = RegularGrid(square20, 3)
        prior = GridPrior.uniform(grid)
        opt = OptimalMechanism(0.01, prior)
        report = optimal_inference_attack(opt.matrix, prior.probabilities)
        assert report.identification_rate < 0.2  # prior mode is 1/9

    def test_metric_parameter(self, coarse_prior):
        from repro.geo.metric import SQUARED_EUCLIDEAN

        m = exponential_matrix(coarse_prior.grid, 0.5)
        r1 = optimal_inference_attack(
            m, coarse_prior.probabilities, EUCLIDEAN
        )
        r2 = optimal_inference_attack(
            m, coarse_prior.probabilities, SQUARED_EUCLIDEAN
        )
        assert r1.expected_error != pytest.approx(r2.expected_error)


class TestPanelConsistency:
    """The Oya-style panel and the raw attack report must agree.

    ``repro.eval.privacy.privacy_metrics`` is what the benchmark
    harness records per matrix cell; these tests pin it to the attack
    primitives it wraps, on the same matrices the attack tests use.
    """

    def test_panel_wraps_the_attack_report(self, coarse_prior):
        from repro.eval.privacy import privacy_metrics

        m = exponential_matrix(coarse_prior.grid, 0.5)
        report = optimal_inference_attack(
            m, coarse_prior.probabilities, EUCLIDEAN
        )
        panel = privacy_metrics(m, coarse_prior.probabilities, EUCLIDEAN)
        assert panel.adversarial_error == pytest.approx(
            report.expected_error
        )
        assert panel.identification_rate == pytest.approx(
            report.identification_rate
        )
        assert panel.prior_error == pytest.approx(report.prior_error)

    def test_more_budget_shrinks_conditional_entropy(self, coarse_prior):
        """More budget leaks more: H(X|Z) must fall as eps grows."""
        from repro.eval.privacy import privacy_metrics

        entropies = [
            privacy_metrics(
                exponential_matrix(coarse_prior.grid, eps),
                coarse_prior.probabilities,
                EUCLIDEAN,
                epsilon_tight=False,
            ).conditional_entropy_bits
            for eps in (0.1, 0.5, 2.0)
        ]
        assert entropies[0] >= entropies[1] >= entropies[2]

    def test_worst_case_dominates_average_on_attack_matrices(
        self, coarse_prior
    ):
        from repro.eval.privacy import privacy_metrics

        m = exponential_matrix(coarse_prior.grid, 0.5)
        panel = privacy_metrics(
            m, coarse_prior.probabilities, EUCLIDEAN, epsilon_tight=False
        )
        assert panel.worst_case_loss >= panel.expected_loss - 1e-12
        assert panel.conditional_entropy_bits <= (
            panel.prior_entropy_bits + 1e-12
        )
