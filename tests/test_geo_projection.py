"""Unit tests for repro.geo.projection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import GeometryError
from repro.geo.point import Point
from repro.geo.projection import (
    EquirectangularProjection,
    GeoBounds,
    haversine_km,
)

AUSTIN = GeoBounds(30.1927, -97.8698, 30.3723, -97.6618)


class TestGeoBounds:
    def test_invalid_latitudes(self):
        with pytest.raises(GeometryError):
            GeoBounds(40, -97, 30, -96)
        with pytest.raises(GeometryError):
            GeoBounds(-95, -97, 30, -96)

    def test_invalid_longitudes(self):
        with pytest.raises(GeometryError):
            GeoBounds(30, -96, 31, -97)

    def test_contains(self):
        assert AUSTIN.contains(30.3, -97.7)
        assert not AUSTIN.contains(30.3, -97.9)

    def test_reference_latitude_is_midpoint(self):
        assert AUSTIN.reference_lat == pytest.approx((30.1927 + 30.3723) / 2)


class TestProjection:
    def test_origin_at_southwest_corner(self):
        proj = EquirectangularProjection(AUSTIN)
        p = proj.to_plane(AUSTIN.min_lat, AUSTIN.min_lon)
        assert p.x == pytest.approx(0.0, abs=1e-12)
        assert p.y == pytest.approx(0.0, abs=1e-12)

    def test_window_is_about_20km(self):
        box = EquirectangularProjection(AUSTIN).planar_bbox()
        assert box.width == pytest.approx(20.0, abs=0.5)
        assert box.height == pytest.approx(20.0, abs=0.5)

    def test_roundtrip(self):
        proj = EquirectangularProjection(AUSTIN)
        lat, lon = 30.2671, -97.7431  # downtown Austin
        back = proj.to_geo(proj.to_plane(lat, lon))
        assert back[0] == pytest.approx(lat, abs=1e-12)
        assert back[1] == pytest.approx(lon, abs=1e-12)

    @given(
        st.floats(min_value=30.1927, max_value=30.3723),
        st.floats(min_value=-97.8698, max_value=-97.6618),
        st.floats(min_value=30.1927, max_value=30.3723),
        st.floats(min_value=-97.8698, max_value=-97.6618),
    )
    def test_projection_error_below_20m_at_city_scale(
        self, lat1, lon1, lat2, lon2
    ):
        proj = EquirectangularProjection(AUSTIN)
        planar = proj.to_plane(lat1, lon1).distance_to(proj.to_plane(lat2, lon2))
        true = haversine_km(lat1, lon1, lat2, lon2)
        assert abs(planar - true) < 0.02


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(30.0, -97.0, 30.0, -97.0) == 0.0

    def test_one_degree_latitude(self):
        # One degree of latitude is ~111.2 km everywhere.
        assert haversine_km(30.0, -97.0, 31.0, -97.0) == pytest.approx(
            111.2, abs=0.5
        )

    def test_symmetry(self):
        a = haversine_km(30.2, -97.7, 30.3, -97.8)
        b = haversine_km(30.3, -97.8, 30.2, -97.7)
        assert a == pytest.approx(b)
