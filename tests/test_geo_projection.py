"""Unit tests for repro.geo.projection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import GeometryError
from repro.geo.point import Point
from repro.geo.projection import (
    EquirectangularProjection,
    GeoBounds,
    haversine_km,
)

AUSTIN = GeoBounds(30.1927, -97.8698, 30.3723, -97.6618)


class TestGeoBounds:
    def test_invalid_latitudes(self):
        with pytest.raises(GeometryError):
            GeoBounds(40, -97, 30, -96)
        with pytest.raises(GeometryError):
            GeoBounds(-95, -97, 30, -96)

    def test_invalid_longitudes(self):
        with pytest.raises(GeometryError):
            GeoBounds(30, -96, 31, -97)

    def test_contains(self):
        assert AUSTIN.contains(30.3, -97.7)
        assert not AUSTIN.contains(30.3, -97.9)

    def test_reference_latitude_is_midpoint(self):
        assert AUSTIN.reference_lat == pytest.approx((30.1927 + 30.3723) / 2)


class TestProjection:
    def test_origin_at_southwest_corner(self):
        proj = EquirectangularProjection(AUSTIN)
        p = proj.to_plane(AUSTIN.min_lat, AUSTIN.min_lon)
        assert p.x == pytest.approx(0.0, abs=1e-12)
        assert p.y == pytest.approx(0.0, abs=1e-12)

    def test_window_is_about_20km(self):
        box = EquirectangularProjection(AUSTIN).planar_bbox()
        assert box.width == pytest.approx(20.0, abs=0.5)
        assert box.height == pytest.approx(20.0, abs=0.5)

    def test_roundtrip(self):
        proj = EquirectangularProjection(AUSTIN)
        lat, lon = 30.2671, -97.7431  # downtown Austin
        back = proj.to_geo(proj.to_plane(lat, lon))
        assert back[0] == pytest.approx(lat, abs=1e-12)
        assert back[1] == pytest.approx(lon, abs=1e-12)

    @given(
        st.floats(min_value=30.1927, max_value=30.3723),
        st.floats(min_value=-97.8698, max_value=-97.6618),
        st.floats(min_value=30.1927, max_value=30.3723),
        st.floats(min_value=-97.8698, max_value=-97.6618),
    )
    def test_projection_error_below_20m_at_city_scale(
        self, lat1, lon1, lat2, lon2
    ):
        proj = EquirectangularProjection(AUSTIN)
        planar = proj.to_plane(lat1, lon1).distance_to(proj.to_plane(lat2, lon2))
        true = haversine_km(lat1, lon1, lat2, lon2)
        assert abs(planar - true) < 0.02

    def test_roundtrip_exact_at_all_corners(self):
        """Round-trips must be exact (algebraic inverses), including at
        the domain corners — not just at the window centre."""
        proj = EquirectangularProjection(AUSTIN)
        for lat in (AUSTIN.min_lat, AUSTIN.max_lat):
            for lon in (AUSTIN.min_lon, AUSTIN.max_lon):
                back = proj.to_geo(proj.to_plane(lat, lon))
                assert back[0] == pytest.approx(lat, abs=1e-12)
                assert back[1] == pytest.approx(lon, abs=1e-12)

    def test_worst_corner_pair_drift_documented(self):
        """Regression for the documented 0.1 % tolerance at domain edges.

        The worst pair over the Gowalla-Austin bbox is the two *top*
        corners (the east-west edge farthest from the reference
        latitude): the projection fixes ``cos(lat)`` at the window
        midpoint, so that pair drifts ~18 m over ~20 km (~0.09 %
        relative).  This pins both sides of the contract: the drift
        stays below the documented 0.1 %, and it is genuinely
        metre-scale — anyone re-tightening the docs to "sub-metre at
        domain edges" will trip this test.
        """
        proj = EquirectangularProjection(AUSTIN)
        corners = [
            (lat, lon)
            for lat in (AUSTIN.min_lat, AUSTIN.max_lat)
            for lon in (AUSTIN.min_lon, AUSTIN.max_lon)
        ]
        worst_rel, worst_pair = 0.0, None
        for i, a in enumerate(corners):
            for b in corners[i + 1:]:
                true = haversine_km(a[0], a[1], b[0], b[1])
                planar = proj.to_plane(*a).distance_to(proj.to_plane(*b))
                rel = abs(planar - true) / true
                if rel > worst_rel:
                    worst_rel, worst_pair = rel, (a, b)
        # Documented ceiling holds across the full bbox...
        assert worst_rel < 1e-3
        # ...the worst pair is the top (max-lat) east-west edge...
        assert worst_pair is not None
        assert worst_pair[0][0] == worst_pair[1][0] == AUSTIN.max_lat
        # ...and the drift really is metre-scale, not sub-metre.
        a, b = worst_pair
        true = haversine_km(a[0], a[1], b[0], b[1])
        planar = proj.to_plane(*a).distance_to(proj.to_plane(*b))
        assert abs(planar - true) * 1000 > 10.0  # > 10 metres


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(30.0, -97.0, 30.0, -97.0) == 0.0

    def test_one_degree_latitude(self):
        # One degree of latitude is ~111.2 km everywhere.
        assert haversine_km(30.0, -97.0, 31.0, -97.0) == pytest.approx(
            111.2, abs=0.5
        )

    def test_symmetry(self):
        a = haversine_km(30.2, -97.7, 30.3, -97.8)
        b = haversine_km(30.3, -97.8, 30.2, -97.7)
        assert a == pytest.approx(b)
