"""Unit tests for repro.mechanisms.matrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MechanismError
from repro.geo.metric import EUCLIDEAN
from repro.geo.point import Point
from repro.mechanisms.matrix import MechanismMatrix


def line_points(n: int) -> list[Point]:
    return [Point(float(i), 0.0) for i in range(n)]


@pytest.fixture
def identity3() -> MechanismMatrix:
    pts = line_points(3)
    return MechanismMatrix(pts, pts, np.eye(3))


class TestConstruction:
    def test_shape_validation(self):
        pts = line_points(3)
        with pytest.raises(MechanismError):
            MechanismMatrix(pts, pts, np.ones((2, 3)) / 3)

    def test_non_stochastic_rejected(self):
        pts = line_points(2)
        with pytest.raises(MechanismError, match="stochastic"):
            MechanismMatrix(pts, pts, np.array([[0.5, 0.4], [0.5, 0.5]]))

    def test_negative_entries_rejected(self):
        pts = line_points(2)
        with pytest.raises(MechanismError, match="negative"):
            MechanismMatrix(pts, pts, np.array([[1.1, -0.1], [0.5, 0.5]]))

    def test_nan_rejected(self):
        pts = line_points(2)
        k = np.array([[np.nan, 1.0], [0.5, 0.5]])
        with pytest.raises(MechanismError, match="non-finite"):
            MechanismMatrix(pts, pts, k)

    def test_lp_dust_is_cleaned(self):
        """Tiny negatives from LP round-off are clipped and renormalised."""
        pts = line_points(2)
        k = np.array([[1.0 + 1e-9, -1e-9], [0.5, 0.5]])
        m = MechanismMatrix(pts, pts, k)
        assert (m.k >= 0).all()
        assert m.k.sum(axis=1) == pytest.approx(np.ones(2))

    def test_matrix_read_only(self, identity3):
        with pytest.raises(ValueError):
            identity3.k[0, 0] = 0.5


class TestBehaviour:
    def test_row_and_shape(self, identity3):
        assert identity3.shape == (3, 3)
        assert np.array_equal(identity3.row(1), [0, 1, 0])

    def test_sampling_identity(self, identity3, rng):
        for i in range(3):
            assert identity3.sample(i, rng) == i
            assert identity3.sample_point(i, rng) == line_points(3)[i]

    def test_sampling_follows_row(self, rng):
        pts = line_points(2)
        m = MechanismMatrix(pts, pts, np.array([[0.8, 0.2], [0.2, 0.8]]))
        draws = [m.sample(0, rng) for _ in range(3000)]
        assert np.mean(draws) == pytest.approx(0.2, abs=0.03)

    def test_expected_loss_identity_is_zero(self, identity3):
        prior = np.ones(3) / 3
        assert identity3.expected_loss(prior, EUCLIDEAN) == 0.0

    def test_expected_loss_hand_computed(self):
        pts = line_points(2)
        m = MechanismMatrix(pts, pts, np.array([[0.5, 0.5], [0.0, 1.0]]))
        prior = np.array([0.4, 0.6])
        # loss = 0.4 * (0.5 * 1) + 0.6 * 0 = 0.2
        assert m.expected_loss(prior, EUCLIDEAN) == pytest.approx(0.2)

    def test_expected_loss_prior_validation(self, identity3):
        with pytest.raises(MechanismError):
            identity3.expected_loss(np.ones(2), EUCLIDEAN)

    def test_output_distribution(self):
        pts = line_points(2)
        m = MechanismMatrix(pts, pts, np.array([[0.5, 0.5], [0.0, 1.0]]))
        out = m.output_distribution(np.array([0.5, 0.5]))
        assert out == pytest.approx([0.25, 0.75])

    def test_stay_probabilities(self):
        pts = line_points(2)
        m = MechanismMatrix(pts, pts, np.array([[0.9, 0.1], [0.3, 0.7]]))
        assert m.stay_probabilities() == pytest.approx([0.9, 0.7])

    def test_stay_probabilities_requires_square(self):
        m = MechanismMatrix(
            line_points(2), line_points(3), np.ones((2, 3)) / 3
        )
        with pytest.raises(MechanismError):
            m.stay_probabilities()


class TestCompose:
    def test_compose_is_matrix_product(self):
        pts = line_points(2)
        a = MechanismMatrix(pts, pts, np.array([[0.5, 0.5], [0.0, 1.0]]))
        b = MechanismMatrix(pts, pts, np.array([[1.0, 0.0], [0.5, 0.5]]))
        c = a.compose(b)
        assert np.allclose(c.k, a.k @ b.k)

    def test_compose_requires_matching_sets(self):
        a = MechanismMatrix(
            line_points(2), line_points(2), np.eye(2)
        )
        other = [Point(10, 10), Point(11, 11)]
        b = MechanismMatrix(other, other, np.eye(2))
        with pytest.raises(MechanismError, match="compose"):
            a.compose(b)

    def test_remap(self):
        pts = line_points(3)
        m = MechanismMatrix(pts, pts, np.eye(3))
        remapped = m.with_remap(np.array([0, 0, 2]))
        assert remapped.k[1, 0] == 1.0
        assert remapped.k[2, 2] == 1.0

    def test_remap_validation(self, identity3):
        with pytest.raises(MechanismError):
            identity3.with_remap(np.array([0, 1]))
        with pytest.raises(MechanismError):
            identity3.with_remap(np.array([0, 1, 5]))


@st.composite
def stochastic_matrices(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    raw = draw(
        st.lists(
            st.lists(
                st.floats(min_value=0.01, max_value=1.0),
                min_size=n, max_size=n,
            ),
            min_size=n, max_size=n,
        )
    )
    k = np.asarray(raw)
    k /= k.sum(axis=1, keepdims=True)
    return MechanismMatrix(line_points(n), line_points(n), k)


class TestProperties:
    @given(stochastic_matrices())
    @settings(max_examples=50, deadline=None)
    def test_rows_always_sum_to_one(self, m):
        assert m.k.sum(axis=1) == pytest.approx(np.ones(m.shape[0]))

    @given(stochastic_matrices(), stochastic_matrices())
    @settings(max_examples=30, deadline=None)
    def test_composition_preserves_stochasticity(self, a, b):
        if a.shape[1] != b.shape[0]:
            return
        c = a.compose(b)
        assert c.k.sum(axis=1) == pytest.approx(np.ones(c.shape[0]))

    @given(stochastic_matrices())
    @settings(max_examples=30, deadline=None)
    def test_remap_to_best_cell_never_increases_loss(self, m):
        """Deterministic argmin remap weakly improves expected loss."""
        from repro.mechanisms.remap import remap_mechanism

        n = m.shape[0]
        prior = np.full(n, 1.0 / n)
        before = m.expected_loss(prior, EUCLIDEAN)
        after = remap_mechanism(m, prior, EUCLIDEAN).expected_loss(
            prior, EUCLIDEAN
        )
        assert after <= before + 1e-9
