"""Unit tests for repro.geo.metric."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.metric import (
    EUCLIDEAN,
    MANHATTAN,
    SQUARED_EUCLIDEAN,
    get_metric,
)
from repro.geo.point import Point

coord = st.floats(min_value=-100, max_value=100, allow_nan=False)
points = st.builds(Point, coord, coord)


class TestScalar:
    def test_euclidean(self):
        assert EUCLIDEAN(Point(0, 0), Point(3, 4)) == pytest.approx(5)

    def test_squared_euclidean(self):
        assert SQUARED_EUCLIDEAN(Point(0, 0), Point(3, 4)) == pytest.approx(25)

    def test_manhattan(self):
        assert MANHATTAN(Point(0, 0), Point(3, 4)) == pytest.approx(7)

    @given(points, points)
    def test_all_metrics_nonnegative_and_symmetric(self, a, b):
        for metric in (EUCLIDEAN, SQUARED_EUCLIDEAN, MANHATTAN):
            assert metric(a, b) >= 0
            assert metric(a, b) == pytest.approx(metric(b, a), rel=1e-9, abs=1e-9)

    @given(points)
    def test_identity(self, p):
        for metric in (EUCLIDEAN, SQUARED_EUCLIDEAN, MANHATTAN):
            assert metric(p, p) == 0.0


class TestPairwise:
    def test_pairwise_shape(self):
        xs = [Point(0, 0), Point(1, 1)]
        zs = [Point(0, 0), Point(1, 0), Point(0, 1)]
        assert EUCLIDEAN.pairwise(xs, zs).shape == (2, 3)

    @given(st.lists(points, min_size=1, max_size=6))
    def test_pairwise_matches_scalar(self, pts):
        for metric in (EUCLIDEAN, SQUARED_EUCLIDEAN, MANHATTAN):
            mat = metric.pairwise(pts, pts)
            for i, a in enumerate(pts):
                for j, b in enumerate(pts):
                    assert mat[i, j] == pytest.approx(
                        metric(a, b), rel=1e-9, abs=1e-9
                    )

    def test_pairwise_diagonal_is_zero(self):
        pts = [Point(i, 2 * i) for i in range(5)]
        for metric in (EUCLIDEAN, SQUARED_EUCLIDEAN, MANHATTAN):
            assert np.allclose(np.diag(metric.pairwise(pts, pts)), 0.0)


class TestCheckAxioms:
    GRID = [Point(x, y) for x in (0.0, 1.0, 2.5) for y in (0.0, 1.5)]

    def test_true_metrics_pass(self):
        EUCLIDEAN.check_axioms(self.GRID)
        MANHATTAN.check_axioms(self.GRID)

    def test_squared_euclidean_fails_triangle(self):
        """The protocol docstring names this exact trap: squared
        Euclidean is symmetric and zero on the diagonal but breaks the
        triangle inequality, so it is not a valid dX."""
        with pytest.raises(ValueError, match="triangle"):
            SQUARED_EUCLIDEAN.check_axioms(self.GRID)

    def test_single_point_trivially_passes(self):
        EUCLIDEAN.check_axioms([Point(3, 4)])

    def test_max_points_caps_the_check(self):
        pts = [Point(float(i), 0.0) for i in range(10)]
        # With max_points=2 only a prefix is checked, so even squared
        # Euclidean passes (any two points satisfy the axioms).
        SQUARED_EUCLIDEAN.check_axioms(pts, max_points=2)

    def test_guard_rejects_non_metric_dx(self):
        """guard_mechanism re-validates dX on small mechanisms; a
        triangle-breaking dX must surface as a privacy violation, not
        slip through into the epsilon certificate."""
        from repro.exceptions import PrivacyViolationError
        from repro.mechanisms.matrix import MechanismMatrix
        from repro.privacy.guard import guard_mechanism

        pts = [Point(0, 0), Point(1, 0), Point(2, 0)]
        k = np.full((3, 3), 1.0 / 3.0)
        matrix = MechanismMatrix(pts, pts, k)
        guard_mechanism(matrix, 1.0, dx=EUCLIDEAN)
        with pytest.raises(PrivacyViolationError, match="pseudometric"):
            guard_mechanism(matrix, 1.0, dx=SQUARED_EUCLIDEAN)


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["euclidean", "squared_euclidean", "manhattan"]
    )
    def test_lookup(self, name):
        assert get_metric(name).name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown metric"):
            get_metric("chebyshev")
