"""Unit tests for repro.geo.metric."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.metric import (
    EUCLIDEAN,
    MANHATTAN,
    SQUARED_EUCLIDEAN,
    get_metric,
)
from repro.geo.point import Point

coord = st.floats(min_value=-100, max_value=100, allow_nan=False)
points = st.builds(Point, coord, coord)


class TestScalar:
    def test_euclidean(self):
        assert EUCLIDEAN(Point(0, 0), Point(3, 4)) == pytest.approx(5)

    def test_squared_euclidean(self):
        assert SQUARED_EUCLIDEAN(Point(0, 0), Point(3, 4)) == pytest.approx(25)

    def test_manhattan(self):
        assert MANHATTAN(Point(0, 0), Point(3, 4)) == pytest.approx(7)

    @given(points, points)
    def test_all_metrics_nonnegative_and_symmetric(self, a, b):
        for metric in (EUCLIDEAN, SQUARED_EUCLIDEAN, MANHATTAN):
            assert metric(a, b) >= 0
            assert metric(a, b) == pytest.approx(metric(b, a), rel=1e-9, abs=1e-9)

    @given(points)
    def test_identity(self, p):
        for metric in (EUCLIDEAN, SQUARED_EUCLIDEAN, MANHATTAN):
            assert metric(p, p) == 0.0


class TestPairwise:
    def test_pairwise_shape(self):
        xs = [Point(0, 0), Point(1, 1)]
        zs = [Point(0, 0), Point(1, 0), Point(0, 1)]
        assert EUCLIDEAN.pairwise(xs, zs).shape == (2, 3)

    @given(st.lists(points, min_size=1, max_size=6))
    def test_pairwise_matches_scalar(self, pts):
        for metric in (EUCLIDEAN, SQUARED_EUCLIDEAN, MANHATTAN):
            mat = metric.pairwise(pts, pts)
            for i, a in enumerate(pts):
                for j, b in enumerate(pts):
                    assert mat[i, j] == pytest.approx(
                        metric(a, b), rel=1e-9, abs=1e-9
                    )

    def test_pairwise_diagonal_is_zero(self):
        pts = [Point(i, 2 * i) for i in range(5)]
        for metric in (EUCLIDEAN, SQUARED_EUCLIDEAN, MANHATTAN):
            assert np.allclose(np.diag(metric.pairwise(pts, pts)), 0.0)


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["euclidean", "squared_euclidean", "manhattan"]
    )
    def test_lookup(self, name):
        assert get_metric(name).name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown metric"):
            get_metric("chebyshev")
