"""Tests for the fail-closed resilience layer.

Covers the fallback chain (ResilientSolver), the privacy-invariant
guard, end-to-end walk degradation with exact DegradationReports,
session budget accounting under failure, and bundle round-trips of
degraded mechanisms — all driven through the deterministic fault
harness rather than by mocking scipy.
"""

import numpy as np
import pytest

from repro.core import (
    MultiStepMechanism,
    ResilienceConfig,
    ResilientSolver,
    SanitizationSession,
)
from repro.core.bundle import load_bundle, save_bundle
from repro.exceptions import (
    DegradedModeWarning,
    InfeasibleProblemError,
    PrivacyViolationError,
    SolverError,
    SolverRetryExhaustedError,
)
from repro.geo.metric import EUCLIDEAN
from repro.geo.point import Point
from repro.grid.regular import RegularGrid
from repro.lp import LinearProgramBuilder, solve
from repro.lp.result import LPStatus
from repro.mechanisms.exponential import exponential_matrix
from repro.mechanisms.optimal import build_optimal_program
from repro.priors.base import GridPrior
from repro.privacy.geoind import empirical_epsilon
from repro.privacy.guard import guard_mechanism, guarded_matrix
from repro.testing.faults import (
    FaultInjectingSolver,
    LatencyFault,
    RaiseFault,
    StatusFault,
)

pytestmark = pytest.mark.faults


@pytest.fixture
def tiny_lp():
    """min x0  s.t.  x0 >= 1."""
    b = LinearProgramBuilder(1)
    b.set_objective({0: 1.0})
    b.add_ge({0: 1.0}, 1.0)
    return b.build()


@pytest.fixture(scope="module")
def uniform9(square20) -> GridPrior:
    """Uniform prior on a 9 x 9 grid — fine enough for a 2-level MSM."""
    return GridPrior.uniform(RegularGrid(square20, 9))


def make_resilient(rules, **config_kwargs):
    """A ResilientSolver whose raw solves run through the fault harness."""
    injector = FaultInjectingSolver(rules)
    solver = ResilientSolver(
        ResilienceConfig(**config_kwargs), solve_fn=injector
    )
    return solver, injector


def make_msm(prior, rules, degrade=True, guard=True, epsilon=0.9,
             granularity=3):
    """A small MSM whose LP solves run through the fault harness."""
    injector = FaultInjectingSolver(rules)
    solver = ResilientSolver(
        ResilienceConfig.starting_with("highs-ds"), solve_fn=injector
    )
    msm = MultiStepMechanism.build(
        epsilon, granularity, prior,
        solver=solver, degrade=degrade, guard=guard,
    )
    return msm, injector


class TestResilienceConfig:
    def test_defaults_are_the_documented_chain(self):
        cfg = ResilienceConfig()
        assert cfg.backends == ("highs-ds", "highs-ipm", "simplex")
        assert cfg.max_attempts_per_backend == 2

    def test_starting_with_reorders(self):
        cfg = ResilienceConfig.starting_with("simplex")
        assert cfg.backends == ("simplex", "highs-ds", "highs-ipm")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backends": ()},
            {"backends": ("no-such-backend",)},
            {"max_attempts_per_backend": 0},
            {"attempt_time_limit": 0.0},
            {"time_limit_growth": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(SolverError):
            ResilienceConfig(**kwargs)


class TestResilientSolver:
    def test_clean_solve_first_backend_wins(self, tiny_lp):
        solver, inj = make_resilient([])
        result = solver.solve(tiny_lp)
        assert result.is_optimal
        record = solver.last_record
        assert record.winner == "highs-ds"
        assert record.n_attempts == 1
        assert record.attempts[0].ok
        assert inj.n_calls == 1

    def test_broken_backend_falls_through_chain(self, tiny_lp):
        solver, inj = make_resilient([RaiseFault(backend="highs-ds")])
        result = solver.solve(tiny_lp)
        assert result.is_optimal
        record = solver.last_record
        assert record.winner == "highs-ipm"
        # two failed highs-ds attempts (retryable error), then success
        assert [a.backend for a in record.attempts] == [
            "highs-ds", "highs-ds", "highs-ipm",
        ]
        assert record.attempts[0].error is not None

    def test_flaky_backend_recovers_on_retry(self, tiny_lp):
        solver, _ = make_resilient([RaiseFault(first_n=1)])
        result = solver.solve(tiny_lp)
        assert result.is_optimal
        record = solver.last_record
        assert record.winner == "highs-ds"
        assert record.n_attempts == 2
        assert record.attempts[1].attempt == 2

    def test_structural_exception_skips_retries(self, tiny_lp):
        solver, _ = make_resilient(
            [
                RaiseFault(
                    backend="highs-ds", exc_factory=InfeasibleProblemError
                )
            ]
        )
        result = solver.solve(tiny_lp)
        assert result.is_optimal
        # one attempt on highs-ds (no retry — deterministic failure),
        # then straight to the next backend
        assert [a.backend for a in solver.last_record.attempts] == [
            "highs-ds", "highs-ipm",
        ]

    def test_structural_status_skips_retries(self, tiny_lp):
        solver, _ = make_resilient(
            [StatusFault(LPStatus.INFEASIBLE, backend="highs-ds")]
        )
        result = solver.solve(tiny_lp)
        assert result.is_optimal
        record = solver.last_record
        assert [a.backend for a in record.attempts] == [
            "highs-ds", "highs-ipm",
        ]
        assert record.attempts[0].status is LPStatus.INFEASIBLE

    def test_retryable_status_retries_same_backend(self, tiny_lp):
        solver, _ = make_resilient(
            [StatusFault(LPStatus.NUMERICAL, backend="highs-ds")]
        )
        result = solver.solve(tiny_lp)
        assert result.is_optimal
        record = solver.last_record
        assert [a.backend for a in record.attempts] == [
            "highs-ds", "highs-ds", "highs-ipm",
        ]
        assert record.winner == "highs-ipm"

    def test_exhaustion_raises_with_all_attempts(self, tiny_lp):
        solver, inj = make_resilient([RaiseFault()])
        with pytest.raises(SolverRetryExhaustedError) as excinfo:
            solver.solve(tiny_lp)
        exc = excinfo.value
        assert isinstance(exc, SolverError)  # catchable as plain SolverError
        # 3 backends x 2 attempts each: the full chain was tried
        assert len(exc.attempts) == 6
        assert inj.n_calls == 6
        assert {a.backend for a in exc.attempts} == {
            "highs-ds", "highs-ipm", "simplex",
        }
        record = solver.last_record
        assert not record.succeeded
        assert record.winner is None

    def test_time_limit_grows_until_latency_fits(self, tiny_lp):
        solver, _ = make_resilient(
            [LatencyFault(seconds=1.5)], attempt_time_limit=1.0
        )
        result = solver.solve(tiny_lp)
        assert result.is_optimal
        record = solver.last_record
        assert record.winner == "highs-ds"
        assert record.attempts[0].status is LPStatus.TIME_LIMIT
        assert record.attempts[0].time_limit == pytest.approx(1.0)
        # retry with the grown budget (x2) fits the 1.5s latency
        assert record.attempts[1].time_limit == pytest.approx(2.0)
        assert result.solve_seconds >= 1.5  # simulated, no wall clock

    def test_caller_time_limit_caps_attempts(self, tiny_lp):
        solver, inj = make_resilient([], attempt_time_limit=10.0)
        solver.solve(tiny_lp, time_limit=1.0)
        assert inj.calls[0].time_limit == pytest.approx(1.0)  # min of the two

    def test_history_accumulates(self, tiny_lp):
        solver, _ = make_resilient([])
        solver.solve(tiny_lp)
        solver.solve(tiny_lp)
        assert len(solver.history) == 2
        assert all(r.succeeded for r in solver.history)


class TestScipyStatusReporting:
    """Satellite: raw scipy status/message surfaced on LPResult."""

    def test_optimal_records_raw_status(self, tiny_lp):
        result = solve(tiny_lp, backend="highs-ds")
        assert result.is_optimal
        assert result.raw_status == 0
        assert result.message  # scipy's human-readable text is kept

    def test_infeasible_records_raw_status(self):
        b = LinearProgramBuilder(1)
        b.set_objective({0: 1.0})
        b.add_ge({0: 1.0}, 1.0)
        b.add_le({0: 1.0}, 0.0)
        result = solve(b.build(), backend="highs-ds")
        assert result.status is LPStatus.INFEASIBLE
        assert result.raw_status == 2
        assert result.message

    def test_time_limit_maps_to_dedicated_status(self, square20):
        # A real OPT program big enough that HiGHS cannot finish in 1ms.
        grid = RegularGrid(square20, 7)
        locations = grid.centers()
        prior = np.full(len(locations), 1.0 / len(locations))
        program = build_optimal_program(1.0, locations, prior, EUCLIDEAN)
        result = solve(program, backend="highs-ds", time_limit=1e-3)
        assert result.status is LPStatus.TIME_LIMIT
        assert result.raw_status == 1
        assert "time limit" in result.message.lower()


class TestPrivacyGuard:
    def test_exponential_mechanism_passes(self, square20):
        matrix = exponential_matrix(RegularGrid(square20, 3), 0.5)
        report = guard_mechanism(matrix, 0.5)
        assert report.satisfied
        assert report.epsilon_tight <= 0.5 + 1e-9

    def test_guard_rejects_wrong_epsilon_claim(self, square20):
        matrix = exponential_matrix(RegularGrid(square20, 3), 0.5)
        with pytest.raises(PrivacyViolationError):
            guard_mechanism(matrix, 0.05)  # tight eps is ~0.5

    def test_guard_rejects_nonpositive_epsilon(self, square20):
        matrix = exponential_matrix(RegularGrid(square20, 3), 0.5)
        with pytest.raises(PrivacyViolationError):
            guard_mechanism(matrix, 0.0)

    def test_guarded_matrix_rejects_identity(self, square20):
        # The identity is row-stochastic but infinitely distinguishing:
        # each location emits an output no other location can.
        centers = RegularGrid(square20, 3).centers()
        with pytest.raises(PrivacyViolationError):
            guarded_matrix(centers, centers, np.eye(9), epsilon=1.0)

    def test_guarded_matrix_without_epsilon_skips_geoind(self, square20):
        centers = RegularGrid(square20, 3).centers()
        matrix = guarded_matrix(centers, centers, np.eye(9), epsilon=None)
        assert matrix.k.shape == (9, 9)


class TestDegradedWalk:
    """The issue's acceptance scenarios, end to end."""

    def test_scipy_outage_rescued_by_simplex_chain(self, square20, rng):
        # Every scipy solve fails; the dense simplex backend still
        # produces the true optimum, so nothing degrades.  Granularity 2
        # keeps the per-node LP at 16 variables — the size class the
        # from-scratch simplex handles comfortably.
        prior = GridPrior.uniform(RegularGrid(square20, 8))
        msm, inj = make_msm(
            prior, [RaiseFault(backend="highs")], granularity=2
        )
        walk = msm.sample_with_report(Point(4.0, 5.0), rng)
        assert walk.degradation.clean
        assert all(not s.degraded for s in walk.trace)
        assert all(r.winner == "simplex" for r in msm.solver.history)
        assert any(c.backend == "simplex" for c in inj.calls)

    def test_total_outage_degrades_every_level(self, uniform9, rng):
        msm, _ = make_msm(uniform9, [RaiseFault()])
        assert msm.height >= 2
        with pytest.warns(DegradedModeWarning):
            walk = msm.sample_with_report(Point(4.0, 5.0), rng)
        # availability: a point inside the domain was still produced
        assert uniform9.grid.bounds.contains(walk.point)
        # the report lists exactly the substituted levels — all of them
        assert walk.degradation.degraded_levels == tuple(
            range(1, msm.height + 1)
        )
        assert all(s.degraded for s in walk.trace)
        assert all(s.mechanism == "exponential" for s in walk.trace)
        # every substituted matrix passes the guard at its allocated eps
        for sub in walk.degradation.substitutions:
            entry = msm.cache.entry(sub.node_path)
            assert entry.degraded and entry.source == "exponential"
            guard_mechanism(entry.matrix, sub.epsilon)
            tight, _ = empirical_epsilon(entry.matrix)
            assert tight <= sub.epsilon + 1e-9
            assert "SolverRetryExhaustedError" in sub.reason

    def test_level_two_only_failure_is_reported_exactly(self, uniform9, rng):
        # The first LP (the root / level-1 node) solves; everything
        # after fails — the level-2 scenario from the issue.
        msm, _ = make_msm(uniform9, [RaiseFault(after=1)])
        assert msm.height >= 2
        with pytest.warns(DegradedModeWarning):
            walk = msm.sample_with_report(Point(4.0, 5.0), rng)
        assert walk.degradation.degraded_levels == (2,)
        assert [s.degraded for s in walk.trace] == [False, True]
        assert walk.trace[0].mechanism == "opt"
        assert walk.trace[1].mechanism == "exponential"
        summary = msm.degradation_summary()
        assert summary.degraded_levels == (2,)
        assert not summary.clean

    def test_degradation_disabled_raises(self, uniform9, rng):
        msm, _ = make_msm(uniform9, [RaiseFault()], degrade=False)
        with pytest.raises(SolverRetryExhaustedError):
            msm.sample(Point(4.0, 5.0), rng)
        # fail-closed: nothing half-solved was cached
        assert len(msm.cache) == 0

    def test_degraded_node_is_cached_not_resolved(self, uniform9, rng):
        msm, inj = make_msm(uniform9, [RaiseFault()])
        with pytest.warns(DegradedModeWarning):
            msm.precompute()
        calls_after_precompute = inj.n_calls
        walk = msm.sample_with_report(Point(4.0, 5.0), rng)
        assert not walk.degradation.clean
        # the walk was served entirely from the (degraded) cache —
        # degradation is sticky, not re-attempted per sample
        assert inj.n_calls == calls_after_precompute

    def test_clean_walk_report_is_clean(self, uniform9, rng):
        msm, _ = make_msm(uniform9, [])
        walk = msm.sample_with_report(Point(4.0, 5.0), rng)
        assert walk.degradation.clean
        assert walk.degradation.degraded_levels == ()
        assert walk.degradation.describe() == "no degradation"
        assert msm.degradation_summary().clean


class TestSessionDegradation:
    def test_degraded_report_spends_exactly_one_budget(self, uniform9, rng):
        inj = FaultInjectingSolver([RaiseFault()])
        solver = ResilientSolver(ResilienceConfig(), solve_fn=inj)
        session = SanitizationSession(
            2.0, 0.9, uniform9, granularity=3, solver=solver
        )
        with pytest.warns(DegradedModeWarning):
            report = session.report(Point(4.0, 5.0), rng)
        assert report.degraded
        assert report.degraded_levels
        assert report.epsilon_spent == pytest.approx(0.9)
        assert session.spent == pytest.approx(0.9)
        assert session.ever_degraded
        assert len(session.degradation_history) == 1
        assert not session.degradation_history[0].clean

    def test_failed_report_spends_nothing_when_degradation_off(
        self, uniform9, rng
    ):
        inj = FaultInjectingSolver([RaiseFault()])
        solver = ResilientSolver(ResilienceConfig(), solve_fn=inj)
        session = SanitizationSession(
            2.0, 0.9, uniform9, granularity=3, solver=solver, degrade=False
        )
        with pytest.raises(SolverRetryExhaustedError):
            session.report(Point(4.0, 5.0), rng)
        assert session.spent == 0.0
        assert session.history == []
        assert not session.ever_degraded


class TestBundleDegradation:
    def test_degraded_bundle_round_trips(self, uniform9, rng, tmp_path):
        msm, _ = make_msm(uniform9, [RaiseFault()])
        with pytest.warns(DegradedModeWarning):
            info = save_bundle(msm, tmp_path / "degraded.npz")
        assert info.n_nodes > 0
        loaded = load_bundle(tmp_path / "degraded.npz")
        # degradation provenance survives the round trip
        original = msm.degradation_summary()
        restored = loaded.degradation_summary()
        assert restored.degraded_levels == original.degraded_levels
        assert len(restored.substitutions) == len(original.substitutions)
        assert all(
            s.fallback == "exponential" for s in restored.substitutions
        )
        # and the restored mechanism samples without any solver work
        walk = loaded.sample_with_report(Point(4.0, 5.0), rng)
        assert not walk.degradation.clean

    def test_tampered_bundle_fails_closed(self, uniform9, rng, tmp_path):
        msm, _ = make_msm(uniform9, [])
        save_bundle(msm, tmp_path / "clean.npz")
        # doctor one node matrix into the (infinitely distinguishing)
        # identity and rewrite the archive
        with np.load(tmp_path / "clean.npz") as data:
            payload = {key: data[key] for key in data.files}
        victim = next(k for k in payload if k.startswith("node_"))
        payload[victim] = np.eye(payload[victim].shape[0])
        np.savez(tmp_path / "tampered.npz", **payload)
        with pytest.raises(PrivacyViolationError):
            load_bundle(tmp_path / "tampered.npz")
        # the escape hatch for offline analysis still works
        loaded = load_bundle(tmp_path / "tampered.npz", guard=False)
        assert len(loaded.cache) > 0

    def test_clean_bundle_still_loads_clean(self, uniform9, tmp_path):
        msm, _ = make_msm(uniform9, [])
        save_bundle(msm, tmp_path / "clean2.npz")
        loaded = load_bundle(tmp_path / "clean2.npz")
        assert loaded.degradation_summary().clean
