"""Unit tests for repro.geo.point."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.point import Point, centroid

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestPoint:
    def test_distance_matches_pythagoras(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_is_zero_to_self(self):
        p = Point(1.5, -2.5)
        assert p.distance_to(p) == 0.0

    def test_squared_distance(self):
        assert Point(0, 0).squared_distance_to(Point(3, 4)) == pytest.approx(25.0)

    def test_manhattan_distance(self):
        assert Point(1, 1).manhattan_distance_to(Point(4, -3)) == pytest.approx(7.0)

    def test_translate(self):
        assert Point(1, 2).translate(0.5, -0.5) == Point(1.5, 1.5)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)

    def test_iteration_and_tuple(self):
        p = Point(3.0, 7.0)
        assert tuple(p) == (3.0, 7.0)
        assert p.as_tuple() == (3.0, 7.0)

    def test_points_are_hashable_and_equal_by_value(self):
        assert Point(1, 2) == Point(1, 2)
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2

    def test_points_are_immutable(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 1.0

    @given(finite, finite, finite, finite)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(finite, finite, finite, finite, finite, finite)
    def test_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(finite, finite, finite, finite)
    def test_squared_distance_consistent_with_distance(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.squared_distance_to(b) == pytest.approx(
            a.distance_to(b) ** 2, rel=1e-9, abs=1e-9
        )


class TestCentroid:
    def test_single_point(self):
        assert centroid([Point(2, 3)]) == Point(2, 3)

    def test_square_corners(self):
        pts = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert centroid(pts) == Point(1, 1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_centroid_within_bounding_box(self):
        pts = [Point(1, 1), Point(5, 2), Point(3, 9)]
        c = centroid(pts)
        assert 1 <= c.x <= 5
        assert 1 <= c.y <= 9

    def test_invariant_under_translation(self):
        pts = [Point(0, 0), Point(1, 3), Point(-2, 5)]
        moved = [p.translate(10, -4) for p in pts]
        c0, c1 = centroid(pts), centroid(moved)
        assert c1.x == pytest.approx(c0.x + 10)
        assert c1.y == pytest.approx(c0.y - 4)
