"""Linear-programming substrate.

Two interchangeable backends solve :class:`~repro.lp.problem.LinearProgram`
instances:

* ``"highs-ds"`` / ``"highs-ipm"`` / ``"highs"`` — scipy's HiGHS solver
  (the production default, mirroring the paper's Gurobi dual simplex);
* ``"simplex"`` — the library's own dense two-phase simplex, useful as an
  independent correctness oracle and for dependency-free deployments.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.exceptions import (
    InfeasibleProblemError,
    SolverError,
    UnboundedProblemError,
)
from repro.lp.problem import LinearProgram, LinearProgramBuilder
from repro.lp.result import LPResult, LPStatus
from repro.lp.scipy_backend import solve_scipy
from repro.lp.simplex import solve_simplex

#: Backend names accepted by :func:`solve`.
BACKENDS = ("highs-ds", "highs-ipm", "highs", "simplex")


def solve(
    problem: LinearProgram,
    backend: str = "highs-ds",
    time_limit: float | None = None,
    obs=None,
) -> LPResult:
    """Solve a linear program with the named backend.

    Returns the raw :class:`LPResult`; use :func:`solve_or_raise` when a
    non-optimal outcome should be an exception.  ``obs`` is an optional
    :class:`repro.obs.Observability` handle; when given (and enabled),
    backend-level call/seconds/iteration metrics and an ``lp.backend``
    span are recorded.
    """
    if backend == "simplex":
        result = solve_simplex(problem)
        if obs is not None and obs.enabled:
            _record_backend(obs, "simplex", result)
        return result
    if backend in ("highs-ds", "highs-ipm", "highs"):
        return solve_scipy(
            problem, method=backend, time_limit=time_limit, obs=obs
        )
    raise SolverError(f"unknown LP backend {backend!r}; known: {BACKENDS}")


def _record_backend(obs, method: str, result: LPResult) -> None:
    """Backend-level metric emission shared by the solve dispatchers."""
    metrics = obs.metrics
    metrics.counter("repro_lp_backend_calls_total", method=method).inc()
    metrics.counter(
        "repro_lp_backend_seconds_total", method=method
    ).inc(result.solve_seconds)
    metrics.counter(
        "repro_lp_iterations_total", method=method
    ).inc(result.iterations)


def solve_or_raise(
    problem: LinearProgram,
    backend: str = "highs-ds",
    time_limit: float | None = None,
) -> LPResult:
    """Solve and raise a typed error unless the solve is optimal."""
    result = solve(problem, backend=backend, time_limit=time_limit)
    if result.is_optimal:
        return result
    if result.status is LPStatus.INFEASIBLE:
        raise InfeasibleProblemError("linear program is infeasible")
    if result.status is LPStatus.UNBOUNDED:
        raise UnboundedProblemError("linear program is unbounded")
    detail = f" ({result.message})" if result.message else ""
    raise SolverError(
        f"LP solve failed with status {result.status.value}{detail}"
    )


@runtime_checkable
class LPSolver(Protocol):
    """Anything that can solve a :class:`LinearProgram`.

    Implemented by :class:`repro.core.resilience.ResilientSolver`;
    accepting the protocol (rather than a backend name) is how callers
    such as :mod:`repro.mechanisms.optimal` opt into the fallback chain
    without this package depending on the resilience layer.
    """

    def solve(
        self, problem: LinearProgram, time_limit: float | None = None
    ) -> LPResult:  # pragma: no cover - protocol signature
        ...


__all__ = [
    "BACKENDS",
    "LPSolver",
    "LPResult",
    "LPStatus",
    "LinearProgram",
    "LinearProgramBuilder",
    "solve",
    "solve_or_raise",
    "solve_scipy",
    "solve_simplex",
]
