"""Linear-program representation.

A :class:`LinearProgram` is the standard ``min c'x`` subject to
``A_ub x <= b_ub``, ``A_eq x = b_eq`` and box bounds, with the constraint
matrices stored sparsely — the optimal GeoInd mechanism over ``n``
locations has ``n^2`` variables and ``n^2 (n - 1)`` inequality rows of
just two non-zeros each, so dense storage is out of the question beyond
toy sizes.

:class:`LinearProgramBuilder` offers a convenient incremental API for
small hand-built programs (tests, the budget model); hot paths such as
:mod:`repro.mechanisms.optimal` assemble the COO arrays directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.exceptions import SolverError


@dataclass
class LinearProgram:
    """``min c'x  s.t.  A_ub x <= b_ub,  A_eq x = b_eq,  lb <= x <= ub``.

    Either constraint block may be None.  Bounds default to
    ``x >= 0`` when not provided.
    """

    c: np.ndarray
    a_ub: sp.csr_matrix | None = None
    b_ub: np.ndarray | None = None
    a_eq: sp.csr_matrix | None = None
    b_eq: np.ndarray | None = None
    lb: np.ndarray | None = None
    ub: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.c = np.asarray(self.c, dtype=float).ravel()
        n = self.c.size
        if n == 0:
            raise SolverError("linear program has no variables")
        for name in ("a_ub", "a_eq"):
            mat = getattr(self, name)
            if mat is not None:
                mat = sp.csr_matrix(mat)
                if mat.shape[1] != n:
                    raise SolverError(
                        f"{name} has {mat.shape[1]} columns but c has {n} entries"
                    )
                setattr(self, name, mat)
        for mat_name, rhs_name in (("a_ub", "b_ub"), ("a_eq", "b_eq")):
            mat = getattr(self, mat_name)
            rhs = getattr(self, rhs_name)
            if (mat is None) != (rhs is None):
                raise SolverError(f"{mat_name} and {rhs_name} must be given together")
            if rhs is not None:
                rhs = np.asarray(rhs, dtype=float).ravel()
                if rhs.size != mat.shape[0]:
                    raise SolverError(
                        f"{rhs_name} has {rhs.size} entries but {mat_name} has "
                        f"{mat.shape[0]} rows"
                    )
                setattr(self, rhs_name, rhs)
        if self.lb is None:
            self.lb = np.zeros(n)
        else:
            self.lb = np.asarray(self.lb, dtype=float).ravel()
        if self.ub is None:
            self.ub = np.full(n, np.inf)
        else:
            self.ub = np.asarray(self.ub, dtype=float).ravel()
        if self.lb.size != n or self.ub.size != n:
            raise SolverError("bounds must have one entry per variable")
        if np.any(self.lb > self.ub):
            raise SolverError("some lower bound exceeds its upper bound")

    @property
    def n_vars(self) -> int:
        """Number of decision variables."""
        return self.c.size

    @property
    def n_constraints(self) -> int:
        """Total number of inequality plus equality rows."""
        n = 0
        if self.a_ub is not None:
            n += self.a_ub.shape[0]
        if self.a_eq is not None:
            n += self.a_eq.shape[0]
        return n


@dataclass
class _Row:
    indices: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    rhs: float = 0.0


class LinearProgramBuilder:
    """Incrementally assemble a sparse :class:`LinearProgram`."""

    def __init__(self, n_vars: int):
        if n_vars < 1:
            raise SolverError(f"n_vars must be >= 1, got {n_vars}")
        self._n = n_vars
        self._c = np.zeros(n_vars)
        self._le_rows: list[_Row] = []
        self._eq_rows: list[_Row] = []
        self._lb = np.zeros(n_vars)
        self._ub = np.full(n_vars, np.inf)

    def set_objective(self, coeffs: dict[int, float] | np.ndarray) -> None:
        """Set the objective vector, densely or as a sparse dict."""
        if isinstance(coeffs, dict):
            self._c[:] = 0.0
            for j, v in coeffs.items():
                self._check_var(j)
                self._c[j] = v
        else:
            arr = np.asarray(coeffs, dtype=float).ravel()
            if arr.size != self._n:
                raise SolverError(
                    f"objective has {arr.size} entries, expected {self._n}"
                )
            self._c = arr.copy()

    def add_le(self, coeffs: dict[int, float], rhs: float) -> None:
        """Add a constraint ``sum coeffs[j] * x[j] <= rhs``."""
        self._le_rows.append(self._make_row(coeffs, rhs))

    def add_ge(self, coeffs: dict[int, float], rhs: float) -> None:
        """Add ``sum coeffs[j] * x[j] >= rhs`` (stored as a negated <=)."""
        negated = {j: -v for j, v in coeffs.items()}
        self._le_rows.append(self._make_row(negated, -rhs))

    def add_eq(self, coeffs: dict[int, float], rhs: float) -> None:
        """Add a constraint ``sum coeffs[j] * x[j] == rhs``."""
        self._eq_rows.append(self._make_row(coeffs, rhs))

    def set_bounds(self, var: int, lb: float = 0.0, ub: float = np.inf) -> None:
        """Set the box bounds of a single variable."""
        self._check_var(var)
        self._lb[var] = lb
        self._ub[var] = ub

    def build(self) -> LinearProgram:
        """Produce the immutable sparse program."""
        return LinearProgram(
            c=self._c,
            a_ub=self._stack(self._le_rows),
            b_ub=self._rhs(self._le_rows),
            a_eq=self._stack(self._eq_rows),
            b_eq=self._rhs(self._eq_rows),
            lb=self._lb,
            ub=self._ub,
        )

    def _make_row(self, coeffs: dict[int, float], rhs: float) -> _Row:
        if not coeffs:
            raise SolverError("a constraint needs at least one coefficient")
        row = _Row(rhs=float(rhs))
        for j, v in coeffs.items():
            self._check_var(j)
            row.indices.append(j)
            row.values.append(float(v))
        return row

    def _check_var(self, j: int) -> None:
        if not (0 <= j < self._n):
            raise SolverError(f"variable index {j} outside [0, {self._n})")

    def _stack(self, rows: list[_Row]) -> sp.csr_matrix | None:
        if not rows:
            return None
        data: list[float] = []
        row_idx: list[int] = []
        col_idx: list[int] = []
        for i, row in enumerate(rows):
            data.extend(row.values)
            col_idx.extend(row.indices)
            row_idx.extend([i] * len(row.indices))
        return sp.csr_matrix(
            (data, (row_idx, col_idx)), shape=(len(rows), self._n)
        )

    def _rhs(self, rows: list[_Row]) -> np.ndarray | None:
        if not rows:
            return None
        return np.asarray([r.rhs for r in rows], dtype=float)
