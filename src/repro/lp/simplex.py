"""From-scratch two-phase primal simplex.

A dependency-free dense LP solver used (a) as an independent oracle to
cross-validate the HiGHS backend in tests, and (b) as a fallback when a
deployment cannot ship scipy's compiled HiGHS.  It targets the *small*
programs MSM actually solves online (a ``g^2``-cell subproblem with
``g <= 6`` has at most 1 296 variables); the big flat-OPT programs should
go to HiGHS.

Implementation notes: standard tableau simplex, two phases with
artificial variables, Bland's anti-cycling rule throughout (the optimal
mechanism's programs are massively degenerate — every row of K sums to
one — so anti-cycling is not optional).
"""

from __future__ import annotations

import time

import numpy as np

from repro.exceptions import SolverError
from repro.lp.problem import LinearProgram
from repro.lp.result import LPResult, LPStatus

_TOL = 1e-9
# An unbounded verdict requires a column that is *genuinely* non-positive,
# judged at a tolerance strictly below the stable-pivot cutoff ``_TOL``: a
# column whose reduced cost crosses -_TOL only because several sub-_TOL
# entries add up has no stable pivot row, but it is not an unbounded ray
# either (phase 1, for one, can never be unbounded — its objective is a sum
# of artificials, bounded below by zero).  Such gray columns are skipped as
# entering candidates rather than misreported.
_RAY_TOL = 1e-12


def solve_simplex(problem: LinearProgram, max_iterations: int = 100_000) -> LPResult:
    """Solve ``problem`` with the built-in dense simplex.

    Raises
    ------
    SolverError
        If the program has non-finite lower bounds (free variables are
        not supported by this small backend — the library's programs
        never need them).
    """
    start = time.perf_counter()
    tableau_lp = _DenseStandardForm(problem)
    status, x_std = tableau_lp.solve(max_iterations)
    elapsed = time.perf_counter() - start
    if status is not LPStatus.OPTIMAL:
        return LPResult(
            status=status,
            x=np.empty(0),
            objective=float("nan"),
            iterations=tableau_lp.iterations,
            backend="simplex",
            solve_seconds=elapsed,
        )
    x = x_std[: problem.n_vars] + problem.lb
    objective = float(problem.c @ x)
    return LPResult(
        status=LPStatus.OPTIMAL,
        x=x,
        objective=objective,
        iterations=tableau_lp.iterations,
        backend="simplex",
        solve_seconds=elapsed,
    )


class _DenseStandardForm:
    """Dense standard form ``min c'y, Ay = b, y >= 0`` plus tableau solver."""

    def __init__(self, problem: LinearProgram):
        if not np.all(np.isfinite(problem.lb)):
            raise SolverError("simplex backend requires finite lower bounds")
        n = problem.n_vars
        shift = problem.lb

        a_rows: list[np.ndarray] = []
        b_vals: list[float] = []
        senses: list[str] = []  # "le" or "eq" after the shift

        if problem.a_ub is not None:
            dense = problem.a_ub.toarray()
            rhs = problem.b_ub - dense @ shift
            for row, r in zip(dense, rhs):
                a_rows.append(row)
                b_vals.append(float(r))
                senses.append("le")
        if problem.a_eq is not None:
            dense = problem.a_eq.toarray()
            rhs = problem.b_eq - dense @ shift
            for row, r in zip(dense, rhs):
                a_rows.append(row)
                b_vals.append(float(r))
                senses.append("eq")
        # Finite upper bounds become explicit rows y_j <= ub_j - lb_j.
        for j in range(n):
            ub = problem.ub[j]
            if np.isfinite(ub):
                row = np.zeros(n)
                row[j] = 1.0
                a_rows.append(row)
                b_vals.append(float(ub - shift[j]))
                senses.append("le")

        m = len(a_rows)
        n_slack = sum(1 for s in senses if s == "le")
        total = n + n_slack
        a = np.zeros((m, total))
        b = np.zeros(m)
        slack_col = n
        for i, (row, rhs, sense) in enumerate(zip(a_rows, b_vals, senses)):
            a[i, :n] = row
            b[i] = rhs
            if sense == "le":
                a[i, slack_col] = 1.0
                slack_col += 1
        # Normalise to b >= 0 for phase 1.
        negative = b < 0
        a[negative] *= -1.0
        b[negative] *= -1.0

        self.a = a
        self.b = b
        self.c = np.concatenate([problem.c, np.zeros(n_slack)])
        self.n_structural = total
        self.iterations = 0

    def solve(self, max_iterations: int) -> tuple[LPStatus, np.ndarray]:
        m, total = self.a.shape
        if m == 0:
            # Unconstrained over y >= 0: optimum is y = 0 unless some cost
            # coefficient is negative, in which case the LP is unbounded.
            if np.any(self.c < -_TOL):
                return (LPStatus.UNBOUNDED, np.empty(0))
            return (LPStatus.OPTIMAL, np.zeros(total))

        # ---------------- phase 1: artificial variables ----------------
        tableau = np.zeros((m, total + m + 1))
        tableau[:, :total] = self.a
        tableau[:, total : total + m] = np.eye(m)
        tableau[:, -1] = self.b
        basis = list(range(total, total + m))
        phase1_cost = np.zeros(total + m)
        phase1_cost[total:] = 1.0

        status = self._iterate(tableau, basis, phase1_cost, max_iterations)
        if status is not LPStatus.OPTIMAL:
            return (status, np.empty(0))
        if self._objective(tableau, basis, phase1_cost) > 1e-7:
            return (LPStatus.INFEASIBLE, np.empty(0))
        self._drive_out_artificials(tableau, basis, total)

        # ---------------- phase 2: original objective ------------------
        keep = [j for j in range(total)] + [total + m]
        tableau2 = tableau[:, keep]
        # A zero-value artificial from a redundant row may still be basic
        # (its column was dropped above, but its *index* survives in
        # ``basis``): pad the cost vector so ``cost[basis]`` stays in
        # bounds and the leftover artificial prices at zero.
        phase2_cost = np.concatenate([self.c, np.zeros(m)])
        status = self._iterate(tableau2, basis, phase2_cost, max_iterations)
        if status is not LPStatus.OPTIMAL:
            return (status, np.empty(0))
        x = np.zeros(total)
        for i, var in enumerate(basis):
            if var < total:
                x[var] = tableau2[i, -1]
        return (LPStatus.OPTIMAL, x)

    def _objective(
        self, tableau: np.ndarray, basis: list[int], cost: np.ndarray
    ) -> float:
        return float(sum(cost[var] * tableau[i, -1] for i, var in enumerate(basis)))

    def _reduced_costs(
        self, tableau: np.ndarray, basis: list[int], cost: np.ndarray
    ) -> np.ndarray:
        n_cols = tableau.shape[1] - 1
        cb = cost[basis]
        return cost[:n_cols] - cb @ tableau[:, :n_cols]

    def _iterate(
        self,
        tableau: np.ndarray,
        basis: list[int],
        cost: np.ndarray,
        max_iterations: int,
    ) -> LPStatus:
        m = tableau.shape[0]
        for _ in range(max_iterations):
            reduced = self._reduced_costs(tableau, basis, cost)
            candidates = np.nonzero(reduced < -_TOL)[0]
            if candidates.size == 0:
                return LPStatus.OPTIMAL
            pivoted = False
            for enter in candidates:  # Bland: smallest index first
                enter = int(enter)
                col = tableau[:, enter]
                positive = col > _TOL
                if not np.any(positive):
                    if np.all(col <= _RAY_TOL):
                        return LPStatus.UNBOUNDED
                    # Gray column: improving on paper, but every entry is
                    # too small to pivot on stably.  Try the next one.
                    continue
                ratios = np.full(m, np.inf)
                ratios[positive] = tableau[positive, -1] / col[positive]
                best = np.min(ratios)
                # Bland tie-break: leaving variable with the smallest index.
                tied = [i for i in range(m) if ratios[i] <= best + _TOL]
                leave = min(tied, key=lambda i: basis[i])
                self._pivot(tableau, basis, leave, enter)
                self.iterations += 1
                pivoted = True
                break
            if not pivoted:
                # Every improving column was numerically degenerate; the
                # attainable gain is O(tolerance), so the vertex stands.
                return LPStatus.OPTIMAL
        return LPStatus.ITERATION_LIMIT

    @staticmethod
    def _pivot(
        tableau: np.ndarray, basis: list[int], row: int, col: int
    ) -> None:
        pivot = tableau[row, col]
        tableau[row] /= pivot
        for i in range(tableau.shape[0]):
            if i != row and abs(tableau[i, col]) > 0:
                tableau[i] -= tableau[i, col] * tableau[row]
        basis[row] = col

    def _drive_out_artificials(
        self, tableau: np.ndarray, basis: list[int], total: int
    ) -> None:
        """Pivot remaining artificial basics onto structural columns.

        A zero-value artificial left in the basis after phase 1 either
        pivots onto any structural column with a non-zero entry in its
        row, or its row is redundant and can stay (the entry is zero in
        every structural column, so it never re-enters).
        """
        for i, var in enumerate(list(basis)):
            if var < total:
                continue
            row = tableau[i, :total]
            nonzero = np.nonzero(np.abs(row) > _TOL)[0]
            if nonzero.size:
                self._pivot(tableau, basis, i, int(nonzero[0]))
