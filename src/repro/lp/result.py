"""Solver-independent LP result type."""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class LPStatus(enum.Enum):
    """Outcome of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    TIME_LIMIT = "time_limit"
    NUMERICAL = "numerical"


@dataclass(frozen=True)
class LPResult:
    """Solution of a :class:`~repro.lp.problem.LinearProgram`.

    Attributes
    ----------
    status:
        Solve outcome; ``x``/``objective`` are meaningful only when
        :attr:`status` is :attr:`LPStatus.OPTIMAL`.
    x:
        Optimal variable values (empty array on failure).
    objective:
        Optimal objective value (NaN on failure).
    iterations:
        Solver iteration count, when the backend reports one.
    backend:
        Name of the backend that produced the result.
    solve_seconds:
        Wall-clock time spent inside the backend.
    raw_status:
        The backend's native status code, when it has one (scipy's
        integer ``status``).  Preserved verbatim so fallback decisions
        and failure logs stay diagnosable even when the code does not
        map onto :class:`LPStatus` cleanly.
    message:
        The backend's human-readable termination message, if any.
    """

    status: LPStatus
    x: np.ndarray
    objective: float
    iterations: int
    backend: str
    solve_seconds: float
    raw_status: int | None = None
    message: str = ""

    @property
    def is_optimal(self) -> bool:
        """True when the solve reached a proven optimum."""
        return self.status is LPStatus.OPTIMAL
