"""HiGHS backend (via :func:`scipy.optimize.linprog`).

The paper solved OPT with Gurobi's dual simplex; HiGHS is the strongest
open solver scipy ships and exposes the same algorithm family.  The
``"highs-ds"`` method (dual simplex) is the default for the same
numerical-stability reason the paper cites (Section 6.1).
"""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import linprog

from repro.lp.problem import LinearProgram
from repro.lp.result import LPResult, LPStatus

#: scipy ``status`` codes -> our enum.
_STATUS_MAP = {
    0: LPStatus.OPTIMAL,
    1: LPStatus.ITERATION_LIMIT,
    2: LPStatus.INFEASIBLE,
    3: LPStatus.UNBOUNDED,
    4: LPStatus.NUMERICAL,
}


def solve_scipy(
    problem: LinearProgram,
    method: str = "highs-ds",
    time_limit: float | None = None,
    obs=None,
) -> LPResult:
    """Solve ``problem`` with scipy/HiGHS.

    Parameters
    ----------
    problem:
        The program to solve.
    method:
        A scipy ``linprog`` method; ``"highs-ds"`` (dual simplex),
        ``"highs-ipm"`` (interior point) and ``"highs"`` (automatic) are
        the useful choices.
    time_limit:
        Optional wall-clock cap in seconds, forwarded to HiGHS.  A run
        stopped by the limit reports :attr:`LPStatus.TIME_LIMIT`
        (scipy folds it into its iteration-limit code 1; the HiGHS
        termination message disambiguates).
    obs:
        Optional :class:`repro.obs.Observability` handle; when enabled,
        the solve is wrapped in an ``lp.backend`` span and per-method
        call/seconds/iteration counters are recorded.

    Unknown scipy status codes map to :attr:`LPStatus.NUMERICAL`, but
    the raw code and termination message are always preserved on the
    :class:`LPResult` so the coercion is diagnosable downstream.
    """
    if obs is not None and obs.enabled:
        with obs.tracer.span(
            "lp.backend", method=method, n_vars=problem.n_vars
        ) as sp:
            result = solve_scipy(problem, method=method, time_limit=time_limit)
            if sp is not None:
                sp.attributes["status"] = result.status.value
                sp.attributes["iterations"] = result.iterations
        from repro.lp import _record_backend

        _record_backend(obs, method, result)
        return result
    bounds = np.column_stack([problem.lb, problem.ub])
    options: dict[str, float] = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    start = time.perf_counter()
    res = linprog(
        c=problem.c,
        A_ub=problem.a_ub,
        b_ub=problem.b_ub,
        A_eq=problem.a_eq,
        b_eq=problem.b_eq,
        bounds=bounds,
        method=method,
        options=options or None,
    )
    elapsed = time.perf_counter() - start
    raw_status = int(res.status)
    message = str(getattr(res, "message", "") or "")
    status = _STATUS_MAP.get(raw_status, LPStatus.NUMERICAL)
    # scipy reports both iteration- and time-limit stops as status 1;
    # HiGHS's termination message tells them apart, and the distinction
    # matters to the resilient solver (a time-limit stop is worth
    # retrying with a larger budget, an iteration limit rarely is).
    if status is LPStatus.ITERATION_LIMIT and "time limit" in message.lower():
        status = LPStatus.TIME_LIMIT
    x = np.asarray(res.x, dtype=float) if res.x is not None else np.empty(0)
    objective = float(res.fun) if res.fun is not None else float("nan")
    iterations = int(getattr(res, "nit", 0) or 0)
    return LPResult(
        status=status,
        x=x,
        objective=objective,
        iterations=iterations,
        backend=f"scipy:{method}",
        solve_seconds=elapsed,
        raw_status=raw_status,
        message=message,
    )
