"""Data-adaptive k-d split tree index.

A binary space partition with alternating axis-median splits, the second
adaptive structure the paper's future work (Section 8) calls out.  Each
internal node has exactly two children that partition its extent at the
median coordinate of the sample points it holds, so dense regions end up
with many narrow cells.

The fanout of 2 makes each per-level OPT subproblem trivial (a 2 x 2
stochastic matrix); the interest of this index for MSM is how its
*adaptive geometry* redistributes utility loss, which the ablation
benchmarks measure.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import GridError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.grid.index import ChildGeometry, IndexNode, SpatialIndex

#: Minimum fraction of the parent extent each child must keep.  Stops a
#: heavily-skewed median from producing sliver cells that would make the
#: per-node OPT numerically useless.
_MIN_SPLIT_FRACTION = 0.2


class KDTreeIndex(SpatialIndex):
    """A k-d split tree over a point sample.

    Parameters
    ----------
    bounds:
        Domain to index.
    points:
        Sample driving the median splits; points outside ``bounds`` are
        ignored.
    max_depth:
        Number of binary levels (root is depth 0).
    min_points:
        Nodes with fewer sample points stop splitting early and fall
        back to a midpoint split only if ``always_split`` is set.
    always_split:
        When True the tree is complete (every node splits down to
        ``max_depth``), using the midpoint where the sample is too thin.
        MSM requires the walk to reach *some* leaf in every branch, so a
        complete tree keeps its depth predictable.
    """

    def __init__(
        self,
        bounds: BoundingBox,
        points: Sequence[Point],
        max_depth: int = 6,
        min_points: int = 16,
        always_split: bool = True,
    ):
        if max_depth < 1:
            raise GridError(f"max_depth must be >= 1, got {max_depth}")
        self._bounds = bounds
        self._max_depth = max_depth
        self._min_points = min_points
        self._always_split = always_split
        self._root = IndexNode(bounds=bounds, level=0, path=())
        self._children: dict[tuple[int, ...], list[IndexNode]] = {}
        inside = [p for p in points if bounds.contains(p)]
        self._build(self._root, inside)

    def _split_coord(self, values: list[float], lo: float, hi: float) -> float:
        """Pick the split coordinate: clamped median, or midpoint if thin."""
        if values:
            values = sorted(values)
            median = values[len(values) // 2]
        else:
            median = (lo + hi) / 2.0
        span = hi - lo
        return min(max(median, lo + _MIN_SPLIT_FRACTION * span),
                   hi - _MIN_SPLIT_FRACTION * span)

    def _build(self, node: IndexNode, points: list[Point]) -> None:
        if node.level >= self._max_depth:
            return
        if len(points) < self._min_points and not self._always_split:
            return
        b = node.bounds
        axis = node.level % 2  # 0: split along x, 1: along y
        if axis == 0:
            coord = self._split_coord([p.x for p in points], b.min_x, b.max_x)
            left = BoundingBox(b.min_x, b.min_y, coord, b.max_y)
            right = BoundingBox(coord, b.min_y, b.max_x, b.max_y)
            buckets = ([p for p in points if p.x < coord],
                       [p for p in points if p.x >= coord])
        else:
            coord = self._split_coord([p.y for p in points], b.min_y, b.max_y)
            left = BoundingBox(b.min_x, b.min_y, b.max_x, coord)
            right = BoundingBox(b.min_x, coord, b.max_x, b.max_y)
            buckets = ([p for p in points if p.y < coord],
                       [p for p in points if p.y >= coord])
        kids = [
            IndexNode(bounds=left, level=node.level + 1, path=node.path + (0,)),
            IndexNode(bounds=right, level=node.level + 1, path=node.path + (1,)),
        ]
        self._children[node.path] = kids
        for kid, bucket in zip(kids, buckets):
            self._build(kid, bucket)

    # ------------------------------------------------------------------
    # SpatialIndex protocol
    # ------------------------------------------------------------------
    @property
    def bounds(self) -> BoundingBox:
        return self._bounds

    @property
    def root(self) -> IndexNode:
        return self._root

    def children(self, node: IndexNode) -> list[IndexNode]:
        return list(self._children.get(node.path, ()))

    def locate_child_indices(
        self, node: IndexNode, coords: np.ndarray
    ) -> np.ndarray:
        """Vectorised binary location, agreeing point-for-point with the
        scalar :meth:`~repro.grid.index.SpatialIndex.locate_child` scan:
        the split plane belongs to the right child (min-closed /
        max-open), matching the build-time bucketing ``p.x >= coord``,
        so the median sample point locates into the child it was
        bucketed into."""
        coords = np.asarray(coords, dtype=float).reshape(-1, 2)
        out = np.full(coords.shape[0], -1, dtype=np.int64)
        kids = self._children.get(node.path)
        if kids is None or coords.shape[0] == 0:
            return out
        b = node.bounds
        x = coords[:, 0]
        y = coords[:, 1]
        inside = (
            (x >= b.min_x) & (x <= b.max_x) & (y >= b.min_y) & (y <= b.max_y)
        )
        if node.level % 2 == 0:
            side = x >= kids[0].bounds.max_x
        else:
            side = y >= kids[0].bounds.max_y
        out[inside] = side.astype(np.int64)[inside]
        return out

    def child_geometry(self, node: IndexNode) -> ChildGeometry | None:
        kids = self._children.get(node.path)
        if kids is None:
            return None
        if node.level % 2 == 0:
            return ChildGeometry(
                kind="split-x", fanout=2, split=kids[0].bounds.max_x
            )
        return ChildGeometry(
            kind="split-y", fanout=2, split=kids[0].bounds.max_y
        )
