"""Sort-Tile-Recursive (STR) packed index — an R+-tree-flavoured GIHI.

The paper's future work (Section 8) names R+-trees as a candidate
replacement for the balanced grid.  A *queryable* R+-tree is more
machinery than MSM needs; what MSM actually requires is the R+-tree's
defining property — **non-overlapping rectangles adapted to the data
distribution**.  STR bulk-loading delivers exactly that: at every node,
sample points are sorted into ``f`` vertical slabs of equal population,
and each slab into ``f`` horizontal cells of equal population, giving
``f^2`` children per node (the same fanout shape as the paper's grid)
whose cells are small where data is dense.

Slab boundaries are data quantiles clamped away from slivers, so every
child keeps a usable extent even under extreme skew.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import GridError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point, points_to_array
from repro.grid.index import IndexNode, SpatialIndex

#: Minimum fraction of the parent extent each slab/cell must keep.
_MIN_FRACTION = 0.08


def _quantile_breaks(
    values: np.ndarray, parts: int, lo: float, hi: float
) -> list[float]:
    """Interior break coordinates: population quantiles, sliver-clamped."""
    span = hi - lo
    if values.size:
        qs = np.quantile(values, [i / parts for i in range(1, parts)])
    else:
        qs = np.asarray([lo + span * i / parts for i in range(1, parts)])
    breaks: list[float] = []
    floor = lo
    for i, q in enumerate(qs, start=1):
        remaining = parts - i
        low_limit = floor + _MIN_FRACTION * span
        high_limit = hi - remaining * _MIN_FRACTION * span
        q = min(max(float(q), low_limit), high_limit)
        breaks.append(q)
        floor = q
    return breaks


class STRIndex(SpatialIndex):
    """An STR-packed, non-overlapping hierarchical index.

    Parameters
    ----------
    bounds:
        Domain to index.
    points:
        Sample (e.g. historical check-ins) the tiling adapts to; points
        outside ``bounds`` are ignored.
    fanout:
        Slabs per axis ``f``; each internal node has ``f^2`` children.
    height:
        Number of levels (the tree is complete — every branch reaches
        ``height``, using even splits where the sample runs dry).
    """

    def __init__(
        self,
        bounds: BoundingBox,
        points: Sequence[Point],
        fanout: int = 3,
        height: int = 2,
    ):
        if fanout < 2:
            raise GridError(f"fanout must be >= 2, got {fanout}")
        if height < 1:
            raise GridError(f"height must be >= 1, got {height}")
        self._bounds = bounds
        self._fanout = fanout
        self._height = height
        self._root = IndexNode(bounds=bounds, level=0, path=())
        self._children: dict[tuple[int, ...], list[IndexNode]] = {}
        xy = points_to_array([p for p in points if bounds.contains(p)])
        self._build(self._root, xy)

    def _build(self, node: IndexNode, xy: np.ndarray) -> None:
        if node.level >= self._height:
            return
        f = self._fanout
        b = node.bounds
        x_breaks = _quantile_breaks(xy[:, 0], f, b.min_x, b.max_x)
        x_edges = [b.min_x, *x_breaks, b.max_x]
        kids: list[IndexNode] = []
        buckets: list[np.ndarray] = []
        for col in range(f):
            in_slab = xy[
                (xy[:, 0] >= x_edges[col]) & (xy[:, 0] < x_edges[col + 1])
            ] if xy.size else xy
            y_breaks = _quantile_breaks(
                in_slab[:, 1] if in_slab.size else np.empty(0),
                f, b.min_y, b.max_y,
            )
            y_edges = [b.min_y, *y_breaks, b.max_y]
            for row in range(f):
                child_bounds = BoundingBox(
                    x_edges[col], y_edges[row],
                    x_edges[col + 1], y_edges[row + 1],
                )
                position = row * f + col
                kids.append(
                    IndexNode(
                        bounds=child_bounds,
                        level=node.level + 1,
                        path=node.path + (position,),
                    )
                )
                if in_slab.size:
                    mask = (
                        (in_slab[:, 1] >= y_edges[row])
                        & (in_slab[:, 1] < y_edges[row + 1])
                    )
                    buckets.append(in_slab[mask])
                else:
                    buckets.append(np.empty((0, 2)))
        # Children are stored in path-position order (row * f + col).
        order = np.argsort([k.path[-1] for k in kids])
        kids = [kids[i] for i in order]
        buckets = [buckets[i] for i in order]
        self._children[node.path] = kids
        for kid, bucket in zip(kids, buckets):
            self._build(kid, bucket)

    # ------------------------------------------------------------------
    # SpatialIndex protocol
    # ------------------------------------------------------------------
    @property
    def bounds(self) -> BoundingBox:
        return self._bounds

    @property
    def root(self) -> IndexNode:
        return self._root

    @property
    def fanout(self) -> int:
        """Slabs per axis (children per node = fanout^2)."""
        return self._fanout

    @property
    def height(self) -> int:
        """Number of levels below the root."""
        return self._height

    def children(self, node: IndexNode) -> list[IndexNode]:
        return list(self._children.get(node.path, ()))
