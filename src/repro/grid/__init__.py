"""Spatial grids and hierarchical indexes (GIHI, quadtree, k-d tree)."""

from repro.grid.cell import Cell
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.index import ChildGeometry, IndexNode, SpatialIndex
from repro.grid.kdtree import KDTreeIndex
from repro.grid.quadtree import QuadtreeIndex
from repro.grid.regular import RegularGrid
from repro.grid.str_index import STRIndex

__all__ = [
    "Cell",
    "ChildGeometry",
    "HierarchicalGrid",
    "IndexNode",
    "KDTreeIndex",
    "QuadtreeIndex",
    "RegularGrid",
    "STRIndex",
    "SpatialIndex",
]
