"""Grid cells.

A :class:`Cell` is an addressed rectangle inside a regular grid: its
``(row, col)`` position, its spatial ``bounds``, and its linear ``index``
in row-major order.  Cell centres are the *logical locations* of the paper
(Section 3.1): both actual and reported locations are snapped to them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.bbox import BoundingBox
from repro.geo.point import Point


@dataclass(frozen=True, slots=True)
class Cell:
    """One cell of a regular grid.

    Attributes
    ----------
    row, col:
        Zero-based position; row 0 is the southernmost row, col 0 the
        westernmost column.
    index:
        Row-major linear index, ``row * g + col``.
    bounds:
        The spatial extent of the cell.
    """

    row: int
    col: int
    index: int
    bounds: BoundingBox

    @property
    def center(self) -> Point:
        """The logical location of the cell (its centre)."""
        return self.bounds.center

    @property
    def side(self) -> float:
        """Side length of a square cell in km."""
        return self.bounds.side

    def contains(self, p: Point) -> bool:
        """Return True if ``p`` lies within the cell bounds (closed)."""
        return self.bounds.contains(p)
