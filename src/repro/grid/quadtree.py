"""Data-adaptive point quadtree index.

The paper's future work (Section 8) proposes replacing the balanced grid
with structures that "adjust better to skewed distributions of priors".
:class:`QuadtreeIndex` is such a structure: a node splits into its four
quadrants only while it holds more than ``capacity`` data points and is
above ``max_depth``, so dense downtown areas get deep, fine-grained
subtrees while empty suburbs stay coarse.

Like every index MSM can walk, the children of a node partition the
node's extent exactly (all four quadrants are materialised when a node
splits), so the multi-step composition argument is unchanged.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import GridError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.grid.index import ChildGeometry, IndexNode, SpatialIndex
from repro.grid.regular import RegularGrid


class QuadtreeIndex(SpatialIndex):
    """A region quadtree driven by a point sample.

    Parameters
    ----------
    bounds:
        Square domain to index.
    points:
        The sample (e.g. historical check-ins) that drives splitting.
        Points outside ``bounds`` are ignored.
    capacity:
        A node holding more than this many sample points is split,
        depth permitting.
    max_depth:
        Hard depth limit (root is depth 0).
    """

    def __init__(
        self,
        bounds: BoundingBox,
        points: Sequence[Point],
        capacity: int = 64,
        max_depth: int = 6,
    ):
        if capacity < 1:
            raise GridError(f"capacity must be >= 1, got {capacity}")
        if max_depth < 1:
            raise GridError(f"max_depth must be >= 1, got {max_depth}")
        self._bounds = bounds
        self._capacity = capacity
        self._max_depth = max_depth
        self._root = IndexNode(bounds=bounds, level=0, path=())
        self._children: dict[tuple[int, ...], list[IndexNode]] = {}
        inside = [p for p in points if bounds.contains(p)]
        self._build(self._root, inside)

    def _build(self, node: IndexNode, points: list[Point]) -> None:
        if node.level >= self._max_depth or len(points) <= self._capacity:
            return
        sub = RegularGrid(node.bounds, 2)
        kids = [
            IndexNode(bounds=sub.cell_by_index(i).bounds,
                      level=node.level + 1,
                      path=node.path + (i,))
            for i in range(4)
        ]
        self._children[node.path] = kids
        buckets: list[list[Point]] = [[] for _ in range(4)]
        for p in points:
            buckets[sub.locate(p).index].append(p)
        for kid, bucket in zip(kids, buckets):
            self._build(kid, bucket)

    # ------------------------------------------------------------------
    # SpatialIndex protocol
    # ------------------------------------------------------------------
    @property
    def bounds(self) -> BoundingBox:
        return self._bounds

    @property
    def root(self) -> IndexNode:
        return self._root

    def children(self, node: IndexNode) -> list[IndexNode]:
        return list(self._children.get(node.path, ()))

    def locate_child(self, node: IndexNode, p: Point) -> IndexNode | None:
        kids = self._children.get(node.path)
        if kids is None or not node.bounds.contains(p):
            return None
        index = RegularGrid(node.bounds, 2).locate(p).index
        return kids[index]

    def locate_child_indices(
        self, node: IndexNode, coords: np.ndarray
    ) -> np.ndarray:
        """Vectorised quadrant location, agreeing point-for-point with
        :meth:`locate_child` (same half-open 2x2 grid arithmetic, same
        closed outer-boundary check)."""
        coords = np.asarray(coords, dtype=float).reshape(-1, 2)
        out = np.full(coords.shape[0], -1, dtype=np.int64)
        if node.path not in self._children or coords.shape[0] == 0:
            return out
        b = node.bounds
        x = coords[:, 0]
        y = coords[:, 1]
        inside = (
            (x >= b.min_x) & (x <= b.max_x) & (y >= b.min_y) & (y <= b.max_y)
        )
        cols = np.minimum(
            ((x - b.min_x) / (b.width / 2.0)).astype(np.int64), 1
        )
        rows = np.minimum(
            ((y - b.min_y) / (b.height / 2.0)).astype(np.int64), 1
        )
        out[inside] = (rows * 2 + cols)[inside]
        return out

    def child_geometry(self, node: IndexNode) -> ChildGeometry | None:
        if node.path not in self._children:
            return None
        b = node.bounds
        # Same divisors as locate_child_indices (width / 2.0, not a
        # precomputed half-width), for bitwise agreement.
        return ChildGeometry(
            kind="grid",
            fanout=4,
            gx=2,
            gy=2,
            cell_w=b.width / 2.0,
            cell_h=b.height / 2.0,
        )
