"""The GeoInd-preserving Hierarchical Index (GIHI).

A :class:`HierarchicalGrid` of granularity ``g`` and height ``h`` is a
stack of regular grids over the same square domain: level ``i`` has
``g^i x g^i`` cells, so every internal node has fanout ``g^2`` and the
leaf level has effective granularity ``g^h`` (Figure 4 of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GridError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.grid.cell import Cell
from repro.grid.index import ChildGeometry, IndexNode, SpatialIndex
from repro.grid.regular import RegularGrid


class HierarchicalGrid(SpatialIndex):
    """A balanced hierarchical grid with uniform fanout ``g^2``.

    Node paths encode the row-major child index chosen at each level, so
    the node at path ``(p1, ..., pi)`` is cell ``pi`` of the ``g x g``
    subgrid of its parent.  Global per-level grids are exposed through
    :meth:`level_grid` for prior construction and logical-location
    snapping (Algorithm 1, line 8).
    """

    def __init__(self, bounds: BoundingBox, granularity: int, height: int):
        if granularity < 2:
            raise GridError(
                f"hierarchical grid needs granularity >= 2, got {granularity}"
            )
        if height < 1:
            raise GridError(f"hierarchical grid needs height >= 1, got {height}")
        # The budget model assumes square cells; enforce a square domain.
        bounds.side
        self._bounds = bounds
        self._g = granularity
        self._height = height
        self._root = IndexNode(bounds=bounds, level=0, path=())
        self._level_grids: dict[int, RegularGrid] = {}

    # ------------------------------------------------------------------
    # SpatialIndex protocol
    # ------------------------------------------------------------------
    @property
    def bounds(self) -> BoundingBox:
        return self._bounds

    @property
    def root(self) -> IndexNode:
        return self._root

    def children(self, node: IndexNode) -> list[IndexNode]:
        if node.level >= self._height:
            return []
        return [
            IndexNode(bounds=b, level=node.level + 1, path=node.path + (i,))
            for i, b in enumerate(node.bounds.split(self._g))
        ]

    def locate_child(self, node: IndexNode, p: Point) -> IndexNode | None:
        if node.level >= self._height or not node.bounds.contains(p):
            return None
        sub = RegularGrid(node.bounds, self._g)
        cell = sub.locate(p)
        return IndexNode(
            bounds=cell.bounds, level=node.level + 1, path=node.path + (cell.index,)
        )

    def locate_child_indices(
        self, node: IndexNode, coords: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`locate_child` over an ``(m, 2)`` array.

        Uses the same half-open cell convention as
        :meth:`~repro.grid.regular.RegularGrid.locate` (top/right domain
        boundary folds into the last row/column), so it agrees with the
        scalar path point-for-point.
        """
        coords = np.asarray(coords, dtype=float).reshape(-1, 2)
        out = np.full(coords.shape[0], -1, dtype=np.int64)
        if node.level >= self._height or coords.shape[0] == 0:
            return out
        b = node.bounds
        x = coords[:, 0]
        y = coords[:, 1]
        inside = (
            (x >= b.min_x) & (x <= b.max_x) & (y >= b.min_y) & (y <= b.max_y)
        )
        cell_w = b.width / self._g
        cell_h = b.height / self._g
        cols = np.minimum(
            ((x - b.min_x) / cell_w).astype(np.int64), self._g - 1
        )
        rows = np.minimum(
            ((y - b.min_y) / cell_h).astype(np.int64), self._g - 1
        )
        out[inside] = (rows * self._g + cols)[inside]
        return out

    def child_geometry(self, node: IndexNode) -> ChildGeometry | None:
        if node.level >= self._height:
            return None
        b = node.bounds
        # Same expressions as locate_child_indices, so the compiled
        # kernel's gathered arithmetic matches the staged path bitwise.
        return ChildGeometry(
            kind="grid",
            fanout=self._g * self._g,
            gx=self._g,
            gy=self._g,
            cell_w=b.width / self._g,
            cell_h=b.height / self._g,
        )

    def max_height(self) -> int:
        return self._height

    # ------------------------------------------------------------------
    # grid-specific structure
    # ------------------------------------------------------------------
    @property
    def granularity(self) -> int:
        """Per-level granularity ``g`` (fanout is ``g^2``)."""
        return self._g

    @property
    def height(self) -> int:
        """Number of levels below the virtual root."""
        return self._height

    @property
    def leaf_granularity(self) -> int:
        """Effective granularity ``g^h`` of the leaf level."""
        return self._g**self._height

    def level_granularity(self, level: int) -> int:
        """Global granularity ``g^level`` of a level (level 0 = root = 1)."""
        self._check_level(level)
        return self._g**level

    def level_grid(self, level: int) -> RegularGrid:
        """The global regular grid at ``level`` (cached)."""
        self._check_level(level)
        grid = self._level_grids.get(level)
        if grid is None:
            grid = RegularGrid(self._bounds, self.level_granularity(level))
            self._level_grids[level] = grid
        return grid

    def cell_side(self, level: int) -> float:
        """Side length ``L / g^level`` of a cell at ``level`` in km."""
        self._check_level(level)
        return self._bounds.side / self.level_granularity(level)

    def enclosing_cell(self, p: Point, level: int) -> Cell:
        """``EnclosingCell(x, i)`` of the paper: the global level-``level``
        cell containing ``p``."""
        return self.level_grid(level).locate(p)

    def node_cell(self, node: IndexNode) -> Cell:
        """The global grid cell corresponding to an index node."""
        if node.level == 0:
            raise GridError("the virtual root is not a grid cell")
        return self.level_grid(node.level).locate(node.bounds.center)

    def node_for_cell(self, level: int, row: int, col: int) -> IndexNode:
        """The index node for the global cell ``(row, col)`` at ``level``."""
        self._check_level(level)
        if level == 0:
            return self._root
        path = []
        for depth in range(1, level + 1):
            shift = self._g ** (level - depth)
            r = (row // shift) % self._g
            c = (col // shift) % self._g
            path.append(r * self._g + c)
        cell = self.level_grid(level).cell(row, col)
        return IndexNode(bounds=cell.bounds, level=level, path=tuple(path))

    def subgrid(self, node: IndexNode) -> RegularGrid:
        """The ``g x g`` grid partitioning an internal node's extent.

        This is the grid ``G_i`` over which MSM runs OPT at each step
        (Algorithm 1, line 7).
        """
        if node.level >= self._height:
            raise GridError(f"node at level {node.level} is a leaf; no subgrid")
        return RegularGrid(node.bounds, self._g)

    def _check_level(self, level: int) -> None:
        if not (0 <= level <= self._height):
            raise GridError(
                f"level {level} outside hierarchy of height {self._height}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HierarchicalGrid(g={self._g}, h={self._height}, "
            f"leaf={self.leaf_granularity}x{self.leaf_granularity})"
        )
