"""Regular ``g x g`` grids over a bounding box.

The regular grid is the discretisation device of the whole paper: priors
are histograms over grid cells, OPT's location sets X = Z are the cell
centres, and the hierarchical index is a stack of regular grids.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import GridError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point, points_to_array
from repro.grid.cell import Cell


class RegularGrid:
    """A ``g x g`` regular partition of a bounding box.

    Cells are addressed in row-major order with row 0 at the bottom
    (minimum y).  Points on shared edges are assigned to the cell with the
    larger index (standard half-open convention), except on the domain's
    top/right boundary which folds into the last row/column so every point
    of the closed domain belongs to exactly one cell.
    """

    def __init__(self, bounds: BoundingBox, granularity: int):
        if granularity < 1:
            raise GridError(f"granularity must be >= 1, got {granularity}")
        self._bounds = bounds
        self._g = granularity
        self._cell_w = bounds.width / granularity
        self._cell_h = bounds.height / granularity

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def bounds(self) -> BoundingBox:
        """Spatial extent of the whole grid."""
        return self._bounds

    @property
    def granularity(self) -> int:
        """Number of cells per axis (``g``)."""
        return self._g

    @property
    def n_cells(self) -> int:
        """Total number of cells (``g^2``)."""
        return self._g * self._g

    @property
    def cell_width(self) -> float:
        """Cell extent along x in km."""
        return self._cell_w

    @property
    def cell_height(self) -> float:
        """Cell extent along y in km."""
        return self._cell_h

    def __len__(self) -> int:
        return self.n_cells

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegularGrid(g={self._g}, bounds={self._bounds})"

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def cell(self, row: int, col: int) -> Cell:
        """Return the cell at ``(row, col)``."""
        if not (0 <= row < self._g and 0 <= col < self._g):
            raise GridError(
                f"cell ({row}, {col}) outside a {self._g} x {self._g} grid"
            )
        b = BoundingBox(
            self._bounds.min_x + col * self._cell_w,
            self._bounds.min_y + row * self._cell_h,
            self._bounds.min_x + (col + 1) * self._cell_w,
            self._bounds.min_y + (row + 1) * self._cell_h,
        )
        return Cell(row=row, col=col, index=row * self._g + col, bounds=b)

    def cell_by_index(self, index: int) -> Cell:
        """Return the cell with row-major linear ``index``."""
        if not (0 <= index < self.n_cells):
            raise GridError(f"cell index {index} outside grid of {self.n_cells} cells")
        return self.cell(index // self._g, index % self._g)

    def cells(self) -> Iterator[Cell]:
        """Iterate over all cells in row-major order."""
        for index in range(self.n_cells):
            yield self.cell_by_index(index)

    def locate(self, p: Point) -> Cell:
        """Return the cell enclosing ``p``.

        Raises
        ------
        GridError
            If ``p`` lies outside the grid bounds.
        """
        if not self._bounds.contains(p):
            raise GridError(f"point {p} outside grid bounds {self._bounds}")
        col = min(int((p.x - self._bounds.min_x) / self._cell_w), self._g - 1)
        row = min(int((p.y - self._bounds.min_y) / self._cell_h), self._g - 1)
        return self.cell(row, col)

    def snap(self, p: Point) -> Point:
        """Snap ``p`` to the centre of its enclosing cell (its logical location)."""
        return self.locate(p).center

    def snap_clamped(self, p: Point) -> Point:
        """Snap ``p`` after clamping it into the grid bounds.

        Used when post-processing continuous mechanism output (planar
        Laplace noise can leave the domain).
        """
        return self.locate(self._bounds.clamp(p)).center

    # ------------------------------------------------------------------
    # bulk geometry (hot paths for LP construction and priors)
    # ------------------------------------------------------------------
    def centers(self) -> list[Point]:
        """All cell centres in row-major order."""
        return [c.center for c in self.cells()]

    def centers_array(self) -> np.ndarray:
        """All cell centres as an ``(n_cells, 2)`` float array."""
        half_w = self._cell_w / 2.0
        half_h = self._cell_h / 2.0
        cols = np.arange(self._g)
        xs = self._bounds.min_x + cols * self._cell_w + half_w
        ys = self._bounds.min_y + cols * self._cell_h + half_h
        gx, gy = np.meshgrid(xs, ys)  # gy varies by row, gx by col
        return np.column_stack([gx.ravel(), gy.ravel()])

    def histogram(self, points: Sequence[Point]) -> np.ndarray:
        """Count points per cell; out-of-bounds points are ignored.

        Returns a length ``n_cells`` integer array in row-major order.
        """
        counts = np.zeros(self.n_cells, dtype=np.int64)
        if not points:
            return counts
        arr = points_to_array(points)
        inside = (
            (arr[:, 0] >= self._bounds.min_x)
            & (arr[:, 0] <= self._bounds.max_x)
            & (arr[:, 1] >= self._bounds.min_y)
            & (arr[:, 1] <= self._bounds.max_y)
        )
        arr = arr[inside]
        if arr.size == 0:
            return counts
        cols = np.minimum(
            ((arr[:, 0] - self._bounds.min_x) / self._cell_w).astype(np.int64),
            self._g - 1,
        )
        rows = np.minimum(
            ((arr[:, 1] - self._bounds.min_y) / self._cell_h).astype(np.int64),
            self._g - 1,
        )
        np.add.at(counts, rows * self._g + cols, 1)
        return counts

    def neighbors(self, cell: Cell, diagonal: bool = False) -> list[Cell]:
        """Return the 4- (or 8-, with ``diagonal=True``) neighbourhood of a cell."""
        offsets = [(-1, 0), (1, 0), (0, -1), (0, 1)]
        if diagonal:
            offsets += [(-1, -1), (-1, 1), (1, -1), (1, 1)]
        out = []
        for dr, dc in offsets:
            r, c = cell.row + dr, cell.col + dc
            if 0 <= r < self._g and 0 <= c < self._g:
                out.append(self.cell(r, c))
        return out

    def expected_snap_distance(self) -> float:
        """Mean distance from a uniform point in a cell to the cell centre.

        For a unit square this is the constant ~0.3826 (Finch [14], cited
        by the paper when discussing discretisation loss), scaled here by
        the cell side.
        """
        # E[dist to centre of unit square] = (sqrt(2) + asinh(1)) / 6
        unit = (math.sqrt(2.0) + math.asinh(1.0)) / 6.0
        return unit * max(self._cell_w, self._cell_h)
