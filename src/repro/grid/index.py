"""Generic spatial-index protocol for the multi-step mechanism.

The paper presents MSM over a hierarchical grid but notes (Section 4,
footnote 4) that "the MSM concept applies to any hierarchical data
structure without node overlap".  This module defines the small protocol
MSM actually needs so that
:class:`~repro.grid.hierarchy.HierarchicalGrid`,
:class:`~repro.grid.quadtree.QuadtreeIndex`,
:class:`~repro.grid.kdtree.KDTreeIndex`,
:class:`~repro.grid.str_index.STRIndex` and the road-network
:class:`~repro.graph.partition.GraphPartitionIndex` are interchangeable.
Node regions need not be boxes: ``IndexNode.bounds`` is only required to
*enclose* the node's region (graph nodes carry vertex-id sets and use
their bounding box purely as an envelope).

Boundary convention
-------------------
Children tile their parent, so a point on a shared internal edge lies in
two *closed* child boxes.  Every locate path — scalar scan, vectorised
arithmetic, and the compiled kernel — resolves such ties with one
half-open convention: child extents are min-closed / max-open, and each
node's own max edges fold into its last cell.  Applied recursively down
a walk, only the domain's max edges behave as closed.  Comparison-based
paths (the default scan, the k-d split test) implement the convention
exactly; arithmetic grids realise it through floor-and-clamp, where a
float bitwise-equal to a stored child edge may consistently resolve to
either neighbour (the stored edge is not always the floor-division
breakpoint).  The binding contract in all cases: scalar
``locate_child`` and vectorised ``locate_child_indices`` agree
byte-for-byte, including on exact edge and corner points (pinned by
``tests/test_boundary_convention.py``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.geo.point import Point


@dataclass(frozen=True, slots=True)
class IndexNode:
    """A node of a hierarchical space partition.

    Attributes
    ----------
    bounds:
        The node's spatial extent.  Children partition the parent's
        extent exactly (no overlap, no gap).
    level:
        Depth below the (virtual) root; the root has level 0.
    path:
        The sequence of child positions leading from the root to this
        node.  ``path`` uniquely identifies the node and is hashable, so
        it doubles as a cache key for precomputed mechanisms.
    """

    bounds: BoundingBox
    level: int
    path: tuple[int, ...]

    @property
    def center(self) -> Point:
        """Representative point of the node's region.

        The engine uses this as the node's location whenever it needs a
        single point (OPT child locations, reported points, matrix
        rows).  For box-tiled indexes it is the box centre; subclasses
        with non-box regions (e.g. graph partitions) override it with a
        point guaranteed to lie in the region (a medoid vertex).
        """
        return self.bounds.center


@dataclass(frozen=True, slots=True)
class ChildGeometry:
    """Arithmetic description of one node's child layout.

    The compiled walk kernel locates points among a node's children with
    pure array arithmetic; this record is the per-node recipe, exported
    by indexes whose children form either a regular ``gx x gy`` grid of
    equal cells (``kind="grid"``) or a single axis-aligned binary split
    (``kind="split-x"`` / ``"split-y"``).  Child position must equal the
    child's ``path[-1]``: row-major ``row * gx + col`` for grids, the
    0/1 side for splits.  The float fields must be the *same expressions*
    the index's own ``locate_child_indices`` computes (e.g.
    ``cell_w = bounds.width / g``), so the kernel's gathered arithmetic
    is bitwise identical to the staged path's per-node arithmetic.

    Indexes with irregular children (e.g. the STR index's quantile
    tiling) return ``None`` from :meth:`SpatialIndex.child_geometry`,
    which makes them uncompilable — the engine then stays on the staged
    path.
    """

    kind: str  # "grid" | "split-x" | "split-y"
    fanout: int
    gx: int = 1
    gy: int = 1
    cell_w: float = 0.0
    cell_h: float = 0.0
    split: float = 0.0


class SpatialIndex(abc.ABC):
    """A hierarchical, non-overlapping partition of a bounding box.

    MSM only requires: a root covering the domain, an ordered child list
    for every internal node, and point location among a node's children.
    """

    @property
    @abc.abstractmethod
    def bounds(self) -> BoundingBox:
        """Extent of the whole indexed domain."""

    @property
    @abc.abstractmethod
    def root(self) -> IndexNode:
        """The virtual root node covering :attr:`bounds`."""

    @abc.abstractmethod
    def children(self, node: IndexNode) -> list[IndexNode]:
        """Ordered children of ``node``; empty list if ``node`` is a leaf."""

    def is_leaf(self, node: IndexNode) -> bool:
        """Return True if ``node`` has no children."""
        return not self.children(node)

    def locate_child(self, node: IndexNode, p: Point) -> IndexNode | None:
        """Return the child of ``node`` whose extent contains ``p``.

        Returns None when ``p`` is outside ``node`` (or ``node`` is a
        leaf).  The scan applies the index-wide boundary convention:
        each child is tested half-open (min-closed / max-open) first,
        so a point on a shared internal edge resolves to the higher
        cell; points on the node's own max edges match no half-open
        box and fall back to the last closed match, folding into the
        last cell — the same result the vectorised floor-and-clamp
        arithmetic produces.  Concrete indexes override with O(1)
        arithmetic where possible.
        """
        best: IndexNode | None = None
        for child in self.children(node):
            b = child.bounds
            if b.min_x <= p.x < b.max_x and b.min_y <= p.y < b.max_y:
                return child
            if b.contains(p):
                best = child
        return best

    def locate_child_indices(
        self, node: IndexNode, coords: np.ndarray
    ) -> np.ndarray:
        """Child position of each coordinate pair among ``node``'s children.

        ``coords`` is an ``(m, 2)`` array of x/y pairs; the result is a
        length-``m`` int64 array holding each point's child position
        (``child.path[-1]``), or ``-1`` where the point falls outside
        ``node`` (the batch walk then applies the Algorithm 1 lines 9-10
        uniform fallback).  The default implementation loops over
        :meth:`locate_child`; grids with arithmetic addressing override
        it with a fully vectorised version.
        """
        coords = np.asarray(coords, dtype=float).reshape(-1, 2)
        out = np.full(coords.shape[0], -1, dtype=np.int64)
        if self.is_leaf(node):
            return out
        for i, (x, y) in enumerate(coords):
            child = self.locate_child(node, Point(float(x), float(y)))
            if child is not None:
                out[i] = child.path[-1]
        return out

    def contains_mask(self, node: IndexNode, coords: np.ndarray) -> np.ndarray:
        """Boolean mask of the coordinates lying in ``node``'s region.

        Used by the engine to fold a prior onto a node (e.g. the
        uniform-fallback weights of Algorithm 1).  The default applies
        the half-open convention to the node's box (min-closed /
        max-open), which partitions sibling extents exactly for
        box-tiled indexes; indexes whose regions are not boxes (the
        graph partition) override it with true region membership.
        """
        coords = np.asarray(coords, dtype=float).reshape(-1, 2)
        b = node.bounds
        return (
            (coords[:, 0] >= b.min_x)
            & (coords[:, 0] < b.max_x)
            & (coords[:, 1] >= b.min_y)
            & (coords[:, 1] < b.max_y)
        )

    def child_geometry(self, node: IndexNode) -> "ChildGeometry | None":
        """Arithmetic child layout of ``node``, or None if irregular.

        ``None`` (the default) marks the node as uncompilable: the walk
        engine falls back to the staged path for the whole index.
        """
        return None

    def max_height(self) -> int:
        """Maximum leaf depth of the index (root is depth 0)."""
        height = 0
        stack = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            kids = self.children(node)
            if not kids:
                height = max(height, depth)
            else:
                stack.extend((k, depth + 1) for k in kids)
        return height

    def leaves(self) -> list[IndexNode]:
        """All leaf nodes, in depth-first order."""
        out: list[IndexNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            kids = self.children(node)
            if not kids:
                out.append(node)
            else:
                stack.extend(reversed(kids))
        return out

    def node_count(self) -> int:
        """Total number of nodes, including the root."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(self.children(node))
        return count
