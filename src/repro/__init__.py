"""repro — utility-preserving, scalable geo-indistinguishability.

A complete reimplementation of *"A Utility-Preserving and Scalable
Technique for Protecting Location Data with Geo-Indistinguishability"*
(Ahuja, Ghinita, Shahabi — EDBT 2019): the Multi-Step Mechanism (MSM)
over a hierarchical spatial index, its budget-allocation model, the
planar-Laplace and optimal-mechanism baselines, and the full evaluation
substrate (datasets, priors, attacks, LBS simulation, benchmark
harness).

Quickstart::

    import numpy as np
    from repro import (MultiStepMechanism, RegularGrid, empirical_prior,
                       load_gowalla_austin)

    dataset = load_gowalla_austin()
    grid = RegularGrid(dataset.bounds, 16)          # fine prior grid
    prior = empirical_prior(grid, dataset.points())
    msm = MultiStepMechanism.build(epsilon=0.5, granularity=4, prior=prior)

    rng = np.random.default_rng(7)
    reported = msm.sample(dataset.point(0), rng)
"""

from repro.core import (
    BudgetPlan,
    MultiStepMechanism,
    allocate_budget,
    min_epsilon_for_rho,
    phi_for_grid,
)
from repro.datasets import (
    CheckInDataset,
    load_gowalla_austin,
    load_yelp_las_vegas,
)
from repro.exceptions import ReproError
from repro.geo import (
    EUCLIDEAN,
    SQUARED_EUCLIDEAN,
    BoundingBox,
    Point,
)
from repro.grid import HierarchicalGrid, RegularGrid
from repro.mechanisms import (
    ExponentialMechanism,
    MechanismMatrix,
    OptimalMechanism,
    PlanarLaplaceMechanism,
)
from repro.priors import GridPrior, empirical_prior
from repro.privacy import verify_geoind

__version__ = "1.0.0"

__all__ = [
    "BoundingBox",
    "BudgetPlan",
    "CheckInDataset",
    "EUCLIDEAN",
    "ExponentialMechanism",
    "GridPrior",
    "HierarchicalGrid",
    "MechanismMatrix",
    "MultiStepMechanism",
    "OptimalMechanism",
    "PlanarLaplaceMechanism",
    "Point",
    "RegularGrid",
    "ReproError",
    "SQUARED_EUCLIDEAN",
    "allocate_budget",
    "empirical_prior",
    "load_gowalla_austin",
    "load_yelp_las_vegas",
    "min_epsilon_for_rho",
    "phi_for_grid",
    "verify_geoind",
    "__version__",
]
