"""Command-line interface.

Subcommands::

    repro info        --dataset gowalla            dataset statistics
    repro plan        --epsilon 0.5 --g 4          budget allocation plan
    repro sanitize    --epsilon 0.5 --g 4 --x --y  sanitise one location
    repro sanitize    --bundle austin.npz --x --y  sample a saved bundle
    repro sanitize    ... --metrics [PATH]         + Prometheus metrics dump
    repro sanitize    ... --trace-out PATH         + span/metric JSON lines
    repro bundle      --epsilon 0.5 --g 4 --out p  write an offline bundle
    repro serve       --epsilon 0.5 --requests 200 drive the serving
                      front-end with concurrent synthetic clients
    repro experiment  fig3|fig5|table2|fig6|fig8|fig10|latency|
                      ablation-budget|ablation-spanner|ablation-index|
                      ablation-prior
                      --dataset gowalla --requests 600 [--csv out.csv]
    repro bench run      --matrix smoke [--out PATH]   run a benchmark
                      matrix, persist a versioned artifact
    repro bench compare  --baseline PATH [--run PATH]  gate a run
                      against a baseline (exit 1 on regression)
    repro bench report   [--run PATH | --matrix NAME]  paper-style tables

The serve subcommand is self-driving: it starts a
:class:`~repro.serve.SanitizationServer`, spawns client threads that
submit sanitisation requests concurrently, then prints the server's
coalescing/admission statistics (and, with ``--metrics``, the full
Prometheus dump — the CI smoke step scrapes exactly that).

The experiment subcommand prints the same tables the benchmark suite
produces, so paper figures can be regenerated without pytest.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.datasets import load_gowalla_austin, load_yelp_las_vegas
from repro.datasets.checkin import CheckInDataset
from repro.geo.point import Point
from repro.grid.regular import RegularGrid
from repro.priors.empirical import empirical_prior
from repro.core.budget.allocation import allocate_budget
from repro.core.msm import MultiStepMechanism
from repro.eval import experiments
from repro.eval.results import ResultTable, print_table

_EXPERIMENTS = {
    "fig3": experiments.run_fig3,
    "fig5": experiments.run_fig5,
    "table2": experiments.run_table2,
    "fig6": experiments.run_fig6_7,
    "fig8": experiments.run_fig8_9,
    "fig10": experiments.run_fig10_11,
    "latency": experiments.run_latency,
    "ablation-budget": experiments.run_budget_strategy_ablation,
    "ablation-spanner": experiments.run_spanner_ablation,
    "ablation-index": experiments.run_index_ablation,
    "ablation-prior": experiments.run_prior_ablation,
}


def _load_dataset(name: str, fraction: float) -> CheckInDataset:
    if name == "gowalla":
        return load_gowalla_austin(checkin_fraction=fraction)
    if name == "yelp":
        return load_yelp_las_vegas(checkin_fraction=fraction)
    raise SystemExit(f"unknown dataset {name!r}; choose gowalla or yelp")


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="gowalla", choices=("gowalla", "yelp"),
        help="evaluation dataset (default: gowalla)",
    )
    parser.add_argument(
        "--fraction", type=float, default=1.0,
        help="synthetic-dataset scale factor in (0, 1] (default: 1.0)",
    )


def _add_dilation_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dilation", type=float, default=None, metavar="DELTA",
        help="build the per-node LPs over a DELTA-spanner of the "
             "GeoInd constraint graph instead of all pairs: each "
             "level solves at eps/DELTA over ~linear constraints, so "
             "cold builds are faster while the guard still verifies "
             "the full guarantee at eps (default: exact, all pairs)",
    )


def _cmd_info(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.dataset, args.fraction)
    b = dataset.bounds
    print(f"dataset      : {dataset.name}")
    print(f"check-ins    : {dataset.n_checkins}")
    print(f"users        : {dataset.n_users}")
    print(f"planar side  : {b.side:.3f} km")
    if dataset.geo_bounds is not None:
        gb = dataset.geo_bounds
        print(f"geo window   : lat [{gb.min_lat}, {gb.max_lat}] "
              f"lon [{gb.min_lon}, {gb.max_lon}]")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    plan = allocate_budget(
        args.epsilon, args.g, args.side, rho=args.rho,
        max_height=args.max_height,
    )
    print(f"total budget : {plan.epsilon_total}")
    print(f"index height : {plan.height} (leaf granularity "
          f"{plan.leaf_granularity} x {plan.leaf_granularity})")
    for i, (budget, req) in enumerate(
        zip(plan.budgets, plan.requirements), start=1
    ):
        starved = "  STARVED" if budget < req * (1 - 1e-12) else ""
        print(f"  level {i}: eps={budget:.4f} (requirement {req:.4f}){starved}")
    return 0


def _cmd_bundle(args: argparse.Namespace) -> int:
    from repro.core.bundle import save_bundle

    dataset = _load_dataset(args.dataset, args.fraction)
    grid = RegularGrid(dataset.bounds, args.prior_granularity)
    prior = empirical_prior(grid, dataset.points(), smoothing=0.1)
    msm = MultiStepMechanism.build(
        args.epsilon, args.g, prior, rho=args.rho,
        spanner_dilation=args.dilation,
    )
    info = save_bundle(msm, args.out)
    print(f"bundle       : {info.path}")
    print(f"node LPs     : {info.n_nodes}")
    print(f"size         : {info.size_bytes / 1024:.1f} KiB")
    print(f"epsilon      : {info.epsilon}, height {info.height}")
    return 0


def _make_observability(args: argparse.Namespace):
    """An enabled handle when --metrics/--trace-out was passed, else None."""
    if args.metrics is None and args.trace_out is None:
        return None
    from repro.obs import Observability

    return Observability.collecting(trace=args.trace_out is not None)


def _write_observability(obs, args: argparse.Namespace) -> None:
    """Dump the run's telemetry to the requested destinations."""
    if obs is None:
        return
    from repro.obs.export import to_jsonl, to_prometheus

    if args.metrics is not None:
        text = to_prometheus(obs.snapshot())
        if args.metrics == "-":
            sys.stdout.write(text)
        else:
            with open(args.metrics, "w") as fh:
                fh.write(text)
            print(f"metrics  : {args.metrics}")
    if args.trace_out is not None:
        with open(args.trace_out, "w") as fh:
            fh.write(to_jsonl(obs.snapshot(), obs.spans))
        print(f"trace    : {args.trace_out}")


def _cmd_sanitize(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    x = Point(args.x, args.y)
    obs = _make_observability(args)
    if args.bundle is not None:
        from repro.core.bundle import load_bundle

        msm = load_bundle(args.bundle)
        if not msm.index.bounds.contains(x):
            raise SystemExit(
                f"location ({args.x}, {args.y}) outside the bundle domain"
            )
        if obs is not None:
            msm.engine.bind_observability(obs)
        if args.remap:
            msm.enable_remap()
        z = msm.sample(x, rng)
        print(f"actual   : ({x.x:.4f}, {x.y:.4f}) km")
        print(f"reported : ({z.x:.4f}, {z.y:.4f}) km")
        print(f"distance : {x.distance_to(z):.4f} km")
        _write_observability(obs, args)
        return 0
    if args.epsilon is None:
        raise SystemExit("--epsilon is required when no --bundle is given")
    dataset = _load_dataset(args.dataset, args.fraction)
    grid = RegularGrid(dataset.bounds, args.prior_granularity)
    prior = empirical_prior(grid, dataset.points(), smoothing=0.1)
    msm = MultiStepMechanism.build(
        args.epsilon, args.g, prior, rho=args.rho, remap=args.remap,
        spanner_dilation=args.dilation, obs=obs,
    )
    if not dataset.bounds.contains(x):
        raise SystemExit(
            f"location ({args.x}, {args.y}) outside the dataset domain "
            f"[0, {dataset.bounds.side:.2f}] km square"
        )
    z = msm.sample(x, rng)
    print(f"actual   : ({x.x:.4f}, {x.y:.4f}) km")
    print(f"reported : ({z.x:.4f}, {z.y:.4f}) km")
    print(f"distance : {x.distance_to(z):.4f} km")
    print(f"height   : {msm.height}, budgets "
          + "/".join(f"{b:.3f}" for b in msm.budgets))
    _write_observability(obs, args)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading

    from repro.exceptions import BudgetError, ServeError
    from repro.serve import SanitizationServer, ServerConfig

    obs = _make_observability(args)
    if obs is None:
        from repro.obs import Observability

        obs = Observability.collecting(trace=False)
    dataset = _load_dataset(args.dataset, args.fraction)
    grid = RegularGrid(dataset.bounds, args.prior_granularity)
    prior = empirical_prior(grid, dataset.points(), smoothing=0.1)
    lifetime = (
        args.lifetime_epsilon
        if args.lifetime_epsilon is not None
        else 10.0 * args.epsilon
    )
    config = ServerConfig(
        lifetime_epsilon=lifetime,
        per_report_epsilon=args.epsilon,
        coalesce_window=args.coalesce_window,
        max_batch=args.max_batch,
    )
    if args.workers > 1:
        return _serve_pool(args, config, prior, dataset, obs)
    server = SanitizationServer.build(
        prior,
        config,
        granularity=args.g,
        rho=args.rho,
        cache_max_bytes=args.cache_max_bytes,
        store=args.store,
        ledger=args.ledger,
        obs=obs,
        seed=args.seed,
        spanner_dilation=args.dilation,
    )
    if args.ledger is not None:
        replay = server.ledger.replay
        print(f"ledger     : {args.ledger} "
              f"({len(replay.spent)} users, "
              f"{sum(replay.spent.values()):.4f} eps replayed, "
              f"{replay.corrupt_lines} corrupt lines skipped)")
    points = dataset.points()
    refused = {"budget": 0, "serve": 0}
    refusal_lock = threading.Lock()

    def client(client_id: int) -> None:
        rng = np.random.default_rng(args.seed + client_id)
        user = f"user-{client_id}"
        for _ in range(args.requests // args.clients):
            x = points[int(rng.integers(len(points)))]
            try:
                server.report(user, x)
            except BudgetError:
                with refusal_lock:
                    refused["budget"] += 1
            except ServeError:
                with refusal_lock:
                    refused["serve"] += 1

    with server:
        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(args.clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    stats = server.stats
    print(f"clients    : {args.clients}")
    print(f"requests   : {stats.requests} admitted, "
          f"{stats.completed} completed")
    print(f"refused    : {refused['budget']} budget, "
          f"{refused['serve']} serve")
    print(f"batches    : {stats.batches} "
          f"({stats.coalesced} requests coalesced, "
          f"largest {stats.max_batch_points})")
    print(f"sessions   : {stats.sessions}")
    cache = server.mechanism.cache
    print(f"cache      : {len(cache)} entries, "
          f"{cache.resident_bytes} bytes resident, "
          f"{cache.evictions} evictions")
    _write_observability(obs, args)
    return 0


def _serve_pool(args, config, prior, dataset, obs) -> int:
    """The multi-worker branch of ``repro serve`` (--workers > 1):
    freeze the warmed mechanism into an arena, shard users across
    worker processes, and drive the same synthetic client load."""
    import threading

    from repro.exceptions import BudgetError, ServeError
    from repro.serve import ServingPool

    pool = ServingPool.build(
        prior,
        config,
        workers=args.workers,
        arena_dir=args.arena,
        granularity=args.g,
        rho=args.rho,
        store=args.store,
        obs=obs,
        seed=args.seed,
        ledger_dir=args.ledger_dir,
        spanner_dilation=args.dilation,
    )
    points = dataset.points()
    refused = {"budget": 0, "serve": 0}
    refusal_lock = threading.Lock()

    def client(client_id: int) -> None:
        rng = np.random.default_rng(args.seed + client_id)
        user = f"user-{client_id}"
        for _ in range(args.requests // args.clients):
            x = points[int(rng.integers(len(points)))]
            try:
                pool.report(user, x)
            except BudgetError:
                with refusal_lock:
                    refused["budget"] += 1
            except ServeError:
                with refusal_lock:
                    refused["serve"] += 1

    with pool:
        print(f"workers    : {args.workers} processes, "
              f"arena {pool.arena.nbytes} bytes (zero-copy mmap)")
        if args.ledger_dir is not None:
            replay = pool.ledger_replay()
            print(f"ledgers    : {args.ledger_dir} "
                  f"({len(replay.spent)} users, "
                  f"{sum(replay.spent.values()):.4f} eps replayed, "
                  f"{replay.corrupt_lines} corrupt lines skipped)")
        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(args.clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        pool.collect_metrics()
        stats = pool.stats()
    print(f"clients    : {args.clients}")
    print(f"requests   : {stats.requests} admitted, "
          f"{stats.completed} completed")
    print(f"refused    : {refused['budget']} budget, "
          f"{refused['serve']} serve")
    print(f"batches    : {stats.batches} "
          f"({stats.coalesced} requests coalesced, "
          f"largest {stats.max_batch_points})")
    print(f"sessions   : {stats.sessions} across "
          f"{args.workers} shards, {stats.respawns} respawns")
    _write_observability(obs, args)
    return 0


def _default_run_path(matrix_name: str) -> str:
    return f"benchmarks/runs/{matrix_name}.json"


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.bench import ROOT_SEED, get_matrix, run_matrix, save_artifact

    spec = get_matrix(args.matrix)
    seed = args.seed if args.seed is not None else ROOT_SEED
    artifact = run_matrix(spec, root_seed=seed, progress=print)
    out = args.out or _default_run_path(spec.name)
    path = save_artifact(artifact, out)
    print(f"cells    : {len(artifact['cells'])}")
    print(f"artifact : {path}")
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench import (
        compare_artifacts,
        format_comparison,
        load_artifact,
        parse_tolerance_overrides,
    )
    from repro.bench.artifact import ArtifactError

    try:
        baseline = load_artifact(args.baseline)
    except ArtifactError as exc:
        if args.allow_missing_baseline:
            print(f"missing-baseline: {exc}")
            print("verdict: PASS (no baseline committed yet)")
            return 0
        raise SystemExit(f"missing-baseline: {exc}")
    run_path = args.run or _default_run_path(str(baseline.get("matrix")))
    run = load_artifact(run_path)
    tolerances = parse_tolerance_overrides(args.tolerance)
    comparison = compare_artifacts(run, baseline, tolerances)
    print(format_comparison(comparison))
    return 0 if comparison.ok else 1


def _cmd_bench_report(args: argparse.Namespace) -> int:
    from repro.bench import format_report, load_artifact

    run_path = args.run or _default_run_path(args.matrix)
    artifact = load_artifact(run_path)
    print(format_report(artifact))
    return 0


def _cmd_bench_load(args: argparse.Namespace) -> int:
    from repro.bench import ROOT_SEED, save_artifact, wrap_legacy
    from repro.bench.load import LoadSpec, run_load_benchmark

    seed = args.seed if args.seed is not None else ROOT_SEED
    spec = LoadSpec(
        workers=args.workers,
        total_requests=args.requests,
        n_users=args.users,
        zipf_s=args.zipf_s,
        ledger=args.ledger,
        seed=seed,
    )
    results = run_load_benchmark(spec, progress=print)
    path = save_artifact(
        wrap_legacy("pool-load", results, seed), args.out
    )
    saturation = results["saturation"]
    open_loop = results["open_loop"]
    print(f"workers    : {results['workers']} "
          f"(host cpu_count {results['cpu_count']}, "
          f"gate {results['expected_gate']})")
    print(f"saturation : {saturation['req_per_s']:.0f} req/s "
          f"({saturation['requests']} requests in "
          f"{saturation['elapsed_seconds']:.2f}s)")
    print(f"open loop  : p50 {open_loop['p50_ms']:.2f} ms, "
          f"p95 {open_loop['p95_ms']:.2f} ms, "
          f"p99 {open_loop['p99_ms']:.2f} ms "
          f"at {open_loop['target_req_per_s']:.0f} req/s")
    print(f"baseline   : "
          f"{results['baseline_single_process']['req_per_s']:.0f} req/s "
          f"single-process -> speedup "
          f"{results['speedup_vs_inrun_baseline']:.2f}x in-run, "
          f"{results['speedup_vs_committed']:.2f}x vs committed")
    print(f"artifact   : {path}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.dataset, args.fraction)
    config = experiments.ExperimentConfig(
        n_requests=args.requests, seed=args.seed
    )
    run = _EXPERIMENTS[args.name]
    table: ResultTable = run(dataset, config=config)
    print_table(table)
    if args.csv:
        table.to_csv(args.csv)
        print(f"written: {args.csv}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Geo-indistinguishability mechanisms (EDBT 2019 MSM)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="dataset statistics")
    _add_dataset_args(p_info)
    p_info.set_defaults(func=_cmd_info)

    p_plan = sub.add_parser("plan", help="budget allocation plan")
    p_plan.add_argument("--epsilon", type=float, required=True)
    p_plan.add_argument("--g", type=int, default=4)
    p_plan.add_argument("--side", type=float, default=20.0,
                        help="domain side length in km (default 20)")
    p_plan.add_argument("--rho", type=float, default=0.8)
    p_plan.add_argument("--max-height", type=int, default=16)
    p_plan.set_defaults(func=_cmd_plan)

    p_san = sub.add_parser("sanitize", help="sanitise one location")
    _add_dataset_args(p_san)
    p_san.add_argument("--epsilon", type=float, default=None,
                       help="privacy budget (required unless --bundle)")
    p_san.add_argument("--g", type=int, default=4)
    p_san.add_argument("--rho", type=float, default=0.8)
    p_san.add_argument("--prior-granularity", type=int, default=16)
    p_san.add_argument("--bundle", default=None,
                       help="sample from a precomputed bundle instead")
    p_san.add_argument("--x", type=float, required=True,
                       help="planar x in km")
    p_san.add_argument("--y", type=float, required=True,
                       help="planar y in km")
    p_san.add_argument("--seed", type=int, default=0)
    p_san.add_argument("--remap", action="store_true",
                       help="apply the optimal Bayesian remap to the output "
                            "(post-processing; never weakens the guarantee)")
    _add_dilation_arg(p_san)
    p_san.add_argument("--metrics", nargs="?", const="-", default=None,
                       metavar="PATH",
                       help="collect runtime metrics and write them in "
                            "Prometheus text format to PATH (stdout if no "
                            "PATH is given)")
    p_san.add_argument("--trace-out", default=None, metavar="PATH",
                       help="record the walk's span tree and dump spans + "
                            "metrics as JSON lines to PATH")
    p_san.set_defaults(func=_cmd_sanitize)

    p_bundle = sub.add_parser(
        "bundle", help="precompute an MSM and write an offline bundle"
    )
    _add_dataset_args(p_bundle)
    p_bundle.add_argument("--epsilon", type=float, required=True)
    p_bundle.add_argument("--g", type=int, default=4)
    p_bundle.add_argument("--rho", type=float, default=0.8)
    p_bundle.add_argument("--prior-granularity", type=int, default=16)
    p_bundle.add_argument("--out", required=True, help="output .npz path")
    _add_dilation_arg(p_bundle)
    p_bundle.set_defaults(func=_cmd_bundle)

    p_serve = sub.add_parser(
        "serve",
        help="drive the concurrent serving front-end with synthetic clients",
    )
    _add_dataset_args(p_serve)
    p_serve.add_argument("--epsilon", type=float, required=True,
                         help="per-report privacy budget")
    p_serve.add_argument("--lifetime-epsilon", type=float, default=None,
                         help="per-user lifetime budget "
                              "(default: 10x per-report)")
    p_serve.add_argument("--g", type=int, default=4)
    p_serve.add_argument("--rho", type=float, default=0.8)
    p_serve.add_argument("--prior-granularity", type=int, default=16)
    p_serve.add_argument("--requests", type=int, default=200,
                         help="total requests across all clients")
    p_serve.add_argument("--clients", type=int, default=8,
                         help="concurrent client threads")
    p_serve.add_argument("--coalesce-window", type=float, default=0.002,
                         help="micro-batch gathering window in seconds")
    p_serve.add_argument("--max-batch", type=int, default=512)
    p_serve.add_argument("--cache-max-bytes", type=int, default=None,
                         help="node-cache byte budget (LRU eviction)")
    p_serve.add_argument("--store", default=None, metavar="DIR",
                         help="persistent mechanism store directory "
                              "(warm-start across runs)")
    p_serve.add_argument("--ledger", default=None, metavar="PATH",
                         help="durable budget journal; replayed on start so "
                              "spent budgets survive crashes and restarts")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--workers", type=int, default=1,
                         help="worker processes; >1 serves through the "
                              "zero-copy arena pool with users sharded "
                              "by stable hash (default 1: in-process "
                              "dispatcher)")
    p_serve.add_argument("--arena", default=None, metavar="DIR",
                         help="freeze the compiled mechanism arena here "
                              "(default: a run-scoped temp directory)")
    p_serve.add_argument("--ledger-dir", default=None, metavar="DIR",
                         help="per-shard durable budget journals for the "
                              "worker pool (crash-safe spend, replayed "
                              "on worker respawn)")
    p_serve.add_argument("--metrics", nargs="?", const="-", default=None,
                         metavar="PATH",
                         help="write the full Prometheus metrics dump to "
                              "PATH (stdout if no PATH is given)")
    p_serve.add_argument("--trace-out", default=None, metavar="PATH",
                         help="dump spans + metrics as JSON lines to PATH")
    _add_dilation_arg(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark-matrix harness: run / compare / report",
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    p_brun = bench_sub.add_parser(
        "run", help="run a named benchmark matrix and persist the artifact"
    )
    p_brun.add_argument("--matrix", default="smoke",
                        help="matrix name (default: smoke)")
    p_brun.add_argument("--out", default=None, metavar="PATH",
                        help="artifact path "
                             "(default benchmarks/runs/<matrix>.json)")
    p_brun.add_argument("--seed", type=int, default=None)
    p_brun.set_defaults(func=_cmd_bench_run)

    p_bcmp = bench_sub.add_parser(
        "compare",
        help="gate a run against a baseline; exit 1 on regression",
    )
    p_bcmp.add_argument("--baseline", required=True, metavar="PATH",
                        help="committed baseline artifact")
    p_bcmp.add_argument("--run", default=None, metavar="PATH",
                        help="run artifact (default: the baseline matrix's "
                             "benchmarks/runs/<matrix>.json)")
    p_bcmp.add_argument("--tolerance", action="append", default=None,
                        metavar="METRIC=REL_TOL",
                        help="override one metric's relative tolerance "
                             "band (repeatable), e.g. "
                             "throughput_pts_per_s=0.75")
    p_bcmp.add_argument("--allow-missing-baseline", action="store_true",
                        help="pass (exit 0) when the baseline file does "
                             "not exist yet instead of failing")
    p_bcmp.set_defaults(func=_cmd_bench_compare)

    p_brep = bench_sub.add_parser(
        "report", help="render a run artifact as paper-style tables"
    )
    p_brep.add_argument("--run", default=None, metavar="PATH",
                        help="run artifact (default "
                             "benchmarks/runs/<matrix>.json)")
    p_brep.add_argument("--matrix", default="smoke",
                        help="matrix name used for the default --run path")
    p_brep.set_defaults(func=_cmd_bench_report)

    p_bload = bench_sub.add_parser(
        "load",
        help="open-loop load benchmark against the multi-worker pool",
    )
    p_bload.add_argument("--workers", type=int, default=2)
    p_bload.add_argument("--requests", type=int, default=1000,
                         help="total open-loop requests (default 1000; "
                              "the committed BENCH_load.json uses "
                              "benchmarks/bench_load.py at full size)")
    p_bload.add_argument("--users", type=int, default=200,
                         help="distinct users behind the Zipf arrivals")
    p_bload.add_argument("--zipf-s", type=float, default=1.1,
                         help="Zipf skew of user arrivals")
    p_bload.add_argument("--ledger", action="store_true",
                         help="attach per-shard durable budget journals "
                              "(measures the fsync price)")
    p_bload.add_argument("--out", default="BENCH_load.json",
                         metavar="PATH",
                         help="artifact path (default BENCH_load.json)")
    p_bload.add_argument("--seed", type=int, default=None)
    p_bload.set_defaults(func=_cmd_bench_load)

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    _add_dataset_args(p_exp)
    p_exp.add_argument("--requests", type=int, default=600)
    p_exp.add_argument("--seed", type=int, default=42)
    p_exp.add_argument("--csv", default=None, help="also write CSV here")
    p_exp.set_defaults(func=_cmd_experiment)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
