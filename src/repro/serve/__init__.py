"""Concurrent serving front-end over one shared sanitisation engine.

:class:`SanitizationServer` owns many per-user
:class:`~repro.core.session.SanitizationSession`\\ s sharing a single
warm :class:`~repro.core.msm.MultiStepMechanism`, coalesces concurrent
requests into micro-batches through the walk engine, and applies
admission control on lifetime budgets.  With a
:class:`~repro.core.ledger.BudgetLedger` attached, every admission is
journalled durably before it may sample, so a crash or restart can
never reset a user's spent budget.
"""

from repro.core.ledger import BudgetLedger
from repro.serve.server import SanitizationServer, ServerConfig, ServerStats

__all__ = [
    "BudgetLedger",
    "SanitizationServer",
    "ServerConfig",
    "ServerStats",
]
