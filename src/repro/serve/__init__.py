"""Concurrent serving front-end over one shared sanitisation engine.

:class:`SanitizationServer` owns many per-user
:class:`~repro.core.session.SanitizationSession`\\ s sharing a single
warm :class:`~repro.core.msm.MultiStepMechanism`, coalesces concurrent
requests into micro-batches through the walk engine, and applies
admission control on lifetime budgets.
"""

from repro.serve.server import SanitizationServer, ServerConfig, ServerStats

__all__ = ["SanitizationServer", "ServerConfig", "ServerStats"]
