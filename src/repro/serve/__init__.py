"""Concurrent serving front-ends over one shared sanitisation engine.

:class:`SanitizationServer` owns many per-user
:class:`~repro.core.session.SanitizationSession`\\ s sharing a single
warm :class:`~repro.core.msm.MultiStepMechanism`, coalesces concurrent
requests into micro-batches through the walk engine, and applies
admission control on lifetime budgets.  With a
:class:`~repro.core.ledger.BudgetLedger` attached, every admission is
journalled durably before it may sample, so a crash or restart can
never reset a user's spent budget.

:class:`ServingPool` scales the same design across worker processes:
the warmed mechanism is frozen into a read-only
:class:`MechanismArena` every worker maps at zero copy, users shard to
workers by the stable hash :func:`shard_for_user` so each budget lives
in exactly one process, and per-shard stats/metrics fold back through
an associative merge algebra.  :class:`AsyncSanitizationFrontend`
bridges the pool into asyncio applications.
"""

from repro.core.ledger import BudgetLedger
from repro.serve.arena import ArenaError, MechanismArena
from repro.serve.frontend import AsyncSanitizationFrontend
from repro.serve.pool import (
    ServingPool,
    ShardBudgetBook,
    shard_for_user,
    shard_journal_path,
)
from repro.serve.server import SanitizationServer, ServerConfig, ServerStats

__all__ = [
    "ArenaError",
    "AsyncSanitizationFrontend",
    "BudgetLedger",
    "MechanismArena",
    "SanitizationServer",
    "ServerConfig",
    "ServerStats",
    "ServingPool",
    "ShardBudgetBook",
    "shard_for_user",
    "shard_journal_path",
]
