"""Asyncio front-end over the multi-worker serving pool.

:class:`ServingPool` exposes a thread-flavoured interface — blocking
:meth:`~repro.serve.pool.ServingPool.report` and a
``concurrent.futures.Future`` from
:meth:`~repro.serve.pool.ServingPool.submit`.  An asyncio application
(an HTTP handler, a websocket fan-in) must never block its event loop
on either, so this module wraps the pool behind coroutines:

* submission stays synchronous and cheap (a domain check, an overload
  check, a queue put — no I/O), so it runs inline on the loop;
* the *wait* is bridged with :func:`asyncio.wrap_future`, which wires
  the worker's completion callback to the loop without a polling
  thread.

The frontend adds nothing to the privacy story — routing, budget
admission, and sampling all happen in the pool and its workers — and
nothing to the stats algebra: :meth:`AsyncSanitizationFrontend.stats`
and :meth:`~AsyncSanitizationFrontend.collect_metrics` are the pool's
own merged views.
"""

from __future__ import annotations

import asyncio

from repro.exceptions import ServeError
from repro.geo.point import Point
from repro.core.session import SessionReport
from repro.serve.pool import ServingPool
from repro.serve.server import ServerStats

__all__ = ["AsyncSanitizationFrontend"]


class AsyncSanitizationFrontend:
    """Route sanitisation requests from an event loop into a
    :class:`~repro.serve.pool.ServingPool`.

    Usage::

        pool = ServingPool.build(prior, config, workers=4)
        async with AsyncSanitizationFrontend(pool) as frontend:
            report = await frontend.report("user-1", Point(3.2, 7.9))

    The frontend starts the pool on ``__aenter__`` if needed and, when
    constructed with ``own_pool=True`` (the context-manager default
    path), stops it on ``__aexit__``.
    """

    def __init__(self, pool: ServingPool, own_pool: bool = True):
        self._pool = pool
        self._own_pool = bool(own_pool)

    @property
    def pool(self) -> ServingPool:
        return self._pool

    async def __aenter__(self) -> "AsyncSanitizationFrontend":
        if not self._pool.running:
            # worker spawn + arena mmap + ledger replay can take real
            # time; keep it off the event loop
            await asyncio.get_running_loop().run_in_executor(
                None, self._pool.start
            )
        return self

    async def __aexit__(self, *exc) -> None:
        if self._own_pool:
            await asyncio.get_running_loop().run_in_executor(
                None, self._pool.stop
            )

    async def report(
        self, user_id: str, x: Point, timeout: float | None = 30.0
    ) -> SessionReport:
        """Sanitise one location without blocking the event loop.

        Raises exactly what the pool's blocking path raises —
        :class:`~repro.exceptions.BudgetError` on an exhausted lifetime
        budget, :class:`~repro.exceptions.ServeError` on domain,
        overload, crash, or timeout — so callers can share handling
        with synchronous code.
        """
        loop = asyncio.get_running_loop()
        deadline = (
            None if timeout is None else loop.time() + timeout
        )
        request = self._pool.submit(user_id, x)
        future = asyncio.wrap_future(request.future, loop=loop)
        try:
            if deadline is None:
                return await future
            return await asyncio.wait_for(
                future, timeout=deadline - loop.time()
            )
        except (asyncio.TimeoutError, TimeoutError):
            request.abandon()
            raise ServeError(
                f"request for {user_id!r} timed out after "
                f"{timeout:.3g}s",
                reason="timeout",
            ) from None

    async def report_many(
        self,
        requests: "list[tuple[str, Point]]",
        timeout: float | None = 30.0,
    ) -> list:
        """Submit many requests concurrently; returns results aligned
        with ``requests``, exceptions in place (``gather`` semantics,
        so one rejected user never hides another's report)."""
        return await asyncio.gather(
            *(
                self.report(user_id, x, timeout=timeout)
                for user_id, x in requests
            ),
            return_exceptions=True,
        )

    def stats(self) -> ServerStats:
        """The pool's merged stats (cheap and non-blocking)."""
        return self._pool.stats()

    async def collect_metrics(self):
        """Merge worker metrics snapshots off-loop (each snapshot is a
        pipe round-trip through a shard's feeder thread)."""
        return await asyncio.get_running_loop().run_in_executor(
            None, self._pool.collect_metrics
        )
