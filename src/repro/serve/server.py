"""A concurrent serving front-end over one shared walk engine.

The paper's client-side deployment model precomputes per-node
mechanisms and ships them to devices; a *server-side* deployment keeps
the precomputed engine in one process and lets many concurrent user
sessions report through it.  :class:`SanitizationServer` is that
front-end:

* it owns many :class:`~repro.core.session.SanitizationSession`\\ s —
  one per user, each with its own lifetime budget — all sharing **one**
  warm :class:`~repro.core.msm.MultiStepMechanism` (and therefore one
  memory-bounded node cache and one persistent-store warm start);

* requests arriving concurrently are **coalesced into micro-batches**:
  a dispatcher thread gathers everything that arrives within a small
  window (bounded by a max batch size) and feeds it to
  :meth:`WalkEngine.run <repro.core.engine.WalkEngine.run>` as one
  batch, which is exactly where the batch engine's group-by-node bulk
  cache warm-up and vectorised sampling pay off;

* **admission control** happens at submit time, under the server lock,
  against each session's lifetime budget *including its in-flight
  reservations* — a user cannot overdraw by racing requests — and
  against a bounded pending queue (overload sheds load instead of
  growing without bound);

* **crash safety** is optional but first-class: give the server a
  :class:`~repro.core.ledger.BudgetLedger` and every admission journals
  a durable *reservation* before the walk may sample, every delivery
  (or post-dispatch failure) journals a *commit*, and only requests
  that provably never sampled (abandoned before dispatch, drained by
  ``stop()``) journal a *release*.  A restarted server replays the
  journal and pre-charges each user's session, so a crash can reset
  nothing — the reserve → sample → commit protocol fails closed at
  every interleaving;

* **deadlines travel with the request**: :meth:`report` turns its
  timeout into a per-request deadline, a caller that gives up marks the
  request *abandoned*, and the dispatcher skips (and refunds) expired
  or abandoned requests *before* sampling instead of spending budget on
  a result nobody receives.  Transient overload is retried with bounded
  exponential backoff inside the deadline;

* everything is instrumented through :mod:`repro.obs` (request /
  rejection / batch / coalescing / abandonment counters, batch-size and
  latency histograms, live session and in-flight gauges) alongside the
  cache's eviction metrics, the store's traffic metrics, and the
  ledger's journal metrics.

Privacy: batching across users never weakens per-user GeoInd.  Each
walk in a batch is an independent Algorithm-1 walk with its own
randomness; grouping by node only *schedules* the draws together.  The
per-user guarantee is the session's, enforced by its accountant exactly
as in the serial path (the batch spend is recorded per session through
:meth:`SanitizationSession.record_walk`).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.resilience import BreakerConfig

from repro.exceptions import BudgetError, LedgerError, ServeError
from repro.geo.point import Point
from repro.obs import LATENCY_EDGES, NOOP, SIZE_EDGES, Observability
from repro.core.ledger import BudgetLedger
from repro.core.msm import MultiStepMechanism
from repro.core.session import SanitizationSession, SessionReport
from repro.core.store import MechanismStore


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs for a :class:`SanitizationServer`.

    Attributes
    ----------
    lifetime_epsilon:
        Lifetime GeoInd budget granted to each user session.
    per_report_epsilon:
        Budget one sanitised report consumes (must equal the shared
        mechanism's epsilon; the session constructor enforces it).
    coalesce_window:
        How long (seconds) the dispatcher waits after the first pending
        request to gather more into the same micro-batch.  Zero
        degenerates to one-request batches.
    max_batch:
        Hard cap on micro-batch size; a full batch dispatches
        immediately without waiting out the window.
    max_pending:
        Bound on queued-but-undispatched requests; submissions beyond
        it are shed with :class:`~repro.exceptions.ServeError`
        (reason ``overload``) rather than queueing unboundedly.
    retry_attempts:
        How many times :meth:`SanitizationServer.report` re-submits
        after a *transient* refusal (reason ``overload``), with
        exponential backoff, before giving up.  Zero disables retries;
        :meth:`SanitizationServer.submit` itself never retries.
    retry_backoff:
        Base backoff (seconds) before the first retry; doubles per
        attempt and is always clipped to the caller's deadline.
    """

    lifetime_epsilon: float
    per_report_epsilon: float
    coalesce_window: float = 0.002
    max_batch: int = 512
    max_pending: int = 10_000
    retry_attempts: int = 2
    retry_backoff: float = 0.05


class _PendingRequest:
    """One in-flight request: its inputs, its rendezvous, its outcome.

    ``deadline`` (``time.monotonic`` seconds, or None) travels with the
    request so the dispatcher can refuse to sample for a caller that
    has already given up; ``entry_id`` links it to its durable ledger
    reservation; ``abandoned`` is the caller-side cancellation flag set
    by :meth:`SanitizationServer.report` on timeout (advisory: a
    request already being sampled still commits its budget).
    """

    __slots__ = (
        "user_id", "x", "submitted", "done", "report", "error",
        "deadline", "entry_id", "abandoned",
    )

    def __init__(
        self, user_id: str, x: Point, deadline: float | None = None
    ):
        self.user_id = user_id
        self.x = x
        self.submitted = time.perf_counter()
        self.done = threading.Event()
        self.report: SessionReport | None = None
        self.error: Exception | None = None
        self.deadline = deadline
        self.entry_id: str | None = None
        self.abandoned = False

    def abandon(self) -> None:
        """Mark the request as given up by its caller (advisory)."""
        self.abandoned = True

    def expired(self, now: float) -> bool:
        """Whether the caller's deadline elapsed at monotonic ``now``."""
        return self.deadline is not None and now > self.deadline

    def fail(self, error: Exception) -> None:
        self.error = error
        self.done.set()

    def complete(self, report: SessionReport) -> None:
        self.report = report
        self.done.set()


@dataclass
class ServerStats:
    """A plain snapshot of the server's own counters (always available,
    even with observability disabled)."""

    requests: int = 0
    completed: int = 0
    rejected_budget: int = 0
    rejected_overload: int = 0
    rejected_domain: int = 0
    batches: int = 0
    coalesced: int = 0
    failed: int = 0
    sessions: int = 0
    max_batch_points: int = 0
    abandoned: int = 0
    retries: int = 0
    replayed_users: int = 0
    replayed_epsilon: float = 0.0
    #: worker-process respawns (always 0 for the in-process server;
    #: the multi-worker pool counts its crash recoveries here)
    respawns: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)

    #: fields combined with ``max`` by :meth:`merge`; everything else
    #: (counts, epsilon totals) adds.
    _MERGE_MAX = ("max_batch_points",)

    def merge(self, other: "ServerStats") -> "ServerStats":
        """Combine two stats snapshots from *disjoint* serving shards.

        Same algebra as :meth:`repro.obs.metrics.MetricsSnapshot.merge`
        — associative and commutative, so N workers' stats fold in any
        order (tree-reduce, incremental, stragglers last) to the same
        totals.  Counters add; ``max_batch_points`` takes the max.
        ``sessions`` adds because the pool shards users by stable hash:
        a user's session lives in exactly one shard, so shard session
        counts are disjoint by construction.
        """
        merged = ServerStats()
        for key in self.__dict__:
            a, b = getattr(self, key), getattr(other, key)
            setattr(
                merged, key, max(a, b) if key in self._MERGE_MAX else a + b
            )
        return merged


class SanitizationServer:
    """Serve concurrent sanitisation requests over one shared mechanism.

    Parameters
    ----------
    mechanism:
        The shared per-report mechanism (its epsilon is the per-report
        spend).  Build it with a memory-bounded cache and warm-start it
        from a :class:`~repro.core.store.MechanismStore` for a
        production-shaped setup; :meth:`build` wires all of that.
    config:
        The :class:`ServerConfig` envelope.
    obs:
        Optional observability handle; it is bound through the whole
        stack (engine, cache, solver) and every session's budget
        metrics land in the same registry.

    Usage::

        with SanitizationServer(msm, config) as server:
            report = server.report("user-1", Point(3.2, 7.9))

    ``report`` blocks until the micro-batch containing the request has
    been walked; any number of threads may call it concurrently.
    """

    def __init__(
        self,
        mechanism: MultiStepMechanism,
        config: ServerConfig,
        obs: Observability | None = None,
        ledger: "BudgetLedger | str | Path | None" = None,
    ):
        if config.per_report_epsilon <= 0:
            raise BudgetError(
                f"per-report budget must be positive, "
                f"got {config.per_report_epsilon}"
            )
        if config.max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {config.max_batch}")
        self._mechanism = mechanism
        self._config = config
        self._obs = obs if obs is not None else NOOP
        if obs is not None:
            mechanism.engine.bind_observability(obs)
        self._sessions: dict[str, SanitizationSession] = {}
        self._reserved: dict[str, int] = {}
        self._lock = threading.RLock()
        self._queue: queue.Queue[_PendingRequest | None] = queue.Queue()
        self._pending = 0
        self._rng = np.random.default_rng()
        self._dispatcher: threading.Thread | None = None
        self._running = False
        self._stop_seen = False
        self.stats = ServerStats()
        if isinstance(ledger, (str, Path)):
            ledger = BudgetLedger(ledger)
        self._ledger = ledger
        if self._ledger is not None:
            if obs is not None:
                self._ledger.bind_observability(obs)
            self._restore_from_ledger()

    def _restore_from_ledger(self) -> None:
        """Pre-charge sessions with the journal's replayed spend.

        Every replayed epsilon — committed, or merely reserved when the
        previous process died — is restored into the user's accountant
        before the first request is admitted, and the orphaned
        reservations are settled with a commit so they replay (and
        compact) as final spend from now on.  Fail-closed: replayed
        spend above the lifetime leaves the session exhausted, never
        reset.
        """
        assert self._ledger is not None
        replayed = self._ledger.spent_by_user()
        for user_id in sorted(replayed):
            epsilon = replayed[user_id]
            if epsilon <= 0:
                continue
            self.session(user_id).restore_spent(epsilon)
            self.stats.replayed_users += 1
            self.stats.replayed_epsilon += epsilon
        for entry_id in sorted(self._ledger.open_reservations()):
            self._ledger.commit(entry_id)

    @property
    def ledger(self) -> BudgetLedger | None:
        """The durable budget ledger, when crash safety is enabled."""
        return self._ledger

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        prior,
        config: ServerConfig,
        granularity: int = 4,
        rho: float = 0.8,
        cache_max_bytes: int | None = None,
        store: "MechanismStore | str | Path | None" = None,
        obs: Observability | None = None,
        seed: int | None = None,
        ledger: "BudgetLedger | str | Path | None" = None,
        breaker: "BreakerConfig | None" = None,
        **msm_kwargs,
    ) -> "SanitizationServer":
        """Build the shared mechanism and a server around it.

        Wires the production-shaped stack in one call: a
        memory-bounded node cache (``cache_max_bytes``), a
        warm-start/persist round trip against ``store`` (a
        :class:`~repro.core.store.MechanismStore` or a directory path),
        a durable budget ``ledger`` (a
        :class:`~repro.core.ledger.BudgetLedger` or a journal path —
        replayed before the first request is admitted), an optional
        solver circuit ``breaker``
        (:class:`~repro.core.resilience.BreakerConfig`), and
        observability through every layer.
        """
        from repro.core.cache import NodeMechanismCache
        from repro.core.resilience import CircuitBreakerSolver

        cache = NodeMechanismCache(max_bytes=cache_max_bytes)
        if breaker is not None and "solver" not in msm_kwargs:
            msm_kwargs["solver"] = CircuitBreakerSolver(config=breaker)
        msm = MultiStepMechanism.build(
            config.per_report_epsilon,
            granularity,
            prior,
            rho=rho,
            cache=cache,
            obs=obs,
            **msm_kwargs,
        )
        if store is not None:
            if not isinstance(store, MechanismStore):
                store = MechanismStore(store)
            if obs is not None:
                store.bind_observability(obs)
            store.get_or_build(msm)
        # serving batches are micro-batches: let even a single-point
        # batch ride the compiled kernel once the cache can hold the
        # tree ('auto' still falls back to the staged walk when it
        # cannot, e.g. under a tight cache_max_bytes)
        msm.engine.kernel_min_batch = 1
        server = cls(msm, config, obs=obs, ledger=ledger)
        if seed is not None:
            server._rng = np.random.default_rng(seed)
        return server

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SanitizationServer":
        """Start the dispatcher thread (idempotent, restartable)."""
        with self._lock:
            if self._running:
                return self
            self._running = True
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()
        return self

    def stop(self) -> None:
        """Drain the queue, stop the dispatcher, fail anything left.

        Exactly one stop sentinel is ever enqueued (the dispatcher
        never re-queues it), so a stop racing the coalescing loop can
        neither leave a stray sentinel for a later :meth:`start` nor
        double-drain.  Requests still queued when the dispatcher exits
        provably never sampled: they fail closed with
        :class:`~repro.exceptions.ServeError` *and* their budget
        reservations are released (refunded), in memory and in the
        ledger.
        """
        with self._lock:
            if not self._running:
                return
            self._running = False
        self._queue.put(None)
        if self._dispatcher is not None:
            self._dispatcher.join()
            self._dispatcher = None
        # anything still queued after the dispatcher exited fails closed
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                break
            if request is not None:
                with self._lock:
                    self._release_request(request)
                request.fail(
                    ServeError("server stopped", reason="stopped")
                )

    def __enter__(self) -> "SanitizationServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._running

    @property
    def mechanism(self) -> MultiStepMechanism:
        """The shared per-report mechanism."""
        return self._mechanism

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def observability(self) -> Observability:
        return self._obs

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def session(self, user_id: str) -> SanitizationSession:
        """The user's session, created on first use."""
        with self._lock:
            session = self._sessions.get(user_id)
            if session is None:
                session = SanitizationSession(
                    self._config.lifetime_epsilon,
                    self._config.per_report_epsilon,
                    mechanism=self._mechanism,
                    obs=self._obs,
                )
                self._sessions[user_id] = session
                self._reserved[user_id] = 0
                self.stats.sessions = len(self._sessions)
                if self._obs.enabled:
                    self._obs.metrics.gauge("repro_serve_sessions").set(
                        len(self._sessions)
                    )
            return session

    def sessions(self) -> dict[str, SanitizationSession]:
        """All live sessions by user id (a copy)."""
        with self._lock:
            return dict(self._sessions)

    # ------------------------------------------------------------------
    # the request path
    # ------------------------------------------------------------------
    def submit(
        self,
        user_id: str,
        x: Point,
        deadline: float | None = None,
    ) -> _PendingRequest:
        """Admit a request into the next micro-batch (non-blocking).

        Admission control runs here, under the server lock:

        * the point must lie inside the served domain;
        * the pending queue must have room (overload sheds);
        * the user's lifetime budget must afford the request *on top
          of* every report the user already has in flight — the
          reservation count closes the race where k parallel requests
          each pass a lone ``can_report`` check but only j < k fit.

        With a ledger, the reservation is journalled (and fsync'd)
        before this returns, so a crash at any later point replays the
        request's budget as spent — fail closed.

        ``deadline`` is an absolute ``time.monotonic`` instant; a
        request whose deadline has elapsed by dispatch time is skipped
        *before* sampling and its reservation refunded.

        Returns the pending-request handle; wait on ``.done`` or use
        :meth:`report` for the blocking form.
        """
        if not self._mechanism.index.bounds.contains(x):
            self._reject("domain")
            raise ServeError(
                f"location ({x.x:.4g}, {x.y:.4g}) is outside the served "
                f"domain",
                reason="domain",
            )
        with self._lock:
            if not self._running:
                raise ServeError(
                    "server is not running; call start()", reason="stopped"
                )
            session = self.session(user_id)
            if self._pending >= self._config.max_pending:
                self._reject("overload")
                raise ServeError(
                    f"pending queue full ({self._config.max_pending} "
                    f"requests); shedding load",
                    reason="overload",
                )
            reserved = self._reserved[user_id]
            if session.reports_remaining - reserved < 1:
                self._reject("budget")
                raise BudgetError(
                    f"user {user_id!r}: lifetime budget cannot cover "
                    f"another report ({reserved} already in flight, "
                    f"remaining {session.remaining:.4g})"
                )
            request = _PendingRequest(user_id, x, deadline=deadline)
            if self._ledger is not None:
                # durable *before* the walk may sample; admission has
                # already held the headroom, so the journal write is
                # the only fallible step left
                request.entry_id = self._ledger.reserve(
                    user_id, self._config.per_report_epsilon
                )
            self._reserved[user_id] = reserved + 1
            self._pending += 1
            self.stats.requests += 1
            if self._obs.enabled:
                self._obs.metrics.counter("repro_serve_requests_total").inc()
                self._obs.metrics.gauge("repro_serve_inflight").set(
                    self._pending
                )
            # enqueue under the lock: a concurrent stop() drains the
            # queue after flipping _running, so a request enqueued
            # outside the lock could slip in after the drain and leave
            # its caller hanging on done.wait forever
            self._queue.put(request)
        return request

    def report(
        self, user_id: str, x: Point, timeout: float | None = 30.0
    ) -> SessionReport:
        """Sanitise ``x`` for ``user_id`` through the next micro-batch.

        Blocking form of :meth:`submit`; safe to call from any number
        of threads concurrently.  ``timeout`` becomes the request's
        end-to-end deadline: it bounds admission retries, queueing and
        the walk together.  If it elapses, the request is marked
        *abandoned* so the dispatcher refuses to sample (and refunds)
        it if it has not entered a batch yet; a request already being
        sampled still commits its budget (fail closed — the draw may
        have happened).

        Transient refusals (reason ``overload``) are retried up to
        ``config.retry_attempts`` times with exponential backoff, never
        past the deadline.

        Raises
        ------
        BudgetError
            When admission control refuses the user's budget.
        ServeError
            On overload (after retries), out-of-domain requests, a
            stopped server, or when ``timeout`` elapses first.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        attempt = 0
        while True:
            try:
                request = self.submit(user_id, x, deadline=deadline)
                break
            except ServeError as exc:
                if (
                    exc.reason != "overload"
                    or attempt >= self._config.retry_attempts
                ):
                    raise
                delay = self._config.retry_backoff * (2.0 ** attempt)
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= delay:
                        raise
                attempt += 1
                with self._lock:
                    self.stats.retries += 1
                if self._obs.enabled:
                    self._obs.metrics.counter(
                        "repro_serve_retries_total"
                    ).inc()
                time.sleep(delay)
        wait_for = (
            None if deadline is None
            else max(0.0, deadline - time.monotonic())
        )
        if not request.done.wait(wait_for):
            request.abandon()
            raise ServeError(
                f"request for {user_id!r} timed out after {timeout:.3g}s",
                reason="timeout",
            )
        if request.error is not None:
            raise request.error
        assert request.report is not None
        return request.report

    def _reject(self, reason: str) -> None:
        with self._lock:
            if reason == "budget":
                self.stats.rejected_budget += 1
            elif reason == "overload":
                self.stats.rejected_overload += 1
            else:
                self.stats.rejected_domain += 1
        if self._obs.enabled:
            self._obs.metrics.counter(
                "repro_serve_rejections_total", reason=reason
            ).inc()

    # ------------------------------------------------------------------
    # the dispatcher
    # ------------------------------------------------------------------
    def _collect_batch(self) -> list[_PendingRequest] | None:
        """Block for the first request, then coalesce the window.

        Returns None when the stop sentinel arrives with nothing
        gathered; a sentinel arriving mid-gather sets ``_stop_seen``
        (it is consumed, never re-queued — so a stop racing the
        coalescing loop cannot leave a stray sentinel to instantly kill
        a restarted dispatcher) and the gathered batch dispatches
        first.
        """
        try:
            first = self._queue.get(timeout=0.1)
        except queue.Empty:
            return []
        if first is None:
            self._stop_seen = True
            return None
        batch = [first]
        deadline = time.perf_counter() + self._config.coalesce_window
        while len(batch) < self._config.max_batch:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                request = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if request is None:
                self._stop_seen = True
                break
            batch.append(request)
        return batch

    def _dispatch_loop(self) -> None:
        self._stop_seen = False
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            if batch:
                self._run_batch(batch)
            if self._stop_seen:
                return
            if not batch and not self._running and self._queue.empty():
                return

    def _run_batch(self, batch: list[_PendingRequest]) -> None:
        # Deadline/cancellation gate: a request whose caller gave up
        # (abandoned) or whose deadline elapsed while queued is refused
        # *before* sampling — its budget provably never left the
        # reservation stage, so it is refunded in memory and released
        # in the ledger instead of being spent on a result nobody
        # receives.
        now = time.monotonic()
        live: list[_PendingRequest] = []
        with self._lock:
            for request in batch:
                if request.abandoned or request.expired(now):
                    self._release_request(request)
                    self.stats.abandoned += 1
                    if self._obs.enabled:
                        self._obs.metrics.counter(
                            "repro_serve_abandoned_total"
                        ).inc()
                    request.fail(
                        ServeError(
                            f"request for {request.user_id!r} abandoned "
                            f"before dispatch (caller deadline elapsed)",
                            reason="abandoned",
                        )
                    )
                else:
                    live.append(request)
        if not live:
            return
        points = [r.x for r in live]
        start = time.perf_counter()
        try:
            walks = self._mechanism.sanitize_batch(
                points, self._rng, trace=False
            )
        except Exception as exc:  # fail the whole batch, never hang it
            with self._lock:
                for request in live:
                    # fail closed: the engine may already have drawn
                    # from the mechanism before failing, so the budget
                    # is charged and the reservation committed — a
                    # failure costs utility (and here budget), never
                    # privacy
                    self._sessions[request.user_id].charge_failure()
                    self._settle_request(request)
                    request.fail(exc)
                self.stats.failed += len(live)
            if self._obs.enabled:
                self._obs.metrics.counter(
                    "repro_serve_batch_failures_total"
                ).inc()
            return
        elapsed = time.perf_counter() - start
        with self._lock:
            for request, walk in zip(live, walks):
                session = self._sessions[request.user_id]
                try:
                    report = session.record_walk(request.x, walk)
                except BudgetError as exc:
                    # cannot happen while reservations are accounted
                    # correctly, but never let a request hang on it —
                    # and the sample *was* drawn, so charge and commit
                    session.charge_failure()
                    request.fail(exc)
                    self.stats.failed += 1
                else:
                    request.complete(report)
                    self.stats.completed += 1
                self._settle_request(request)
            self.stats.batches += 1
            self.stats.coalesced += len(live) - 1
            self.stats.max_batch_points = max(
                self.stats.max_batch_points, len(live)
            )
            if self._obs.enabled:
                metrics = self._obs.metrics
                metrics.counter("repro_serve_batches_total").inc()
                metrics.counter("repro_serve_coalesced_total").inc(
                    len(live) - 1
                )
                metrics.histogram(
                    "repro_serve_batch_points", edges=SIZE_EDGES
                ).observe(len(live))
                metrics.histogram(
                    "repro_serve_batch_seconds", edges=LATENCY_EDGES
                ).observe(elapsed)
                now = time.perf_counter()
                latency = metrics.histogram(
                    "repro_serve_latency_seconds", edges=LATENCY_EDGES
                )
                for request in live:
                    latency.observe(now - request.submitted)
                metrics.gauge("repro_serve_inflight").set(self._pending)

    def _release_request(self, request: _PendingRequest) -> None:
        """Refund a request that provably never sampled.  Caller holds
        the lock."""
        if request.user_id in self._reserved:
            self._reserved[request.user_id] -= 1
        self._pending -= 1
        if self._ledger is not None and request.entry_id is not None:
            try:
                self._ledger.release(request.entry_id)
            except LedgerError:
                # never kill the dispatcher over journal bookkeeping;
                # an unreleased reservation replays as spent, which is
                # the fail-closed direction
                if self._obs.enabled:
                    self._obs.metrics.counter(
                        "repro_serve_ledger_errors_total"
                    ).inc()

    def _settle_request(self, request: _PendingRequest) -> None:
        """Commit a request whose budget is finally spent (delivered,
        or failed after sampling may have begun).  Caller holds the
        lock."""
        self._reserved[request.user_id] -= 1
        self._pending -= 1
        if self._ledger is not None and request.entry_id is not None:
            try:
                self._ledger.commit(request.entry_id)
            except LedgerError:
                if self._obs.enabled:
                    self._obs.metrics.counter(
                        "repro_serve_ledger_errors_total"
                    ).inc()
