"""The mechanism arena: a frozen compiled walk, mapped at zero copy.

The multi-worker serving tier (:mod:`repro.serve.pool`) needs every
worker process to sample from the *same* warmed mechanism without N
copies of the per-level CDF arenas in memory.  PR 8's
:class:`~repro.core.kernel.CompiledWalk` is already the right artifact
— flat numpy arrays, no Python object graph — so freezing it is just a
matter of putting those arrays somewhere every process can map
read-only.

:class:`MechanismArena` does that with a directory of ``.npy`` files
(one per array of :meth:`CompiledWalk.to_arrays`) plus a checksummed
``manifest.json``:

* :meth:`MechanismArena.freeze` writes each array with ``np.save``
  (fsync'd), then publishes the manifest atomically (tmp file →
  ``os.replace`` → directory fsync, the store's discipline) — a reader
  never observes a half-written arena;
* :meth:`MechanismArena.open` maps every array back with
  ``np.load(..., mmap_mode="r")``.  The OS page cache backs all
  mappings of the same file with the same physical pages, so N workers
  opening one arena share one copy of the CDF arenas — this is the
  zero-copy contract.  The mapping is read-only at the ``mmap`` level:
  a worker *cannot* corrupt the mechanism for its peers;
* every file's SHA-256 is recorded in the manifest and verified on
  open (one sequential read; the arrays are small next to the datasets
  they protect), so a torn copy or bit rot fails loudly at worker
  startup instead of skewing the sampled distribution.

Scalar metadata (``budgets``, ``n_cdf_levels``) lives in the manifest
rather than as 0-d ``.npy`` files, and :meth:`MechanismArena.compiled`
rebuilds a :class:`CompiledWalk` through the ordinary
:meth:`~repro.core.kernel.CompiledWalk.from_arrays` path — the dtype
round trip is exact, so the rebuilt walk keeps referencing the mapped
pages instead of copying them.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.core.kernel import CompiledWalk
from repro.core.ledger import fsync_directory
from repro.exceptions import ServeError

#: Manifest format version.
ARENA_FORMAT = 1

#: ``to_arrays`` keys that are scalar metadata, not mappable arrays.
_META_KEYS = ("budgets", "n_cdf_levels")

MANIFEST_NAME = "manifest.json"


class ArenaError(ServeError):
    """A mechanism arena is missing, torn, or fails verification."""

    def __init__(self, message: str):
        super().__init__(message, reason="arena")


def _file_sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class MechanismArena:
    """A read-only, mmap-backed snapshot of one compiled walk.

    Construct via :meth:`freeze` (writer side) or :meth:`open` (worker
    side); :meth:`compiled` hands back the walk with every large array
    still referencing the mapped file pages.
    """

    def __init__(
        self,
        directory: Path,
        manifest: dict,
        arrays: dict[str, np.ndarray],
    ):
        self._directory = directory
        self._manifest = manifest
        self._arrays = arrays

    # ------------------------------------------------------------------
    # writer side
    # ------------------------------------------------------------------
    @classmethod
    def freeze(
        cls, compiled: CompiledWalk, directory: str | Path
    ) -> "MechanismArena":
        """Persist ``compiled`` into ``directory`` and return it mapped.

        The manifest is written last and atomically, so a concurrent
        (or crashed) freeze can never publish a partial arena: either
        :meth:`open` finds a manifest whose checksums all verify, or it
        finds no arena at all.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        flat = compiled.to_arrays()
        entries: dict[str, dict] = {}
        for key, value in flat.items():
            if key in _META_KEYS:
                continue
            target = directory / f"{key}.npy"
            with open(target, "wb") as fh:
                np.save(fh, np.asarray(value))
                fh.flush()
                os.fsync(fh.fileno())
            entries[key] = {
                "sha256": _file_sha256(target),
                "bytes": target.stat().st_size,
            }
        manifest = {
            "format": ARENA_FORMAT,
            "arrays": entries,
            "meta": {
                "budgets": [float(b) for b in compiled.budgets],
                "n_cdf_levels": len(compiled.cdf_levels),
            },
            "n_nodes": compiled.n_nodes,
            "n_levels": compiled.n_levels,
            "nbytes": compiled.nbytes,
            "bounds": [
                float(compiled.min_x[0]),
                float(compiled.min_y[0]),
                float(compiled.max_x[0]),
                float(compiled.max_y[0]),
            ],
            "cache_version": int(compiled.cache_version),
        }
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-manifest-")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(manifest, fh, indent=2, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, directory / MANIFEST_NAME)
            fsync_directory(directory)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return cls.open(directory, verify=False)

    # ------------------------------------------------------------------
    # reader side
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls, directory: str | Path, verify: bool = True
    ) -> "MechanismArena":
        """Map an arena read-only; verify every file against the
        manifest unless ``verify=False`` (the freezer just hashed them).

        Raises :class:`ArenaError` on a missing manifest, an unreadable
        manifest, a missing array file, or a checksum mismatch — an
        unverifiable arena must never serve.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise ArenaError(f"no arena manifest at {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ArenaError(
                f"unreadable arena manifest {manifest_path}: {exc}"
            ) from exc
        if not isinstance(manifest, dict) or manifest.get("format") != ARENA_FORMAT:
            raise ArenaError(
                f"arena manifest {manifest_path} has unsupported format "
                f"{manifest.get('format')!r}"
            )
        arrays: dict[str, np.ndarray] = {}
        for key, entry in manifest.get("arrays", {}).items():
            target = directory / f"{key}.npy"
            if not target.exists():
                raise ArenaError(f"arena array missing: {target}")
            if verify and _file_sha256(target) != entry.get("sha256"):
                raise ArenaError(
                    f"arena array {target} fails its manifest checksum "
                    f"(torn copy or bit rot); refusing to serve from it"
                )
            try:
                arrays[key] = np.load(target, mmap_mode="r")
            except (OSError, ValueError) as exc:
                raise ArenaError(
                    f"cannot map arena array {target}: {exc}"
                ) from exc
        return cls(directory, manifest, arrays)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def n_nodes(self) -> int:
        return int(self._manifest["n_nodes"])

    @property
    def n_levels(self) -> int:
        return int(self._manifest["n_levels"])

    @property
    def nbytes(self) -> int:
        """Total bytes of the frozen arrays (one copy machine-wide)."""
        return int(self._manifest["nbytes"])

    @property
    def bounds(self) -> tuple[float, float, float, float]:
        """The served domain as ``(min_x, min_y, max_x, max_y)``."""
        b = self._manifest["bounds"]
        return (float(b[0]), float(b[1]), float(b[2]), float(b[3]))

    def contains(self, x: float, y: float) -> bool:
        """Whether ``(x, y)`` lies inside the served domain."""
        min_x, min_y, max_x, max_y = self.bounds
        return min_x <= x <= max_x and min_y <= y <= max_y

    def compiled(self) -> CompiledWalk:
        """The frozen walk, its large arrays backed by the mapping."""
        flat: dict[str, np.ndarray] = dict(self._arrays)
        meta = self._manifest["meta"]
        flat["budgets"] = np.asarray(meta["budgets"], dtype=float)
        flat["n_cdf_levels"] = np.asarray(
            int(meta["n_cdf_levels"]), dtype=np.int64
        )
        walk = CompiledWalk.from_arrays(flat)
        walk.cache_version = int(self._manifest.get("cache_version", 0))
        return walk
