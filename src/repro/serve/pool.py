"""Multi-worker serving: N processes, one arena, sharded budgets.

:class:`~repro.serve.server.SanitizationServer` serves every user from
one dispatcher thread in one process — correct, but capped at a single
core.  :class:`ServingPool` scales that design across processes while
keeping both of its invariants intact:

**One mechanism, zero copies.**  The warmed mechanism is frozen once
into a :class:`~repro.serve.arena.MechanismArena` (the compiled walk's
flat arrays under an mmap), and every worker process maps it
read-only.  The OS page cache backs all mappings with the same
physical pages, so memory cost is one arena regardless of worker
count, and no worker can mutate the mechanism out from under its
peers.

**Each user's budget lives in exactly one worker.**  Requests route by
:func:`shard_for_user` — a *stable, pure* function of the user id and
the worker count (SHA-256 of the id, mod workers; no process-seeded
``hash()``).  All of a user's requests therefore serialise through one
worker's :class:`ShardBudgetBook`, whose admission arithmetic is the
same :class:`~repro.privacy.composition.BudgetAccountant` the serial
session uses — there is no cross-process budget race because there is
no cross-process budget *sharing*.  With a ledger directory, each
shard journals reserve → sample → commit into its own
:class:`~repro.core.ledger.BudgetLedger` file, so a crashed (even
SIGKILLed) worker is respawned and replays its own journal: its
shard's spend is restored fail-closed, and no other shard is touched.

The front half stays the micro-batching dispatcher: one feeder thread
per shard coalesces submissions into batches (window / max-batch
bounded, exactly the server's policy), ships them over a pipe, and
resolves :class:`concurrent.futures.Future`\\ s from the worker's
reply.  Pipes are per-incarnation — a respawned worker gets fresh ones
— so a SIGKILL mid-``recv`` can never poison a shared queue lock.

Statistics obey a merge algebra: per-shard :class:`ServerStats` and
per-worker metrics snapshots fold associatively and commutatively
(:meth:`ServerStats.merge`,
:meth:`~repro.obs.metrics.MetricsSnapshot.merge`), so pool-wide totals
are order-independent — the same contract as
:class:`~repro.core.engine.ShardedExecution`'s shard merges.

Privacy: batching and sharding only *schedule* independent
Algorithm-1 walks; each worker draws from its own
:class:`numpy.random.Generator` (seeded via ``SeedSequence`` spawn
keys, one stream per worker incarnation), so the sampled distribution
is the mechanism's — held to the direct path by a chi-square
equivalence test — and the per-user GeoInd spend is enforced by the
shard's accountant exactly as in the serial path.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import queue
import tempfile
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from pathlib import Path

import numpy as np

from repro.exceptions import BudgetError, LedgerError, ServeError
from repro.geo.point import Point
from repro.obs import LATENCY_EDGES, NOOP, SIZE_EDGES, Observability
from repro.privacy.composition import BudgetAccountant
from repro.core.ledger import BudgetLedger, LedgerReplay, replay_many
from repro.core.session import SessionReport
from repro.serve.arena import MechanismArena
from repro.serve.server import ServerConfig, ServerStats

__all__ = [
    "ServingPool",
    "ShardBudgetBook",
    "shard_for_user",
    "shard_journal_path",
]


def shard_for_user(user_id: str, n_shards: int) -> int:
    """The shard owning ``user_id``'s budget, in ``[0, n_shards)``.

    A stable *pure* function of exactly ``(user_id, n_shards)``:
    SHA-256 of the UTF-8 id, first 8 bytes big-endian, mod the shard
    count.  Deliberately not Python's ``hash()`` (salted per process)
    and not dependent on any ambient state — every frontend, worker,
    restart, and replay tool must agree on the owner, forever, or a
    user's budget could be double-tracked across two shards.
    """
    if n_shards < 1:
        raise ServeError(
            f"shard count must be >= 1, got {n_shards}", reason="config"
        )
    digest = hashlib.sha256(user_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


def shard_journal_path(directory: str | Path, shard: int) -> Path:
    """Where shard ``shard``'s budget journal lives under ``directory``."""
    return Path(directory) / f"shard-{shard:03d}.journal"


class ShardBudgetBook:
    """One shard's per-user budget accounting (worker-process side).

    The same arithmetic as :class:`~repro.core.session.SanitizationSession`
    — one :class:`~repro.privacy.composition.BudgetAccountant` per user
    — plus the server's reserve → sample → commit ledger protocol.  On
    construction with a ledger, replayed spend (committed *and* orphaned
    reservations — fail closed) is restored into the accountants before
    any request is admitted, and orphans are settled as final spend.

    Not thread-safe: a shard worker processes batches serially, which
    is exactly why per-user admission here has no race to close.
    """

    def __init__(
        self,
        lifetime_epsilon: float,
        per_report_epsilon: float,
        ledger: BudgetLedger | None = None,
    ):
        if per_report_epsilon <= 0:
            raise BudgetError(
                f"per-report budget must be positive, got {per_report_epsilon}"
            )
        if per_report_epsilon > lifetime_epsilon:
            raise BudgetError(
                f"per-report budget {per_report_epsilon} exceeds lifetime "
                f"budget {lifetime_epsilon}"
            )
        self._lifetime = float(lifetime_epsilon)
        self._per_report = float(per_report_epsilon)
        self._ledger = ledger
        self._accounts: dict[str, BudgetAccountant] = {}
        self._reports: dict[str, int] = {}
        # reservations admitted but not yet settled — several requests
        # for one user can share a batch, and admission must count the
        # earlier ones or the batch overdrafts at settle time (the same
        # race the server closes with its reservation counts)
        self._outstanding: dict[str, int] = {}
        self.replayed_users = 0
        self.replayed_epsilon = 0.0
        self.ledger_errors = 0
        if ledger is not None:
            replayed = ledger.spent_by_user()
            for user in sorted(replayed):
                epsilon = replayed[user]
                if epsilon <= 0:
                    continue
                self._account(user).restore(epsilon, label="ledger-replay")
                self.replayed_users += 1
                self.replayed_epsilon += epsilon
            for entry_id in sorted(ledger.open_reservations()):
                ledger.commit(entry_id)

    @property
    def per_report_epsilon(self) -> float:
        return self._per_report

    @property
    def users(self) -> int:
        return len(self._accounts)

    def _account(self, user: str) -> BudgetAccountant:
        account = self._accounts.get(user)
        if account is None:
            account = BudgetAccountant(total=self._lifetime)
            self._accounts[user] = account
        return account

    def spent_for(self, user: str) -> float:
        return self._account(user).spent

    def remaining_for(self, user: str) -> float:
        return self._account(user).remaining

    def reports_for(self, user: str) -> int:
        return self._reports.get(user, 0)

    def can_admit(self, user: str) -> bool:
        account = self._account(user)
        return account.affordable(self._per_report) > self._outstanding.get(
            user, 0
        )

    def admit(self, user: str) -> str | None:
        """Admission-check ``user`` and journal the reservation.

        The check counts the user's *outstanding* reservations on top
        of settled spend, so admitting N same-user requests into one
        batch can never overdraft at settle time.  Returns the ledger
        entry id (None without a ledger); the reservation is durable
        before this returns, so the caller may sample afterwards
        knowing a crash replays the spend.
        """
        account = self._account(user)
        outstanding = self._outstanding.get(user, 0)
        if account.affordable(self._per_report) <= outstanding:
            raise BudgetError(
                f"user {user!r}: lifetime budget cannot cover another "
                f"report (remaining {account.remaining:.4g}, "
                f"{outstanding} reserved, per-report "
                f"{self._per_report:.4g})"
            )
        entry_id = None
        if self._ledger is not None:
            entry_id = self._ledger.reserve(user, self._per_report)
        self._outstanding[user] = outstanding + 1
        return entry_id

    def settle(self, user: str, entry_id: str | None) -> int:
        """Spend one delivered report; returns its per-user sequence."""
        sequence = self._reports.get(user, 0)
        self._account(user).spend(
            self._per_report, label=f"report-{sequence}"
        )
        self._reports[user] = sequence + 1
        self._close_reservation(user)
        self._commit(entry_id)
        return sequence

    def charge_failure(self, user: str, entry_id: str | None) -> None:
        """Fail closed: the walk may have drawn before failing."""
        self._account(user).restore(
            self._per_report, label="failed-report"
        )
        self._close_reservation(user)
        self._commit(entry_id)

    def release(self, user: str, entry_id: str | None) -> None:
        """Refund a reservation that provably never sampled."""
        self._close_reservation(user)
        if self._ledger is None or entry_id is None:
            return
        try:
            self._ledger.release(entry_id)
        except LedgerError:
            self.ledger_errors += 1

    def _close_reservation(self, user: str) -> None:
        count = self._outstanding.get(user, 0)
        if count <= 1:
            self._outstanding.pop(user, None)
        else:
            self._outstanding[user] = count - 1

    def _commit(self, entry_id: str | None) -> None:
        if self._ledger is None or entry_id is None:
            return
        try:
            self._ledger.commit(entry_id)
        except LedgerError:
            # an uncommitted reservation replays as spent — the
            # fail-closed direction; never kill the worker over it
            self.ledger_errors += 1


# ----------------------------------------------------------------------
# the worker process
# ----------------------------------------------------------------------
def _run_pool_batch(
    walk, book: ShardBudgetBook, rng: np.random.Generator, obs, items
) -> list[tuple]:
    """Admit, sample, and settle one batch inside a worker.

    ``items`` is ``[(user_id, x, y), ...]``; the return value is one
    outcome tuple per item, aligned:

    * ``("ok", seq, px, py, spent, remaining)`` — delivered;
    * ``("budget", message)`` — refused before sampling (no spend);
    * ``("failed", message)`` — the walk raised after reservations were
      durable; every admitted request is charged (fail closed).
    """
    outcomes: list[tuple | None] = [None] * len(items)
    admitted: list[tuple[int, str, str | None]] = []
    coords: list[tuple[float, float]] = []
    for slot, (user, x, y) in enumerate(items):
        try:
            entry_id = book.admit(user)
        except BudgetError as exc:
            outcomes[slot] = ("budget", str(exc))
            if obs.enabled:
                obs.metrics.counter(
                    "repro_pool_worker_budget_rejections_total"
                ).inc()
            continue
        admitted.append((slot, user, entry_id))
        coords.append((x, y))
    if admitted:
        start = time.perf_counter()
        try:
            final_ids, _ = walk.walk_arrays(
                np.asarray(coords, dtype=float), rng
            )
        except Exception as exc:  # noqa: BLE001 - fail the batch closed
            message = f"{type(exc).__name__}: {exc}"
            for slot, user, entry_id in admitted:
                book.charge_failure(user, entry_id)
                outcomes[slot] = ("failed", message)
        else:
            px = walk.center_x[final_ids]
            py = walk.center_y[final_ids]
            for k, (slot, user, entry_id) in enumerate(admitted):
                sequence = book.settle(user, entry_id)
                outcomes[slot] = (
                    "ok",
                    sequence,
                    float(px[k]),
                    float(py[k]),
                    book.per_report_epsilon,
                    book.remaining_for(user),
                )
            if obs.enabled:
                elapsed = time.perf_counter() - start
                metrics = obs.metrics
                metrics.counter("repro_pool_worker_batches_total").inc()
                metrics.counter("repro_pool_worker_points_total").inc(
                    len(admitted)
                )
                metrics.histogram(
                    "repro_pool_worker_batch_points", edges=SIZE_EDGES
                ).observe(len(admitted))
                metrics.histogram(
                    "repro_pool_worker_walk_seconds", edges=LATENCY_EDGES
                ).observe(elapsed)
    return [
        outcome
        if outcome is not None
        else ("failed", "internal: request produced no outcome")
        for outcome in outcomes
    ]


def _pool_worker_main(
    worker_id: int,
    arena_dir: str,
    config: ServerConfig,
    ledger_path: str | None,
    seed_seq: np.random.SeedSequence,
    collect_metrics: bool,
    conn_req,
    conn_resp,
) -> None:
    """Worker process entry: map the arena, serve batches until told
    to stop.  Module-level (picklable) so ``spawn`` contexts work."""
    ledger = None
    try:
        arena = MechanismArena.open(arena_dir)
        walk = arena.compiled()
        obs = (
            Observability.collecting(trace=False)
            if collect_metrics
            else NOOP
        )
        if ledger_path is not None:
            ledger = BudgetLedger(ledger_path, obs=obs)
        book = ShardBudgetBook(
            config.lifetime_epsilon,
            config.per_report_epsilon,
            ledger=ledger,
        )
        rng = np.random.default_rng(seed_seq)
    except Exception as exc:  # noqa: BLE001 - surfaced to the frontend
        try:
            conn_resp.send(("init-error", f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError):
            pass
        return
    if obs.enabled:
        obs.metrics.gauge("repro_pool_worker_replayed_epsilon").set(
            book.replayed_epsilon
        )
    conn_resp.send(
        (
            "ready",
            {
                "worker_id": worker_id,
                "pid": os.getpid(),
                "n_nodes": arena.n_nodes,
                "arena_bytes": arena.nbytes,
                "replayed_users": book.replayed_users,
                "replayed_epsilon": book.replayed_epsilon,
            },
        )
    )
    try:
        while True:
            try:
                message = conn_req.recv()
            except (EOFError, OSError):
                return
            op = message[0]
            if op == "stop":
                snapshot = obs.snapshot() if obs.enabled else None
                try:
                    conn_resp.send(("stopped", snapshot))
                except (OSError, ValueError):
                    pass
                return
            if op == "snapshot":
                snapshot = obs.snapshot() if obs.enabled else None
                conn_resp.send(
                    (
                        "snapshot",
                        message[1],
                        snapshot,
                        {
                            "users": book.users,
                            "ledger_errors": book.ledger_errors,
                        },
                    )
                )
                continue
            if op == "batch":
                _, batch_id, items = message
                outcomes = _run_pool_batch(walk, book, rng, obs, items)
                conn_resp.send(("batch", batch_id, outcomes))
    finally:
        if ledger is not None:
            ledger.close()


# ----------------------------------------------------------------------
# the frontend
# ----------------------------------------------------------------------
class _PoolRequest:
    """One in-flight pool request and its rendezvous future."""

    __slots__ = ("user_id", "x", "submitted", "future", "deadline", "abandoned")

    def __init__(self, user_id: str, x: Point, deadline: float | None):
        self.user_id = user_id
        self.x = x
        self.submitted = time.perf_counter()
        self.future: Future = Future()
        self.deadline = deadline
        self.abandoned = False

    def abandon(self) -> None:
        self.abandoned = True

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline


class _SnapshotTicket:
    """A stats/metrics rendezvous routed through a shard's feeder."""

    __slots__ = ("future",)

    def __init__(self):
        self.future: Future = Future()


class _ShardHandle:
    """One shard: its worker process (current incarnation), pipes,
    feeder thread, and stats.  Owned by a :class:`ServingPool`."""

    def __init__(self, pool: "ServingPool", shard_id: int):
        self.pool = pool
        self.shard_id = shard_id
        self.inbox: queue.Queue = queue.Queue()
        self.stats = ServerStats()
        self.users: set[str] = set()
        self.proc = None
        self.req_conn = None
        self.resp_conn = None
        self.thread: threading.Thread | None = None
        self.final_snapshot = None
        self._incarnation = 0
        self._batch_seq = 0
        self._token_seq = 0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        self._spawn()
        self.thread = threading.Thread(
            target=self._loop,
            name=f"repro-pool-shard-{self.shard_id}",
            daemon=True,
        )
        self.thread.start()

    def _spawn(self) -> None:
        """Launch a fresh incarnation: new pipes, new process, wait
        for its ready handshake (which includes the ledger replay)."""
        pool = self.pool
        ctx = pool._ctx
        req_recv, req_send = ctx.Pipe(duplex=False)
        resp_recv, resp_send = ctx.Pipe(duplex=False)
        seed_seq = np.random.SeedSequence(
            entropy=pool._seed_root.entropy,
            spawn_key=(self.shard_id, self._incarnation),
        )
        proc = ctx.Process(
            target=_pool_worker_main,
            args=(
                self.shard_id,
                str(pool._arena.directory),
                pool._config,
                pool._ledger_path(self.shard_id),
                seed_seq,
                pool._collect_worker_metrics,
                req_recv,
                resp_send,
            ),
            name=f"repro-pool-worker-{self.shard_id}",
            daemon=True,
        )
        proc.start()
        # close the child's pipe ends in the parent so a dead child
        # yields EOF instead of a hang
        req_recv.close()
        resp_send.close()
        self.proc = proc
        self.req_conn = req_send
        self.resp_conn = resp_recv
        deadline = time.monotonic() + pool._spawn_timeout
        while True:
            if self.resp_conn.poll(0.1):
                try:
                    message = self.resp_conn.recv()
                except (EOFError, OSError):
                    message = None
                if message is not None and message[0] == "ready":
                    info = message[1]
                    with pool._lock:
                        # the latest incarnation's replay subsumes all
                        # earlier ones (same journal), so overwrite
                        self.stats.replayed_users = int(
                            info["replayed_users"]
                        )
                        self.stats.replayed_epsilon = float(
                            info["replayed_epsilon"]
                        )
                    return
                if message is not None and message[0] == "init-error":
                    raise ServeError(
                        f"shard {self.shard_id} worker failed to "
                        f"initialise: {message[1]}",
                        reason="worker-init",
                    )
            if not proc.is_alive():
                raise ServeError(
                    f"shard {self.shard_id} worker died during startup "
                    f"(exit code {proc.exitcode})",
                    reason="worker-init",
                )
            if time.monotonic() > deadline:
                proc.terminate()
                raise ServeError(
                    f"shard {self.shard_id} worker did not become ready "
                    f"within {pool._spawn_timeout:.0f}s",
                    reason="worker-init",
                )

    def _respawn(self) -> None:
        """Replace a dead incarnation; its shard ledger replays in the
        new worker, restoring the shard's spend fail-closed."""
        for conn in (self.req_conn, self.resp_conn):
            try:
                conn.close()
            except (OSError, AttributeError):
                pass
        if self.proc is not None:
            self.proc.join(timeout=5.0)
        self._incarnation += 1
        self._spawn()
        with self.pool._lock:
            self.stats.respawns += 1
        if self.pool._obs.enabled:
            self.pool._obs.metrics.counter(
                "repro_pool_respawns_total"
            ).inc()

    # -- the feeder loop -----------------------------------------------
    def _loop(self) -> None:
        stop = False
        while not stop:
            try:
                item = self.inbox.get(timeout=0.1)
            except queue.Empty:
                continue
            if item is None:
                break
            if isinstance(item, _SnapshotTicket):
                self._roundtrip_snapshot(item)
                continue
            batch = [item]
            snapshot_after: _SnapshotTicket | None = None
            window_end = (
                time.perf_counter() + self.pool._config.coalesce_window
            )
            while len(batch) < self.pool._config.max_batch:
                remaining = window_end - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    nxt = self.inbox.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is None:
                    stop = True
                    break
                if isinstance(nxt, _SnapshotTicket):
                    snapshot_after = nxt
                    break
                batch.append(nxt)
            self._dispatch(batch)
            if snapshot_after is not None:
                self._roundtrip_snapshot(snapshot_after)
        self._finalize()

    def _dispatch(self, batch: list[_PoolRequest]) -> None:
        now = time.monotonic()
        live: list[_PoolRequest] = []
        for request in batch:
            if request.abandoned or request.expired(now):
                with self.pool._lock:
                    self.stats.abandoned += 1
                self.pool._finish(request)
                request.future.set_exception(
                    ServeError(
                        f"request for {request.user_id!r} abandoned "
                        f"before dispatch (caller deadline elapsed)",
                        reason="abandoned",
                    )
                )
            else:
                live.append(request)
        if not live:
            return
        payload = [(r.user_id, r.x.x, r.x.y) for r in live]
        self._batch_seq += 1
        batch_id = self._batch_seq
        start = time.perf_counter()
        outcomes = None
        for _attempt in range(2):
            try:
                self.req_conn.send(("batch", batch_id, payload))
            except (OSError, ValueError):
                # nothing reached the worker: safe to respawn and
                # resend (no reservation, no sample)
                self._respawn()
                continue
            outcomes = self._await_batch(batch_id)
            if outcomes is not None:
                break
            # the worker died holding this batch: its journalled
            # reservations replay as spend in the respawned worker
            # (fail closed); the requests themselves fail
            self._fail_batch(live)
            self._respawn()
            return
        if outcomes is None:
            self._fail_batch(live)
            return
        self._complete(live, outcomes, time.perf_counter() - start)

    def _await_batch(self, batch_id: int) -> list | None:
        """The worker's reply for ``batch_id``, or None if it died."""
        while True:
            try:
                if self.resp_conn.poll(0.05):
                    message = self.resp_conn.recv()
                    if message[0] == "batch" and message[1] == batch_id:
                        return message[2]
                    continue  # stale reply from a previous incarnation
            except (EOFError, OSError):
                return None
            if not self.proc.is_alive():
                # drain replies that raced the death
                try:
                    while self.resp_conn.poll(0):
                        message = self.resp_conn.recv()
                        if (
                            message[0] == "batch"
                            and message[1] == batch_id
                        ):
                            return message[2]
                except (EOFError, OSError):
                    pass
                return None

    def _fail_batch(self, live: list[_PoolRequest]) -> None:
        with self.pool._lock:
            self.stats.failed += len(live)
        error = ServeError(
            f"shard {self.shard_id} worker crashed mid-batch; its "
            f"journalled reservations replay as spent (fail closed)",
            reason="worker-crashed",
        )
        for request in live:
            self.pool._finish(request)
            request.future.set_exception(error)

    def _complete(
        self, live: list[_PoolRequest], outcomes: list, elapsed: float
    ) -> None:
        pool = self.pool
        with pool._lock:
            self.stats.batches += 1
            self.stats.coalesced += len(live) - 1
            self.stats.max_batch_points = max(
                self.stats.max_batch_points, len(live)
            )
        now = time.perf_counter()
        latencies = []
        for request, outcome in zip(live, outcomes):
            pool._finish(request)
            kind = outcome[0]
            if kind == "ok":
                _, sequence, px, py, spent, remaining = outcome
                report = SessionReport(
                    sequence=sequence,
                    actual=request.x,
                    reported=Point(px, py),
                    epsilon_spent=spent,
                    epsilon_remaining=remaining,
                )
                with pool._lock:
                    self.stats.completed += 1
                latencies.append(now - request.submitted)
                request.future.set_result(report)
            elif kind == "budget":
                with pool._lock:
                    self.stats.rejected_budget += 1
                request.future.set_exception(BudgetError(outcome[1]))
            else:
                with pool._lock:
                    self.stats.failed += 1
                request.future.set_exception(
                    ServeError(outcome[1], reason="walk")
                )
        if pool._obs.enabled:
            metrics = pool._obs.metrics
            metrics.counter("repro_pool_batches_total").inc()
            metrics.counter("repro_pool_coalesced_total").inc(
                len(live) - 1
            )
            metrics.histogram(
                "repro_pool_batch_points", edges=SIZE_EDGES
            ).observe(len(live))
            metrics.histogram(
                "repro_pool_batch_seconds", edges=LATENCY_EDGES
            ).observe(elapsed)
            latency = metrics.histogram(
                "repro_pool_latency_seconds", edges=LATENCY_EDGES
            )
            for value in latencies:
                latency.observe(value)

    def _roundtrip_snapshot(self, ticket: _SnapshotTicket) -> None:
        self._token_seq += 1
        token = self._token_seq
        try:
            self.req_conn.send(("snapshot", token))
        except (OSError, ValueError):
            self._respawn()
            ticket.future.set_result(None)
            return
        while True:
            try:
                if self.resp_conn.poll(0.05):
                    message = self.resp_conn.recv()
                    if message[0] == "snapshot" and message[1] == token:
                        ticket.future.set_result(message[2])
                        return
                    continue
            except (EOFError, OSError):
                break
            if not self.proc.is_alive():
                break
        self._respawn()
        ticket.future.set_result(None)

    def _finalize(self) -> None:
        """Drain the inbox fail-closed and stop the worker cleanly."""
        while True:
            try:
                item = self.inbox.get_nowait()
            except queue.Empty:
                break
            if item is None:
                continue
            if isinstance(item, _SnapshotTicket):
                item.future.set_result(None)
                continue
            self.pool._finish(item)
            item.future.set_exception(
                ServeError("serving pool stopped", reason="stopped")
            )
        try:
            self.req_conn.send(("stop",))
        except (OSError, ValueError):
            pass
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                if self.resp_conn.poll(0.05):
                    message = self.resp_conn.recv()
                    if message[0] == "stopped":
                        self.final_snapshot = message[1]
                        break
                    continue
            except (EOFError, OSError):
                break
            if not self.proc.is_alive():
                break
        if self.proc is not None:
            self.proc.join(timeout=5.0)
            if self.proc.is_alive():
                self.proc.terminate()
                self.proc.join(timeout=5.0)
        for conn in (self.req_conn, self.resp_conn):
            try:
                conn.close()
            except (OSError, AttributeError):
                pass


class ServingPool:
    """Serve concurrent sanitisation requests across worker processes.

    Parameters
    ----------
    arena:
        A :class:`~repro.serve.arena.MechanismArena` (or its directory)
        every worker maps read-only at zero copy.
    config:
        The same :class:`~repro.serve.server.ServerConfig` envelope as
        the in-process server; ``coalesce_window`` / ``max_batch``
        apply *per shard*, ``max_pending`` pool-wide.
    workers:
        Number of worker processes (= budget shards).  On a single
        core the pool still serves correctly — the workers time-slice —
        but the throughput win needs real cores; the load benchmark
        records ``cpu_count`` so the regime is always explicit.
    ledger_dir:
        Directory for per-shard budget journals (crash safety).  Each
        shard owns ``shard-NNN.journal``; a respawned worker replays
        only its own file.
    obs / seed / start_method:
        Frontend observability handle, RNG root seed (worker streams
        are spawned from it per shard *and* per incarnation), and an
        explicit multiprocessing start method (defaults to ``fork``
        where available, else ``spawn``).

    Usage::

        with ServingPool.build(prior, config, workers=4,
                               arena_dir=tmp) as pool:
            report = pool.report("user-1", Point(3.2, 7.9))
    """

    def __init__(
        self,
        arena: MechanismArena | str | Path,
        config: ServerConfig,
        workers: int = 2,
        ledger_dir: str | Path | None = None,
        obs: Observability | None = None,
        seed: int | None = None,
        start_method: str | None = None,
        spawn_timeout: float = 120.0,
        collect_worker_metrics: bool | None = None,
    ):
        if workers < 1:
            raise ServeError(
                f"a serving pool needs >= 1 worker, got {workers}",
                reason="config",
            )
        if config.per_report_epsilon <= 0:
            raise BudgetError(
                f"per-report budget must be positive, "
                f"got {config.per_report_epsilon}"
            )
        if config.max_batch < 1:
            raise ServeError(
                f"max_batch must be >= 1, got {config.max_batch}"
            )
        if not isinstance(arena, MechanismArena):
            arena = MechanismArena.open(arena)
        self._arena = arena
        self._config = config
        self._workers = int(workers)
        self._obs = obs if obs is not None else NOOP
        self._ledger_dir = (
            Path(ledger_dir) if ledger_dir is not None else None
        )
        if self._ledger_dir is not None:
            self._ledger_dir.mkdir(parents=True, exist_ok=True)
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self._seed_root = np.random.SeedSequence(seed)
        self._spawn_timeout = float(spawn_timeout)
        self._collect_worker_metrics = (
            self._obs.enabled
            if collect_worker_metrics is None
            else bool(collect_worker_metrics)
        )
        self._shards = [
            _ShardHandle(self, shard) for shard in range(self._workers)
        ]
        self._front = ServerStats()
        self._lock = threading.Lock()
        self._pending = 0
        self._running = False
        self._owned_tmpdir: tempfile.TemporaryDirectory | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        prior,
        config: ServerConfig,
        workers: int = 2,
        arena_dir: str | Path | None = None,
        granularity: int = 4,
        rho: float = 0.8,
        store=None,
        obs: Observability | None = None,
        seed: int | None = None,
        ledger_dir: str | Path | None = None,
        **msm_kwargs,
    ) -> "ServingPool":
        """Build, warm, freeze, and wrap a mechanism in one call.

        Builds the MSM exactly like
        :meth:`SanitizationServer.build
        <repro.serve.server.SanitizationServer.build>` (optionally warm
        from / persist to a ``store``), compiles the warmed tree, and
        freezes it into ``arena_dir`` (a pool-owned temporary directory
        when omitted, removed on :meth:`stop`).
        """
        from repro.core.msm import MultiStepMechanism
        from repro.core.store import MechanismStore
        from repro.exceptions import MechanismError

        msm = MultiStepMechanism.build(
            config.per_report_epsilon,
            granularity,
            prior,
            rho=rho,
            obs=obs,
            **msm_kwargs,
        )
        owned: tempfile.TemporaryDirectory | None = None
        if store is not None:
            if not isinstance(store, MechanismStore):
                store = MechanismStore(store)
            if obs is not None:
                store.bind_observability(obs)
            store.get_or_build(msm)
            arena = store.export_arena(
                msm,
                directory=Path(arena_dir) if arena_dir else None,
            )
        else:
            msm.precompute()
            compiled = msm.engine.compile(build=True)
            if compiled is None:
                raise MechanismError(
                    "mechanism tree is not compilable into an arena"
                )
            if arena_dir is None:
                owned = tempfile.TemporaryDirectory(prefix="repro-arena-")
                arena_dir = owned.name
            arena = MechanismArena.freeze(compiled, arena_dir)
        pool = cls(
            arena,
            config,
            workers=workers,
            ledger_dir=ledger_dir,
            obs=obs,
            seed=seed,
        )
        pool._owned_tmpdir = owned
        return pool

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingPool":
        with self._lock:
            if self._running:
                return self
            self._running = True
        try:
            for shard in self._shards:
                shard.start()
        except ServeError:
            self._running = False
            self._shutdown_shards()
            raise
        if self._obs.enabled:
            metrics = self._obs.metrics
            metrics.gauge("repro_pool_workers").set(self._workers)
            metrics.gauge("repro_pool_arena_bytes").set(self._arena.nbytes)
        return self

    def stop(self) -> None:
        with self._lock:
            if not self._running:
                return
            self._running = False
        self._shutdown_shards()
        if self._owned_tmpdir is not None:
            self._owned_tmpdir.cleanup()
            self._owned_tmpdir = None

    def _shutdown_shards(self) -> None:
        for shard in self._shards:
            shard.inbox.put(None)
        for shard in self._shards:
            if shard.thread is not None:
                shard.thread.join(timeout=30.0)
                shard.thread = None

    def __enter__(self) -> "ServingPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def arena(self) -> MechanismArena:
        return self._arena

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def observability(self) -> Observability:
        return self._obs

    def shard_for(self, user_id: str) -> int:
        """Which shard owns ``user_id`` (stable pure routing)."""
        return shard_for_user(user_id, self._workers)

    def worker_pids(self) -> list[int | None]:
        """Current worker pids by shard (for chaos tooling/tests)."""
        return [
            shard.proc.pid if shard.proc is not None else None
            for shard in self._shards
        ]

    def _ledger_path(self, shard: int) -> str | None:
        if self._ledger_dir is None:
            return None
        return str(shard_journal_path(self._ledger_dir, shard))

    def ledger_replay(self) -> LedgerReplay:
        """Fail-closed replay of every shard journal (a fresh read)."""
        if self._ledger_dir is None:
            return LedgerReplay()
        return replay_many(
            self._ledger_path(shard) for shard in range(self._workers)
        )

    # ------------------------------------------------------------------
    # the request path
    # ------------------------------------------------------------------
    def submit(
        self,
        user_id: str,
        x: Point,
        deadline: float | None = None,
    ) -> _PoolRequest:
        """Admit a request into its shard's next micro-batch.

        Domain and overload checks run here; *budget* admission runs in
        the owning worker, where the user's accountant lives — routing
        by stable hash means all of a user's requests serialise there,
        so no cross-process reservation accounting is needed.
        """
        if not self._arena.contains(x.x, x.y):
            with self._lock:
                self._front.rejected_domain += 1
            self._count_rejection("domain")
            raise ServeError(
                f"location ({x.x:.4g}, {x.y:.4g}) is outside the served "
                f"domain",
                reason="domain",
            )
        shard = shard_for_user(user_id, self._workers)
        handle = self._shards[shard]
        with self._lock:
            if not self._running:
                raise ServeError(
                    "serving pool is not running; call start()",
                    reason="stopped",
                )
            if self._pending >= self._config.max_pending:
                self._front.rejected_overload += 1
                self._count_rejection("overload")
                raise ServeError(
                    f"pending queue full ({self._config.max_pending} "
                    f"requests); shedding load",
                    reason="overload",
                )
            request = _PoolRequest(user_id, x, deadline)
            self._pending += 1
            self._front.requests += 1
            if user_id not in handle.users:
                handle.users.add(user_id)
                handle.stats.sessions = len(handle.users)
            if self._obs.enabled:
                metrics = self._obs.metrics
                metrics.counter("repro_pool_requests_total").inc()
                metrics.gauge("repro_pool_inflight").set(self._pending)
            # enqueue under the lock (same rationale as the server: a
            # racing stop() must not strand an admitted request)
            handle.inbox.put(request)
        return request

    def report(
        self, user_id: str, x: Point, timeout: float | None = 30.0
    ) -> SessionReport:
        """Blocking form of :meth:`submit` (same contract as the
        in-process server's :meth:`~SanitizationServer.report`)."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        request = self.submit(user_id, x, deadline=deadline)
        try:
            return request.future.result(timeout=timeout)
        except FutureTimeoutError:
            request.abandon()
            raise ServeError(
                f"request for {user_id!r} timed out after {timeout:.3g}s",
                reason="timeout",
            ) from None

    def _finish(self, request: _PoolRequest) -> None:
        with self._lock:
            self._pending -= 1
            pending = self._pending
        if self._obs.enabled:
            self._obs.metrics.gauge("repro_pool_inflight").set(pending)

    def _count_rejection(self, reason: str) -> None:
        if self._obs.enabled:
            self._obs.metrics.counter(
                "repro_pool_rejections_total", reason=reason
            ).inc()

    # ------------------------------------------------------------------
    # stats and metrics (the merge algebra)
    # ------------------------------------------------------------------
    def shard_stats(self) -> list[ServerStats]:
        """A consistent copy of every shard's stats."""
        with self._lock:
            return [
                ServerStats(**shard.stats.as_dict())
                for shard in self._shards
            ]

    def stats(self) -> ServerStats:
        """Pool-wide totals: the frontend's counters merged with every
        shard's, via the associative :meth:`ServerStats.merge`."""
        with self._lock:
            merged = ServerStats(**self._front.as_dict())
            snapshots = [
                ServerStats(**shard.stats.as_dict())
                for shard in self._shards
            ]
        for snapshot in snapshots:
            merged = merged.merge(snapshot)
        return merged

    def worker_snapshots(self, timeout: float = 30.0) -> list:
        """Each live worker's metrics snapshot (None for workers run
        without metrics collection or lost mid-roundtrip)."""
        tickets = []
        for shard in self._shards:
            ticket = _SnapshotTicket()
            shard.inbox.put(ticket)
            tickets.append(ticket)
        return [
            ticket.future.result(timeout=timeout) for ticket in tickets
        ]

    def collect_metrics(self):
        """Merge every worker's registry snapshot into the frontend's
        (the obs merge algebra) and return the combined snapshot."""
        snapshots = [
            snapshot
            for snapshot in self.worker_snapshots()
            if snapshot is not None
        ]
        if not self._obs.enabled:
            return snapshots
        for snapshot in snapshots:
            self._obs.metrics.merge(snapshot)
        return self._obs.metrics.snapshot()
