"""Synthetic city road graphs.

The road-network scenario (ROADMAP item 3, "Geo-Graph-
Indistinguishability", Takagi et al.) needs a reproducible city to run
on.  :func:`synthetic_city` generates one in the style of a downtown
street grid: jittered block intersections, four-neighbour streets whose
weights are their planar length inflated by a random traffic factor,
and a random subset of streets removed — except that a random spanning
tree is always protected, so the network is connected by construction
and every Dijkstra distance is finite.

:class:`RoadGraph` is the shared substrate: vertex coordinates, a CSR
adjacency matrix ready for ``scipy.sparse.csgraph``, and nearest-vertex
snapping (a cKDTree), which is how planar API points are mapped onto
the network by the metric and the partition index.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components
from scipy.spatial import cKDTree

from repro.exceptions import GridError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point


class RoadGraph:
    """An undirected, connected, positively weighted road network.

    Parameters
    ----------
    coords:
        ``(n, 2)`` planar vertex coordinates in km.
    edges:
        ``(m, 2)`` integer vertex-id pairs (undirected; one row per
        street, symmetrised internally).
    weights:
        ``(m,)`` positive travel costs in km (length x traffic factor).
    """

    def __init__(
        self, coords: np.ndarray, edges: np.ndarray, weights: np.ndarray
    ):
        coords = np.asarray(coords, dtype=float)
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        weights = np.asarray(weights, dtype=float).ravel()
        if coords.ndim != 2 or coords.shape[1] != 2 or coords.shape[0] < 2:
            raise GridError(
                f"coords must be (n >= 2, 2), got {coords.shape}"
            )
        n = coords.shape[0]
        if edges.shape[0] != weights.size:
            raise GridError(
                f"{edges.shape[0]} edges but {weights.size} weights"
            )
        if edges.size and (edges.min() < 0 or edges.max() >= n):
            raise GridError("edge endpoint out of vertex range")
        if np.any(weights <= 0) or not np.all(np.isfinite(weights)):
            raise GridError("edge weights must be positive and finite")
        self._coords = coords
        self._edges = edges
        self._weights = weights
        row = np.concatenate([edges[:, 0], edges[:, 1]])
        col = np.concatenate([edges[:, 1], edges[:, 0]])
        dat = np.concatenate([weights, weights])
        self._csr = csr_matrix((dat, (row, col)), shape=(n, n))
        n_comp, _ = connected_components(self._csr, directed=False)
        if n_comp != 1:
            raise GridError(
                f"road graph must be connected, got {n_comp} components"
            )
        self._kdtree = cKDTree(coords)
        self._bounds = BoundingBox(
            float(coords[:, 0].min()),
            float(coords[:, 1].min()),
            float(coords[:, 0].max()),
            float(coords[:, 1].max()),
        )

    @property
    def n_vertices(self) -> int:
        return self._coords.shape[0]

    @property
    def n_edges(self) -> int:
        return self._edges.shape[0]

    @property
    def coords(self) -> np.ndarray:
        """``(n, 2)`` vertex coordinates (read-only view)."""
        view = self._coords.view()
        view.flags.writeable = False
        return view

    @property
    def csr(self) -> csr_matrix:
        """Symmetric CSR adjacency matrix for ``scipy.sparse.csgraph``."""
        return self._csr

    @property
    def bounds(self) -> BoundingBox:
        """Tight envelope of the vertex coordinates."""
        return self._bounds

    def vertex_point(self, v: int) -> Point:
        """The planar location of vertex ``v``."""
        x, y = self._coords[v]
        return Point(float(x), float(y))

    def vertex_points(self) -> list[Point]:
        """All vertex locations in id order."""
        return [Point(float(x), float(y)) for x, y in self._coords]

    def nearest_vertex(self, p: Point) -> int:
        """Id of the vertex nearest to ``p`` in the plane."""
        _, idx = self._kdtree.query([p.x, p.y])
        return int(idx)

    def nearest_vertices(self, coords: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`nearest_vertex` over an ``(m, 2)`` array."""
        coords = np.asarray(coords, dtype=float).reshape(-1, 2)
        if coords.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        _, idx = self._kdtree.query(coords)
        return np.asarray(idx, dtype=np.int64)


class _UnionFind:
    """Minimal union-find for the spanning-tree protection."""

    def __init__(self, n: int):
        self._parent = list(range(n))

    def find(self, a: int) -> int:
        parent = self._parent
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self._parent[ra] = rb
        return True


def synthetic_city(
    blocks: int = 8,
    block_km: float = 0.5,
    jitter: float = 0.25,
    drop_probability: float = 0.3,
    max_weight_factor: float = 1.5,
    seed: int = 0,
) -> RoadGraph:
    """Generate a connected downtown-style street network.

    ``(blocks + 1)^2`` intersections on a jittered square grid,
    four-neighbour streets weighted by planar length times a uniform
    traffic factor in ``[1, max_weight_factor]``.  Each street outside
    a randomly chosen spanning tree is dropped with
    ``drop_probability``, so the network is irregular (shortest paths
    detour around missing streets) yet guaranteed connected.
    Deterministic in ``seed``.
    """
    if blocks < 1:
        raise GridError(f"blocks must be >= 1, got {blocks}")
    if block_km <= 0:
        raise GridError(f"block_km must be positive, got {block_km}")
    if not 0 <= jitter < 0.5:
        raise GridError(f"jitter must be in [0, 0.5), got {jitter}")
    if not 0 <= drop_probability < 1:
        raise GridError(
            f"drop_probability must be in [0, 1), got {drop_probability}"
        )
    if max_weight_factor < 1:
        raise GridError(
            f"max_weight_factor must be >= 1, got {max_weight_factor}"
        )
    rng = np.random.default_rng(seed)
    side = blocks + 1
    ii, jj = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    base = np.stack([jj.ravel(), ii.ravel()], axis=1).astype(float) * block_km
    coords = base + rng.uniform(
        -jitter, jitter, size=base.shape
    ) * block_km

    def vid(i: int, j: int) -> int:
        return i * side + j

    pairs = []
    for i in range(side):
        for j in range(side):
            if j + 1 < side:
                pairs.append((vid(i, j), vid(i, j + 1)))
            if i + 1 < side:
                pairs.append((vid(i, j), vid(i + 1, j)))
    edges = np.asarray(pairs, dtype=np.int64)
    lengths = np.hypot(
        coords[edges[:, 0], 0] - coords[edges[:, 1], 0],
        coords[edges[:, 0], 1] - coords[edges[:, 1], 1],
    )
    weights = lengths * rng.uniform(1.0, max_weight_factor, size=lengths.size)

    # Random spanning tree: visit candidate streets in shuffled order and
    # protect the first edge that joins two components; the rest survive
    # independently with probability 1 - drop_probability.
    order = rng.permutation(edges.shape[0])
    uf = _UnionFind(side * side)
    in_tree = np.zeros(edges.shape[0], dtype=bool)
    for e in order:
        if uf.union(int(edges[e, 0]), int(edges[e, 1])):
            in_tree[e] = True
    keep = in_tree | (rng.random(edges.shape[0]) >= drop_probability)
    return RoadGraph(coords, edges[keep], weights[keep])
