"""Shortest-path distance behind the :class:`~repro.geo.metric.Metric`
protocol.

"Geo-Graph-Indistinguishability" (Takagi et al.) argues that on a road
network the Euclidean distinguishability metric both over-protects
(two banks of a river are close in the plane but far by road) and
under-protects (a fast arterial makes far-apart points easily
confusable).  :class:`GraphMetric` makes the shortest-path alternative
a drop-in ``dX``/``dQ``: planar points are snapped to their nearest
road vertex and distance is the network distance between the snapped
vertices, so every consumer of the metric protocol — the OPT LP, the
privacy guard, the Bayesian attack, the LBS k-NN — works on the road
network unchanged.

This is a *pseudometric* on the plane (two points snapping to the same
vertex are at distance zero — GeoInd then simply cannot distinguish
them), which is exactly what the GeoInd constraint needs; it passes
:meth:`~repro.geo.metric.Metric.check_axioms` because network distance
on an undirected positively-weighted graph is symmetric and satisfies
the triangle inequality.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.sparse.csgraph import dijkstra

from repro.geo.metric import Metric
from repro.geo.point import Point, points_to_array
from repro.graph.city import RoadGraph


class GraphMetric(Metric):
    """Shortest-path distance on a :class:`~repro.graph.city.RoadGraph`.

    Distance rows are produced by multi-source Dijkstra over the CSR
    adjacency matrix and memoised per source vertex — the same
    build-once / reuse-everywhere discipline as the node-mechanism
    cache, keyed by vertex id instead of node path.  A walk over a
    graph partition touches the same few hundred sources (node medoids
    and evaluation inputs) over and over, so after warm-up every
    ``pairwise`` call is a pure gather.

    Unlike the stateless planar singletons this metric is bound to one
    graph, so it is not in the ``get_metric`` registry; construct it
    next to the graph it measures.
    """

    name = "graph-shortest-path"

    def __init__(self, graph: RoadGraph):
        self._graph = graph
        self._rows: dict[int, np.ndarray] = {}

    @property
    def graph(self) -> RoadGraph:
        return self._graph

    @property
    def cached_sources(self) -> int:
        """Number of source vertices with a memoised distance row."""
        return len(self._rows)

    def precompute(self, vertices: Sequence[int]) -> None:
        """Warm the row cache for ``vertices`` in one Dijkstra call."""
        self._rows_for(np.asarray(list(vertices), dtype=np.int64))

    def _rows_for(self, sources: np.ndarray) -> np.ndarray:
        """``(len(sources), n_vertices)`` distance rows, cache-backed."""
        unique = np.unique(sources)
        missing = [int(s) for s in unique if int(s) not in self._rows]
        if missing:
            block = np.atleast_2d(
                dijkstra(self._graph.csr, directed=False, indices=missing)
            )
            for s, row in zip(missing, block):
                self._rows[s] = row
        return np.stack([self._rows[int(s)] for s in sources])

    def vertex_distance(self, a: int, b: int) -> float:
        """Network distance between two vertex ids."""
        return float(self._rows_for(np.asarray([a]))[0, b])

    def __call__(self, a: Point, b: Point) -> float:
        va = self._graph.nearest_vertex(a)
        vb = self._graph.nearest_vertex(b)
        return self.vertex_distance(va, vb)

    def pairwise(self, xs: Sequence[Point], zs: Sequence[Point]) -> np.ndarray:
        vx = self._graph.nearest_vertices(points_to_array(xs))
        vz = self._graph.nearest_vertices(points_to_array(zs))
        if vx.size == 0 or vz.size == 0:
            return np.zeros((vx.size, vz.size))
        rows = self._rows_for(vx)
        return rows[:, vz]
