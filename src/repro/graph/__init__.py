"""Road-network scenario: GeoInd on graphs (ROADMAP item 3).

A synthetic city road graph, a shortest-path metric behind the
:class:`~repro.geo.metric.Metric` protocol, and a hierarchical graph
partition behind the :class:`~repro.grid.index.SpatialIndex` protocol —
so the MSM walk, guard, cache and evaluation stack run over road
networks unchanged.
"""

from repro.graph.city import RoadGraph, synthetic_city
from repro.graph.metric import GraphMetric
from repro.graph.partition import (
    GraphIndexNode,
    GraphPartitionIndex,
    VertexBins,
)

__all__ = [
    "GraphIndexNode",
    "GraphMetric",
    "GraphPartitionIndex",
    "RoadGraph",
    "VertexBins",
    "synthetic_city",
]
