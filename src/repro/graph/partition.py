"""Hierarchical graph partition playing the GIHI role.

The paper observes (Section 4, footnote 4) that MSM applies to *any*
hierarchical partition without overlap.  :class:`GraphPartitionIndex`
takes that literally for road networks: nodes are **vertex sets**, not
rectangles.  Each internal node's vertex set is split into ``fanout``
balanced, mostly-connected parts by METIS-style recursive BFS bisection
(grow a half from a peripheral seed until it holds its share of
vertices, recurse), down to ``height`` levels.

The partition is exposed through the ordinary
:class:`~repro.grid.index.SpatialIndex` protocol so the walk engine,
the node-mechanism cache, the privacy guard and warm-start all run
unchanged:

* a node's ``bounds`` is only an *envelope* of its vertices (sibling
  envelopes may overlap — nothing in the engine uses them to locate);
* ``locate_child`` / ``locate_child_indices`` snap the point to its
  nearest road vertex and look the vertex up in the child partition —
  scalar and vectorised paths share the exact same snap, so they agree
  byte-for-byte;
* ``contains_mask`` is true vertex-set membership, so the engine folds
  the prior onto real regions rather than onto envelopes;
* ``child_geometry`` returns ``None``: the partition has no arithmetic
  child layout, which keeps the compiled kernel honest — the engine
  detects the index as uncompilable and stays on the staged path,
  exactly like the STR index.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.exceptions import GridError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.graph.city import RoadGraph
from repro.grid.index import IndexNode, SpatialIndex

#: Above this vertex count the medoid is approximated by the vertex
#: nearest the centroid (the exact medoid is O(k^2) in memory).
_EXACT_MEDOID_MAX = 1500


@dataclass(frozen=True, slots=True)
class GraphIndexNode(IndexNode):
    """An :class:`IndexNode` whose region is a road-vertex set.

    ``bounds`` is the padded envelope of the member vertices (envelopes
    of siblings may overlap; membership is authoritative).  ``center``
    is the medoid member vertex — a real network location, so OPT child
    locations and reported points always lie on the road graph.
    """

    vertex_ids: tuple[int, ...] = ()
    medoid: int = -1
    medoid_x: float = 0.0
    medoid_y: float = 0.0

    @property
    def center(self) -> Point:
        """The medoid member vertex's planar location."""
        return Point(self.medoid_x, self.medoid_y)


class _VertexBin(NamedTuple):
    index: int


class VertexBins:
    """Duck-typed ``RegularGrid`` stand-in binning points by vertex.

    :func:`repro.eval.privacy.sample_leaf_counts` only needs
    ``n_cells`` and ``locate(z).index``; over a road network the
    natural output cells are the vertices themselves.
    """

    def __init__(self, graph: RoadGraph):
        self._graph = graph

    @property
    def n_cells(self) -> int:
        return self._graph.n_vertices

    def locate(self, p: Point) -> _VertexBin:
        return _VertexBin(self._graph.nearest_vertex(p))


class GraphPartitionIndex(SpatialIndex):
    """Balanced hierarchical partition of a road graph's vertex set.

    Parameters
    ----------
    graph:
        The road network to partition.
    fanout:
        Children per internal node (each child receives
        ``1/fanout`` of the parent's vertices, up to rounding).
    height:
        Number of levels below the root; the graph must have at least
        ``fanout ** height`` vertices so every leaf is non-empty.
    """

    def __init__(self, graph: RoadGraph, fanout: int = 4, height: int = 2):
        if fanout < 2:
            raise GridError(f"fanout must be >= 2, got {fanout}")
        if height < 1:
            raise GridError(f"height must be >= 1, got {height}")
        n = graph.n_vertices
        if n < fanout**height:
            raise GridError(
                f"graph has {n} vertices; a fanout={fanout} height={height} "
                f"partition needs at least {fanout ** height}"
            )
        self._graph = graph
        self._fanout = fanout
        self._height = height
        self._pad = 1e-9 * max(
            1.0, graph.bounds.width, graph.bounds.height
        )
        self._children: dict[tuple[int, ...], list[GraphIndexNode]] = {}
        self._child_of_vertex: dict[tuple[int, ...], np.ndarray] = {}
        self._member: dict[tuple[int, ...], np.ndarray] = {}
        all_vs = np.arange(n, dtype=np.int64)
        self._root = self._make_node(all_vs, 0, ())
        self._build(self._root, all_vs)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _make_node(
        self, vs: np.ndarray, level: int, path: tuple[int, ...]
    ) -> GraphIndexNode:
        coords = self._graph.coords
        pts = coords[vs]
        pad = self._pad
        bounds = BoundingBox(
            float(pts[:, 0].min()) - pad,
            float(pts[:, 1].min()) - pad,
            float(pts[:, 0].max()) + pad,
            float(pts[:, 1].max()) + pad,
        )
        med = self._medoid(vs)
        member = np.zeros(self._graph.n_vertices, dtype=bool)
        member[vs] = True
        self._member[path] = member
        return GraphIndexNode(
            bounds=bounds,
            level=level,
            path=path,
            vertex_ids=tuple(int(v) for v in vs),
            medoid=int(med),
            medoid_x=float(coords[med, 0]),
            medoid_y=float(coords[med, 1]),
        )

    def _medoid(self, vs: np.ndarray) -> int:
        """Member vertex minimising total planar distance to the others
        (nearest-to-centroid approximation for very large sets)."""
        pts = self._graph.coords[vs]
        if vs.size == 1:
            return int(vs[0])
        if vs.size > _EXACT_MEDOID_MAX:
            centroid = pts.mean(axis=0)
            best = int(
                np.argmin(np.hypot(*(pts - centroid).T))
            )
            return int(vs[best])
        diff = pts[:, None, :] - pts[None, :, :]
        total = np.sqrt((diff * diff).sum(axis=2)).sum(axis=1)
        return int(vs[int(np.argmin(total))])

    def _build(self, node: GraphIndexNode, vs: np.ndarray) -> None:
        if node.level >= self._height:
            return
        parts = self._balanced_parts(vs, self._fanout)
        vmap = np.full(self._graph.n_vertices, -1, dtype=np.int64)
        kids: list[GraphIndexNode] = []
        for pos, part in enumerate(parts):
            kid = self._make_node(part, node.level + 1, node.path + (pos,))
            kids.append(kid)
            vmap[part] = pos
        self._children[node.path] = kids
        self._child_of_vertex[node.path] = vmap
        for kid, part in zip(kids, parts):
            self._build(kid, part)

    def _balanced_parts(self, vs: np.ndarray, k: int) -> list[np.ndarray]:
        """Recursive balanced bisection of ``vs`` into ``k`` parts."""
        if k == 1:
            return [vs]
        k_left = k // 2
        target = int(round(vs.size * k_left / k))
        target = min(max(target, k_left), vs.size - (k - k_left))
        left = self._grow(vs, target)
        in_left = np.zeros(self._graph.n_vertices, dtype=bool)
        in_left[left] = True
        right = vs[~in_left[vs]]
        return self._balanced_parts(left, k_left) + self._balanced_parts(
            right, k - k_left
        )

    def _grow(self, vs: np.ndarray, target: int) -> np.ndarray:
        """Grow a ``target``-vertex region by BFS from a peripheral seed.

        When the induced subgraph is disconnected and a component runs
        dry before the target, growth restarts from the smallest
        untouched member vertex, so the result always has exactly
        ``target`` vertices.
        """
        csr = self._graph.csr
        indptr, indices = csr.indptr, csr.indices
        member = np.zeros(self._graph.n_vertices, dtype=bool)
        member[vs] = True
        seed = self._peripheral(vs, member)
        picked: list[int] = []
        visited = np.zeros(self._graph.n_vertices, dtype=bool)
        visited[seed] = True
        queue: deque[int] = deque([seed])
        fresh = iter(vs)
        while len(picked) < target:
            if not queue:
                for v in fresh:
                    v = int(v)
                    if not visited[v]:
                        visited[v] = True
                        queue.append(v)
                        break
                continue
            v = queue.popleft()
            picked.append(v)
            for nb in indices[indptr[v]:indptr[v + 1]]:
                nb = int(nb)
                if member[nb] and not visited[nb]:
                    visited[nb] = True
                    queue.append(nb)
        return np.sort(np.asarray(picked, dtype=np.int64))

    def _peripheral(self, vs: np.ndarray, member: np.ndarray) -> int:
        """A peripheral vertex: BFS-farthest (by hops) from ``vs[0]``
        within the induced subgraph, smallest id on ties."""
        csr = self._graph.csr
        indptr, indices = csr.indptr, csr.indices
        start = int(vs[0])
        dist = {start: 0}
        queue: deque[int] = deque([start])
        far, far_d = start, 0
        while queue:
            v = queue.popleft()
            d = dist[v]
            if d > far_d or (d == far_d and v < far):
                far, far_d = v, d
            for nb in indices[indptr[v]:indptr[v + 1]]:
                nb = int(nb)
                if member[nb] and nb not in dist:
                    dist[nb] = d + 1
                    queue.append(nb)
        return far

    # ------------------------------------------------------------------
    # SpatialIndex protocol
    # ------------------------------------------------------------------
    @property
    def graph(self) -> RoadGraph:
        return self._graph

    @property
    def fanout(self) -> int:
        return self._fanout

    @property
    def height(self) -> int:
        return self._height

    @property
    def bounds(self) -> BoundingBox:
        return self._root.bounds

    @property
    def root(self) -> IndexNode:
        return self._root

    def children(self, node: IndexNode) -> list[IndexNode]:
        return list(self._children.get(node.path, ()))

    def locate_child(self, node: IndexNode, p: Point) -> IndexNode | None:
        kids = self._children.get(node.path)
        if kids is None:
            return None
        v = self._graph.nearest_vertex(p)
        pos = int(self._child_of_vertex[node.path][v])
        return kids[pos] if pos >= 0 else None

    def locate_child_indices(
        self, node: IndexNode, coords: np.ndarray
    ) -> np.ndarray:
        coords = np.asarray(coords, dtype=float).reshape(-1, 2)
        vmap = self._child_of_vertex.get(node.path)
        if vmap is None or coords.shape[0] == 0:
            return np.full(coords.shape[0], -1, dtype=np.int64)
        return vmap[self._graph.nearest_vertices(coords)]

    def contains_mask(self, node: IndexNode, coords: np.ndarray) -> np.ndarray:
        coords = np.asarray(coords, dtype=float).reshape(-1, 2)
        member = self._member[node.path]
        return member[self._graph.nearest_vertices(coords)]

    def max_height(self) -> int:
        return self._height
