"""Adversarial privacy metrics beyond expected inference error.

"Is Geo-Indistinguishability What You Are Looking For?" (Oya et al.)
shows that a mechanism can look private under a single summary number
while leaking badly under another: the adversary's *expected* error can
stay high while the posterior concentrates for most outputs, and a
mechanism optimised for average-case quality loss can be terrible in
the worst case.  This module therefore computes the complementary
metrics the paper argues must be tracked together:

* **conditional entropy** ``H(X | Z)`` — how uncertain the Bayesian
  adversary remains *on average* after observing the report.  Bounded
  by ``0 <= H(X|Z) <= H(X)`` (conditioning never increases entropy).
* **worst-case expected loss** ``max_x E_z[dQ(x, z)]`` — the quality
  loss suffered by the unluckiest user, always at least the
  prior-averaged expected loss.
* **empirical epsilon from sampled counts** — the estimator of
  ``tests/test_statistical.py`` factored into library code, so the
  benchmark harness and the statistical test suite measure privacy
  drift with the *same* routine.

All of these consume a :class:`~repro.mechanisms.matrix.MechanismMatrix`
plus a prior, which every mechanism in the library can produce (MSM via
``to_matrix``, grid mechanisms directly, PL via its quadrature
discretisation) — making the metrics uniform across the benchmark
matrix and the attack tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.attacks.bayesian import optimal_inference_attack
from repro.exceptions import EvaluationError
from repro.geo.metric import EUCLIDEAN, Metric
from repro.geo.point import Point
from repro.grid.regular import RegularGrid
from repro.mechanisms.base import Mechanism
from repro.mechanisms.matrix import MechanismMatrix
from repro.mechanisms.remap import posterior_matrix
from repro.privacy.geoind import empirical_epsilon as matrix_epsilon_tight

#: Minimum per-cell sample count for a cell pair to enter the empirical
#: epsilon estimate (matches ``tests/test_statistical.py``: below this
#: the log-ratio's standard error dwarfs the signal).
DEFAULT_MIN_COUNT = 100


def _as_prior(prior: np.ndarray, n: int) -> np.ndarray:
    prior = np.asarray(prior, dtype=float).ravel()
    if prior.size != n:
        raise EvaluationError(
            f"prior has {prior.size} entries for {n} inputs"
        )
    if np.any(prior < 0):
        raise EvaluationError("prior has negative mass")
    total = prior.sum()
    if not np.isfinite(total) or total <= 0:
        raise EvaluationError("prior mass must be positive and finite")
    return prior / total


def prior_entropy(prior: np.ndarray) -> float:
    """Shannon entropy ``H(X)`` of a prior, in bits."""
    prior = _as_prior(prior, np.asarray(prior).size)
    positive = prior[prior > 0]
    return float(-(positive * np.log2(positive)).sum())


def conditional_entropy(matrix: MechanismMatrix, prior: np.ndarray) -> float:
    """Adversary's posterior entropy ``H(X | Z)`` in bits.

    ``H(X|Z) = sum_z Pr[z] H(sigma(.|z))`` with the Bayesian posterior
    ``sigma(x|z) ~ prior(x) K(x, z)``.  Outputs the mechanism never
    emits under this prior carry zero marginal mass and contribute
    nothing, whatever posterior convention they get.
    """
    prior = _as_prior(prior, matrix.shape[0])
    marginal = prior @ matrix.k  # (z,)
    sigma = posterior_matrix(matrix, prior)  # (z, x)
    with np.errstate(divide="ignore", invalid="ignore"):
        surprisal = np.where(sigma > 0, -sigma * np.log2(sigma), 0.0)
    per_z = surprisal.sum(axis=1)  # (z,)
    return float(marginal @ per_z)


def per_input_expected_loss(
    matrix: MechanismMatrix, metric: Metric = EUCLIDEAN
) -> np.ndarray:
    """``E_z[dQ(x, z)]`` for every input ``x`` — the loss profile."""
    d = metric.pairwise(matrix.inputs, matrix.outputs)
    return (matrix.k * d).sum(axis=1)


def worst_case_expected_loss(
    matrix: MechanismMatrix, metric: Metric = EUCLIDEAN
) -> float:
    """``max_x E_z[dQ(x, z)]`` — the unluckiest user's quality loss.

    Always ``>=`` the prior-averaged :meth:`MechanismMatrix.expected_loss`
    because a maximum dominates every convex combination.
    """
    return float(per_input_expected_loss(matrix, metric).max())


def empirical_epsilon_from_counts(
    counts: np.ndarray,
    centers: Sequence[Point],
    min_count: int = DEFAULT_MIN_COUNT,
    dx: Metric = EUCLIDEAN,
) -> float:
    """Empirical GeoInd level from sampled output histograms.

    ``counts[i, c]`` is how often input ``i`` produced output cell
    ``c``; ``centers[i]`` is input ``i``'s location.  For every ordered
    input pair the estimator takes the largest log frequency ratio over
    cells observed at least ``min_count`` times on *both* sides and
    divides by the pair's ``dx`` distance — exactly the computation of
    ``tests/test_statistical.py``, shared so the benchmark harness and
    the statistical suite cannot drift apart.  Returns ``0.0`` when no
    pair has a well-sampled shared cell.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 2 or counts.shape[0] != len(centers):
        raise EvaluationError(
            f"counts shape {counts.shape} does not match "
            f"{len(centers)} input centers"
        )
    eps_hat = 0.0
    for i in range(len(centers)):
        for j in range(len(centers)):
            if i == j:
                continue
            both = (counts[i] >= min_count) & (counts[j] >= min_count)
            if not both.any():
                continue
            ratio = float(np.log(counts[i][both] / counts[j][both]).max())
            d = dx(centers[i], centers[j])
            if d > 0:
                eps_hat = max(eps_hat, ratio / d)
    return eps_hat


def sample_leaf_counts(
    mechanism: Mechanism,
    inputs: Sequence[Point],
    grid: RegularGrid,
    n_per_input: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Output histograms over ``grid`` cells, one row per input.

    Drives the mechanism's *actual sampling path* (``sample_many``), so
    the estimate covers the sampler, not just the matrix it claims to
    implement.
    """
    if n_per_input <= 0:
        raise EvaluationError("n_per_input must be positive")
    counts = np.zeros((len(inputs), grid.n_cells), dtype=float)
    for i, x in enumerate(inputs):
        for z in mechanism.sample_many([x] * n_per_input, rng):
            counts[i, grid.locate(z).index] += 1
    return counts


def empirical_epsilon_sampled(
    mechanism: Mechanism,
    inputs: Sequence[Point],
    grid: RegularGrid,
    n_per_input: int,
    rng: np.random.Generator,
    min_count: int = DEFAULT_MIN_COUNT,
    dx: Metric = EUCLIDEAN,
) -> float:
    """Empirical epsilon of a live mechanism, measured by sampling."""
    counts = sample_leaf_counts(mechanism, inputs, grid, n_per_input, rng)
    return empirical_epsilon_from_counts(
        counts, list(inputs), min_count=min_count, dx=dx
    )


@dataclass(frozen=True)
class PrivacyMetrics:
    """The Oya-style metric panel for one mechanism configuration.

    Attributes
    ----------
    adversarial_error:
        Optimal Bayesian adversary's remaining expected error (km).
    identification_rate:
        Probability the MAP guess hits the true cell.
    prior_error:
        Blind-guess baseline error (no observation).
    conditional_entropy_bits:
        ``H(X | Z)`` under the evaluation prior.
    prior_entropy_bits:
        ``H(X)`` — the ceiling of the conditional entropy.
    expected_loss:
        Prior-averaged quality loss ``E[dQ(x, z)]`` (km).
    worst_case_loss:
        ``max_x E_z[dQ(x, z)]`` (km); always ``>= expected_loss``.
    epsilon_tight:
        The exact GeoInd level of the matrix under ``dx`` (may be
        ``inf`` for mechanisms with disjoint supports).
    """

    adversarial_error: float
    identification_rate: float
    prior_error: float
    conditional_entropy_bits: float
    prior_entropy_bits: float
    expected_loss: float
    worst_case_loss: float
    epsilon_tight: float


def privacy_metrics(
    matrix: MechanismMatrix,
    prior: np.ndarray,
    metric: Metric = EUCLIDEAN,
    epsilon_tight: bool = True,
    dx: Metric | None = None,
) -> PrivacyMetrics:
    """Compute the full adversarial metric panel for one matrix.

    ``epsilon_tight=False`` skips the exact GeoInd sweep (quadratic in
    the location count) and reports ``nan`` — useful when only the
    entropy/loss panel is needed on large matrices.  ``dx`` is the
    distinguishability metric for that sweep (defaults to ``metric``,
    so a road-network panel measures epsilon under shortest-path
    distance).
    """
    prior = _as_prior(prior, matrix.shape[0])
    attack = optimal_inference_attack(matrix, prior, metric)
    tight = (
        float(matrix_epsilon_tight(matrix, dx=dx if dx is not None else metric)[0])
        if epsilon_tight
        else float("nan")
    )
    return PrivacyMetrics(
        adversarial_error=attack.expected_error,
        identification_rate=attack.identification_rate,
        prior_error=attack.prior_error,
        conditional_entropy_bits=conditional_entropy(matrix, prior),
        prior_entropy_bits=prior_entropy(prior),
        expected_loss=matrix.expected_loss(prior, metric),
        worst_case_loss=worst_case_expected_loss(matrix, metric),
        epsilon_tight=tight,
    )
