"""Experiment harness: evaluation protocol, result tables, per-figure runs."""

from repro.eval.experiments import (
    DEFAULT_EPSILON,
    PAPER_EPSILONS,
    PAPER_RHOS,
    ExperimentConfig,
    run_budget_strategy_ablation,
    run_fig3,
    run_fig5,
    run_fig6_7,
    run_fig8_9,
    run_fig10_11,
    run_index_ablation,
    run_latency,
    run_prior_ablation,
    run_spanner_ablation,
    run_table2,
)
from repro.eval.harness import (
    DEFAULT_METRICS,
    PAPER_REQUEST_COUNT,
    EvaluationResult,
    evaluate_mechanism,
)
from repro.eval.results import ResultTable, print_table
from repro.eval.shapes import (
    crossover_index,
    dominates,
    gap_ratios,
    is_decreasing,
    is_increasing,
    is_u_shaped,
)

__all__ = [
    "DEFAULT_EPSILON",
    "DEFAULT_METRICS",
    "EvaluationResult",
    "ExperimentConfig",
    "PAPER_EPSILONS",
    "PAPER_REQUEST_COUNT",
    "PAPER_RHOS",
    "ResultTable",
    "evaluate_mechanism",
    "crossover_index",
    "dominates",
    "gap_ratios",
    "is_decreasing",
    "is_increasing",
    "is_u_shaped",
    "print_table",
    "run_budget_strategy_ablation",
    "run_fig3",
    "run_fig5",
    "run_fig6_7",
    "run_fig8_9",
    "run_fig10_11",
    "run_index_ablation",
    "run_latency",
    "run_prior_ablation",
    "run_spanner_ablation",
    "run_table2",
]
