"""Trend-shape assertions for reproduction claims.

The reproduction's contract with the paper is about *shapes* — which
series wins, in which direction a trend moves, where a crossover falls —
not absolute numbers (the substrate differs).  These helpers give the
benchmarks and tests one vocabulary for those claims, with a noise
tolerance so Monte-Carlo wiggle does not produce flaky assertions.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import EvaluationError


def _check(values: Sequence[float]) -> list[float]:
    out = [float(v) for v in values]
    if len(out) < 2:
        raise EvaluationError("trend checks need at least two values")
    return out


def is_decreasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    """True when each step falls, allowing ``tolerance`` relative rise.

    ``tolerance = 0.05`` accepts any step that does not *rise* by more
    than 5 % — the right reading of "decreasing" for a Monte-Carlo
    series.
    """
    vals = _check(values)
    return all(
        b <= a * (1.0 + tolerance) for a, b in zip(vals, vals[1:])
    ) and vals[-1] < vals[0]


def is_increasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    """Mirror of :func:`is_decreasing`."""
    vals = _check(values)
    return all(
        b >= a * (1.0 - tolerance) for a, b in zip(vals, vals[1:])
    ) and vals[-1] > vals[0]


def is_u_shaped(values: Sequence[float], tolerance: float = 0.0) -> bool:
    """True when the series falls to an interior minimum then rises.

    The defining property asserted for the paper's Figures 8-9: the
    best value sits strictly inside the sweep, with a (tolerance-
    relaxed) descent before it and ascent after it.
    """
    vals = _check(values)
    if len(vals) < 3:
        return False
    arg_min = vals.index(min(vals))
    if arg_min == 0 or arg_min == len(vals) - 1:
        return False
    return is_decreasing(vals[: arg_min + 1], tolerance) and is_increasing(
        vals[arg_min:], tolerance
    )


def dominates(
    better: Sequence[float],
    worse: Sequence[float],
    min_ratio: float = 1.0,
) -> bool:
    """True when ``worse[i] >= min_ratio * better[i]`` at every index.

    Encodes "series A beats series B everywhere (by at least a
    factor)" — the Figures 6-7 claim with ``min_ratio`` at 1.
    """
    a = _check(better)
    b = _check(worse)
    if len(a) != len(b):
        raise EvaluationError(
            f"series lengths differ: {len(a)} vs {len(b)}"
        )
    return all(w >= min_ratio * v for v, w in zip(a, b))


def gap_ratios(
    better: Sequence[float], worse: Sequence[float]
) -> list[float]:
    """Pointwise ``worse / better`` ratios (the "gap" of Figures 6-7)."""
    a = _check(better)
    b = _check(worse)
    if len(a) != len(b):
        raise EvaluationError(
            f"series lengths differ: {len(a)} vs {len(b)}"
        )
    if any(v <= 0 for v in a):
        raise EvaluationError("gap ratios need strictly positive baseline")
    return [w / v for v, w in zip(a, b)]


def crossover_index(
    a: Sequence[float], b: Sequence[float]
) -> int | None:
    """First index where series ``a`` stops beating series ``b``.

    Returns None when ``a`` stays below ``b`` throughout (no crossover).
    Used for "PL catches up with MSM around eps = 0.5" style claims.
    """
    va = _check(a)
    vb = _check(b)
    if len(va) != len(vb):
        raise EvaluationError(
            f"series lengths differ: {len(va)} vs {len(vb)}"
        )
    for i, (x, y) in enumerate(zip(va, vb)):
        if x >= y:
            return i
    return None
