"""Mechanism evaluation harness.

Implements the paper's measurement protocol (Section 6.2): draw a set
of requests at random from a dataset's check-ins, push each through a
mechanism, and report the mean utility loss under the chosen metrics
together with per-query latency.  Construction (LP) time is reported
separately from online time, mirroring the paper's offline/online
split.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import EvaluationError
from repro.geo.metric import EUCLIDEAN, SQUARED_EUCLIDEAN, Metric
from repro.geo.point import Point
from repro.mechanisms.base import Mechanism

#: The paper's request-sample size (Section 6.2).
PAPER_REQUEST_COUNT = 3000

#: Default metrics: the paper's d and d^2.
DEFAULT_METRICS: tuple[Metric, ...] = (EUCLIDEAN, SQUARED_EUCLIDEAN)


@dataclass(frozen=True)
class EvaluationResult:
    """Monte-Carlo utility and latency of one mechanism configuration.

    Attributes
    ----------
    mechanism_name:
        The mechanism's display label.
    n_requests:
        Number of sampled requests.
    mean_loss:
        Metric name -> mean loss over requests (km or km^2).
    std_loss:
        Metric name -> standard deviation of per-request losses.
    sample_seconds:
        Total wall-clock spent sampling (the online cost).
    """

    mechanism_name: str
    n_requests: int
    mean_loss: dict[str, float]
    std_loss: dict[str, float]
    sample_seconds: float

    @property
    def ms_per_query(self) -> float:
        """Mean online latency per sanitised report, in milliseconds."""
        return 1000.0 * self.sample_seconds / max(self.n_requests, 1)

    def loss(self, metric: Metric | str = EUCLIDEAN) -> float:
        """Mean loss under one metric (by object or name)."""
        name = metric if isinstance(metric, str) else metric.name
        try:
            return self.mean_loss[name]
        except KeyError:
            raise EvaluationError(
                f"metric {name!r} was not evaluated; have {list(self.mean_loss)}"
            ) from None


def evaluate_mechanism(
    mechanism: Mechanism,
    requests: Sequence[Point],
    rng: np.random.Generator,
    metrics: tuple[Metric, ...] = DEFAULT_METRICS,
) -> EvaluationResult:
    """Run ``requests`` through ``mechanism`` and aggregate losses.

    Losses are measured from the *actual* request location to the
    reported location, so discretisation (cell-snap) error is included —
    this is what makes coarse grids expensive in Figures 3 and 8 even
    though their LP objectives look small.
    """
    if not requests:
        raise EvaluationError("evaluation needs at least one request")
    if not metrics:
        raise EvaluationError("evaluation needs at least one metric")
    start = time.perf_counter()
    reported = mechanism.sample_many(requests, rng)
    sample_seconds = time.perf_counter() - start

    mean_loss: dict[str, float] = {}
    std_loss: dict[str, float] = {}
    for metric in metrics:
        losses = np.asarray(
            [metric(x, z) for x, z in zip(requests, reported)]
        )
        mean_loss[metric.name] = float(losses.mean())
        std_loss[metric.name] = float(losses.std())
    return EvaluationResult(
        mechanism_name=mechanism.name,
        n_requests=len(requests),
        mean_loss=mean_loss,
        std_loss=std_loss,
        sample_seconds=sample_seconds,
    )
