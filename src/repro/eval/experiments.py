"""One function per table and figure of the paper's evaluation.

Every function follows the same contract: it takes a
:class:`~repro.datasets.checkin.CheckInDataset` (Gowalla Austin or Yelp
Las Vegas, real or synthetic) plus an :class:`ExperimentConfig`, runs
the measurement protocol of Section 6, and returns a
:class:`~repro.eval.results.ResultTable` whose rows correspond to the
paper's plotted series.  The benchmark scripts under ``benchmarks/`` are
thin wrappers that print these tables; EXPERIMENTS.md records the
measured shapes against the paper's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.datasets.checkin import CheckInDataset
from repro.exceptions import SolverError
from repro.geo.metric import EUCLIDEAN, SQUARED_EUCLIDEAN
from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.kdtree import KDTreeIndex
from repro.grid.quadtree import QuadtreeIndex
from repro.grid.regular import RegularGrid
from repro.grid.str_index import STRIndex
from repro.mechanisms.optimal import OptimalMechanism
from repro.mechanisms.planar_laplace import PlanarLaplaceMechanism
from repro.priors.base import GridPrior
from repro.priors.empirical import empirical_prior
from repro.core.budget.allocation import (
    allocate_budget,
    allocate_budget_fixed_height,
    min_epsilon_for_rho,
)
from repro.core.budget.strategies import (
    geometric_split,
    reverse_geometric_split,
    uniform_split,
)
from repro.core.msm import MultiStepMechanism
from repro.eval.harness import evaluate_mechanism
from repro.eval.results import ResultTable

#: The paper's default privacy budget (Section 6.2).
DEFAULT_EPSILON = 0.5

#: The paper's epsilon sweep (Figures 6-7).
PAPER_EPSILONS = (0.1, 0.3, 0.5, 0.7, 0.9)

#: The paper's rho sweep (Figures 10-11).
PAPER_RHOS = (0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs of the measurement protocol.

    Attributes
    ----------
    n_requests:
        Requests sampled from the check-ins per configuration (the
        paper uses 3000; benches default lower for wall-clock sanity —
        the tables record the count used).
    prior_granularity:
        Granularity of the fine global prior grid MSM restricts from.
    prior_smoothing:
        Pseudo-count added per prior cell (keeps zero-mass cells from
        degenerating subpriors on sparse samples).
    rho:
        Default same-cell probability target (the paper's default 0.8).
    seed:
        Seed for request sampling and mechanism randomness.
    backend:
        LP backend for every OPT solve.
    """

    n_requests: int = 600
    prior_granularity: int = 16
    prior_smoothing: float = 0.1
    rho: float = 0.8
    seed: int = 42
    backend: str = "highs-ds"

    def with_requests(self, n: int) -> "ExperimentConfig":
        """Copy with a different request count."""
        return replace(self, n_requests=n)


def _rng(config: ExperimentConfig) -> np.random.Generator:
    return np.random.default_rng(config.seed)


def _fine_prior(dataset: CheckInDataset, config: ExperimentConfig) -> GridPrior:
    grid = RegularGrid(dataset.bounds, config.prior_granularity)
    return empirical_prior(
        grid, dataset.points(), smoothing=config.prior_smoothing,
        name=dataset.name,
    )


def _requests(
    dataset: CheckInDataset,
    config: ExperimentConfig,
    rng: np.random.Generator,
) -> list[Point]:
    return dataset.sample_requests(config.n_requests, rng)


def _build_msm(
    epsilon: float,
    granularity: int,
    prior: GridPrior,
    config: ExperimentConfig,
    rho: float | None = None,
) -> MultiStepMechanism:
    return MultiStepMechanism.build(
        epsilon,
        granularity,
        prior,
        rho=rho if rho is not None else config.rho,
        backend=config.backend,
    )


# ----------------------------------------------------------------------
# Figure 3 — flat OPT: utility/runtime trade-off vs granularity
# ----------------------------------------------------------------------
def run_fig3(
    dataset: CheckInDataset,
    granularities: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8),
    epsilon: float = DEFAULT_EPSILON,
    config: ExperimentConfig = ExperimentConfig(),
    time_limit: float | None = 120.0,
) -> ResultTable:
    """Figure 3: OPT's utility loss falls with g while runtime explodes.

    Rows whose LP exceeds ``time_limit`` report NaN loss and the limit
    as their time — the laptop-scale analogue of the paper's "terminated
    after 24 hours" note for g = 12.
    """
    rng = _rng(config)
    requests = _requests(dataset, config, rng)
    table = ResultTable(
        title=f"Figure 3 (OPT trade-off) — {dataset.name}, eps={epsilon}",
        columns=["g", "n_cells", "utility_loss_km", "opt_seconds", "status"],
        notes=f"{config.n_requests} requests; paper uses g up to 11",
    )
    for g in granularities:
        grid = RegularGrid(dataset.bounds, g)
        prior = empirical_prior(
            grid, dataset.points(), smoothing=config.prior_smoothing
        )
        start = time.perf_counter()
        try:
            opt = OptimalMechanism(
                epsilon, prior, backend=config.backend, time_limit=time_limit
            )
        except SolverError:
            table.add_row(g, g * g, float("nan"),
                          time.perf_counter() - start, "time-limit")
            continue
        build_seconds = time.perf_counter() - start
        result = evaluate_mechanism(opt, requests, rng, metrics=(EUCLIDEAN,))
        table.add_row(
            g, g * g, result.loss(EUCLIDEAN), build_seconds, "optimal"
        )
    return table


# ----------------------------------------------------------------------
# Figure 5 — accuracy of the budget model's Phi estimate
# ----------------------------------------------------------------------
def run_fig5(
    dataset: CheckInDataset,
    granularities: tuple[int, ...] = (2, 3, 4, 5, 6, 7),
    rhos: tuple[float, ...] = PAPER_RHOS,
    config: ExperimentConfig = ExperimentConfig(),
) -> ResultTable:
    """Figure 5: empirical ``Pr[x|x]`` of OPT vs the model's target rho.

    For each (g, rho): solve Problem 1 for the minimum epsilon, build
    OPT at that budget over a uniform prior (the paper's Figure-5
    setting), and report the mean diagonal of K alongside the diagonal
    of the most interior cell.  Phi models an *infinite* lattice, so the
    finite grid's boundary cells — which have nowhere to leak mass —
    systematically sit above the prediction; the interior column shows
    how the gap closes away from the boundary.
    """
    side = dataset.bounds.side
    table = ResultTable(
        title=f"Figure 5 (budget-model accuracy) — uniform prior, L={side:.1f}km",
        columns=["g", "rho", "epsilon", "empirical_pr_xx",
                 "interior_pr_xx", "abs_error"],
        notes="paper reports +-5% accuracy for g >= 3",
    )
    for g in granularities:
        grid = RegularGrid(dataset.bounds, g)
        uniform = GridPrior.uniform(grid)
        center_index = grid.locate(grid.bounds.center).index
        for rho in rhos:
            epsilon = min_epsilon_for_rho(rho, side / g)
            opt = OptimalMechanism(epsilon, uniform, backend=config.backend)
            diag = opt.matrix.stay_probabilities()
            empirical = float(diag.mean())
            table.add_row(
                g, rho, epsilon, empirical, float(diag[center_index]),
                abs(empirical - rho),
            )
    return table


# ----------------------------------------------------------------------
# Table 2 — MSM vs OPT at equal effective granularity
# ----------------------------------------------------------------------
def run_table2(
    dataset: CheckInDataset,
    granularities: tuple[int, ...] = (2, 3, 4),
    epsilon: float = DEFAULT_EPSILON,
    config: ExperimentConfig = ExperimentConfig(),
    opt_time_limit: float | None = 300.0,
    opt_max_constraints: int = 3_000_000,
) -> ResultTable:
    """Table 2: utility and runtime, OPT at ``g^2`` vs two-level MSM at ``g``.

    MSM height is pinned to 2 so both mechanisms share the effective
    leaf granularity ``g^2`` (the paper's comparison); the free
    allocator would pick height 1 for some (eps, g) combinations.
    OPT's time is its one-off LP; MSM's is its cumulative per-node LP
    time for the queries issued (cold cache), matching the paper's
    online-cost framing.

    Flat OPT instances whose GeoInd row count exceeds
    ``opt_max_constraints`` are reported as ``"intractable"`` without
    being built — the laptop-scale analogue of the paper's "72hrs+"
    entry at effective granularity 16 (256 cells = 16.7M rows would
    exhaust memory before the solver even starts).
    """
    rng = _rng(config)
    requests = _requests(dataset, config, rng)
    prior = _fine_prior(dataset, config)
    table = ResultTable(
        title=f"Table 2 (MSM vs OPT) — {dataset.name}, eps={epsilon}",
        columns=[
            "effective_g", "opt_loss_km", "msm_loss_km",
            "opt_seconds", "msm_lp_seconds", "opt_status",
        ],
        notes=f"{config.n_requests} requests; MSM height pinned to 2",
    )
    for g in granularities:
        effective = g * g
        opt_grid = RegularGrid(dataset.bounds, effective)
        opt_prior = empirical_prior(
            opt_grid, dataset.points(), smoothing=config.prior_smoothing
        )
        n = effective * effective
        n_geoind_rows = n * n * (n - 1)
        start = time.perf_counter()
        opt_loss = float("nan")
        opt_status = "optimal"
        if n_geoind_rows > opt_max_constraints:
            opt_status = "intractable"
        else:
            try:
                opt = OptimalMechanism(
                    epsilon, opt_prior, backend=config.backend,
                    time_limit=opt_time_limit,
                )
                opt_result = evaluate_mechanism(
                    opt, requests, rng, metrics=(EUCLIDEAN,)
                )
                opt_loss = opt_result.loss(EUCLIDEAN)
            except SolverError:
                opt_status = "time-limit"
        opt_seconds = time.perf_counter() - start

        plan = allocate_budget_fixed_height(
            epsilon, g, dataset.bounds.side, height=2, rho=config.rho
        )
        msm = MultiStepMechanism.from_plan(plan, prior, backend=config.backend)
        msm_result = evaluate_mechanism(msm, requests, rng, metrics=(EUCLIDEAN,))
        table.add_row(
            effective, opt_loss, msm_result.loss(EUCLIDEAN),
            opt_seconds, msm.lp_seconds, opt_status,
        )
    return table


# ----------------------------------------------------------------------
# Figures 6-7 — utility vs epsilon: PL against MSM
# ----------------------------------------------------------------------
def run_fig6_7(
    dataset: CheckInDataset,
    granularities: tuple[int, ...] = (4, 6),
    epsilons: tuple[float, ...] = PAPER_EPSILONS,
    config: ExperimentConfig = ExperimentConfig(),
) -> ResultTable:
    """Figures 6 (d) and 7 (d^2): PL vs MSM across the privacy range.

    One table carries both utility metrics; PL is remapped to MSM's
    effective leaf grid for each configuration, matching Section 6.2.
    """
    rng = _rng(config)
    requests = _requests(dataset, config, rng)
    prior = _fine_prior(dataset, config)
    table = ResultTable(
        title=f"Figures 6/7 (utility vs eps) — {dataset.name}",
        columns=[
            "mechanism", "g", "epsilon",
            "loss_d_km", "loss_d2_km2", "ms_per_query", "msm_height",
        ],
        notes=f"{config.n_requests} requests, rho={config.rho}",
    )
    for g in granularities:
        for epsilon in epsilons:
            msm = _build_msm(epsilon, g, prior, config)
            msm_result = evaluate_mechanism(msm, requests, rng)
            leaf_grid = RegularGrid(
                dataset.bounds, msm.plan.leaf_granularity
            )
            pl = PlanarLaplaceMechanism(epsilon, grid=leaf_grid)
            pl_result = evaluate_mechanism(pl, requests, rng)
            table.add_row(
                "MSM", g, epsilon,
                msm_result.loss(EUCLIDEAN), msm_result.loss(SQUARED_EUCLIDEAN),
                msm_result.ms_per_query, msm.height,
            )
            table.add_row(
                "PL", g, epsilon,
                pl_result.loss(EUCLIDEAN), pl_result.loss(SQUARED_EUCLIDEAN),
                pl_result.ms_per_query, msm.height,
            )
    return table


# ----------------------------------------------------------------------
# Figures 8-9 — MSM utility vs granularity
# ----------------------------------------------------------------------
def run_fig8_9(
    dataset: CheckInDataset,
    granularities: tuple[int, ...] = (2, 3, 4, 5, 6),
    rhos: tuple[float, ...] = (0.5, 0.7, 0.9),
    epsilon: float = DEFAULT_EPSILON,
    config: ExperimentConfig = ExperimentConfig(),
) -> ResultTable:
    """Figures 8 (d) and 9 (d^2): the U-shaped granularity dependency."""
    rng = _rng(config)
    requests = _requests(dataset, config, rng)
    prior = _fine_prior(dataset, config)
    table = ResultTable(
        title=f"Figures 8/9 (utility vs g) — {dataset.name}, eps={epsilon}",
        columns=["g", "rho", "loss_d_km", "loss_d2_km2", "msm_height"],
        notes=f"{config.n_requests} requests",
    )
    for g in granularities:
        for rho in rhos:
            msm = _build_msm(epsilon, g, prior, config, rho=rho)
            result = evaluate_mechanism(msm, requests, rng)
            table.add_row(
                g, rho,
                result.loss(EUCLIDEAN), result.loss(SQUARED_EUCLIDEAN),
                msm.height,
            )
    return table


# ----------------------------------------------------------------------
# Figures 10-11 — MSM utility vs rho
# ----------------------------------------------------------------------
def run_fig10_11(
    dataset: CheckInDataset,
    rhos: tuple[float, ...] = PAPER_RHOS,
    granularities: tuple[int, ...] = (2, 4, 6),
    epsilon: float = DEFAULT_EPSILON,
    config: ExperimentConfig = ExperimentConfig(),
) -> ResultTable:
    """Figures 10 (d) and 11 (d^2): the effect of the rho target."""
    rng = _rng(config)
    requests = _requests(dataset, config, rng)
    prior = _fine_prior(dataset, config)
    table = ResultTable(
        title=f"Figures 10/11 (utility vs rho) — {dataset.name}, eps={epsilon}",
        columns=["rho", "g", "loss_d_km", "loss_d2_km2", "msm_height"],
        notes=f"{config.n_requests} requests",
    )
    for rho in rhos:
        for g in granularities:
            msm = _build_msm(epsilon, g, prior, config, rho=rho)
            result = evaluate_mechanism(msm, requests, rng)
            table.add_row(
                rho, g,
                result.loss(EUCLIDEAN), result.loss(SQUARED_EUCLIDEAN),
                msm.height,
            )
    return table


# ----------------------------------------------------------------------
# Section 6.2 timing claims — PL vs MSM online latency
# ----------------------------------------------------------------------
def run_latency(
    dataset: CheckInDataset,
    epsilon: float = DEFAULT_EPSILON,
    granularity: int = 4,
    config: ExperimentConfig = ExperimentConfig(),
) -> ResultTable:
    """Per-query latency: PL, MSM cold (solving LPs) and MSM warm (cached).

    Reproduces the Section 6.2 discussion: PL around 10 ms in the
    paper's setup, MSM 100-200 ms worst-case sub-second; absolute
    numbers shift with hardware/solver, the ordering must hold.
    """
    rng = _rng(config)
    requests = _requests(dataset, config, rng)
    prior = _fine_prior(dataset, config)
    table = ResultTable(
        title=f"Online latency — {dataset.name}, eps={epsilon}, g={granularity}",
        columns=["mechanism", "ms_per_query", "cache_nodes"],
        notes=f"{config.n_requests} requests",
    )
    msm_cold = _build_msm(epsilon, granularity, prior, config)
    cold = evaluate_mechanism(msm_cold, requests, rng, metrics=(EUCLIDEAN,))
    table.add_row("MSM (cold cache)", cold.ms_per_query, len(msm_cold.cache))

    msm_warm = _build_msm(epsilon, granularity, prior, config)
    msm_warm.precompute()
    warm = evaluate_mechanism(msm_warm, requests, rng, metrics=(EUCLIDEAN,))
    table.add_row("MSM (warm cache)", warm.ms_per_query, len(msm_warm.cache))

    leaf_grid = RegularGrid(dataset.bounds, msm_warm.plan.leaf_granularity)
    pl = PlanarLaplaceMechanism(epsilon, grid=leaf_grid)
    pl_result = evaluate_mechanism(pl, requests, rng, metrics=(EUCLIDEAN,))
    table.add_row("PL", pl_result.ms_per_query, 0)
    return table


# ----------------------------------------------------------------------
# Ablation — budget-split strategies over the same index
# ----------------------------------------------------------------------
def run_budget_strategy_ablation(
    dataset: CheckInDataset,
    epsilon: float = DEFAULT_EPSILON,
    granularity: int = 3,
    height: int = 2,
    config: ExperimentConfig = ExperimentConfig(),
) -> ResultTable:
    """Model-driven allocation vs uniform / geometric / reverse splits.

    All strategies share the index (g, height), isolating the split
    itself; the reverse-geometric row is the Cormode-style allocation
    the paper's Section 7 argues is wrong for GeoInd.
    """
    rng = _rng(config)
    requests = _requests(dataset, config, rng)
    prior = _fine_prior(dataset, config)
    side = dataset.bounds.side
    plan = allocate_budget_fixed_height(
        epsilon, granularity, side, height=height, rho=config.rho
    )
    strategies: list[tuple[str, tuple[float, ...]]] = [
        ("model (Algorithm 2)", plan.budgets),
        ("uniform", uniform_split(epsilon, height)),
        ("geometric (x g)", geometric_split(epsilon, height, ratio=granularity)),
        ("reverse-geometric", reverse_geometric_split(epsilon, height,
                                                      ratio=granularity)),
    ]
    index = HierarchicalGrid(dataset.bounds, granularity, height)
    table = ResultTable(
        title=(
            f"Ablation: budget split — {dataset.name}, eps={epsilon}, "
            f"g={granularity}, h={height}"
        ),
        columns=["strategy", "budgets", "loss_d_km", "loss_d2_km2"],
        notes=f"{config.n_requests} requests",
    )
    for name, budgets in strategies:
        msm = MultiStepMechanism(index, budgets, prior, backend=config.backend)
        result = evaluate_mechanism(msm, requests, rng)
        table.add_row(
            name,
            "/".join(f"{b:.3f}" for b in budgets),
            result.loss(EUCLIDEAN),
            result.loss(SQUARED_EUCLIDEAN),
        )
    return table


# ----------------------------------------------------------------------
# Ablation — spanner constraint reduction for flat OPT
# ----------------------------------------------------------------------
def run_spanner_ablation(
    dataset: CheckInDataset,
    granularities: tuple[int, ...] = (3, 4, 5),
    dilations: tuple[float, ...] = (1.2, 1.5, 2.0),
    epsilon: float = DEFAULT_EPSILON,
    config: ExperimentConfig = ExperimentConfig(),
) -> ResultTable:
    """Exact OPT vs spanner-reduced OPT: constraints, time, utility."""
    rng = _rng(config)
    requests = _requests(dataset, config, rng)
    table = ResultTable(
        title=f"Ablation: spanner OPT — {dataset.name}, eps={epsilon}",
        columns=["g", "dilation", "n_constraints", "solve_seconds",
                 "utility_loss_km"],
        notes="dilation '1.0' rows are exact OPT",
    )
    for g in granularities:
        grid = RegularGrid(dataset.bounds, g)
        prior = empirical_prior(
            grid, dataset.points(), smoothing=config.prior_smoothing
        )
        for dilation in (None, *dilations):
            start = time.perf_counter()
            opt = OptimalMechanism(
                epsilon, prior, backend=config.backend,
                spanner_dilation=dilation,
            )
            seconds = time.perf_counter() - start
            result = evaluate_mechanism(
                opt, requests, rng, metrics=(EUCLIDEAN,)
            )
            table.add_row(
                g,
                1.0 if dilation is None else dilation,
                opt.result.n_constraints,
                seconds,
                result.loss(EUCLIDEAN),
            )
    return table


# ----------------------------------------------------------------------
# Ablation — personalised priors (the paper's future work, Section 8:
# "more advanced cost models to better capture prior information")
# ----------------------------------------------------------------------
def run_prior_ablation(
    dataset: CheckInDataset,
    epsilon: float = DEFAULT_EPSILON,
    granularity: int = 4,
    n_users: int = 5,
    config: ExperimentConfig = ExperimentConfig(),
) -> ResultTable:
    """Global average-user prior vs each user's personal history.

    For the ``n_users`` most active users: build OPT at granularity
    ``granularity`` against (a) the global check-in prior and (b) the
    user's own check-in histogram, and compare the *expected* loss each
    mechanism delivers to that user (exact, via the user's prior — no
    Monte-Carlo).  Personal tuning can only help in expectation (OPT is
    optimal for the prior it is given); the table measures by how much,
    which is the information a "smarter prior" cost model could exploit.
    """
    from repro.priors.empirical import empirical_prior_for_user

    grid = RegularGrid(dataset.bounds, granularity)
    global_prior = empirical_prior(
        grid, dataset.points(), smoothing=config.prior_smoothing
    )
    counts = np.bincount(dataset.user_ids)
    top_users = np.argsort(counts)[::-1][:n_users]

    table = ResultTable(
        title=(
            f"Ablation: personal vs global prior — {dataset.name}, "
            f"eps={epsilon}, g={granularity}"
        ),
        columns=[
            "user_id", "checkins", "global_loss_km",
            "personal_loss_km", "improvement_pct",
        ],
        notes="exact expected losses under each user's own prior",
    )
    opt_global = OptimalMechanism(
        epsilon, global_prior, backend=config.backend
    )
    for uid in top_users:
        personal = empirical_prior_for_user(
            dataset, int(uid), grid, smoothing=0.01
        )
        opt_personal = OptimalMechanism(
            epsilon, personal, backend=config.backend
        )
        loss_global = opt_global.matrix.expected_loss(
            personal.probabilities, EUCLIDEAN
        )
        loss_personal = opt_personal.matrix.expected_loss(
            personal.probabilities, EUCLIDEAN
        )
        improvement = (
            100.0 * (loss_global - loss_personal) / loss_global
            if loss_global > 0 else 0.0
        )
        table.add_row(
            int(uid), int(counts[uid]), loss_global, loss_personal,
            improvement,
        )
    return table


# ----------------------------------------------------------------------
# Ablation — index structures (the paper's future work, Section 8)
# ----------------------------------------------------------------------
def run_index_ablation(
    dataset: CheckInDataset,
    epsilon: float = DEFAULT_EPSILON,
    config: ExperimentConfig = ExperimentConfig(),
) -> ResultTable:
    """MSM over GIHI vs data-adaptive quadtree and k-d split tree.

    Adaptive indexes use a uniform budget split over their depth (their
    non-uniform cell sizes have no single Problem-1 requirement per
    level); the GIHI row uses the paper's allocator.
    """
    rng = _rng(config)
    requests = _requests(dataset, config, rng)
    prior = _fine_prior(dataset, config)
    sample = dataset.sample_requests(
        min(5000, dataset.n_checkins), np.random.default_rng(config.seed + 1)
    )

    gihi_msm = _build_msm(epsilon, 3, prior, config)
    quad = QuadtreeIndex(dataset.bounds, sample, capacity=len(sample) // 16,
                         max_depth=3)
    kd = KDTreeIndex(dataset.bounds, sample, max_depth=4)
    packed = STRIndex(dataset.bounds, sample, fanout=3, height=2)

    table = ResultTable(
        title=f"Ablation: index structure — {dataset.name}, eps={epsilon}",
        columns=["index", "nodes", "height", "loss_d_km", "ms_per_query"],
        notes=f"{config.n_requests} requests",
    )
    gihi_result = evaluate_mechanism(
        gihi_msm, requests, rng, metrics=(EUCLIDEAN,)
    )
    table.add_row(
        "hierarchical grid (g=3)", gihi_msm.index.node_count(),
        gihi_msm.height, gihi_result.loss(EUCLIDEAN),
        gihi_result.ms_per_query,
    )
    for name, index in (
        ("quadtree", quad),
        ("k-d split tree", kd),
        ("STR packed (R+-style)", packed),
    ):
        height = index.max_height()
        budgets = uniform_split(epsilon, height)
        msm = MultiStepMechanism(index, budgets, prior, backend=config.backend)
        result = evaluate_mechanism(msm, requests, rng, metrics=(EUCLIDEAN,))
        table.add_row(
            name, index.node_count(), height,
            result.loss(EUCLIDEAN), result.ms_per_query,
        )
    return table
