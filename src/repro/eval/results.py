"""Result tables.

Every experiment function returns a :class:`ResultTable` — an ordered,
typed set of rows that formats itself the way the paper presents data
(one row per configuration, utility and timing columns side by side)
and exports to CSV for plotting.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.exceptions import EvaluationError


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class ResultTable:
    """A labelled grid of experiment results.

    Attributes
    ----------
    title:
        What the table reproduces (e.g. ``"Figure 6a"``).
    columns:
        Column names, fixed at construction.
    rows:
        Appended via :meth:`add_row`; each row must match ``columns``.
    notes:
        Free-text caveats printed under the table (e.g. scaled-down
        request counts).
    """

    title: str
    columns: list[str]
    rows: list[tuple] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values: Any) -> None:
        """Append a row, enforcing the column arity."""
        if len(values) != len(self.columns):
            raise EvaluationError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise EvaluationError(
                f"no column {name!r}; columns: {self.columns}"
            ) from None
        return [row[idx] for row in self.rows]

    def filtered(self, **criteria: Any) -> "ResultTable":
        """Rows matching every ``column=value`` criterion."""
        indexes = {name: self.columns.index(name) for name in criteria}
        matching = [
            row
            for row in self.rows
            if all(row[indexes[name]] == value for name, value in criteria.items())
        ]
        return ResultTable(
            title=self.title, columns=list(self.columns), rows=matching,
            notes=self.notes,
        )

    def format(self) -> str:
        """Render as an aligned text table (paper-style)."""
        header = list(self.columns)
        body = [[_format_value(v) for v in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def to_csv(self, path: str | Path) -> None:
        """Write the table (with header) as CSV."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(self.columns)
            writer.writerows(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


def print_table(table: ResultTable) -> None:
    """Print a table to stdout (the benches' reporting primitive)."""
    print(table.format())
    print()
