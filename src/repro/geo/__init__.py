"""Planar geometry substrate: points, boxes, metrics and projection."""

from repro.geo.bbox import BoundingBox
from repro.geo.metric import (
    EUCLIDEAN,
    MANHATTAN,
    SQUARED_EUCLIDEAN,
    EuclideanMetric,
    ManhattanMetric,
    Metric,
    SquaredEuclideanMetric,
    get_metric,
)
from repro.geo.point import (
    Point,
    array_to_points,
    centroid,
    points_to_array,
)
from repro.geo.projection import (
    EARTH_RADIUS_KM,
    EquirectangularProjection,
    GeoBounds,
    haversine_km,
)

__all__ = [
    "BoundingBox",
    "EARTH_RADIUS_KM",
    "EUCLIDEAN",
    "EquirectangularProjection",
    "EuclideanMetric",
    "GeoBounds",
    "MANHATTAN",
    "ManhattanMetric",
    "Metric",
    "Point",
    "SQUARED_EUCLIDEAN",
    "SquaredEuclideanMetric",
    "array_to_points",
    "centroid",
    "points_to_array",
    "get_metric",
    "haversine_km",
]
