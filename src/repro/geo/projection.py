"""Geographic <-> planar coordinate conversion.

Both evaluation datasets come as WGS-84 latitude/longitude check-ins
bounded to a roughly 20 x 20 km city window.  The library standardises
on an **equirectangular projection** anchored at the window's reference
latitude.

Accuracy contract (pinned by ``tests/test_geo_projection.py``):

* ``to_plane`` / ``to_geo`` round-trip exactly (they are algebraic
  inverses — no tolerance involved);
* planar Euclidean distance agrees with :func:`haversine_km` to within
  **0.1 % relative error** for any pair inside a 20 x 20 km mid-latitude
  window.  The worst case is an east-west pair along the edge farthest
  from the reference latitude (the Gowalla-Austin window's top corners
  drift ~18 m over ~20 km, i.e. ~0.09 %), because the projection fixes
  ``cos(lat)`` at the window's midpoint.  That drift is an order of
  magnitude below the noise the mechanisms add, but it is *not* "well
  under a metre" at domain edges — callers needing sub-metre geodesics
  across the full window must use :func:`haversine_km` directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import GeometryError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point

#: Mean earth radius in kilometres (IUGG).
EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True, slots=True)
class GeoBounds:
    """A latitude/longitude window (degrees, WGS-84)."""

    min_lat: float
    min_lon: float
    max_lat: float
    max_lon: float

    def __post_init__(self) -> None:
        if not (-90.0 <= self.min_lat < self.max_lat <= 90.0):
            raise GeometryError(
                f"invalid latitude range [{self.min_lat}, {self.max_lat}]"
            )
        if not (-180.0 <= self.min_lon < self.max_lon <= 180.0):
            raise GeometryError(
                f"invalid longitude range [{self.min_lon}, {self.max_lon}]"
            )

    @property
    def reference_lat(self) -> float:
        """Latitude at which longitudinal distances are measured."""
        return (self.min_lat + self.max_lat) / 2.0

    def contains(self, lat: float, lon: float) -> bool:
        """Return True if the coordinate lies inside the window."""
        return (
            self.min_lat <= lat <= self.max_lat
            and self.min_lon <= lon <= self.max_lon
        )


class EquirectangularProjection:
    """Project lat/lon inside a :class:`GeoBounds` window onto a km plane.

    The planar origin ``(0, 0)`` maps to the window's south-west corner; x
    grows eastward and y northward, both in kilometres.
    """

    def __init__(self, bounds: GeoBounds):
        self._bounds = bounds
        self._cos_ref = math.cos(math.radians(bounds.reference_lat))
        self._km_per_deg_lat = math.pi * EARTH_RADIUS_KM / 180.0
        self._km_per_deg_lon = self._km_per_deg_lat * self._cos_ref

    @property
    def bounds(self) -> GeoBounds:
        """The geographic window this projection is anchored to."""
        return self._bounds

    def to_plane(self, lat: float, lon: float) -> Point:
        """Project a WGS-84 coordinate to planar km coordinates."""
        x = (lon - self._bounds.min_lon) * self._km_per_deg_lon
        y = (lat - self._bounds.min_lat) * self._km_per_deg_lat
        return Point(x, y)

    def to_geo(self, p: Point) -> tuple[float, float]:
        """Inverse projection: planar km point back to ``(lat, lon)``."""
        lat = self._bounds.min_lat + p.y / self._km_per_deg_lat
        lon = self._bounds.min_lon + p.x / self._km_per_deg_lon
        return (lat, lon)

    def planar_bbox(self) -> BoundingBox:
        """The planar image of the geographic window."""
        lower = self.to_plane(self._bounds.min_lat, self._bounds.min_lon)
        upper = self.to_plane(self._bounds.max_lat, self._bounds.max_lon)
        return BoundingBox(lower.x, lower.y, upper.x, upper.y)


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two WGS-84 coordinates in km.

    Used only to validate the projection error in tests; the mechanisms
    themselves always work in the projected plane.
    """
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlambda = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))
