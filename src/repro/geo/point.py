"""Planar points.

Every mechanism in this library operates on a planar projection of the
earth's surface (the paper works in a 20 x 20 km city-scale window, where
an equirectangular projection is accurate to well under a metre).  A
:class:`Point` is an immutable pair of planar coordinates expressed in
kilometres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the planar (kilometre) coordinate system.

    Attributes
    ----------
    x:
        Easting in kilometres.
    y:
        Northing in kilometres.
    """

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in kilometres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance to ``other`` in square kilometres."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def manhattan_distance_to(self, other: "Point") -> float:
        """L1 distance to ``other`` in kilometres."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a copy of this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def midpoint(self, other: "Point") -> "Point":
        """Return the midpoint of the segment between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)


def points_to_array(points: Sequence[Point]) -> np.ndarray:
    """Pack a point sequence into an ``(n, 2)`` float64 coordinate array.

    The one shared conversion between the object world (lists of
    :class:`Point`) and the array world (vectorised engine / mechanism
    kernels); an empty sequence yields a ``(0, 2)`` array so callers
    never special-case it.
    """
    return np.asarray(
        [(p.x, p.y) for p in points], dtype=float
    ).reshape(-1, 2)


def array_to_points(coords: np.ndarray) -> list[Point]:
    """Unpack an ``(n, 2)`` coordinate array into a list of :class:`Point`."""
    coords = np.asarray(coords, dtype=float).reshape(-1, 2)
    return [Point(float(x), float(y)) for x, y in coords]


def centroid(points: list[Point]) -> Point:
    """Return the centroid of a non-empty list of points.

    Raises
    ------
    ValueError
        If ``points`` is empty.
    """
    if not points:
        raise ValueError("centroid of an empty point list is undefined")
    sx = sum(p.x for p in points)
    sy = sum(p.y for p in points)
    n = len(points)
    return Point(sx / n, sy / n)
