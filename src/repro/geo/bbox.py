"""Axis-aligned bounding boxes in the planar coordinate system.

The paper's data domain is a square region of side length ``L`` (20 km for
both evaluation cities).  :class:`BoundingBox` represents any axis-aligned
rectangle; :meth:`BoundingBox.square` asserts the square assumption the
budget-allocation model relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import GeometryError
from repro.geo.point import Point


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]`` in km.

    The box is closed on all sides; :meth:`contains` treats boundary points
    as inside so that snapping a domain-boundary location never fails.
    That makes ``contains`` a *membership* test, not a tie-breaker: a
    point on an edge shared by two sibling cells is contained by both.
    The index layer resolves such ties with its own half-open
    convention (see :mod:`repro.grid.index`); do not use ``contains``
    to pick between adjacent boxes.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if not (self.min_x < self.max_x and self.min_y < self.max_y):
            raise GeometryError(
                f"degenerate bounding box: "
                f"[{self.min_x}, {self.max_x}] x [{self.min_y}, {self.max_y}]"
            )

    @staticmethod
    def square(origin: Point, side: float) -> "BoundingBox":
        """Return the square box with lower-left corner ``origin`` and side ``side``."""
        if side <= 0:
            raise GeometryError(f"square side must be positive, got {side}")
        return BoundingBox(origin.x, origin.y, origin.x + side, origin.y + side)

    @property
    def width(self) -> float:
        """Extent along the x axis in km."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along the y axis in km."""
        return self.max_y - self.min_y

    @property
    def side(self) -> float:
        """Side length ``L`` of a square box.

        Raises
        ------
        GeometryError
            If the box is not square (within floating-point tolerance).
        """
        if not math.isclose(self.width, self.height, rel_tol=1e-9, abs_tol=1e-12):
            raise GeometryError(
                f"box is not square: width={self.width}, height={self.height}"
            )
        return self.width

    @property
    def area(self) -> float:
        """Area of the box in km^2."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Centre point of the box."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    @property
    def lower_left(self) -> Point:
        """Lower-left (minimum) corner."""
        return Point(self.min_x, self.min_y)

    @property
    def upper_right(self) -> Point:
        """Upper-right (maximum) corner."""
        return Point(self.max_x, self.max_y)

    def contains(self, p: Point) -> bool:
        """Return True if ``p`` lies inside or on the boundary of the box."""
        return (
            self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y
        )

    def clamp(self, p: Point) -> Point:
        """Return the closest point to ``p`` inside the box."""
        return Point(
            min(max(p.x, self.min_x), self.max_x),
            min(max(p.y, self.min_y), self.max_y),
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """Return True if the two boxes share at least a boundary point."""
        return not (
            self.max_x < other.min_x
            or other.max_x < self.min_x
            or self.max_y < other.min_y
            or other.max_y < self.min_y
        )

    def contains_box(self, other: "BoundingBox") -> bool:
        """Return True if ``other`` lies entirely within this box."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and other.max_x <= self.max_x
            and other.max_y <= self.max_y
        )

    def scaled_to_square(self) -> "BoundingBox":
        """Return the smallest enclosing square box sharing this box's centre.

        The paper assumes a square domain; rectangular regions "can be scaled
        in advance of executing our algorithm to equalize the range in each
        dimension" (Section 4, footnote 3).  Expanding to the enclosing
        square is the loss-free way to do that.
        """
        side = max(self.width, self.height)
        c = self.center
        half = side / 2.0
        return BoundingBox(c.x - half, c.y - half, c.x + half, c.y + half)

    def split(self, g: int) -> list["BoundingBox"]:
        """Split the box into a ``g x g`` regular grid of sub-boxes.

        Returned in row-major order: index ``row * g + col`` with row 0 at
        the bottom (minimum y) and col 0 at the left (minimum x).
        """
        if g < 1:
            raise GeometryError(f"grid granularity must be >= 1, got {g}")
        xs = [self.min_x + self.width * i / g for i in range(g + 1)]
        ys = [self.min_y + self.height * j / g for j in range(g + 1)]
        return [
            BoundingBox(xs[col], ys[row], xs[col + 1], ys[row + 1])
            for row in range(g)
            for col in range(g)
        ]
