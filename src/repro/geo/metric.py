"""Distance metrics.

The paper distinguishes two metric roles (Section 2.2, footnote 2):

* a **distinguishability metric** ``dX`` that appears in the GeoInd
  constraint ``K(x)(z) <= exp(eps * dX(x, x')) * K(x')(z)`` — the paper
  uses planar Euclidean distance;
* a **utility (quality) loss metric** ``dQ`` used in the OPT objective and
  the evaluation — the paper uses Euclidean distance ``d`` and squared
  Euclidean distance ``d^2``.

Both roles are served by :class:`Metric` objects.  Metrics are vectorised:
:meth:`Metric.pairwise` builds the full distance matrix between two point
sets with numpy, which is the hot path of the LP construction.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.geo.point import Point, points_to_array

#: Shared object→array conversion (kept under the historical local name).
_as_array = points_to_array


class Metric(abc.ABC):
    """A distance function on points of the planar domain.

    The protocol itself only promises ``__call__`` and ``pairwise``;
    it does **not** guarantee the metric axioms.  Implementations need
    not be planar (the road-network :class:`~repro.graph.metric.
    GraphMetric` measures shortest-path distance) and need not satisfy
    the triangle inequality (:data:`SQUARED_EUCLIDEAN` deliberately
    violates it, which is why it is accepted only as ``dQ``).

    The GeoInd guarantee, however, is only meaningful when ``dX`` is a
    true *pseudometric*: non-negative, symmetric, ``d(x, x) = 0`` and
    triangle inequality.  (Pseudo: two distinct planar points may be at
    distance zero, e.g. when they snap to the same road vertex — GeoInd
    then simply makes them indistinguishable.)  Because the type system
    cannot enforce this, :meth:`check_axioms` validates the axioms on a
    concrete sample and the privacy guard runs it on small matrices.
    """

    #: short name used in result tables (e.g. ``"euclidean"``)
    name: str = "metric"

    @abc.abstractmethod
    def __call__(self, a: Point, b: Point) -> float:
        """Distance between two points."""

    @abc.abstractmethod
    def pairwise(self, xs: Sequence[Point], zs: Sequence[Point]) -> np.ndarray:
        """Return the ``(len(xs), len(zs))`` matrix of distances."""

    def check_axioms(
        self,
        points: Sequence[Point],
        rtol: float = 1e-9,
        atol: float = 1e-9,
        max_points: int = 64,
    ) -> None:
        """Validate the pseudometric axioms on a sample of points.

        Checks finiteness, non-negativity, ``d(x, x) = 0``, symmetry
        and the triangle inequality over all triples of (at most
        ``max_points``) sample points, with tolerance
        ``atol + rtol * scale`` absorbing float rounding.  O(n^3) in
        the sample size, so keep the sample small; intended as a debug
        validator, not a hot-path check.

        Raises
        ------
        ValueError
            Naming the first violated axiom.  A metric that passes on
            a sample may still be invalid elsewhere — this is a
            falsifier, not a proof.
        """
        pts = list(points)[:max_points]
        if len(pts) < 2:
            return
        d = np.asarray(self.pairwise(pts, pts), dtype=float)
        if not np.all(np.isfinite(d)):
            raise ValueError(f"{self.name}: non-finite distances in sample")
        scale = float(d.max()) if d.size else 0.0
        tol = atol + rtol * scale
        if float(d.min()) < -tol:
            raise ValueError(
                f"{self.name}: negative distance ({float(d.min()):.3e})"
            )
        worst_diag = float(np.abs(np.diagonal(d)).max())
        if worst_diag > tol:
            raise ValueError(
                f"{self.name}: d(x, x) != 0 (worst {worst_diag:.3e})"
            )
        worst_asym = float(np.abs(d - d.T).max())
        if worst_asym > tol:
            raise ValueError(
                f"{self.name}: asymmetric (worst |d(x,y)-d(y,x)| "
                f"= {worst_asym:.3e})"
            )
        # d[i, k] <= d[i, j] + d[j, k] for all triples (broadcast to n^3).
        excess = d[:, None, :] - (d[:, :, None] + d[None, :, :])
        worst_tri = float(excess.max())
        if worst_tri > tol:
            raise ValueError(
                f"{self.name}: triangle inequality violated "
                f"(worst excess {worst_tri:.3e})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class EuclideanMetric(Metric):
    """Planar Euclidean distance ``d`` in km.

    This is both the paper's distinguishability metric and its first
    utility metric.
    """

    name = "euclidean"

    def __call__(self, a: Point, b: Point) -> float:
        return a.distance_to(b)

    def pairwise(self, xs: Sequence[Point], zs: Sequence[Point]) -> np.ndarray:
        ax = _as_array(xs)
        az = _as_array(zs)
        diff = ax[:, None, :] - az[None, :, :]
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


class SquaredEuclideanMetric(Metric):
    """Squared Euclidean distance ``d^2`` in km^2.

    The paper's second utility metric: it estimates the growth of the
    result set a user must filter after enlarging the query range
    (Section 2.2).  It is *not* a valid distinguishability metric (it
    violates the triangle inequality), so mechanisms accept it only as
    ``dQ``, never as ``dX``.
    """

    name = "squared_euclidean"

    def __call__(self, a: Point, b: Point) -> float:
        return a.squared_distance_to(b)

    def pairwise(self, xs: Sequence[Point], zs: Sequence[Point]) -> np.ndarray:
        ax = _as_array(xs)
        az = _as_array(zs)
        diff = ax[:, None, :] - az[None, :, :]
        return np.einsum("ijk,ijk->ij", diff, diff)


class ManhattanMetric(Metric):
    """L1 (taxicab) distance in km.

    Not used by the paper's evaluation, but a natural distinguishability
    metric for street-grid cities; exposed so downstream users can study
    metric sensitivity.
    """

    name = "manhattan"

    def __call__(self, a: Point, b: Point) -> float:
        return a.manhattan_distance_to(b)

    def pairwise(self, xs: Sequence[Point], zs: Sequence[Point]) -> np.ndarray:
        ax = _as_array(xs)
        az = _as_array(zs)
        return np.abs(ax[:, None, :] - az[None, :, :]).sum(axis=2)


#: Module-level singletons; metrics are stateless so sharing is safe.
EUCLIDEAN = EuclideanMetric()
SQUARED_EUCLIDEAN = SquaredEuclideanMetric()
MANHATTAN = ManhattanMetric()

_REGISTRY: dict[str, Metric] = {
    m.name: m for m in (EUCLIDEAN, SQUARED_EUCLIDEAN, MANHATTAN)
}


def get_metric(name: str) -> Metric:
    """Look up a metric by its :attr:`Metric.name`.

    Raises
    ------
    KeyError
        If no metric with that name is registered.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown metric {name!r}; known metrics: {known}") from None
