"""Distance metrics.

The paper distinguishes two metric roles (Section 2.2, footnote 2):

* a **distinguishability metric** ``dX`` that appears in the GeoInd
  constraint ``K(x)(z) <= exp(eps * dX(x, x')) * K(x')(z)`` — the paper
  uses planar Euclidean distance;
* a **utility (quality) loss metric** ``dQ`` used in the OPT objective and
  the evaluation — the paper uses Euclidean distance ``d`` and squared
  Euclidean distance ``d^2``.

Both roles are served by :class:`Metric` objects.  Metrics are vectorised:
:meth:`Metric.pairwise` builds the full distance matrix between two point
sets with numpy, which is the hot path of the LP construction.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.geo.point import Point, points_to_array

#: Shared object→array conversion (kept under the historical local name).
_as_array = points_to_array


class Metric(abc.ABC):
    """A symmetric, non-negative distance function on planar points."""

    #: short name used in result tables (e.g. ``"euclidean"``)
    name: str = "metric"

    @abc.abstractmethod
    def __call__(self, a: Point, b: Point) -> float:
        """Distance between two points."""

    @abc.abstractmethod
    def pairwise(self, xs: Sequence[Point], zs: Sequence[Point]) -> np.ndarray:
        """Return the ``(len(xs), len(zs))`` matrix of distances."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class EuclideanMetric(Metric):
    """Planar Euclidean distance ``d`` in km.

    This is both the paper's distinguishability metric and its first
    utility metric.
    """

    name = "euclidean"

    def __call__(self, a: Point, b: Point) -> float:
        return a.distance_to(b)

    def pairwise(self, xs: Sequence[Point], zs: Sequence[Point]) -> np.ndarray:
        ax = _as_array(xs)
        az = _as_array(zs)
        diff = ax[:, None, :] - az[None, :, :]
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


class SquaredEuclideanMetric(Metric):
    """Squared Euclidean distance ``d^2`` in km^2.

    The paper's second utility metric: it estimates the growth of the
    result set a user must filter after enlarging the query range
    (Section 2.2).  It is *not* a valid distinguishability metric (it
    violates the triangle inequality), so mechanisms accept it only as
    ``dQ``, never as ``dX``.
    """

    name = "squared_euclidean"

    def __call__(self, a: Point, b: Point) -> float:
        return a.squared_distance_to(b)

    def pairwise(self, xs: Sequence[Point], zs: Sequence[Point]) -> np.ndarray:
        ax = _as_array(xs)
        az = _as_array(zs)
        diff = ax[:, None, :] - az[None, :, :]
        return np.einsum("ijk,ijk->ij", diff, diff)


class ManhattanMetric(Metric):
    """L1 (taxicab) distance in km.

    Not used by the paper's evaluation, but a natural distinguishability
    metric for street-grid cities; exposed so downstream users can study
    metric sensitivity.
    """

    name = "manhattan"

    def __call__(self, a: Point, b: Point) -> float:
        return a.manhattan_distance_to(b)

    def pairwise(self, xs: Sequence[Point], zs: Sequence[Point]) -> np.ndarray:
        ax = _as_array(xs)
        az = _as_array(zs)
        return np.abs(ax[:, None, :] - az[None, :, :]).sum(axis=2)


#: Module-level singletons; metrics are stateless so sharing is safe.
EUCLIDEAN = EuclideanMetric()
SQUARED_EUCLIDEAN = SquaredEuclideanMetric()
MANHATTAN = ManhattanMetric()

_REGISTRY: dict[str, Metric] = {
    m.name: m for m in (EUCLIDEAN, SQUARED_EUCLIDEAN, MANHATTAN)
}


def get_metric(name: str) -> Metric:
    """Look up a metric by its :attr:`Metric.name`.

    Raises
    ------
    KeyError
        If no metric with that name is registered.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown metric {name!r}; known metrics: {known}") from None
