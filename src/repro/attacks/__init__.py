"""Adversarial evaluation: Bayesian optimal inference attacks."""

from repro.attacks.bayesian import (
    AttackReport,
    blind_guess_error,
    optimal_inference_attack,
)

__all__ = ["AttackReport", "blind_guess_error", "optimal_inference_attack"]
