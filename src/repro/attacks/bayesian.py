"""Bayesian inference attacks on location mechanisms.

An adversary with prior Pi observing a reported location ``z`` forms the
posterior ``sigma(x|z) ~ Pi(x) K(x, z)`` and guesses the location
minimising posterior-expected error — the *optimal inference attack* of
Shokri et al. [24].  Two standard summary numbers:

* **expected inference error** — the adversary's remaining expected
  distance to the truth (higher = more private);
* **identification rate** — probability the MAP guess hits the true
  cell (lower = more private).

GeoInd mechanisms bound the ratio of posteriors to priors regardless of
Pi; these attacks quantify the *absolute* protection against a specific
prior and keep the reproduction's privacy claims measurable rather than
rhetorical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.metric import EUCLIDEAN, Metric
from repro.mechanisms.matrix import MechanismMatrix
from repro.mechanisms.remap import posterior_matrix


@dataclass(frozen=True)
class AttackReport:
    """Outcome of an optimal inference attack against a mechanism.

    Attributes
    ----------
    expected_error:
        Adversary's expected distance (under ``metric``) between the
        optimal guess and the true location.
    identification_rate:
        Probability the MAP guess equals the true location.
    prior_error:
        The blind (no-observation) optimal expected error — the
        baseline an attack should be compared against.
    prior_identification_rate:
        Blind MAP hit rate (mass of the prior's mode).
    """

    expected_error: float
    identification_rate: float
    prior_error: float
    prior_identification_rate: float

    @property
    def error_reduction(self) -> float:
        """How much observing ``z`` shrinks the adversary error (0..1)."""
        if self.prior_error <= 0:
            return 0.0
        return 1.0 - self.expected_error / self.prior_error


def blind_guess_error(
    prior: np.ndarray, matrix: MechanismMatrix, metric: Metric = EUCLIDEAN
) -> float:
    """Optimal expected error with no observation at all."""
    prior = np.asarray(prior, dtype=float).ravel()
    d = metric.pairwise(matrix.inputs, matrix.inputs)
    return float(np.min(prior @ d))


def optimal_inference_attack(
    matrix: MechanismMatrix,
    prior: np.ndarray,
    metric: Metric = EUCLIDEAN,
) -> AttackReport:
    """Run the optimal Bayesian attack against a mechanism matrix.

    The guess set is the mechanism's input location set (the grid), so
    the reported numbers are exact expectations, not Monte-Carlo.
    """
    prior = np.asarray(prior, dtype=float).ravel()
    k = matrix.k
    sigma = posterior_matrix(matrix, prior)  # (z, x)
    marginal = prior @ k  # (z,)
    d = metric.pairwise(matrix.inputs, matrix.inputs)  # (x, guess)

    # Distance attack: per z, best guess minimising posterior expectation.
    per_z_error = (sigma @ d).min(axis=1)  # (z,)
    expected_error = float(marginal @ per_z_error)

    # Identification attack: per z, MAP guess; hit prob = posterior mass.
    map_mass = sigma.max(axis=1)  # (z,)
    identification = float(marginal @ map_mass)

    return AttackReport(
        expected_error=expected_error,
        identification_rate=identification,
        prior_error=blind_guess_error(prior, matrix, metric),
        prior_identification_rate=float(prior.max()),
    )
