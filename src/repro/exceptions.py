"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries while still being able to
discriminate finer failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GeometryError(ReproError):
    """A geometric argument is malformed (degenerate box, bad coordinate)."""


class GridError(ReproError):
    """A grid or index operation received inconsistent parameters."""


class PriorError(ReproError):
    """A prior distribution is malformed (negative mass, wrong shape)."""


class DatasetError(ReproError):
    """A dataset could not be loaded, parsed, or generated."""


class SolverError(ReproError):
    """The linear-programming substrate failed to produce a solution."""


class InfeasibleProblemError(SolverError):
    """The linear program has no feasible point."""


class UnboundedProblemError(SolverError):
    """The linear program is unbounded below."""


class MechanismError(ReproError):
    """A mechanism was constructed or invoked with invalid parameters."""


class PrivacyViolationError(ReproError):
    """A mechanism matrix fails the geo-indistinguishability constraints."""


class BudgetError(ReproError):
    """Privacy-budget accounting failed (exhausted or invalid budget)."""


class EvaluationError(ReproError):
    """An experiment harness was configured inconsistently."""
