"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries while still being able to
discriminate finer failure modes.

Failure-mode contract of the sanitisation path
----------------------------------------------
The resilience layer (:mod:`repro.core.resilience`) makes the pipeline
fail *closed*: on any solver trouble the system may lose utility, never
privacy.  The relevant signals are:

:class:`SolverError`
    Generic LP-substrate failure.  Raised directly by the backends on
    malformed programs and by :func:`repro.lp.solve_or_raise` on any
    non-optimal terminal status.

:class:`InfeasibleProblemError` / :class:`UnboundedProblemError`
    Structural LP outcomes.  The resilient solver does **not** retry the
    same backend on these (a deterministic solver would fail again) but
    still advances to the next backend in the chain, because HiGHS
    occasionally misreports badly-scaled programs as infeasible.

:class:`SolverRetryExhaustedError`
    Fires when every backend in a :class:`~repro.core.resilience.ResilientSolver`
    chain has been tried up to its retry budget and none produced an
    optimal solution.  Carries the full per-attempt record in
    :attr:`SolverRetryExhaustedError.attempts` for diagnosis.  When MSM
    degradation is disabled this error propagates out of
    ``MultiStepMechanism.sample`` — the request is refused rather than
    served from an unsolved mechanism.

:class:`DegradedModeWarning`
    A :class:`Warning` (not an error) emitted exactly once per index
    node when MSM substitutes the closed-form exponential mechanism for
    an unsolvable per-level OPT.  The substitute runs at the *same*
    per-level epsilon, so privacy and budget accounting are unchanged;
    the warning (plus the walk's ``DegradationReport``) tells operators
    that utility is now sub-optimal at that node.

:class:`PrivacyViolationError`
    The last line of defence: the mandatory matrix guard
    (:func:`repro.privacy.guard.guard_mechanism`) found a mechanism that
    is not row-stochastic, not non-negative, or not epsilon-GeoInd.  No
    code path samples from a matrix that failed the guard — including
    matrices restored from an on-disk bundle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.resilience import SolveAttempt


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GeometryError(ReproError):
    """A geometric argument is malformed (degenerate box, bad coordinate)."""


class GridError(ReproError):
    """A grid or index operation received inconsistent parameters."""


class PriorError(ReproError):
    """A prior distribution is malformed (negative mass, wrong shape)."""


class DatasetError(ReproError):
    """A dataset could not be loaded, parsed, or generated."""


class SolverError(ReproError):
    """The linear-programming substrate failed to produce a solution."""


class InfeasibleProblemError(SolverError):
    """The linear program has no feasible point."""


class UnboundedProblemError(SolverError):
    """The linear program is unbounded below."""


class SolverRetryExhaustedError(SolverError):
    """Every backend in a fallback chain failed within its retry budget.

    Attributes
    ----------
    attempts:
        The per-attempt :class:`~repro.core.resilience.SolveAttempt`
        records, in the order they were made, covering every backend of
        the chain.
    """

    def __init__(self, message: str, attempts: Sequence["SolveAttempt"] = ()):
        super().__init__(message)
        self.attempts = tuple(attempts)


class MechanismError(ReproError):
    """A mechanism was constructed or invoked with invalid parameters."""


class PrivacyViolationError(ReproError):
    """A mechanism matrix fails the geo-indistinguishability constraints."""


class BudgetError(ReproError):
    """Privacy-budget accounting failed (exhausted or invalid budget)."""


class EvaluationError(ReproError):
    """An experiment harness was configured inconsistently."""


class ObservabilityError(ReproError):
    """The observability layer (:mod:`repro.obs`) was misused.

    Raised on contract violations in instrumentation itself — a counter
    asked to decrease, a metric name re-registered as a different type,
    histogram bucket edges that differ across merged snapshots, or a
    span closed out of order.  Never raised by the engine's hot path
    when observability is disabled.
    """


class ServeError(ReproError):
    """The serving front-end refused or failed a request.

    Raised on overload (the pending-request queue is full), on requests
    outside the served domain, on requests submitted to (or still
    pending in) a stopped server, and on requests whose deadline
    elapsed before dispatch.  Budget refusals raise
    :class:`BudgetError` instead — they are an admission-control
    decision, not a serving failure.

    Attributes
    ----------
    reason:
        A short machine-readable category (``"overload"``,
        ``"domain"``, ``"stopped"``, ``"timeout"``, ``"abandoned"``,
        ``"failed"``) or None for uncategorised failures.  The serving
        front-end's bounded retry loop treats ``"overload"`` as
        transient and everything else as final.
    """

    def __init__(self, message: str, reason: str | None = None):
        super().__init__(message)
        self.reason = reason


class LedgerError(ReproError):
    """The durable budget ledger was misused or cannot be written.

    Raised on malformed reserve/commit/release sequences (committing an
    unknown entry id, releasing an already-committed reservation) and
    on unwritable journal files.  *Never* raised for corruption found
    while replaying a journal — torn tails and flipped bytes are an
    expected crash outcome; replay degrades fail-closed (skips the
    unreadable entries, counts every readable reservation as spent) and
    reports them through :class:`~repro.core.ledger.LedgerReplay`
    instead of refusing to open.
    """


class CircuitOpenError(SolverError):
    """The solver circuit breaker is open: the solve was refused without
    being attempted.

    A :class:`~repro.core.resilience.CircuitBreakerSolver` raises this
    after repeated chain-exhausted failures, so the walk engine's
    degradation path serves the closed-form exponential fallback
    immediately instead of burning a full retry chain per node while
    the LP substrate is down.  Subclasses :class:`SolverError`, so
    every existing fail-closed handler treats it as one more solver
    failure — utility may degrade, privacy never does.
    """


class DegradedModeWarning(Warning):
    """MSM substituted a closed-form fallback for an unsolvable OPT level.

    Privacy is unaffected (the substitute satisfies the same per-level
    epsilon); utility at the affected node is no longer optimal.
    """
