"""Chaos harness: scripted crashes and byte-level corruption.

The crash-safety claims of the budget ledger (see
:mod:`repro.core.ledger`) are *ordering* claims — "a reservation is
durable before sampling may begin", "a torn tail replays as spend" —
and ordering claims need a harness that can stop the world at an exact
point in the protocol, not a fuzzer that might.  This module provides
three deterministic instruments:

* :class:`CrashingLedger` — a drop-in proxy over a real
  :class:`~repro.core.ledger.BudgetLedger` that raises
  :class:`CrashError` at a scripted :class:`CrashPoint` (before or
  after the nth call of a given op).  Crashing *after* an append is the
  interesting case: the entry is already durable on disk while the
  in-process caller never observes the return — exactly the window a
  power cut leaves behind.  The journal file survives the "crash", so a
  test reopens it with a fresh ledger and asserts on the replay.
* Byte-surgery helpers — :func:`truncate_tail` (the classic torn final
  write) and :func:`flip_byte` (silent media corruption) mutilate a
  journal or store bundle at exact offsets, so replay/quarantine paths
  are exercised against realistic artefacts rather than hand-built
  garbage.
* :class:`CrashFault` — a :class:`~repro.testing.faults.FaultRule`
  that raises :class:`CrashError` from inside the LP substrate.
  Because :class:`CrashError` is *not* a
  :class:`~repro.exceptions.SolverError`, the resilience ladder cannot
  degrade around it: it tears through the engine mid-batch, which is
  how tests prove a failed batch *charges* the budget (fail closed)
  instead of refunding it.

Everything here is deterministic and consumes no wall clock; the
process-level complement (SIGKILL against a live server) lives in the
``chaos``-marked subprocess tests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.core.ledger import BudgetLedger, LedgerReplay, OpenReservation
from repro.testing.faults import FaultRule


class CrashError(RuntimeError):
    """A simulated process death at a scripted protocol point.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`
    subclass: production code must never have a handler that matches
    it, the same way no handler matches SIGKILL.
    """


@dataclass(frozen=True)
class CrashPoint:
    """Where in the ledger protocol to die.

    ``op`` is the ledger method name (``"reserve"``, ``"commit"``,
    ``"release"``, ``"compact"``); ``nth`` is the 1-based call count of
    that op; ``when`` is ``"before"`` (the append never happened) or
    ``"after"`` (the append is durable, the caller never saw it
    succeed).
    """

    op: str
    nth: int = 1
    when: str = "after"

    def __post_init__(self):
        if self.op not in ("reserve", "commit", "release", "compact"):
            raise ValueError(f"unknown ledger op {self.op!r}")
        if self.nth < 1:
            raise ValueError(f"nth must be >= 1, got {self.nth}")
        if self.when not in ("before", "after"):
            raise ValueError(f"when must be before/after, got {self.when!r}")


class CrashingLedger:
    """A :class:`BudgetLedger` proxy that dies on schedule.

    Drop-in wherever a ledger is accepted (the serving front-end's
    ``ledger=`` parameter): all reads pass through, and each write op
    checks the scripted :class:`CrashPoint` list before and after
    delegating.  After a crash fires, every subsequent write also
    raises — a dead process does not come back — until the test builds
    a fresh ledger over the surviving journal file.
    """

    def __init__(
        self,
        inner: BudgetLedger,
        crash_points: tuple[CrashPoint, ...] | list[CrashPoint] = (),
    ):
        self._inner = inner
        self._points = list(crash_points)
        self._counts: dict[str, int] = {}
        #: the point that fired, or None while still alive
        self.crashed_at: CrashPoint | None = None
        #: every successful write, as ``(op, entry_id)`` pairs
        self.log: list[tuple[str, str]] = []

    # -- crash machinery ------------------------------------------------
    def _maybe_crash(self, op: str, when: str) -> None:
        if self.crashed_at is not None:
            raise CrashError(
                f"ledger already crashed at {self.crashed_at}"
            )
        count = self._counts[op]
        for point in self._points:
            if (
                point.op == op
                and point.when == when
                and point.nth == count
            ):
                self.crashed_at = point
                raise CrashError(f"injected crash {when} {op} #{count}")

    def _enter(self, op: str) -> None:
        if self.crashed_at is not None:
            raise CrashError(
                f"ledger already crashed at {self.crashed_at}"
            )
        self._counts[op] = self._counts.get(op, 0) + 1
        self._maybe_crash(op, "before")

    # -- write ops ------------------------------------------------------
    def reserve(self, user: str, epsilon: float) -> str:
        self._enter("reserve")
        entry_id = self._inner.reserve(user, epsilon)
        self.log.append(("reserve", entry_id))
        self._maybe_crash("reserve", "after")
        return entry_id

    def commit(self, entry_id: str) -> None:
        self._enter("commit")
        self._inner.commit(entry_id)
        self.log.append(("commit", entry_id))
        self._maybe_crash("commit", "after")

    def release(self, entry_id: str) -> None:
        self._enter("release")
        self._inner.release(entry_id)
        self.log.append(("release", entry_id))
        self._maybe_crash("release", "after")

    def compact(self) -> int:
        self._enter("compact")
        entries = self._inner.compact()
        self.log.append(("compact", str(entries)))
        self._maybe_crash("compact", "after")
        return entries

    # -- passthrough reads / lifecycle ---------------------------------
    @property
    def path(self) -> Path:
        return self._inner.path

    @property
    def replay(self) -> LedgerReplay:
        return self._inner.replay

    def spent_by_user(self) -> dict[str, float]:
        return self._inner.spent_by_user()

    def spent_for(self, user: str) -> float:
        return self._inner.spent_for(user)

    def open_reservations(self) -> dict[str, OpenReservation]:
        return self._inner.open_reservations()

    def bind_observability(self, obs) -> None:
        self._inner.bind_observability(obs)

    def close(self) -> None:
        self._inner.close()

    def __enter__(self) -> "CrashingLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# byte surgery
# ----------------------------------------------------------------------
def truncate_tail(path: str | Path, nbytes: int = 1) -> int:
    """Chop the last ``nbytes`` off a file — the torn final write.

    Returns the new size.  Truncating more bytes than the file holds
    leaves an empty file (a crash during the very first append).
    """
    path = Path(path)
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    size = path.stat().st_size
    new_size = max(0, size - nbytes)
    with open(path, "r+b") as fh:
        fh.truncate(new_size)
        fh.flush()
        os.fsync(fh.fileno())
    return new_size


def flip_byte(path: str | Path, offset: int) -> None:
    """XOR one byte at ``offset`` (negative offsets count from the end).

    Models silent single-byte media corruption; the per-entry CRC in a
    journal and the SHA-256 sidecar on a store bundle both exist to
    catch exactly this.
    """
    path = Path(path)
    size = path.stat().st_size
    if offset < 0:
        offset += size
    if not 0 <= offset < size:
        raise ValueError(
            f"offset {offset} outside file of {size} bytes"
        )
    with open(path, "r+b") as fh:
        fh.seek(offset)
        original = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([original[0] ^ 0xFF]))
        fh.flush()
        os.fsync(fh.fileno())


def corrupt_journal_entry(path: str | Path, line_no: int) -> None:
    """Flip a byte inside the ``line_no``-th journal line (0-based).

    A targeted convenience over :func:`flip_byte`: finds the byte
    offset of the chosen line and corrupts its middle, so tests can
    destroy *one* specific reserve/commit without arithmetic on
    serialised lengths.
    """
    path = Path(path)
    data = path.read_bytes()
    lines = data.splitlines(keepends=True)
    if not 0 <= line_no < len(lines):
        raise ValueError(
            f"line {line_no} outside journal of {len(lines)} lines"
        )
    offset = sum(len(line) for line in lines[:line_no])
    flip_byte(path, offset + len(lines[line_no]) // 2)


class CrashFault(FaultRule):
    """Die inside the LP substrate, mid-batch.

    Raises :class:`CrashError`.  Note that
    :class:`~repro.core.resilience.ResilientSolver` is deliberately
    fail-closed against *any* substrate exception — wrapped in the
    resilience chain this fault is absorbed as a failed attempt and
    surfaces as a :class:`~repro.exceptions.SolverRetryExhaustedError`,
    which the engine degrades around (utility loss, privacy unchanged).
    To genuinely tear a batch, inject it through a **bare** solver with
    no resilience chain (see ``tests/test_crash_safety.py``): the
    exception then escapes the walk engine and the serving layer's
    batch-failure path runs.  The fail-closed invariant under test:
    every request in the torn batch is *charged* (sampling may already
    have begun for siblings) and its reservation committed, never
    released.
    """

    def __init__(self, message: str = "injected mid-batch crash", **match):
        super().__init__(**match)
        self._message = message

    def intercept(self, call, problem, delegate):  # noqa: D102
        raise CrashError(f"{self._message} (call #{call.index})")

    def describe(self) -> str:
        return f"crash:{self._message}"
