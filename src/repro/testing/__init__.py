"""Deterministic fault injection for resilience testing.

See :mod:`repro.testing.faults`.
"""

from repro.testing.faults import (
    FaultInjectingSolver,
    FaultRule,
    FlakyCacheProxy,
    LatencyFault,
    RaiseFault,
    SolveCall,
    StatusFault,
)

__all__ = [
    "FaultInjectingSolver",
    "FaultRule",
    "FlakyCacheProxy",
    "LatencyFault",
    "RaiseFault",
    "SolveCall",
    "StatusFault",
]
