"""Deterministic fault injection and chaos testing.

See :mod:`repro.testing.faults` for the LP-substrate fault rules and
:mod:`repro.testing.chaos` for scripted crashes and byte corruption.
"""

from repro.testing.chaos import (
    CrashError,
    CrashFault,
    CrashingLedger,
    CrashPoint,
    corrupt_journal_entry,
    flip_byte,
    truncate_tail,
)
from repro.testing.faults import (
    FaultInjectingSolver,
    FaultRule,
    FlakyCacheProxy,
    LatencyFault,
    RaiseFault,
    SolveCall,
    StatusFault,
)

__all__ = [
    "CrashError",
    "CrashFault",
    "CrashPoint",
    "CrashingLedger",
    "FaultInjectingSolver",
    "FaultRule",
    "FlakyCacheProxy",
    "LatencyFault",
    "RaiseFault",
    "SolveCall",
    "StatusFault",
    "corrupt_journal_entry",
    "flip_byte",
    "truncate_tail",
]
