"""Deterministic fault injection for the LP substrate and mechanism cache.

The resilience layer is only trustworthy if its failure paths are
exercised, and mocking scipy internals makes for brittle, white-box
tests.  Instead, :class:`FaultInjectingSolver` is a drop-in for
:func:`repro.lp.solve` — the exact seam
:class:`~repro.core.resilience.ResilientSolver` already exposes via its
``solve_fn`` parameter — that runs a scripted list of
:class:`FaultRule` objects in front of a real delegate:

* :class:`RaiseFault` — raise a :class:`~repro.exceptions.SolverError`
  (or any supplied exception factory);
* :class:`StatusFault` — return a doctored non-optimal
  :class:`~repro.lp.result.LPResult` with a chosen status code, the way
  a backend reports failure without raising;
* :class:`LatencyFault` — simulate a slow solve deterministically: when
  the caller's time limit is smaller than the simulated latency the call
  "times out" (a ``TIME_LIMIT`` result), otherwise it delegates and adds
  the latency to the reported solve time.  No wall clock is consumed.

Each rule matches on backend name, call index (``nth``), a warm-up
window (``first_n`` — "flaky then recover") or its complement
(``after`` — "works then breaks"), and every decision is recorded in
:attr:`FaultInjectingSolver.log` so tests can assert on the exact
sequence of injected failures.

:class:`FlakyCacheProxy` plays the same role for the MSM node cache:
it wraps a real :class:`~repro.core.cache.NodeMechanismCache` and
forces misses (all, or for chosen node paths), simulating cold starts
and evictions without touching cache internals.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.cache import CacheEntry, NodeMechanismCache
from repro.exceptions import SolverError
from repro.lp import solve as real_solve
from repro.lp.problem import LinearProgram
from repro.lp.result import LPResult, LPStatus
from repro.mechanisms.matrix import MechanismMatrix


@dataclass(frozen=True)
class SolveCall:
    """One observed invocation of the wrapped solver."""

    index: int
    backend: str
    time_limit: float | None
    n_vars: int


class FaultRule:
    """Base fault rule: pure match bookkeeping, no fault behaviour.

    Parameters
    ----------
    backend:
        Only calls whose backend name starts with this prefix are
        eligible (``"highs"`` matches both HiGHS methods); ``None``
        matches every backend.
    nth:
        Fire only on the nth *eligible* call (1-based).
    first_n:
        Fire on the first n eligible calls, then stand down — the
        "flaky then recover" script.
    after:
        Fire on every eligible call *after* the first ``after`` —
        "works, then breaks" (e.g. let the root level solve, fail the
        rest of the walk).

    The predicates combine conjunctively; a rule keeps its own counter
    of eligible calls, so two rules with different backend filters count
    independently.
    """

    def __init__(
        self,
        backend: str | None = None,
        nth: int | None = None,
        first_n: int | None = None,
        after: int | None = None,
    ):
        if nth is not None and nth < 1:
            raise ValueError(f"nth must be >= 1, got {nth}")
        if first_n is not None and first_n < 1:
            raise ValueError(f"first_n must be >= 1, got {first_n}")
        if after is not None and after < 0:
            raise ValueError(f"after must be >= 0, got {after}")
        self._backend = backend
        self._nth = nth
        self._first_n = first_n
        self._after = after
        self._seen = 0

    @property
    def seen(self) -> int:
        """How many eligible calls this rule has observed."""
        return self._seen

    def matches(self, call: SolveCall) -> bool:
        """Whether this rule fires for ``call`` (advances the counter)."""
        if self._backend is not None and not call.backend.startswith(
            self._backend
        ):
            return False
        self._seen += 1
        if self._nth is not None and self._seen != self._nth:
            return False
        if self._first_n is not None and self._seen > self._first_n:
            return False
        if self._after is not None and self._seen <= self._after:
            return False
        return True

    def intercept(
        self,
        call: SolveCall,
        problem: LinearProgram,
        delegate: Callable[[], LPResult],
    ) -> LPResult:
        """Produce the faulty outcome (subclasses implement)."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short label used in the injector's log."""
        return type(self).__name__


class RaiseFault(FaultRule):
    """Raise an exception instead of solving."""

    def __init__(
        self,
        message: str = "injected solver fault",
        exc_factory: Callable[[str], Exception] | None = None,
        **match,
    ):
        super().__init__(**match)
        self._message = message
        self._exc_factory = exc_factory or SolverError

    def intercept(self, call, problem, delegate):  # noqa: D102
        raise self._exc_factory(f"{self._message} (call #{call.index})")

    def describe(self) -> str:
        return f"raise:{self._message}"


class StatusFault(FaultRule):
    """Return a doctored failed :class:`LPResult` with a chosen status."""

    def __init__(self, status: LPStatus = LPStatus.NUMERICAL, **match):
        super().__init__(**match)
        if status is LPStatus.OPTIMAL:
            raise ValueError("StatusFault injects failures, not optima")
        self._status = status

    def intercept(self, call, problem, delegate):  # noqa: D102
        return LPResult(
            status=self._status,
            x=np.empty(0),
            objective=float("nan"),
            iterations=0,
            backend=f"fault:{call.backend}",
            solve_seconds=0.0,
            raw_status=-1,
            message=f"injected status {self._status.value}",
        )

    def describe(self) -> str:
        return f"status:{self._status.value}"


class LatencyFault(FaultRule):
    """Simulate a solve that takes ``seconds`` of wall clock.

    Deterministic: if the call carries a time limit smaller than the
    simulated latency, the solve "times out" and a ``TIME_LIMIT``
    failure is returned; otherwise the delegate runs and the latency is
    added to its reported ``solve_seconds``.  Combined with
    :class:`~repro.core.resilience.ResilienceConfig.time_limit_growth`
    this reproduces the retry-with-larger-budget recovery path without
    ever sleeping.
    """

    def __init__(self, seconds: float, **match):
        super().__init__(**match)
        if seconds <= 0:
            raise ValueError(f"latency must be positive, got {seconds}")
        self._seconds = seconds

    def intercept(self, call, problem, delegate):  # noqa: D102
        if call.time_limit is not None and call.time_limit < self._seconds:
            return LPResult(
                status=LPStatus.TIME_LIMIT,
                x=np.empty(0),
                objective=float("nan"),
                iterations=0,
                backend=f"fault:{call.backend}",
                solve_seconds=call.time_limit,
                raw_status=1,
                message=(
                    f"injected latency {self._seconds}s exceeds time "
                    f"limit {call.time_limit}s"
                ),
            )
        result = delegate()
        return replace(
            result, solve_seconds=result.solve_seconds + self._seconds
        )

    def describe(self) -> str:
        return f"latency:{self._seconds}s"


class FaultInjectingSolver:
    """Scripted-failure drop-in for :func:`repro.lp.solve`.

    Pass an instance as ``solve_fn`` to a
    :class:`~repro.core.resilience.ResilientSolver` (or call it
    directly).  Rules are consulted in order; the first match decides
    the call's fate, otherwise the real delegate solves the program.
    """

    def __init__(
        self,
        rules: Iterable[FaultRule],
        delegate: Callable[..., LPResult] | None = None,
    ):
        self._rules = list(rules)
        self._delegate = delegate or real_solve
        self.calls: list[SolveCall] = []
        self.log: list[tuple[SolveCall, str]] = []

    @property
    def n_calls(self) -> int:
        """Total calls observed."""
        return len(self.calls)

    def __call__(
        self,
        problem: LinearProgram,
        backend: str = "highs-ds",
        time_limit: float | None = None,
        obs=None,
    ) -> LPResult:
        # obs is the observability handle the resilient solver forwards
        # when instrumentation is on; pass it through to the delegate so
        # backend-level metrics stay truthful under fault injection.
        kwargs = {} if obs is None else {"obs": obs}
        call = SolveCall(
            index=len(self.calls) + 1,
            backend=backend,
            time_limit=time_limit,
            n_vars=problem.n_vars,
        )
        self.calls.append(call)
        for rule in self._rules:
            if rule.matches(call):
                self.log.append((call, rule.describe()))
                return rule.intercept(
                    call,
                    problem,
                    lambda: self._delegate(
                        problem,
                        backend=backend,
                        time_limit=time_limit,
                        **kwargs,
                    ),
                )
        self.log.append((call, "delegate"))
        return self._delegate(
            problem, backend=backend, time_limit=time_limit, **kwargs
        )


class FlakyCacheProxy(NodeMechanismCache):
    """A node cache that deterministically loses entries.

    Wraps a real :class:`NodeMechanismCache`; lookups for dropped paths
    (or every path, with ``drop_all``) report a miss, forcing MSM back
    onto the solve path.  Writes pass through, so the harness can
    simulate both cold starts (``drop_all=True``) and targeted
    evictions.  Inject via ``MultiStepMechanism(cache=...)``.

    The bulk warm-up of the batch sanitiser
    (:meth:`NodeMechanismCache.get_or_build_many`) is inherited and runs
    through this proxy's :meth:`entry`/:meth:`put`, so dropped paths
    force re-solves on the batch path exactly as they do per point —
    which is how the fault suite shows a mid-batch solver failure
    degrading only the affected node's group.
    """

    def __init__(
        self,
        inner: NodeMechanismCache | None = None,
        drop_paths: Sequence[tuple[int, ...]] = (),
        drop_all: bool = False,
    ):
        super().__init__()
        self._inner = inner if inner is not None else NodeMechanismCache()
        self._drop_paths = set(drop_paths)
        self._drop_all = drop_all
        self.dropped_lookups = 0

    def entry(self, path: tuple[int, ...]) -> CacheEntry | None:
        if self._drop_all or path in self._drop_paths:
            self.dropped_lookups += 1
            self._record_miss()
            return None
        entry = self._inner.entry(path)
        if entry is None:
            self._record_miss()
        else:
            self._record_hit()
        return entry

    def _peek(self, path: tuple[int, ...]) -> CacheEntry | None:
        if self._drop_all or path in self._drop_paths:
            return None
        return self._inner._peek(path)

    def put(
        self,
        path: tuple[int, ...],
        matrix: MechanismMatrix,
        **meta,
    ) -> CacheEntry:
        return self._inner.put(path, matrix, **meta)

    def degraded_entries(self) -> dict[tuple[int, ...], CacheEntry]:
        return self._inner.degraded_entries()

    def __len__(self) -> int:
        return len(self._inner)

    def __contains__(self, path: tuple[int, ...]) -> bool:
        if self._drop_all or path in self._drop_paths:
            return False
        return path in self._inner

    def clear(self) -> None:
        self._inner.clear()
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.merges = 0
        self.dropped_lookups = 0

    @property
    def size_bytes(self) -> int:
        return self._inner.size_bytes

    @property
    def version(self) -> int:
        # Writes delegate to the inner cache, so its counter is the one
        # that moves; surfacing it keeps kernel invalidation honest
        # under the proxy.
        return self._inner.version

    @property
    def resident_bytes(self) -> int:
        return self._inner.resident_bytes
