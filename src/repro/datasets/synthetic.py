"""Synthetic check-in generation.

The paper evaluates on two proprietary-to-obtain samples (Gowalla/SNAP
check-ins for Austin, Yelp challenge check-ins for Las Vegas).  This
module provides the documented substitution (DESIGN.md Section 5): a
deterministic generator that reproduces what the mechanisms actually
consume —

* a **spatially skewed POI layout**: points of interest drawn from a
  Gaussian-mixture "city shape" (dense downtown, secondary clusters,
  suburban background);
* a **heavy-tailed popularity profile**: check-ins distributed over POIs
  by a Zipf law, as observed in geosocial datasets;
* matching **record and user counts** so that prior sharpness and
  request sampling behave like the originals.

Everything is driven by a single seed, so datasets are bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DatasetError
from repro.geo.bbox import BoundingBox
from repro.geo.projection import GeoBounds
from repro.datasets.checkin import CheckInDataset


@dataclass(frozen=True)
class Cluster:
    """One Gaussian component of the city shape.

    Coordinates are relative to the domain: ``(0, 0)`` is the south-west
    corner and ``(1, 1)`` the north-east corner; ``std`` is also a
    fraction of the domain side.
    """

    cx: float
    cy: float
    std: float
    weight: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.cx <= 1.0 and 0.0 <= self.cy <= 1.0):
            raise DatasetError(f"cluster centre ({self.cx}, {self.cy}) not in [0,1]^2")
        if self.std <= 0 or self.weight <= 0:
            raise DatasetError("cluster std and weight must be positive")


@dataclass(frozen=True)
class CityModel:
    """Full configuration of a synthetic city.

    Attributes
    ----------
    name:
        Dataset label.
    bounds:
        Planar domain (square, km).
    clusters:
        Gaussian mixture of the POI layout.
    n_pois:
        Number of distinct points of interest.
    zipf_exponent:
        Exponent of the POI popularity law (~1.0-1.3 in geosocial data).
    n_checkins, n_users:
        Record and user counts to emit.
    background_fraction:
        Fraction of POIs placed uniformly at random instead of from the
        mixture (sparse suburban noise).
    geo_bounds:
        Optional geographic window the synthetic city stands in for.
    """

    name: str
    bounds: BoundingBox
    clusters: tuple[Cluster, ...]
    n_pois: int = 2000
    zipf_exponent: float = 1.1
    n_checkins: int = 50_000
    n_users: int = 5_000
    background_fraction: float = 0.1
    geo_bounds: GeoBounds | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.clusters:
            raise DatasetError("a city model needs at least one cluster")
        if self.n_pois < 1 or self.n_checkins < 1 or self.n_users < 1:
            raise DatasetError("n_pois, n_checkins and n_users must be >= 1")
        if not (0.0 <= self.background_fraction <= 1.0):
            raise DatasetError("background_fraction must lie in [0, 1]")
        if self.zipf_exponent <= 0:
            raise DatasetError("zipf_exponent must be positive")

    def scaled(self, checkin_fraction: float) -> "CityModel":
        """A proportionally smaller copy (for fast tests and smoke runs)."""
        if not (0.0 < checkin_fraction <= 1.0):
            raise DatasetError("checkin_fraction must lie in (0, 1]")
        return CityModel(
            name=self.name,
            bounds=self.bounds,
            clusters=self.clusters,
            n_pois=max(1, int(self.n_pois * checkin_fraction)),
            zipf_exponent=self.zipf_exponent,
            n_checkins=max(1, int(self.n_checkins * checkin_fraction)),
            n_users=max(1, int(self.n_users * checkin_fraction)),
            background_fraction=self.background_fraction,
            geo_bounds=self.geo_bounds,
        )


def generate_pois(model: CityModel, rng: np.random.Generator) -> np.ndarray:
    """Draw the POI coordinate array ``(n_pois, 2)`` in km."""
    b = model.bounds
    side_x, side_y = b.width, b.height
    weights = np.asarray([c.weight for c in model.clusters], dtype=float)
    weights /= weights.sum()
    n_background = int(round(model.n_pois * model.background_fraction))
    n_clustered = model.n_pois - n_background

    assignment = rng.choice(len(model.clusters), size=n_clustered, p=weights)
    xy = np.empty((model.n_pois, 2))
    for k, cluster in enumerate(model.clusters):
        mask = assignment == k
        count = int(mask.sum())
        if count == 0:
            continue
        center = np.asarray([b.min_x + cluster.cx * side_x,
                             b.min_y + cluster.cy * side_y])
        std = cluster.std * np.asarray([side_x, side_y])
        xy[:n_clustered][mask] = rng.normal(center, std, size=(count, 2))
    if n_background:
        xy[n_clustered:, 0] = rng.uniform(b.min_x, b.max_x, size=n_background)
        xy[n_clustered:, 1] = rng.uniform(b.min_y, b.max_y, size=n_background)
    # Clamp mixture tails into the domain (the real datasets are filtered
    # to the window the same way).
    xy[:, 0] = np.clip(xy[:, 0], b.min_x, b.max_x)
    xy[:, 1] = np.clip(xy[:, 1], b.min_y, b.max_y)
    return xy


def zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalised Zipf popularity weights over ``n`` ranked items."""
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks**-exponent
    return w / w.sum()


def generate_checkins(model: CityModel, seed: int = 0) -> CheckInDataset:
    """Generate the full synthetic dataset for a city model.

    The pipeline: POIs from the mixture, a random permutation of
    popularity ranks over POIs (so the most popular POI is not always the
    one nearest a cluster centre), Zipf-weighted POI choice per check-in,
    a small within-POI jitter (GPS scatter), and Zipf-weighted user
    activity so a few power users produce many records.
    """
    rng = np.random.default_rng(seed)
    pois = generate_pois(model, rng)

    popularity = zipf_weights(model.n_pois, model.zipf_exponent)
    rng.shuffle(popularity)
    poi_choice = rng.choice(model.n_pois, size=model.n_checkins, p=popularity)

    #: ~50 m GPS scatter around the POI coordinate.
    jitter = rng.normal(0.0, 0.05, size=(model.n_checkins, 2))
    xy = pois[poi_choice] + jitter
    b = model.bounds
    xy[:, 0] = np.clip(xy[:, 0], b.min_x, b.max_x)
    xy[:, 1] = np.clip(xy[:, 1], b.min_y, b.max_y)

    user_activity = zipf_weights(model.n_users, 1.0)
    user_ids = rng.choice(model.n_users, size=model.n_checkins, p=user_activity)

    return CheckInDataset(
        name=model.name,
        user_ids=user_ids,
        xy=xy,
        bounds=model.bounds,
        geo_bounds=model.geo_bounds,
    )
