"""Check-in datasets: containers, CSV I/O, and city generators."""

from repro.datasets.checkin import CheckIn, CheckInDataset, dataset_from_geo
from repro.datasets.gowalla import (
    GOWALLA_AUSTIN_BOUNDS,
    austin_city_model,
    load_gowalla_austin,
)
from repro.datasets.io import read_checkins_csv, write_checkins_csv
from repro.datasets.synthetic import (
    CityModel,
    Cluster,
    generate_checkins,
    generate_pois,
    zipf_weights,
)
from repro.datasets.yelp import (
    YELP_LAS_VEGAS_BOUNDS,
    las_vegas_city_model,
    load_yelp_las_vegas,
)

__all__ = [
    "CheckIn",
    "CheckInDataset",
    "CityModel",
    "Cluster",
    "GOWALLA_AUSTIN_BOUNDS",
    "YELP_LAS_VEGAS_BOUNDS",
    "austin_city_model",
    "dataset_from_geo",
    "generate_checkins",
    "generate_pois",
    "las_vegas_city_model",
    "load_gowalla_austin",
    "load_yelp_las_vegas",
    "read_checkins_csv",
    "write_checkins_csv",
    "zipf_weights",
]
