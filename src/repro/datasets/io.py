"""CSV input/output for check-in datasets.

The on-disk format is the minimal one the paper's datasets reduce to:
``user_id,lat,lon`` with a header row.  If a real Gowalla/Yelp extract is
dropped at the expected path (see :mod:`repro.datasets.gowalla` /
:mod:`repro.datasets.yelp`) it is loaded instead of the synthetic
substitute.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.exceptions import DatasetError
from repro.geo.projection import GeoBounds
from repro.datasets.checkin import CheckInDataset, dataset_from_geo

_HEADER = ("user_id", "lat", "lon")


def read_checkins_csv(
    path: str | Path, name: str, geo_bounds: GeoBounds
) -> CheckInDataset:
    """Read ``user_id,lat,lon`` rows, filter to the window, and project.

    Raises
    ------
    DatasetError
        On a missing file, malformed header, or unparsable row.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"check-in file not found: {path}")
    records: list[tuple[int, float, float]] = []
    with path.open(newline="") as f:
        reader = csv.reader(f)
        try:
            header = next(reader)
        except StopIteration:
            raise DatasetError(f"{path} is empty") from None
        if tuple(h.strip().lower() for h in header) != _HEADER:
            raise DatasetError(
                f"{path} header {header!r} != expected {list(_HEADER)!r}"
            )
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                records.append((int(row[0]), float(row[1]), float(row[2])))
            except (ValueError, IndexError) as exc:
                raise DatasetError(f"{path}:{line_no}: bad row {row!r}") from exc
    return dataset_from_geo(name, records, geo_bounds)


def write_checkins_csv(dataset: CheckInDataset, path: str | Path) -> None:
    """Write a dataset back to ``user_id,lat,lon`` CSV.

    Requires the dataset to carry its geographic window (so planar
    coordinates can be unprojected).
    """
    if dataset.geo_bounds is None:
        raise DatasetError(
            f"dataset {dataset.name!r} has no geographic window; "
            "cannot emit lat/lon"
        )
    from repro.geo.projection import EquirectangularProjection

    projection = EquirectangularProjection(dataset.geo_bounds)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(_HEADER)
        for checkin in dataset:
            lat, lon = projection.to_geo(checkin.location)
            writer.writerow([checkin.user_id, f"{lat:.6f}", f"{lon:.6f}"])
