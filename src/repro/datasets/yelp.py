"""The Yelp (Las Vegas, NV) evaluation dataset.

The paper uses Yelp dataset-challenge check-ins restricted to a
20 x 20 km window over Las Vegas: 81 201 check-ins from 7 581 users
between latitudes 36.0645-36.2442 and longitudes -115.291 to -115.069
(Section 6.1).

A real extract at ``data/yelp_las_vegas.csv`` takes precedence; otherwise
a deterministic synthetic substitute is generated whose POI mass is
concentrated along a Strip-like north-south corridor — more concentrated
than Austin's layout, which is what lets dataset-dependent effects (such
as the best grid granularity differing between Figures 8a and 8b) show
up.
"""

from __future__ import annotations

from pathlib import Path

from repro.geo.projection import EquirectangularProjection, GeoBounds
from repro.datasets.checkin import CheckInDataset
from repro.datasets.io import read_checkins_csv
from repro.datasets.synthetic import CityModel, Cluster, generate_checkins

#: The paper's Las Vegas window (Section 6.1).
YELP_LAS_VEGAS_BOUNDS = GeoBounds(
    min_lat=36.0645, min_lon=-115.291, max_lat=36.2442, max_lon=-115.069
)

#: Default location of a real extract, relative to the working directory.
DEFAULT_DATA_PATH = Path("data/yelp_las_vegas.csv")

_N_CHECKINS = 81_201
_N_USERS = 7_581


def las_vegas_city_model() -> CityModel:
    """The synthetic stand-in for Yelp Las Vegas.

    The Strip is modelled as four tight clusters along a north-south
    line in the window's east-central area, with downtown (Fremont
    Street) at the corridor's north end and low-weight suburban
    clusters east and west.
    """
    bounds = EquirectangularProjection(
        YELP_LAS_VEGAS_BOUNDS
    ).planar_bbox().scaled_to_square()
    clusters = (
        Cluster(cx=0.58, cy=0.30, std=0.022, weight=0.22),  # south Strip
        Cluster(cx=0.58, cy=0.40, std=0.022, weight=0.24),  # centre Strip
        Cluster(cx=0.58, cy=0.50, std=0.022, weight=0.18),  # north Strip
        Cluster(cx=0.62, cy=0.68, std=0.030, weight=0.14),  # downtown/Fremont
        Cluster(cx=0.35, cy=0.45, std=0.090, weight=0.11),  # west suburbs
        Cluster(cx=0.80, cy=0.50, std=0.090, weight=0.11),  # east suburbs
    )
    return CityModel(
        name="yelp-las-vegas",
        bounds=bounds,
        clusters=clusters,
        n_pois=2_500,
        zipf_exponent=1.20,
        n_checkins=_N_CHECKINS,
        n_users=_N_USERS,
        background_fraction=0.08,
        geo_bounds=YELP_LAS_VEGAS_BOUNDS,
    )


def load_yelp_las_vegas(
    data_path: str | Path | None = None,
    checkin_fraction: float = 1.0,
    seed: int = 20190329,
) -> CheckInDataset:
    """Load the Las Vegas dataset (real extract if present, else synthetic).

    Parameters mirror :func:`repro.datasets.gowalla.load_gowalla_austin`.
    """
    path = Path(data_path) if data_path is not None else DEFAULT_DATA_PATH
    if path.exists():
        return read_checkins_csv(path, "yelp-las-vegas", YELP_LAS_VEGAS_BOUNDS)
    model = las_vegas_city_model()
    if checkin_fraction < 1.0:
        model = model.scaled(checkin_fraction)
    return generate_checkins(model, seed=seed)
