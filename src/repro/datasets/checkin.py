"""Check-in records and datasets.

Both evaluation datasets are sets of check-ins: ``(user id, latitude,
longitude)`` triples inside a 20 x 20 km city window.  A
:class:`CheckInDataset` stores them columnar (numpy arrays) because the
Gowalla window holds 265 571 records and everything the mechanisms need —
histogram priors and random request samples — is a bulk operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import DatasetError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.geo.projection import EquirectangularProjection, GeoBounds


@dataclass(frozen=True, slots=True)
class CheckIn:
    """A single check-in: a user reporting presence at a planar location."""

    user_id: int
    location: Point


class CheckInDataset:
    """A named collection of check-ins in planar (km) coordinates.

    Parameters
    ----------
    name:
        Dataset label used in result tables (e.g. ``"gowalla-austin"``).
    user_ids:
        Integer array of length n.
    xy:
        ``(n, 2)`` array of planar coordinates in km.
    bounds:
        The planar domain; every stored check-in must fall inside it.
    geo_bounds:
        The original latitude/longitude window, when known.
    """

    def __init__(
        self,
        name: str,
        user_ids: np.ndarray,
        xy: np.ndarray,
        bounds: BoundingBox,
        geo_bounds: GeoBounds | None = None,
    ):
        user_ids = np.asarray(user_ids, dtype=np.int64).ravel()
        xy = np.asarray(xy, dtype=float)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise DatasetError(f"xy must be (n, 2), got shape {xy.shape}")
        if user_ids.size != xy.shape[0]:
            raise DatasetError(
                f"{user_ids.size} user ids for {xy.shape[0]} locations"
            )
        inside = (
            (xy[:, 0] >= bounds.min_x)
            & (xy[:, 0] <= bounds.max_x)
            & (xy[:, 1] >= bounds.min_y)
            & (xy[:, 1] <= bounds.max_y)
        )
        if not np.all(inside):
            n_out = int((~inside).sum())
            raise DatasetError(
                f"{n_out} check-ins fall outside the declared bounds; "
                "filter before constructing the dataset"
            )
        self._name = name
        self._user_ids = user_ids
        self._xy = xy
        self._bounds = bounds
        self._geo_bounds = geo_bounds
        self._user_ids.setflags(write=False)
        self._xy.setflags(write=False)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Dataset label."""
        return self._name

    @property
    def bounds(self) -> BoundingBox:
        """Planar domain of the dataset."""
        return self._bounds

    @property
    def geo_bounds(self) -> GeoBounds | None:
        """Original geographic window, if the data came from lat/lon."""
        return self._geo_bounds

    @property
    def xy(self) -> np.ndarray:
        """Read-only ``(n, 2)`` coordinate array in km."""
        return self._xy

    @property
    def user_ids(self) -> np.ndarray:
        """Read-only user-id array."""
        return self._user_ids

    @property
    def n_checkins(self) -> int:
        """Number of check-in records."""
        return self._xy.shape[0]

    @property
    def n_users(self) -> int:
        """Number of distinct users."""
        return int(np.unique(self._user_ids).size)

    def __len__(self) -> int:
        return self.n_checkins

    def __iter__(self) -> Iterator[CheckIn]:
        for uid, (x, y) in zip(self._user_ids, self._xy):
            yield CheckIn(user_id=int(uid), location=Point(float(x), float(y)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CheckInDataset(name={self._name!r}, checkins={self.n_checkins}, "
            f"users={self.n_users})"
        )

    # ------------------------------------------------------------------
    # mechanism-facing operations
    # ------------------------------------------------------------------
    def point(self, i: int) -> Point:
        """The i-th check-in location."""
        x, y = self._xy[i]
        return Point(float(x), float(y))

    def points(self) -> list[Point]:
        """All check-in locations as :class:`Point` objects."""
        return [Point(float(x), float(y)) for x, y in self._xy]

    def sample_requests(self, n: int, rng: np.random.Generator) -> list[Point]:
        """Draw ``n`` request locations uniformly from the check-ins.

        This reproduces the paper's evaluation protocol: "the utility
        loss experienced ... over a set of 3 000 requests randomly
        selected from the set of check-ins" (Section 6.2).  Sampling is
        with replacement so any ``n`` is valid.
        """
        if n < 1:
            raise DatasetError(f"request sample size must be >= 1, got {n}")
        idx = rng.integers(0, self.n_checkins, size=n)
        return [Point(float(x), float(y)) for x, y in self._xy[idx]]

    def subsample(self, n: int, rng: np.random.Generator) -> "CheckInDataset":
        """A dataset of ``n`` records drawn without replacement."""
        if not (1 <= n <= self.n_checkins):
            raise DatasetError(
                f"subsample size {n} outside [1, {self.n_checkins}]"
            )
        idx = rng.choice(self.n_checkins, size=n, replace=False)
        return CheckInDataset(
            name=f"{self._name}#sub{n}",
            user_ids=self._user_ids[idx],
            xy=self._xy[idx],
            bounds=self._bounds,
            geo_bounds=self._geo_bounds,
        )


def dataset_from_geo(
    name: str,
    records: Sequence[tuple[int, float, float]],
    geo_bounds: GeoBounds,
) -> CheckInDataset:
    """Build a dataset from ``(user_id, lat, lon)`` records.

    Records outside the geographic window are dropped, matching the
    paper's per-city filtering; the planar domain is the projected
    window expanded to a square (the budget model needs a square L x L
    region).
    """
    projection = EquirectangularProjection(geo_bounds)
    kept_ids: list[int] = []
    kept_xy: list[tuple[float, float]] = []
    for uid, lat, lon in records:
        if not geo_bounds.contains(lat, lon):
            continue
        p = projection.to_plane(lat, lon)
        kept_ids.append(int(uid))
        kept_xy.append((p.x, p.y))
    if not kept_ids:
        raise DatasetError(f"no records of {name!r} fall inside {geo_bounds}")
    bounds = projection.planar_bbox().scaled_to_square()
    return CheckInDataset(
        name=name,
        user_ids=np.asarray(kept_ids),
        xy=np.asarray(kept_xy),
        bounds=bounds,
        geo_bounds=geo_bounds,
    )
