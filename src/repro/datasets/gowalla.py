"""The Gowalla (Austin, TX) evaluation dataset.

The paper uses the SNAP Gowalla check-ins restricted to a 20 x 20 km
window over Austin: 265 571 check-ins from 12 155 users between latitudes
30.1927-30.3723 and longitudes -97.8698 to -97.6618 (Section 6.1).

If a real extract exists at ``data/gowalla_austin.csv`` (columns
``user_id,lat,lon``) it is loaded; otherwise a deterministic synthetic
substitute with the same window, record count, user count and an
Austin-like spatial skew is generated (see DESIGN.md Section 5 for the
substitution argument).
"""

from __future__ import annotations

from pathlib import Path

from repro.geo.projection import EquirectangularProjection, GeoBounds
from repro.datasets.checkin import CheckInDataset
from repro.datasets.io import read_checkins_csv
from repro.datasets.synthetic import CityModel, Cluster, generate_checkins

#: The paper's Austin window (Section 6.1).
GOWALLA_AUSTIN_BOUNDS = GeoBounds(
    min_lat=30.1927, min_lon=-97.8698, max_lat=30.3723, max_lon=-97.6618
)

#: Default location of a real extract, relative to the working directory.
DEFAULT_DATA_PATH = Path("data/gowalla_austin.csv")

_N_CHECKINS = 265_571
_N_USERS = 12_155


def austin_city_model() -> CityModel:
    """The synthetic stand-in for Gowalla Austin.

    Cluster layout: a dominant downtown/6th-street core, the UT campus
    just north of it, secondary commercial clusters (The Domain to the
    north, South Congress), and diffuse suburban background.  Relative
    coordinates put downtown slightly east of the window centre, as in
    the real city.
    """
    bounds = EquirectangularProjection(
        GOWALLA_AUSTIN_BOUNDS
    ).planar_bbox().scaled_to_square()
    clusters = (
        Cluster(cx=0.61, cy=0.42, std=0.035, weight=0.40),  # downtown core
        Cluster(cx=0.62, cy=0.50, std=0.030, weight=0.20),  # campus
        Cluster(cx=0.58, cy=0.30, std=0.050, weight=0.12),  # South Congress
        Cluster(cx=0.55, cy=0.80, std=0.060, weight=0.10),  # The Domain
        Cluster(cx=0.30, cy=0.55, std=0.100, weight=0.09),  # west suburbs
        Cluster(cx=0.80, cy=0.60, std=0.100, weight=0.09),  # east suburbs
    )
    return CityModel(
        name="gowalla-austin",
        bounds=bounds,
        clusters=clusters,
        n_pois=4_000,
        zipf_exponent=1.15,
        n_checkins=_N_CHECKINS,
        n_users=_N_USERS,
        background_fraction=0.12,
        geo_bounds=GOWALLA_AUSTIN_BOUNDS,
    )


def load_gowalla_austin(
    data_path: str | Path | None = None,
    checkin_fraction: float = 1.0,
    seed: int = 20190326,
) -> CheckInDataset:
    """Load the Austin dataset (real extract if present, else synthetic).

    Parameters
    ----------
    data_path:
        Explicit CSV path; defaults to :data:`DEFAULT_DATA_PATH`.  When
        the file does not exist, the synthetic substitute is generated.
    checkin_fraction:
        Scale factor in (0, 1] applied to the synthetic record/user
        counts — handy for fast smoke runs.  Ignored for a real extract.
    seed:
        Generator seed (default: the paper's presentation date).
    """
    path = Path(data_path) if data_path is not None else DEFAULT_DATA_PATH
    if path.exists():
        return read_checkins_csv(path, "gowalla-austin", GOWALLA_AUSTIN_BOUNDS)
    model = austin_city_model()
    if checkin_fraction < 1.0:
        model = model.scaled(checkin_fraction)
    return generate_checkins(model, seed=seed)
