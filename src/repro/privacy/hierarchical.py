"""Rigorous composition bound for the multi-step mechanism.

The paper argues MSM's privacy informally via composability.  This
module states and numerically verifies the exact guarantee.  Fix two
actual locations x, x' and condition on any shared output prefix; at
level ``i`` (with ``s_i = L / g^i`` the level cell side and C the node
sampled at level ``i-1``) exactly one of three cases applies to the pair
of rows the two runs use:

* **both runs snap inside C** — possible only when x and x' share the
  level-``i-1`` cell, and then the per-step OPT constraint bounds the
  row ratio by ``exp(eps_i * d(xhat_i, xhat'_i))``;
* **both runs drifted** (neither location is in C) — both use the
  uniform row mixture of Algorithm 1, line 10, ratio exactly 1;
* **one run snaps, one drifted** — possible only when x and x' lie in
  *different* level-``i-1`` cells; the snapped row against the uniform
  mixture is bounded by ``exp(eps_i * D_i)`` with
  ``D_i = sqrt(2) * (g - 1) * s_i`` the diameter of C's child-centre
  set (proof: each mixture component is within ``exp(eps_i d(w, xhat))``
  of the snapped row, and every ``d(w, xhat) <= D_i``).

Summing exponents over levels gives the **hierarchical
distinguishability bound**

    log ( K_MSM(x)(z) / K_MSM(x')(z) )  <=  sum_i eps_i * b_i(x, x'),

    b_i = d(xhat_i, xhat'_i)           if xhat_{i-1} = xhat'_{i-1},
          sqrt(2) * (g - 1) * s_i      otherwise.

MSM is therefore GeoInd at ``eps = sum eps_i`` with respect to this
hierarchical metric; with respect to plain Euclidean distance the usual
grid-snap distortion applies — the same caveat every grid-discretised
mechanism (including flat OPT over a grid) carries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid

if TYPE_CHECKING:  # pragma: no cover - avoids the core <-> privacy cycle
    from repro.core.msm import MultiStepMechanism


def hierarchical_bound(
    msm: MultiStepMechanism, x: Point, x_prime: Point
) -> float:
    """The composition-bound exponent ``sum_i eps_i * b_i(x, x')``.

    Requires MSM to run over a :class:`HierarchicalGrid` (the snapped
    locations are defined by its global per-level grids).
    """
    index = msm.index
    if not isinstance(index, HierarchicalGrid):
        raise TypeError("hierarchical_bound requires MSM over a HierarchicalGrid")
    g = index.granularity
    total = 0.0
    for level, eps in enumerate(msm.budgets, start=1):
        grid = index.level_grid(level)
        same_parent = (
            level == 1
            or index.level_grid(level - 1).locate(x).index
            == index.level_grid(level - 1).locate(x_prime).index
        )
        if same_parent:
            total += eps * grid.snap(x).distance_to(grid.snap(x_prime))
        else:
            s_i = index.cell_side(level)
            total += eps * math.sqrt(2.0) * (g - 1) * s_i
    return total


@dataclass(frozen=True)
class CompositionReport:
    """Result of verifying the MSM composition bound over leaf cells.

    Attributes
    ----------
    satisfied:
        True when every pair/output obeys the bound within ``slack``.
    worst_margin:
        Minimum of (bound - realised log-ratio) over all pairs and
        outputs; negative means a violation of that size.
    n_pairs:
        Number of ordered leaf-cell pairs checked.
    """

    satisfied: bool
    worst_margin: float
    n_pairs: int


def verify_msm_composition(
    msm: MultiStepMechanism,
    slack: float = 1e-6,
    zero_tol: float = 1e-12,
) -> CompositionReport:
    """Exhaustively verify the composition bound on leaf-cell inputs.

    Builds the exact end-to-end output distribution for every leaf-cell
    centre (via :meth:`MultiStepMechanism.reported_distribution`) and
    checks every ordered pair against the hierarchical bound.  Cost is
    O(leaves^2 * outputs); meant for test-scale grids, not production
    indexes.
    """
    index = msm.index
    if not isinstance(index, HierarchicalGrid):
        raise TypeError(
            "verify_msm_composition requires MSM over a HierarchicalGrid"
        )
    matrix = msm.to_matrix()
    centers = matrix.inputs
    k = matrix.k

    positive = k > zero_tol
    with np.errstate(divide="ignore"):
        log_k = np.where(positive, np.log(np.maximum(k, zero_tol)), -np.inf)

    worst = np.inf
    n = len(centers)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            # Outputs reachable from i but not from j violate any bound.
            if np.any(positive[i] & ~positive[j]):
                return CompositionReport(
                    satisfied=False, worst_margin=-np.inf, n_pairs=n * (n - 1)
                )
            bound = hierarchical_bound(msm, centers[i], centers[j])
            reachable = positive[i]
            ratio = float((log_k[i, reachable] - log_k[j, reachable]).max())
            worst = min(worst, bound - ratio)
    return CompositionReport(
        satisfied=bool(worst >= -slack),
        worst_margin=float(worst),
        n_pairs=n * (n - 1),
    )
