"""Privacy verification and budget accounting."""

from repro.privacy.composition import BudgetAccountant, sequential_composition
from repro.privacy.geoind import (
    GeoIndReport,
    assert_geoind,
    empirical_epsilon,
    verify_geoind,
)
from repro.privacy.guard import guard_mechanism, guarded_matrix
from repro.privacy.hierarchical import (
    CompositionReport,
    hierarchical_bound,
    verify_msm_composition,
)

__all__ = [
    "BudgetAccountant",
    "CompositionReport",
    "GeoIndReport",
    "assert_geoind",
    "empirical_epsilon",
    "guard_mechanism",
    "guarded_matrix",
    "hierarchical_bound",
    "sequential_composition",
    "verify_geoind",
    "verify_msm_composition",
]
