"""Mandatory privacy-invariant guard for mechanism matrices.

Every matrix the sanitisation path samples from must pass through
:func:`guard_mechanism` (or be built by :func:`guarded_matrix`) first:
it re-checks the stochastic invariants on the stored array and verifies
the epsilon-GeoInd constraint via :mod:`repro.privacy.geoind`, raising
:class:`~repro.exceptions.PrivacyViolationError` instead of letting a
bad matrix reach a sampler.  This is the fail-closed core of the
resilience layer: solver fallbacks and degradation may change *which*
mechanism serves a request, but nothing unvalidated ever serves one.

``scripts/check_privacy_guards.py`` statically enforces the
complementary rule that no module outside ``repro/mechanisms``,
``repro/testing`` and this file constructs a
:class:`~repro.mechanisms.matrix.MechanismMatrix` directly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import PrivacyViolationError
from repro.geo.metric import EUCLIDEAN, Metric
from repro.geo.point import Point
from repro.mechanisms.matrix import MechanismMatrix
from repro.privacy.geoind import GeoIndReport, assert_geoind

#: Row-sum slack tolerated by the guard (matches the matrix constructor).
_ROW_TOL = 1e-6

#: Largest input set on which the guard also validates the dX metric
#: axioms.  O(n^3) triples, so the check is confined to node-mechanism
#: scale, where it is far cheaper than the LP solve it accompanies.
_AXIOM_CHECK_MAX = 64


def guard_mechanism(
    matrix: MechanismMatrix,
    epsilon: float,
    dx: Metric = EUCLIDEAN,
    slack: float = 1e-6,
) -> GeoIndReport:
    """Validate ``matrix`` before it may be sampled from.

    Checks, in order: finite entries, non-negativity, row-stochasticity
    within tolerance, the ``dx`` pseudometric axioms on the input
    locations (small matrices only — a squared metric passed as ``dX``
    would make the GeoInd bound vacuous), and the epsilon-GeoInd
    constraint ``K[x, z] <= exp(eps * dx(x, x')) * K[x', z]`` (via the
    tight empirical epsilon).  Returns the :class:`GeoIndReport` on
    success so callers can log the actual headroom.

    Raises
    ------
    PrivacyViolationError
        On any failed check.  Callers must not sample from the matrix.
    """
    if epsilon <= 0:
        raise PrivacyViolationError(
            f"guard needs a positive epsilon, got {epsilon}"
        )
    if len(matrix.inputs) <= _AXIOM_CHECK_MAX:
        try:
            dx.check_axioms(matrix.inputs)
        except ValueError as exc:
            raise PrivacyViolationError(
                f"dX fails the pseudometric axioms on the mechanism's "
                f"inputs: {exc}"
            ) from None
    k = matrix.k
    if not np.all(np.isfinite(k)):
        raise PrivacyViolationError("mechanism matrix has non-finite entries")
    if np.any(k < 0):
        raise PrivacyViolationError(
            f"mechanism matrix has negative entries (min={k.min():.3e})"
        )
    sums = k.sum(axis=1)
    worst = float(np.abs(sums - 1.0).max()) if sums.size else 0.0
    if worst > _ROW_TOL:
        raise PrivacyViolationError(
            f"mechanism matrix rows are not stochastic "
            f"(worst deviation {worst:.3e})"
        )
    return assert_geoind(matrix, epsilon, dx=dx, slack=slack)


def guarded_matrix(
    inputs: Sequence[Point],
    outputs: Sequence[Point],
    k: np.ndarray,
    epsilon: float | None = None,
    dx: Metric = EUCLIDEAN,
    slack: float = 1e-6,
) -> MechanismMatrix:
    """Construct a :class:`MechanismMatrix` through the guard.

    This is the only sanctioned way to build a matrix outside the
    ``mechanisms``/``testing`` packages.  With ``epsilon`` given, the
    result is additionally GeoInd-verified at that level; ``epsilon=None``
    performs construction-time validation only (shape, finiteness,
    row-stochasticity) for matrices whose privacy is certified elsewhere
    (e.g. an MSM product matrix covered by the composition bound).
    """
    matrix = MechanismMatrix(inputs, outputs, k)
    if epsilon is not None:
        guard_mechanism(matrix, epsilon, dx=dx, slack=slack)
    return matrix
