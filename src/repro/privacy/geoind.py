"""Geo-indistinguishability verification.

The GeoInd definition (Eq. 1 of the paper) is a checkable property of a
discrete mechanism matrix:

    K[x, z] <= exp(eps * dX(x, x')) * K[x', z]   for all x, x', z.

This module measures the *tight* epsilon a matrix actually achieves —
``max over x, x', z of log(K[x,z] / K[x',z]) / dX(x, x')`` — and verifies
a claimed level against it.  Every mechanism test in the suite goes
through here, which is what makes the privacy claims of this
reproduction auditable rather than asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import PrivacyViolationError
from repro.geo.metric import EUCLIDEAN, Metric
from repro.mechanisms.matrix import MechanismMatrix

#: Relative slack tolerated on the tight epsilon before a claimed level
#: is declared violated; absorbs LP solver round-off.
_DEFAULT_SLACK = 1e-6

#: Chunk of input-pair rows processed at once (memory control).
_CHUNK = 64


@dataclass(frozen=True)
class GeoIndReport:
    """Outcome of a GeoInd verification.

    Attributes
    ----------
    epsilon_claimed:
        The level the mechanism was supposed to satisfy.
    epsilon_tight:
        The smallest level the matrix actually satisfies (``inf`` when
        some output is possible from one location and impossible from
        another — never GeoInd at any finite level).
    satisfied:
        Whether ``epsilon_tight <= epsilon_claimed`` within slack.
    worst_triple:
        Indices ``(x, x', z)`` realising the tight epsilon, when finite.
    """

    epsilon_claimed: float
    epsilon_tight: float
    satisfied: bool
    worst_triple: tuple[int, int, int] | None

    @property
    def slack(self) -> float:
        """How much headroom the mechanism leaves (negative if violated)."""
        return self.epsilon_claimed - self.epsilon_tight


def empirical_epsilon(
    matrix: MechanismMatrix,
    dx: Metric = EUCLIDEAN,
    zero_tol: float = 1e-12,
) -> tuple[float, tuple[int, int, int] | None]:
    """The tight GeoInd level of a matrix and the triple realising it.

    Entries below ``zero_tol`` are treated as exact zeros (LP solutions
    carry ~1e-10 dust).  A pair where one location can emit an output
    the other cannot yields ``inf``.
    """
    k = matrix.k
    n, m = k.shape
    if n < 2:
        return (0.0, None)
    d = dx.pairwise(matrix.inputs, matrix.inputs)
    positive = k > zero_tol
    with np.errstate(divide="ignore"):
        log_k = np.where(positive, np.log(np.maximum(k, zero_tol)), -np.inf)

    best = 0.0
    best_triple: tuple[int, int, int] | None = None
    for start in range(0, n, _CHUNK):
        stop = min(start + _CHUNK, n)
        # diff[i, j, z] = log K[i, z] - log K[j, z], i in chunk.  Where the
        # numerator is zero the constraint is vacuous regardless of the
        # denominator, so force -inf (also kills the -inf - -inf = nan case).
        with np.errstate(invalid="ignore"):
            diff = log_k[start:stop, None, :] - log_k[None, :, :]
        diff = np.where(positive[start:stop, None, :], diff, -np.inf)
        # numerator zero -> -inf - anything = -inf (never binding): ok.
        # numerator positive, denominator zero -> +inf: genuine violation.
        impossible = positive[start:stop, None, :] & ~positive[None, :, :]
        if np.any(impossible):
            i, j, z = map(int, next(zip(*np.nonzero(impossible))))
            return (float("inf"), (start + i, j, z))
        ratios = diff.max(axis=2)  # (chunk, n)
        dist = d[start:stop]
        with np.errstate(divide="ignore", invalid="ignore"):
            eps_pair = np.where(dist > 0, ratios / dist, 0.0)
        np.fill_diagonal(eps_pair[:, start:stop], 0.0)
        idx = np.unravel_index(np.argmax(eps_pair), eps_pair.shape)
        value = float(eps_pair[idx])
        if value > best:
            i, j = int(idx[0]), int(idx[1])
            z = int(np.argmax(diff[i, j]))
            best = value
            best_triple = (start + i, j, z)
    return (best, best_triple)


def verify_geoind(
    matrix: MechanismMatrix,
    epsilon: float,
    dx: Metric = EUCLIDEAN,
    slack: float = _DEFAULT_SLACK,
) -> GeoIndReport:
    """Check that ``matrix`` satisfies ``epsilon``-GeoInd under ``dx``."""
    tight, triple = empirical_epsilon(matrix, dx)
    satisfied = tight <= epsilon * (1.0 + slack) + slack
    return GeoIndReport(
        epsilon_claimed=float(epsilon),
        epsilon_tight=tight,
        satisfied=bool(satisfied),
        worst_triple=triple,
    )


def assert_geoind(
    matrix: MechanismMatrix,
    epsilon: float,
    dx: Metric = EUCLIDEAN,
    slack: float = _DEFAULT_SLACK,
) -> GeoIndReport:
    """Like :func:`verify_geoind` but raising on violation."""
    report = verify_geoind(matrix, epsilon, dx=dx, slack=slack)
    if not report.satisfied:
        raise PrivacyViolationError(
            f"mechanism claims eps={epsilon} but is only "
            f"{report.epsilon_tight:.6g}-GeoInd (worst triple "
            f"{report.worst_triple})"
        )
    return report
