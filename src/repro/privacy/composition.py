"""Sequential composition and budget accounting.

GeoInd inherits DP's composability (Section 2.2): mechanisms applied in
succession with budgets ``eps_1, ..., eps_h`` jointly satisfy GeoInd at
``sum eps_i``.  MSM is "a textbook example" of this property (Section 4);
the :class:`BudgetAccountant` makes the bookkeeping explicit and
auditable for applications that issue *multiple* sanitised reports from
one user budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.exceptions import BudgetError


def sequential_composition(epsilons: Iterable[float]) -> float:
    """Total GeoInd level of mechanisms applied in sequence.

    Raises
    ------
    BudgetError
        If any step budget is non-positive.
    """
    total = 0.0
    count = 0
    for eps in epsilons:
        if eps <= 0:
            raise BudgetError(f"step budgets must be positive, got {eps}")
        total += eps
        count += 1
    if count == 0:
        raise BudgetError("composition of zero mechanisms is undefined")
    return total


@dataclass
class BudgetAccountant:
    """Tracks privacy-budget expenditure across reports.

    Attributes
    ----------
    total:
        The lifetime budget available to this user.
    spent_items:
        Chronological record of ``(label, epsilon)`` expenditures.
    """

    total: float
    spent_items: list[tuple[str, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.total <= 0:
            raise BudgetError(f"total budget must be positive, got {self.total}")

    @property
    def spent(self) -> float:
        """Budget consumed so far."""
        return sum(eps for _, eps in self.spent_items)

    @property
    def remaining(self) -> float:
        """Budget still available."""
        return self.total - self.spent

    def can_spend(self, epsilon: float) -> bool:
        """Whether a further expenditure of ``epsilon`` fits the budget."""
        return 0 < epsilon <= self.remaining + 1e-12

    def spend(self, epsilon: float, label: str = "report") -> None:
        """Record an expenditure, refusing overdrafts.

        Raises
        ------
        BudgetError
            If the expenditure is non-positive or exceeds the remainder.
        """
        if epsilon <= 0:
            raise BudgetError(f"expenditure must be positive, got {epsilon}")
        if not self.can_spend(epsilon):
            raise BudgetError(
                f"budget exhausted: requested {epsilon:.4g}, "
                f"remaining {self.remaining:.4g} of {self.total:.4g}"
            )
        self.spent_items.append((label, float(epsilon)))
