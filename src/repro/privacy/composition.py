"""Sequential composition and budget accounting.

GeoInd inherits DP's composability (Section 2.2): mechanisms applied in
succession with budgets ``eps_1, ..., eps_h`` jointly satisfy GeoInd at
``sum eps_i``.  MSM is "a textbook example" of this property (Section 4);
the :class:`BudgetAccountant` makes the bookkeeping explicit and
auditable for applications that issue *multiple* sanitised reports from
one user budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.exceptions import BudgetError


def sequential_composition(epsilons: Iterable[float]) -> float:
    """Total GeoInd level of mechanisms applied in sequence.

    Raises
    ------
    BudgetError
        If any step budget is non-positive.
    """
    total = 0.0
    count = 0
    for eps in epsilons:
        if eps <= 0:
            raise BudgetError(f"step budgets must be positive, got {eps}")
        total += eps
        count += 1
    if count == 0:
        raise BudgetError("composition of zero mechanisms is undefined")
    return total


#: Relative tolerance for budget comparisons.  Accumulated float error
#: after ``k`` spends is bounded by ``k`` ulps of the running sum, so a
#: slack *relative to the lifetime budget* absorbs it at any scale —
#: unlike the absolute ``1e-12`` slack this replaces, which was far too
#: small for large budgets and needlessly large for tiny ones.
BUDGET_RTOL = 1e-9


def budget_slack(total: float) -> float:
    """The comparison slack for a budget of magnitude ``total``."""
    return BUDGET_RTOL * max(1.0, abs(total))


def fits_budget(epsilon: float, remaining: float, total: float) -> bool:
    """Whether spending ``epsilon`` fits ``remaining`` of ``total``.

    This is *the* admission predicate: every component that asks "does
    one more report fit?" — :meth:`BudgetAccountant.can_spend`,
    :meth:`BudgetAccountant.affordable` (and through it
    ``SanitizationSession.reports_remaining``), the serving front-end's
    admission control — must route through it, so no two call sites can
    disagree about the same budget state.
    """
    return 0 < epsilon <= remaining + budget_slack(total)


@dataclass
class BudgetAccountant:
    """Tracks privacy-budget expenditure across reports.

    Attributes
    ----------
    total:
        The lifetime budget available to this user.
    spent_items:
        Chronological record of ``(label, epsilon)`` expenditures.
    """

    total: float
    spent_items: list[tuple[str, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.total <= 0:
            raise BudgetError(f"total budget must be positive, got {self.total}")
        # running total, maintained incrementally so that (a) spend /
        # can_spend are O(1) regardless of history length and (b)
        # affordable() can simulate future spends with *exactly* the
        # arithmetic spend() will perform.
        self._spent_total = 0.0
        for _, eps in self.spent_items:
            self._spent_total += float(eps)

    @property
    def spent(self) -> float:
        """Budget consumed so far."""
        return self._spent_total

    @property
    def remaining(self) -> float:
        """Budget still available."""
        return self.total - self._spent_total

    def can_spend(self, epsilon: float) -> bool:
        """Whether a further expenditure of ``epsilon`` fits the budget.

        Uses the shared relative-tolerance predicate
        :func:`fits_budget`, so this answer always agrees with
        :meth:`affordable` (and with anything else built on it, such as
        ``SanitizationSession.reports_remaining``).
        """
        return fits_budget(epsilon, self.remaining, self.total)

    def affordable(self, epsilon: float) -> int:
        """How many further spends of ``epsilon`` will succeed.

        Exact by construction: the count is obtained by simulating the
        identical float arithmetic :meth:`spend` performs (accumulate,
        compare through :func:`fits_budget`), so
        ``affordable(eps) == n`` guarantees exactly ``n`` subsequent
        ``spend(eps)`` calls succeed and the ``n+1``-th raises.  The
        closed-form ``remaining // eps`` this replaces used its own
        nudge and could disagree with ``can_spend`` by one report near
        the boundary.

        Raises
        ------
        BudgetError
            If ``epsilon`` is non-positive.
        """
        if epsilon <= 0:
            raise BudgetError(f"expenditure must be positive, got {epsilon}")
        simulated = self._spent_total
        count = 0
        while fits_budget(epsilon, self.total - simulated, self.total):
            count += 1
            simulated += float(epsilon)
        return count

    def spend(self, epsilon: float, label: str = "report") -> None:
        """Record an expenditure, refusing overdrafts.

        Raises
        ------
        BudgetError
            If the expenditure is non-positive or exceeds the remainder.
        """
        if epsilon <= 0:
            raise BudgetError(f"expenditure must be positive, got {epsilon}")
        if not self.can_spend(epsilon):
            raise BudgetError(
                f"budget exhausted: requested {epsilon:.4g}, "
                f"remaining {self.remaining:.4g} of {self.total:.4g}"
            )
        self.spent_items.append((label, float(epsilon)))
        self._spent_total += float(epsilon)

    def restore(self, epsilon: float, label: str = "restored") -> None:
        """Record an expenditure *unconditionally* (no admission check).

        This is the fail-closed entry point for crash recovery: a
        replayed budget journal may legitimately carry more spend than
        the configured lifetime (e.g. the lifetime was lowered between
        restarts, or a torn journal forces reservations to be counted
        as spent).  Refusing the restore would silently *reset* the
        user's spend — the exact violation the ledger exists to
        prevent — so the accountant swallows it and lets ``remaining``
        go to (or below) zero, after which :meth:`can_spend` refuses
        every further report.

        Raises
        ------
        BudgetError
            If ``epsilon`` is non-positive (a malformed journal entry,
            not a budget decision).
        """
        if epsilon <= 0:
            raise BudgetError(f"expenditure must be positive, got {epsilon}")
        self.spent_items.append((label, float(epsilon)))
        self._spent_total += float(epsilon)
