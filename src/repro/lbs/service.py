"""Location-based-service simulation and quality-of-service metrics.

End-to-end workload of the paper's introduction: the user's device
sanitises the location, the untrusted server answers a k-NN POI query at
the *reported* location, and the user pays a quality-of-service cost
because the answer was tailored to the wrong point.  The metrics here
turn the abstract "utility loss" numbers of the evaluation into the
concrete quantities a product team would track:

* **extra travel distance** — how much farther the returned nearest POI
  is from the user than the true nearest;
* **recall@k** — how much of the true result set survives obfuscation;
* **range-query expansion** — the radius blow-up needed to recover the
  true results, which is what motivates the paper's squared-Euclidean
  utility metric (Section 2.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import EvaluationError
from repro.geo.point import Point
from repro.mechanisms.base import Mechanism
from repro.lbs.poi import POIStore
from repro.obs import NOOP, Observability


@dataclass(frozen=True)
class QueryOutcome:
    """One sanitised k-NN interaction."""

    actual: Point
    reported: Point
    extra_distance: float
    recall_at_k: float


@dataclass(frozen=True)
class ServiceReport:
    """Aggregate quality-of-service over a request workload.

    Attributes
    ----------
    n_queries:
        Number of simulated requests.
    mean_extra_distance:
        Mean extra travel (km) to the returned nearest POI, relative to
        the true nearest POI.
    mean_recall_at_k:
        Mean fraction of the true k-NN ids present in the answer.
    median_extra_distance:
        Median extra travel (robust to the Laplace tail).
    """

    n_queries: int
    k: int
    mean_extra_distance: float
    median_extra_distance: float
    mean_recall_at_k: float


class LocationBasedService:
    """An untrusted server answering k-NN POI queries verbatim.

    The server needs no changes to support GeoInd clients — one of the
    deployment advantages the paper claims over encryption-based
    approaches (Section 3.1) — so this class is deliberately just a
    store plus a query method.

    ``metric`` selects the travel-distance model for both the k-NN
    ranking and the extra-distance QoS metric: ``None`` (default) is
    planar Euclidean; a road-network deployment passes the
    shortest-path :class:`~repro.graph.metric.GraphMetric`, so "nearest
    POI" and "extra travel" both mean driving distance.
    """

    def __init__(self, store: POIStore, metric=None):
        self._store = store
        self._metric = metric

    @property
    def store(self) -> POIStore:
        """The POI catalogue."""
        return self._store

    @property
    def metric(self):
        """Travel-distance metric (None = planar Euclidean)."""
        return self._metric

    def _travel(self, a: Point, b: Point) -> float:
        if self._metric is None:
            return a.distance_to(b)
        return float(self._metric(a, b))

    def query(self, reported: Point, k: int) -> list[int]:
        """Answer a k-NN query at the reported location (POI ids)."""
        return [
            p.poi_id for p in self._store.knn(reported, k, metric=self._metric)
        ]

    def evaluate_query(
        self, actual: Point, reported: Point, k: int
    ) -> QueryOutcome:
        """Quality of one sanitised interaction versus the truthful one.

        Recall is measured against the truthful result set's actual
        size, not against ``k``: a store holding fewer than ``k`` POIs
        answers both queries with the same (complete) catalogue and
        must not be penalised for results that do not exist.
        """
        answered = self.query(reported, k)
        truth = self.query(actual, k)
        if not truth:
            return QueryOutcome(
                actual=actual,
                reported=reported,
                extra_distance=0.0,
                recall_at_k=1.0,
            )
        answered_nearest = self._store[answered[0]].location
        true_nearest = self._store[truth[0]].location
        extra = self._travel(actual, answered_nearest) - self._travel(
            actual, true_nearest
        )
        recall = len(set(answered) & set(truth)) / len(truth)
        return QueryOutcome(
            actual=actual,
            reported=reported,
            extra_distance=max(extra, 0.0),
            recall_at_k=recall,
        )

    def evaluate_mechanism(
        self,
        mechanism: Mechanism,
        requests: Sequence[Point],
        rng: np.random.Generator,
        k: int = 5,
    ) -> ServiceReport:
        """Simulate a workload through ``mechanism`` and aggregate QoS.

        Sanitisation goes through ``mechanism.sample_many``, so
        mechanisms with a vectorised batch path (planar Laplace, and MSM
        via :meth:`~repro.core.msm.MultiStepMechanism.sanitize_batch`)
        serve the whole workload at batch throughput.  When the
        mechanism carries an enabled observability handle (MSM does when
        built with one), the evaluation records request counts and
        end-to-end latency into the same registry.
        """
        self._validate_workload(requests, k)
        obs = getattr(mechanism, "observability", NOOP)
        with _evaluation(obs, len(requests), k):
            reported = mechanism.sample_many(requests, rng)
            outcomes = [
                self.evaluate_query(x, z, k)
                for x, z in zip(requests, reported)
            ]
        return self._aggregate(outcomes, k)

    def evaluate_session(
        self,
        session,
        requests: Sequence[Point],
        rng: np.random.Generator,
        k: int = 5,
    ) -> ServiceReport:
        """Serve a workload through a budgeted sanitisation session.

        ``session`` is a :class:`~repro.core.session.SanitizationSession`
        (duck-typed on ``report_batch`` to keep this module free of a
        core dependency); the whole workload is sanitised in one batch —
        spending the session's lifetime budget per request — and then
        evaluated against the POI store like any other workload.
        """
        self._validate_workload(requests, k)
        obs = getattr(session, "observability", NOOP)
        with _evaluation(obs, len(requests), k):
            reports = session.report_batch(requests, rng)
            outcomes = [
                self.evaluate_query(r.actual, r.reported, k) for r in reports
            ]
        return self._aggregate(outcomes, k)

    def _validate_workload(self, requests: Sequence[Point], k: int) -> None:
        if not requests:
            raise EvaluationError("service evaluation needs at least one request")
        if k < 1:
            raise EvaluationError(f"k must be >= 1, got {k}")

    def _aggregate(
        self, outcomes: list[QueryOutcome], k: int
    ) -> ServiceReport:
        extra = np.asarray([o.extra_distance for o in outcomes])
        recall = np.asarray([o.recall_at_k for o in outcomes])
        return ServiceReport(
            n_queries=len(outcomes),
            k=k,
            mean_extra_distance=float(extra.mean()),
            median_extra_distance=float(np.median(extra)),
            mean_recall_at_k=float(recall.mean()),
        )


class _evaluation:
    """Span + metrics around one LBS workload evaluation.

    A tiny context manager (not ``contextlib``) so the disabled path is
    two attribute checks and nothing else.
    """

    __slots__ = ("_obs", "_n", "_k", "_span", "_start")

    def __init__(self, obs: Observability, n: int, k: int):
        self._obs = obs if isinstance(obs, Observability) else NOOP
        self._n = n
        self._k = k

    def __enter__(self):
        self._span = self._obs.tracer.span(
            "lbs.evaluate", n=self._n, k=self._k
        )
        self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        elapsed = time.perf_counter() - self._start
        if self._obs.enabled and exc_type is None:
            metrics = self._obs.metrics
            metrics.counter("repro_lbs_requests_total").inc(self._n)
            metrics.histogram("repro_lbs_evaluate_seconds").observe(elapsed)
        return self._span.__exit__(exc_type, exc, tb)


def required_radius_expansion(
    actual: Point, reported: Point, base_radius: float
) -> float:
    """Radius multiplier recovering a truthful range query's results.

    A range query of radius ``r`` at the reported location covers the
    truthful query iff its radius is ``r + d(actual, reported)``; the
    returned multiplier ``(r + d) / r`` squares into the result-set
    inflation factor, which is the paper's argument for the squared
    Euclidean utility metric.
    """
    if base_radius <= 0:
        raise EvaluationError(f"base_radius must be positive, got {base_radius}")
    return (base_radius + actual.distance_to(reported)) / base_radius
