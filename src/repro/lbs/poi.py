"""Points of interest.

The paper's motivating workload is a mobile user querying an untrusted
server for nearby POIs (restaurants, bars, shops).  :class:`POIStore`
is the server-side substrate for the example applications and the
quality-of-service evaluation: a static set of categorised POIs with
vectorised k-NN and range search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import DatasetError
from repro.geo.bbox import BoundingBox
from repro.geo.metric import Metric
from repro.geo.point import Point


@dataclass(frozen=True, slots=True)
class POI:
    """A point of interest."""

    poi_id: int
    name: str
    category: str
    location: Point


class POIStore:
    """An in-memory POI database with exact nearest-neighbour search.

    Search is brute-force over a coordinate array; for the city-scale
    catalogues of the examples (thousands of POIs) that is faster than
    maintaining an index, and exactness keeps the quality-of-service
    numbers unambiguous.
    """

    def __init__(self, pois: Sequence[POI]):
        if not pois:
            raise DatasetError("a POI store needs at least one POI")
        self._pois = list(pois)
        self._xy = np.asarray(
            [(p.location.x, p.location.y) for p in self._pois], dtype=float
        )
        self._points = [p.location for p in self._pois]

    @classmethod
    def from_coordinates(
        cls,
        xy: np.ndarray,
        category: str = "poi",
        name_prefix: str = "poi",
    ) -> "POIStore":
        """Build a store from an ``(n, 2)`` coordinate array."""
        xy = np.asarray(xy, dtype=float)
        pois = [
            POI(
                poi_id=i,
                name=f"{name_prefix}-{i}",
                category=category,
                location=Point(float(x), float(y)),
            )
            for i, (x, y) in enumerate(xy)
        ]
        return cls(pois)

    def __len__(self) -> int:
        return len(self._pois)

    def __getitem__(self, poi_id: int) -> POI:
        return self._pois[poi_id]

    @property
    def pois(self) -> list[POI]:
        """All POIs in id order."""
        return list(self._pois)

    def bounds(self) -> BoundingBox:
        """The tight bounding box of the catalogue."""
        return BoundingBox(
            float(self._xy[:, 0].min()),
            float(self._xy[:, 1].min()),
            float(self._xy[:, 0].max()),
            float(self._xy[:, 1].max()),
        )

    def _distances(self, query: Point, metric: Metric | None) -> np.ndarray:
        """Distance from ``query`` to every POI under ``metric``.

        ``None`` keeps the historical fast planar-Euclidean path; any
        :class:`~repro.geo.metric.Metric` (e.g. the road-network
        shortest-path metric) is evaluated through its vectorised
        ``pairwise``.
        """
        if metric is None:
            return np.hypot(self._xy[:, 0] - query.x, self._xy[:, 1] - query.y)
        return np.asarray(metric.pairwise([query], self._points), dtype=float)[0]

    def knn(
        self, query: Point, k: int, metric: Metric | None = None
    ) -> list[POI]:
        """The ``k`` POIs nearest to ``query``, closest first."""
        if k < 1:
            raise DatasetError(f"k must be >= 1, got {k}")
        k = min(k, len(self._pois))
        d = self._distances(query, metric)
        order = np.argpartition(d, k - 1)[:k]
        order = order[np.argsort(d[order])]
        return [self._pois[i] for i in order]

    def within_radius(
        self, query: Point, radius: float, metric: Metric | None = None
    ) -> list[POI]:
        """All POIs within ``radius`` km of ``query``, closest first."""
        if radius <= 0:
            raise DatasetError(f"radius must be positive, got {radius}")
        d = self._distances(query, metric)
        idx = np.nonzero(d <= radius)[0]
        idx = idx[np.argsort(d[idx])]
        return [self._pois[i] for i in idx]
