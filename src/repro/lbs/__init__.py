"""Location-based-service simulation (POI store, k-NN, QoS metrics)."""

from repro.lbs.poi import POI, POIStore
from repro.lbs.service import (
    LocationBasedService,
    QueryOutcome,
    ServiceReport,
    required_radius_expansion,
)

__all__ = [
    "LocationBasedService",
    "POI",
    "POIStore",
    "QueryOutcome",
    "ServiceReport",
    "required_radius_expansion",
]
