"""Stochastic mechanism matrices.

A discrete GeoInd mechanism over location sets X (inputs) and Z (outputs)
is a row-stochastic matrix ``K`` with ``K[x, z] = Pr[report z | at x]``
(Figure 2 of the paper).  :class:`MechanismMatrix` bundles the matrix
with its location sets and provides the operations everything else is
built from: row sampling, exact expected-loss computation, composition,
and post-processing.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import MechanismError
from repro.geo.metric import Metric
from repro.geo.point import Point

#: Row-sum slack tolerated before a matrix is rejected as non-stochastic.
_ROW_TOL = 1e-6


class MechanismMatrix:
    """An immutable row-stochastic matrix over discrete locations.

    Parameters
    ----------
    inputs:
        The actual-location set X (row labels).
    outputs:
        The reported-location set Z (column labels).
    k:
        ``(len(inputs), len(outputs))`` matrix of conditional
        probabilities.  Tiny negative entries from LP round-off (down to
        ``-1e-6``) are clipped to zero and rows renormalised.
    """

    def __init__(
        self,
        inputs: Sequence[Point],
        outputs: Sequence[Point],
        k: np.ndarray,
    ):
        k = np.asarray(k, dtype=float)
        if k.ndim != 2 or k.shape != (len(inputs), len(outputs)):
            raise MechanismError(
                f"matrix shape {k.shape} does not match "
                f"{len(inputs)} inputs x {len(outputs)} outputs"
            )
        if not np.all(np.isfinite(k)):
            raise MechanismError("matrix has non-finite entries")
        if np.any(k < -_ROW_TOL):
            raise MechanismError(
                f"matrix has negative entries below tolerance: min={k.min():.3e}"
            )
        k = np.clip(k, 0.0, None)
        sums = k.sum(axis=1)
        if np.any(np.abs(sums - 1.0) > _ROW_TOL):
            worst = float(np.abs(sums - 1.0).max())
            raise MechanismError(
                f"matrix rows are not stochastic (worst deviation {worst:.3e})"
            )
        self._inputs = list(inputs)
        self._outputs = list(outputs)
        self._k = k / sums[:, None]
        self._k.setflags(write=False)
        self._cdf: np.ndarray | None = None

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> list[Point]:
        """The actual-location set X."""
        return list(self._inputs)

    @property
    def outputs(self) -> list[Point]:
        """The reported-location set Z."""
        return list(self._outputs)

    @property
    def k(self) -> np.ndarray:
        """The (read-only) stochastic matrix."""
        return self._k

    @property
    def shape(self) -> tuple[int, int]:
        """``(|X|, |Z|)``."""
        return self._k.shape

    @property
    def cdf(self) -> np.ndarray:
        """Row-wise cumulative distribution, cached (read-only).

        ``cumsum`` over full rows first and gathering after is bitwise
        identical to gathering first and summing after (each row's prefix
        sums involve only that row), so sampling through this cache
        reproduces the historical per-call ``cumsum(k[idx])`` exactly.
        """
        if self._cdf is None:
            cdf = np.cumsum(self._k, axis=1)
            cdf.setflags(write=False)
            self._cdf = cdf
        return self._cdf

    def row(self, x_index: int) -> np.ndarray:
        """The output distribution ``K(x)(Z)`` for input index ``x_index``."""
        return self._k[x_index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MechanismMatrix({self.shape[0]}x{self.shape[1]})"

    # ------------------------------------------------------------------
    # behaviour
    # ------------------------------------------------------------------
    def sample(self, x_index: int, rng: np.random.Generator) -> int:
        """Draw an output index from row ``x_index``."""
        return int(rng.choice(self._k.shape[1], p=self._k[x_index]))

    def sample_point(self, x_index: int, rng: np.random.Generator) -> Point:
        """Draw an output location from row ``x_index``."""
        return self._outputs[self.sample(x_index, rng)]

    def sample_rows(
        self,
        x_indices: np.ndarray,
        rng: np.random.Generator | None = None,
        u: np.ndarray | None = None,
    ) -> np.ndarray:
        """Draw one output index per entry of ``x_indices``, vectorised.

        Equivalent in distribution to calling :meth:`sample` once per
        index (each draw is independent, conditioned only on its row),
        but implemented by CDF inversion over the gathered rows — one
        ``rng.random`` call and a comparison instead of ``len(x_indices)``
        ``rng.choice`` calls.  This is the batch-sanitisation hot path.

        The uniforms may be drawn by the caller and passed via ``u``
        (one per index) — the walk engine does this so that staged and
        compiled paths consume the RNG stream identically.
        """
        idx = np.asarray(x_indices, dtype=np.int64).ravel()
        if u is None:
            if rng is None:
                raise MechanismError("sample_rows needs either rng or u")
            u = rng.random(idx.size)
        else:
            u = np.asarray(u, dtype=float).ravel()
            if u.size != idx.size:
                raise MechanismError(
                    f"{u.size} uniforms for {idx.size} row indices"
                )
        if idx.size == 0:
            return np.empty(0, dtype=np.int64)
        n_rows, n_cols = self._k.shape
        if np.any((idx < 0) | (idx >= n_rows)):
            raise MechanismError(
                f"row indices outside [0, {n_rows}): "
                f"min={idx.min()}, max={idx.max()}"
            )
        return invert_cdf_rows(self.cdf[idx], u)

    def expected_loss(self, prior: np.ndarray, metric: Metric) -> float:
        """Exact expected utility loss ``sum_x Pi(x) K(x)(z) dQ(x, z)``.

        This is the paper's Eq. (3) objective evaluated in closed form,
        with ``prior`` a probability vector over :attr:`inputs`.
        """
        prior = np.asarray(prior, dtype=float).ravel()
        if prior.size != self._k.shape[0]:
            raise MechanismError(
                f"prior has {prior.size} entries for {self._k.shape[0]} inputs"
            )
        d = metric.pairwise(self._inputs, self._outputs)
        return float(prior @ (self._k * d).sum(axis=1))

    def output_distribution(self, prior: np.ndarray) -> np.ndarray:
        """Marginal ``Pr[z] = sum_x Pi(x) K(x, z)`` over outputs."""
        prior = np.asarray(prior, dtype=float).ravel()
        return prior @ self._k

    def stay_probabilities(self) -> np.ndarray:
        """``Pr[x|x]`` per location — the budget model's target quantity.

        Only defined when X and Z coincide elementwise.
        """
        if self._k.shape[0] != self._k.shape[1]:
            raise MechanismError("stay probability needs square X = Z")
        return np.diag(self._k).copy()

    def compose(self, next_step: "MechanismMatrix") -> "MechanismMatrix":
        """Chain this mechanism's output into another's input.

        Requires this mechanism's output set to coincide with
        ``next_step``'s input set; the result is the matrix product —
        the distribution of the two-step pipeline.
        """
        if self._outputs != next_step._inputs:
            raise MechanismError(
                "cannot compose: outputs of the first mechanism differ "
                "from inputs of the second"
            )
        return MechanismMatrix(
            self._inputs, next_step._outputs, self._k @ next_step.k
        )

    def with_remap(self, assignment: np.ndarray) -> "MechanismMatrix":
        """Apply a deterministic output remap ``z -> outputs[assignment[z]]``.

        Deterministic post-processing of mechanism output never degrades
        GeoInd (data-processing inequality), which is why the paper's PL
        benchmark may snap its output to the grid.
        """
        assignment = np.asarray(assignment, dtype=np.int64).ravel()
        n_out = self._k.shape[1]
        if assignment.size != n_out:
            raise MechanismError(
                f"remap has {assignment.size} entries for {n_out} outputs"
            )
        if np.any((assignment < 0) | (assignment >= n_out)):
            raise MechanismError("remap targets outside the output set")
        remapped = np.zeros_like(self._k)
        np.add.at(remapped.T, assignment, self._k.T)
        return MechanismMatrix(self._inputs, self._outputs, remapped)


# ----------------------------------------------------------------------
# Arena operations (compiled-walk support)
# ----------------------------------------------------------------------
def invert_cdf_rows(cdf_rows: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Invert pre-gathered CDF rows at uniforms ``u`` (one per row).

    Comparison-count inversion: output ``j`` iff
    ``cdf[j-1] <= u < cdf[j]``.  Used by both :meth:`sample_rows` and
    the compiled kernel's cross-node arena gather so the two paths are
    bitwise identical given the same rows and uniforms.
    """
    out = (u[:, None] > cdf_rows).sum(axis=1)
    # Float round-off can leave cdf[:, -1] a hair under 1.0; clamp so
    # a u drawn in that sliver still maps to the last output.
    return np.minimum(out, cdf_rows.shape[1] - 1).astype(np.int64)


def stack_cdf_arena(matrices: Sequence[MechanismMatrix]) -> np.ndarray:
    """Stack same-width mechanism CDFs into one contiguous row arena.

    Rows of matrix ``m`` occupy the block starting at
    ``sum(matrices[j].shape[0] for j < m)``; each block is bitwise equal
    to that matrix's own :attr:`MechanismMatrix.cdf` (row-wise prefix
    sums are independent of stacking).
    """
    if not matrices:
        return np.empty((0, 0), dtype=float)
    widths = {m.shape[1] for m in matrices}
    if len(widths) != 1:
        raise MechanismError(
            f"cannot stack mixed-width matrices into one arena: {sorted(widths)}"
        )
    return np.concatenate([m.cdf for m in matrices], axis=0)


def sample_arena_rows(
    arena_cdf: np.ndarray, rows: np.ndarray, u: np.ndarray
) -> np.ndarray:
    """Cross-node row-gather sampling against a stacked CDF arena."""
    rows = np.asarray(rows, dtype=np.int64).ravel()
    if rows.size == 0:
        return np.empty(0, dtype=np.int64)
    if np.any((rows < 0) | (rows >= arena_cdf.shape[0])):
        raise MechanismError(
            f"arena rows outside [0, {arena_cdf.shape[0]}): "
            f"min={rows.min()}, max={rows.max()}"
        )
    return invert_cdf_rows(arena_cdf[rows], np.asarray(u, dtype=float).ravel())
