"""Optimal Bayesian remapping.

Chatzikokolakis et al. [5] improve any mechanism's utility with a
deterministic post-processing step: on observing output ``z``, report
instead the location minimising the posterior-expected quality loss

    remap(z) = argmin_w  sum_x  sigma(x | z) * dQ(x, w),

where ``sigma(x|z) proportional to Pi(x) K(x, z)`` is the Bayesian
posterior under the modelling prior.  Being a function of the output
alone, remapping never weakens GeoInd (data-processing inequality); it
changes utility only.  The same posterior machinery doubles as the
substrate of :mod:`repro.attacks.bayesian` — an "optimal remap" chosen
by an adversary *is* the optimal inference attack.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MechanismError
from repro.geo.metric import Metric
from repro.mechanisms.matrix import MechanismMatrix


def posterior_matrix(matrix: MechanismMatrix, prior: np.ndarray) -> np.ndarray:
    """Posterior ``sigma[z, x] = Pr[at x | reported z]`` under ``prior``.

    Columns of K with zero marginal probability (outputs the mechanism
    never emits under this prior) get a uniform posterior — any choice
    works since they occur with probability zero.
    """
    prior = np.asarray(prior, dtype=float).ravel()
    k = matrix.k
    if prior.size != k.shape[0]:
        raise MechanismError(
            f"prior has {prior.size} entries for {k.shape[0]} inputs"
        )
    joint = prior[:, None] * k  # (x, z)
    marginal = joint.sum(axis=0)  # (z,)
    sigma = np.empty((k.shape[1], k.shape[0]))  # (z, x)
    emitted = marginal > 0
    sigma[emitted] = (joint[:, emitted] / marginal[emitted]).T
    sigma[~emitted] = 1.0 / k.shape[0]
    return sigma


def optimal_remap_assignment(
    matrix: MechanismMatrix, prior: np.ndarray, dq: Metric
) -> np.ndarray:
    """For each output index, the loss-minimising replacement output index.

    The candidate set is the mechanism's own output set (the paper's
    setting, where Z is the grid); ties resolve to the lowest index.
    """
    sigma = posterior_matrix(matrix, prior)  # (z, x)
    d = dq.pairwise(matrix.inputs, matrix.outputs)  # (x, w)
    expected = sigma @ d  # (z, w): posterior-expected loss of reporting w
    return np.argmin(expected, axis=1)


def remap_mechanism(
    matrix: MechanismMatrix, prior: np.ndarray, dq: Metric
) -> MechanismMatrix:
    """Return ``matrix`` post-processed by the optimal Bayesian remap."""
    assignment = optimal_remap_assignment(matrix, prior, dq)
    return matrix.with_remap(assignment)
