"""Delta-spanners for constraint reduction in the optimal mechanism.

The flat OPT linear program has one GeoInd constraint per ordered
location pair and output — ``n^2 (n - 1)`` rows.  Bordenabe et al. [2]
observed that it suffices to constrain the edges of a *spanner* graph: a
subgraph whose shortest-path distance approximates the true distance
within a dilation factor ``delta``.  If every edge ``(x, x')`` satisfies
the constraint at level ``eps``, transitivity along spanner paths bounds
every pair at ``eps * delta * d(x, x')``; running the edges at
``eps / delta`` therefore restores an exact ``eps``-GeoInd guarantee at
a fraction of the constraint count.

This module builds the classic greedy spanner (sort pairs by distance,
add an edge only when the current graph cannot already cover the pair
within dilation), which guarantees dilation ``<= delta`` by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx
import numpy as np

from repro.exceptions import MechanismError
from repro.geo.metric import EUCLIDEAN, Metric
from repro.geo.point import Point


@dataclass(frozen=True)
class Spanner:
    """A dilation-bounded subgraph over a location set.

    Attributes
    ----------
    edges:
        Undirected edges as ``(i, j)`` index pairs with ``i < j``.
    dilation:
        The requested dilation bound ``delta`` (the construction
        guarantees the realised dilation never exceeds it).
    n_locations:
        Size of the location set the spanner covers.
    """

    edges: tuple[tuple[int, int], ...]
    dilation: float
    n_locations: int

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.edges)

    def ordered_pairs(self) -> list[tuple[int, int]]:
        """Both orientations of every edge — the LP constraint pairs."""
        out: list[tuple[int, int]] = []
        for i, j in self.edges:
            out.append((i, j))
            out.append((j, i))
        return out


def greedy_spanner(
    locations: Sequence[Point],
    dilation: float,
    metric: Metric = EUCLIDEAN,
) -> Spanner:
    """Build a greedy ``dilation``-spanner over ``locations``.

    Complexity is O(n^2 log n + n^2 * Dijkstra); fine for the few
    hundred locations flat OPT can handle in the first place.

    Raises
    ------
    MechanismError
        If ``dilation < 1`` (no graph can beat the true distance).
    """
    if dilation < 1.0:
        raise MechanismError(f"spanner dilation must be >= 1, got {dilation}")
    n = len(locations)
    if n < 2:
        return Spanner(edges=(), dilation=dilation, n_locations=n)

    d = metric.pairwise(locations, locations)
    iu, ju = np.triu_indices(n, k=1)
    order = np.argsort(d[iu, ju], kind="stable")

    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    edges: list[tuple[int, int]] = []
    for idx in order:
        i, j = int(iu[idx]), int(ju[idx])
        target = dilation * d[i, j]
        try:
            current = nx.dijkstra_path_length(graph, i, j)
        except nx.NetworkXNoPath:
            current = np.inf
        if current > target:
            graph.add_edge(i, j, weight=float(d[i, j]))
            edges.append((i, j))
    return Spanner(edges=tuple(edges), dilation=dilation, n_locations=n)


def verify_dilation(
    spanner: Spanner,
    locations: Sequence[Point],
    metric: Metric = EUCLIDEAN,
) -> float:
    """Measure the realised dilation of a spanner (max over all pairs).

    Returns the worst ratio of graph distance to metric distance; by
    construction this never exceeds :attr:`Spanner.dilation` for
    spanners built by :func:`greedy_spanner`.
    """
    n = spanner.n_locations
    if n < 2:
        return 1.0
    d = metric.pairwise(locations, locations)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for i, j in spanner.edges:
        graph.add_edge(i, j, weight=float(d[i, j]))
    worst = 1.0
    lengths = dict(nx.all_pairs_dijkstra_path_length(graph))
    for i in range(n):
        row = lengths.get(i, {})
        for j in range(i + 1, n):
            if j not in row:
                return float("inf")
            if d[i, j] > 0:
                worst = max(worst, row[j] / d[i, j])
    return float(worst)
