"""GeoInd mechanisms: planar Laplace, exponential, optimal (LP), remap."""

from repro.mechanisms.base import GridMechanism, Mechanism
from repro.mechanisms.exponential import (
    ExponentialMechanism,
    exponential_matrix,
    exponential_matrix_from_locations,
)
from repro.mechanisms.matrix import MechanismMatrix
from repro.mechanisms.optimal import (
    OptimalMechanism,
    OptimalMechanismResult,
    build_optimal_program,
    optimal_mechanism_from_locations,
)
from repro.mechanisms.planar_laplace import (
    PlanarLaplaceMechanism,
    expected_loss_continuous,
    planar_laplace_density,
    planar_laplace_matrix,
    planar_laplace_radius,
    sample_planar_laplace,
)
from repro.mechanisms.remap import (
    optimal_remap_assignment,
    posterior_matrix,
    remap_mechanism,
)
from repro.mechanisms.spanner import Spanner, greedy_spanner, verify_dilation

__all__ = [
    "ExponentialMechanism",
    "GridMechanism",
    "Mechanism",
    "MechanismMatrix",
    "OptimalMechanism",
    "OptimalMechanismResult",
    "PlanarLaplaceMechanism",
    "Spanner",
    "build_optimal_program",
    "expected_loss_continuous",
    "exponential_matrix",
    "exponential_matrix_from_locations",
    "greedy_spanner",
    "optimal_mechanism_from_locations",
    "optimal_remap_assignment",
    "planar_laplace_density",
    "planar_laplace_matrix",
    "planar_laplace_radius",
    "posterior_matrix",
    "remap_mechanism",
    "sample_planar_laplace",
    "verify_dilation",
]
