"""The optimal GeoInd mechanism (OPT) of Bordenabe et al. [2].

Given a prior Pi over a discrete location set, OPT is the stochastic
matrix minimising the expected utility loss (Eq. 3) subject to the
GeoInd constraints (Eq. 4), row-stochasticity (Eq. 5) and non-negativity
(Eq. 6) — a linear program with ``n^2`` variables and ``n^2 (n - 1)``
inequality rows, which is why the paper calls flat OPT "unfeasible even
when the set of locations has low cardinality" and builds MSM around
small instances of it.

The LP is assembled directly into COO arrays (no per-row Python loop):
for ``g = 6`` subgrids MSM solves online, construction plus HiGHS solve
is tens of milliseconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import MechanismError, SolverError
from repro.geo.metric import EUCLIDEAN, Metric
from repro.geo.point import Point
from repro.lp import LinearProgram, LPResult, LPSolver, solve_or_raise
from repro.mechanisms.base import GridMechanism
from repro.mechanisms.matrix import MechanismMatrix
from repro.mechanisms.spanner import Spanner, greedy_spanner
from repro.priors.base import GridPrior

#: Exponent cap for the GeoInd constraint factors ``exp(eps * dX)``.
#: Capping *tightens* the constraints (a smaller factor is a stricter
#: bound), so the solved mechanism still satisfies the claimed epsilon;
#: it changes the optimum only by coupling probabilities below e^-20
#: (~2e-9).  Without the cap, factors reach e^35+ on city-scale grids
#: and the badly-scaled LP drives HiGHS to wrong "optimal" bases.
_MAX_EXPONENT = 20.0


@dataclass(frozen=True)
class OptimalMechanismResult:
    """OPT's matrix plus the solve diagnostics every experiment reports."""

    matrix: MechanismMatrix
    lp_result: LPResult
    n_locations: int
    n_variables: int
    n_constraints: int
    build_seconds: float
    spanner: Spanner | None = None

    @property
    def total_seconds(self) -> float:
        """Wall-clock for LP construction plus solve."""
        return self.build_seconds + self.lp_result.solve_seconds

    @property
    def expected_loss(self) -> float:
        """The LP objective — the mechanism's expected utility loss."""
        return self.lp_result.objective


def build_optimal_program(
    epsilon: float,
    locations: Sequence[Point],
    prior: np.ndarray,
    dq: Metric,
    dx: Metric = EUCLIDEAN,
    constraint_pairs: Sequence[tuple[int, int]] | None = None,
) -> LinearProgram:
    """Assemble the OPT linear program (Eqs. 3-6 of the paper).

    Variables are ``K[i, j]`` flattened row-major (``v = i * n + j``).
    ``constraint_pairs`` restricts the GeoInd rows to the given ordered
    pairs (the spanner optimisation); by default every ordered pair is
    constrained.
    """
    n = len(locations)
    if n < 1:
        raise MechanismError("OPT needs at least one location")
    if epsilon <= 0:
        raise MechanismError(f"epsilon must be positive, got {epsilon}")
    prior = np.asarray(prior, dtype=float).ravel()
    if prior.size != n:
        raise MechanismError(f"prior has {prior.size} entries for {n} locations")

    d_q = dq.pairwise(locations, locations)
    d_x = dx.pairwise(locations, locations)

    # Objective (Eq. 3): sum_i Pi_i * K[i, j] * dQ(i, j).
    c = (prior[:, None] * d_q).ravel()

    # GeoInd rows (Eq. 4): K[i, z] - exp(eps * dX(i, i')) K[i', z] <= 0.
    if constraint_pairs is None:
        i_idx, ip_idx = np.nonzero(~np.eye(n, dtype=bool))
    else:
        pairs = np.asarray(constraint_pairs, dtype=np.int64).reshape(-1, 2)
        if pairs.size and (pairs.min() < 0 or pairs.max() >= n):
            raise MechanismError("constraint pair index outside location set")
        i_idx, ip_idx = pairs[:, 0], pairs[:, 1]
    n_pairs = i_idx.size
    n_rows = n_pairs * n

    if n_rows:
        z = np.tile(np.arange(n), n_pairs)
        rows = np.arange(n_rows)  # row r = pair_index * n + z
        cols_pos = np.repeat(i_idx, n) * n + z
        cols_neg = np.repeat(ip_idx, n) * n + z
        factors = np.exp(np.minimum(epsilon * d_x[i_idx, ip_idx], _MAX_EXPONENT))
        data_neg = -np.repeat(factors, n)
        a_ub = sp.csr_matrix(
            (
                np.concatenate([np.ones(n_rows), data_neg]),
                (
                    np.concatenate([rows, rows]),
                    np.concatenate([cols_pos, cols_neg]),
                ),
            ),
            shape=(n_rows, n * n),
        )
        b_ub = np.zeros(n_rows)
    else:
        a_ub, b_ub = None, None

    # Row stochasticity (Eq. 5): sum_z K[i, z] = 1 for every i.
    a_eq = sp.csr_matrix(
        (
            np.ones(n * n),
            (np.repeat(np.arange(n), n), np.arange(n * n)),
        ),
        shape=(n, n * n),
    )
    b_eq = np.ones(n)

    # Non-negativity (Eq. 6) is the default variable bound.
    return LinearProgram(c=c, a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq)


def optimal_mechanism_from_locations(
    epsilon: float,
    locations: Sequence[Point],
    prior: np.ndarray,
    dq: Metric,
    dx: Metric = EUCLIDEAN,
    backend: str = "highs-ds",
    spanner_dilation: float | None = None,
    time_limit: float | None = None,
    solver: LPSolver | None = None,
) -> OptimalMechanismResult:
    """Solve OPT over an explicit location set.

    Parameters
    ----------
    epsilon:
        The GeoInd level the returned mechanism satisfies.
    spanner_dilation:
        When given (> 1), GeoInd rows are restricted to a greedy
        spanner's edges run at ``epsilon / dilation``, which provably
        still yields an ``epsilon``-GeoInd mechanism with far fewer
        constraints (see :mod:`repro.mechanisms.spanner`).
    time_limit:
        Wall-clock cap forwarded to the LP backend; exceeding it raises
        :class:`~repro.exceptions.SolverError` (this is how the Fig. 3
        bench reproduces the paper's "72hrs+" rows at laptop scale).
    solver:
        An :class:`~repro.lp.LPSolver` (typically a
        :class:`~repro.core.resilience.ResilientSolver`) used in place
        of the single named ``backend`` — this is how MSM routes every
        per-level solve through the fallback chain.
    """
    start = time.perf_counter()
    spanner: Spanner | None = None
    if spanner_dilation is not None:
        spanner = greedy_spanner(locations, spanner_dilation, metric=dx)
        program = build_optimal_program(
            epsilon / spanner_dilation,
            locations,
            prior,
            dq,
            dx=dx,
            constraint_pairs=spanner.ordered_pairs(),
        )
    else:
        program = build_optimal_program(epsilon, locations, prior, dq, dx=dx)
    build_seconds = time.perf_counter() - start

    if solver is not None:
        lp_result = solver.solve(program, time_limit=time_limit)
        if not lp_result.is_optimal:  # defensive: LPSolver must fail closed
            raise SolverError(
                f"solver returned non-optimal status "
                f"{lp_result.status.value} instead of raising"
            )
    else:
        lp_result = solve_or_raise(
            program, backend=backend, time_limit=time_limit
        )
    n = len(locations)
    k = lp_result.x.reshape(n, n)
    matrix = MechanismMatrix(list(locations), list(locations), k)
    return OptimalMechanismResult(
        matrix=matrix,
        lp_result=lp_result,
        n_locations=n,
        n_variables=program.n_vars,
        n_constraints=program.n_constraints,
        build_seconds=build_seconds,
        spanner=spanner,
    )


class OptimalMechanism(GridMechanism):
    """OPT over a grid's cell centres, ready to sanitise points.

    This is the paper's baseline: ``OPT(eps, G, Pi, dQ)`` (Section 3.2).
    Construction solves the LP once; sampling afterwards is O(n).
    """

    def __init__(
        self,
        epsilon: float,
        prior: GridPrior,
        dq: Metric = EUCLIDEAN,
        dx: Metric = EUCLIDEAN,
        backend: str = "highs-ds",
        spanner_dilation: float | None = None,
        time_limit: float | None = None,
    ):
        result = optimal_mechanism_from_locations(
            epsilon,
            prior.grid.centers(),
            prior.probabilities,
            dq,
            dx=dx,
            backend=backend,
            spanner_dilation=spanner_dilation,
            time_limit=time_limit,
        )
        super().__init__(prior.grid, result.matrix, epsilon, name="OPT")
        self._result = result

    @property
    def result(self) -> OptimalMechanismResult:
        """Solve diagnostics (objective, timings, constraint counts)."""
        return self._result
