"""The planar Laplace mechanism (PL).

The baseline GeoInd mechanism of Andres et al. [1]: perturb the actual
location with noise from the bivariate Laplacian density

    D_eps(x, z) = eps^2 / (2 pi) * exp(-eps * d(x, z))

by drawing an angle uniformly and a radius from the Gamma-like radial
CDF ``C_eps(r) = 1 - (1 + eps r) e^{-eps r}``, inverted in closed form
with the Lambert-W function's ``-1`` branch.  The paper's benchmark
configuration adds a remap-to-grid post-processing step (Section 6.2),
which deterministic post-processing leaves GeoInd intact.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.special import lambertw

from repro.exceptions import MechanismError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point, array_to_points, points_to_array
from repro.grid.regular import RegularGrid
from repro.mechanisms.base import Mechanism
from repro.mechanisms.matrix import MechanismMatrix


def planar_laplace_radius(p: np.ndarray | float, epsilon: float) -> np.ndarray:
    """Inverse radial CDF: the radius at cumulative probability ``p``.

    ``r = -(1/eps) * (W_{-1}((p - 1)/e) + 1)`` — [1], Theorem 4.3.
    """
    if epsilon <= 0:
        raise MechanismError(f"epsilon must be positive, got {epsilon}")
    p = np.asarray(p, dtype=float)
    if np.any((p < 0) | (p >= 1)):
        raise MechanismError("radial CDF argument must lie in [0, 1)")
    w = lambertw((p - 1.0) / np.e, k=-1)
    r = np.real(-(w + 1.0) / epsilon)
    # lambertw returns nan exactly at the branch point (p = 0 -> -1/e),
    # where the radius is 0 by continuity.
    return np.where(p == 0.0, 0.0, r)


def sample_planar_laplace(
    x: Point, epsilon: float, rng: np.random.Generator
) -> Point:
    """Draw one continuous planar-Laplace perturbation of ``x``."""
    theta = rng.uniform(0.0, 2.0 * np.pi)
    r = float(planar_laplace_radius(rng.uniform(), epsilon))
    return Point(x.x + r * np.cos(theta), x.y + r * np.sin(theta))


def expected_loss_continuous(epsilon: float, metric_name: str = "euclidean") -> float:
    """Closed-form expected loss of *unremapped* continuous PL.

    The radial law has ``E[r] = 2 / eps`` and ``E[r^2] = 6 / eps^2``
    (Gamma(2, 1/eps) moments), independent of the actual location.
    These are the analytical anchors the Monte-Carlo harness is tested
    against; remapping/clamping to a grid can only change the numbers
    through boundary effects and discretisation.
    """
    if epsilon <= 0:
        raise MechanismError(f"epsilon must be positive, got {epsilon}")
    if metric_name == "euclidean":
        return 2.0 / epsilon
    if metric_name == "squared_euclidean":
        return 6.0 / (epsilon * epsilon)
    raise MechanismError(
        f"no closed form for metric {metric_name!r}; "
        "use Monte-Carlo evaluation"
    )


def planar_laplace_density(
    x: Point, zs: np.ndarray, epsilon: float
) -> np.ndarray:
    """Bivariate Laplace density of outputs ``zs`` (an ``(n, 2)`` array)."""
    d = np.hypot(zs[:, 0] - x.x, zs[:, 1] - x.y)
    return (epsilon**2) / (2.0 * np.pi) * np.exp(-epsilon * d)


class PlanarLaplaceMechanism(Mechanism):
    """PL, optionally remapped to a grid and/or clamped to a domain.

    Parameters
    ----------
    epsilon:
        GeoInd privacy parameter (per km, matching the library's km
        coordinate convention).
    grid:
        When given, the continuous output is clamped into the grid's
        bounds and snapped to the enclosing cell centre — the paper's
        benchmark configuration.
    bounds:
        When given (and ``grid`` is not), output is clamped into this
        box but left continuous.
    """

    def __init__(
        self,
        epsilon: float,
        grid: RegularGrid | None = None,
        bounds: BoundingBox | None = None,
    ):
        if epsilon <= 0:
            raise MechanismError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        self._grid = grid
        self._bounds = grid.bounds if grid is not None else bounds
        self.name = "PL"

    @property
    def grid(self) -> RegularGrid | None:
        """The remap target grid, if any."""
        return self._grid

    def sample(self, x: Point, rng: np.random.Generator) -> Point:
        z = sample_planar_laplace(x, self.epsilon, rng)
        if self._grid is not None:
            return self._grid.snap_clamped(z)
        if self._bounds is not None:
            return self._bounds.clamp(z)
        return z

    def sample_many(
        self, xs: Sequence[Point], rng: np.random.Generator
    ) -> list[Point]:
        """Vectorised batch sampling (the PL hot path in the harness)."""
        n = len(xs)
        if n == 0:
            return []
        theta = rng.uniform(0.0, 2.0 * np.pi, size=n)
        r = planar_laplace_radius(rng.uniform(size=n), self.epsilon)
        arr = points_to_array(xs)
        out = arr + np.column_stack([r * np.cos(theta), r * np.sin(theta)])
        points = array_to_points(out)
        if self._grid is not None:
            return [self._grid.snap_clamped(p) for p in points]
        if self._bounds is not None:
            return [self._bounds.clamp(p) for p in points]
        return points


def planar_laplace_matrix(
    grid: RegularGrid, epsilon: float, quadrature: int = 4
) -> MechanismMatrix:
    """Discretised PL over a grid's cell centres, for exact-loss analysis.

    Entry ``(i, j)`` approximates the probability that the continuous PL
    output from cell centre ``i`` falls inside cell ``j``, via a
    ``quadrature x quadrature`` midpoint rule per cell; rows are then
    renormalised, which attributes the out-of-domain mass to cells
    proportionally (the sampling path instead clamps — close enough for
    the analysis role this matrix plays, and exactness is never needed
    for privacy, which the continuous mechanism guarantees).
    """
    if quadrature < 1:
        raise MechanismError(f"quadrature must be >= 1, got {quadrature}")
    centers = grid.centers()
    n = grid.n_cells
    # Quadrature points for every cell, shape (n * q^2, 2).
    q = quadrature
    offsets_x = (np.arange(q) + 0.5) / q * grid.cell_width
    offsets_y = (np.arange(q) + 0.5) / q * grid.cell_height
    ox, oy = np.meshgrid(offsets_x, offsets_y)
    offsets = np.column_stack([ox.ravel(), oy.ravel()])
    cell_origins = np.asarray(
        [(c.bounds.min_x, c.bounds.min_y) for c in grid.cells()]
    )
    points = (cell_origins[:, None, :] + offsets[None, :, :]).reshape(-1, 2)

    k = np.empty((n, n))
    cell_area_fraction = (grid.cell_width / q) * (grid.cell_height / q)
    for i, center in enumerate(centers):
        dens = planar_laplace_density(center, points, epsilon)
        k[i] = dens.reshape(n, q * q).sum(axis=1) * cell_area_fraction
    k /= k.sum(axis=1, keepdims=True)
    return MechanismMatrix(centers, centers, k)
