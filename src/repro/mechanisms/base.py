"""Mechanism interface.

Every location-sanitisation technique in the library — planar Laplace,
the optimal mechanism over a grid, the multi-step mechanism — implements
:class:`Mechanism`: it turns an actual location into a reported one,
consuming randomness from a caller-supplied generator so experiments are
reproducible and mechanisms stay stateless.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.geo.point import Point
from repro.grid.regular import RegularGrid
from repro.mechanisms.matrix import MechanismMatrix


class Mechanism(abc.ABC):
    """A (randomised) location-obfuscation function ``K : X -> P(Z)``."""

    #: short label used in result tables (e.g. ``"PL"``, ``"OPT"``, ``"MSM"``)
    name: str = "mechanism"

    #: the privacy parameter the mechanism was built to satisfy
    epsilon: float

    @abc.abstractmethod
    def sample(self, x: Point, rng: np.random.Generator) -> Point:
        """Report a sanitised location for actual location ``x``."""

    def sample_many(
        self, xs: Sequence[Point], rng: np.random.Generator
    ) -> list[Point]:
        """Sanitise a batch of locations (overridable for vectorisation)."""
        return [self.sample(x, rng) for x in xs]


class GridMechanism(Mechanism):
    """A mechanism defined by a stochastic matrix over one grid's cells.

    Input locations are snapped to their enclosing cell's centre (the
    paper's logical locations) before the matrix row is sampled.
    """

    def __init__(self, grid: RegularGrid, matrix: MechanismMatrix,
                 epsilon: float, name: str = "grid-mechanism"):
        self._grid = grid
        self._matrix = matrix
        self.epsilon = float(epsilon)
        self.name = name

    @property
    def grid(self) -> RegularGrid:
        """The grid whose cell centres form X = Z."""
        return self._grid

    @property
    def matrix(self) -> MechanismMatrix:
        """The underlying stochastic matrix."""
        return self._matrix

    def sample(self, x: Point, rng: np.random.Generator) -> Point:
        cell = self._grid.locate(x)
        return self._matrix.sample_point(cell.index, rng)
