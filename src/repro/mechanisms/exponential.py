"""The discrete exponential mechanism for GeoInd.

From Chatzikokolakis et al. [5]: over a discrete location set,

    K(x)(z)  proportional to  exp(-(eps / 2) * d(x, z))

satisfies ``eps``-GeoInd — the exponent ratio contributes at most
``exp((eps/2) d(x, x'))`` and the two normalisation constants at most the
same factor again.  It is a prior-oblivious middle ground between PL
(continuous, remapped) and OPT (prior-aware LP): costless to build, often
noticeably better than remapped PL on coarse grids, never better than
OPT.  The library ships it as an extension baseline for the ablation
benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MechanismError
from repro.geo.metric import EUCLIDEAN, Metric
from repro.grid.regular import RegularGrid
from repro.mechanisms.base import GridMechanism
from repro.mechanisms.matrix import MechanismMatrix


def exponential_matrix(
    grid: RegularGrid, epsilon: float, dx: Metric = EUCLIDEAN
) -> MechanismMatrix:
    """The exponential-mechanism matrix over a grid's cell centres."""
    if epsilon <= 0:
        raise MechanismError(f"epsilon must be positive, got {epsilon}")
    centers = grid.centers()
    d = dx.pairwise(centers, centers)
    k = np.exp(-(epsilon / 2.0) * d)
    k /= k.sum(axis=1, keepdims=True)
    return MechanismMatrix(centers, centers, k)


class ExponentialMechanism(GridMechanism):
    """Exponential mechanism over a grid, satisfying ``eps``-GeoInd."""

    def __init__(self, epsilon: float, grid: RegularGrid,
                 dx: Metric = EUCLIDEAN):
        matrix = exponential_matrix(grid, epsilon, dx=dx)
        super().__init__(grid, matrix, epsilon, name="EXP")
