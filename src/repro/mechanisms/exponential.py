"""The discrete exponential mechanism for GeoInd.

From Chatzikokolakis et al. [5]: over a discrete location set,

    K(x)(z)  proportional to  exp(-(eps / 2) * d(x, z))

satisfies ``eps``-GeoInd — the exponent ratio contributes at most
``exp((eps/2) d(x, x'))`` and the two normalisation constants at most the
same factor again.  It is a prior-oblivious middle ground between PL
(continuous, remapped) and OPT (prior-aware LP): costless to build, often
noticeably better than remapped PL on coarse grids, never better than
OPT.  The library ships it as an extension baseline for the ablation
benchmarks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import MechanismError
from repro.geo.metric import EUCLIDEAN, Metric
from repro.geo.point import Point
from repro.grid.regular import RegularGrid
from repro.mechanisms.base import GridMechanism
from repro.mechanisms.matrix import MechanismMatrix


def exponential_matrix_from_locations(
    locations: Sequence[Point], epsilon: float, dx: Metric = EUCLIDEAN
) -> MechanismMatrix:
    """The exponential-mechanism matrix over an explicit location set.

    Closed-form and unconditionally ``epsilon``-GeoInd for *any*
    location set, which is why the resilience layer uses it as the
    degradation fallback when a per-level OPT solve is unrecoverable:
    it needs no solver and can never trade away privacy, only utility.
    """
    if epsilon <= 0:
        raise MechanismError(f"epsilon must be positive, got {epsilon}")
    if not locations:
        raise MechanismError("exponential mechanism needs at least one location")
    locations = list(locations)
    d = dx.pairwise(locations, locations)
    k = np.exp(-(epsilon / 2.0) * d)
    k /= k.sum(axis=1, keepdims=True)
    return MechanismMatrix(locations, locations, k)


def exponential_matrix(
    grid: RegularGrid, epsilon: float, dx: Metric = EUCLIDEAN
) -> MechanismMatrix:
    """The exponential-mechanism matrix over a grid's cell centres."""
    return exponential_matrix_from_locations(grid.centers(), epsilon, dx=dx)


class ExponentialMechanism(GridMechanism):
    """Exponential mechanism over a grid, satisfying ``eps``-GeoInd."""

    def __init__(self, epsilon: float, grid: RegularGrid,
                 dx: Metric = EUCLIDEAN):
        matrix = exponential_matrix(grid, epsilon, dx=dx)
        super().__init__(grid, matrix, epsilon, name="EXP")
