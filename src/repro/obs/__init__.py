"""Observability for the walk engine: metrics, spans, exporters.

One object travels through the stack: an :class:`Observability` handle
bundling a :class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.trace.Tracer`.  Every instrumented component
(engine, cache, resilient solver, LP backends, session, LBS harness)
holds one, defaulting to the module-level :data:`NOOP` handle.

The no-overhead-when-disabled contract
--------------------------------------
Instrumentation is written so the disabled path costs almost nothing:

* metric emission is guarded by ``if obs.enabled:`` — one attribute
  read per *node group or level*, never per point;
* span creation under the :class:`~repro.obs.trace.NoopTracer` returns
  one shared, stateless context manager that yields ``None``;
* expensive span attributes (array reductions, path strings) are only
  computed when the yielded span object is not ``None``.

The acceptance criterion (serial engine throughput within 3% of the
pre-observability benchmark) is checked by ``benchmarks/bench_engine.py``
which runs with :data:`NOOP` unless ``--metrics`` is passed.

Enabling
--------
``Observability.collecting()`` builds a live handle::

    obs = Observability.collecting(trace=True)
    session = SanitizationSession(..., metrics=True)   # or via the CLI:
    # repro sanitize ... --metrics out.prom --trace-out spans.jsonl

Sharded execution gives each worker process a fresh registry and merges
the per-shard snapshots back into the parent registry — the same
snapshot/merge pattern it uses for per-shard mechanism caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import (
    LATENCY_EDGES,
    SIZE_EDGES,
    Counter,
    Gauge,
    Histogram,
    HistogramValue,
    MetricsRegistry,
    MetricsSnapshot,
    MetricValue,
)
from repro.obs.trace import NoopTracer, RecordingTracer, Span, Tracer

__all__ = [
    "LATENCY_EDGES",
    "SIZE_EDGES",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MetricValue",
    "NoopTracer",
    "RecordingTracer",
    "Span",
    "Tracer",
    "NOOP",
    "Observability",
]


@dataclass
class Observability:
    """The handle instrumented components hold.

    ``enabled`` is the single hot-path guard: components check it before
    touching the registry.  The tracer is consulted unconditionally (its
    noop implementation is itself near-free), so trace-only and
    metrics-only configurations both work.
    """

    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = field(default_factory=NoopTracer)
    enabled: bool = False

    @classmethod
    def collecting(cls, trace: bool = False) -> "Observability":
        """A live handle: fresh registry, optionally a recording tracer."""
        return cls(
            metrics=MetricsRegistry(),
            tracer=RecordingTracer() if trace else NoopTracer(),
            enabled=True,
        )

    def snapshot(self) -> MetricsSnapshot:
        """Shorthand for ``self.metrics.snapshot()``."""
        return self.metrics.snapshot()

    @property
    def spans(self) -> list[Span]:
        """Recorded root spans (empty under a noop tracer)."""
        tracer = self.tracer
        return list(tracer.roots) if isinstance(tracer, RecordingTracer) else []


#: The shared disabled handle — the default on every component.  Its
#: registry exists (so accidental writes are harmless, not crashes) but
#: ``enabled`` is False, and the tracer records nothing.
NOOP = Observability()
