"""Dependency-free metrics primitives: counters, gauges, histograms.

The registry is the numerical half of the observability layer
(:mod:`repro.obs`): every load-bearing signal of the walk engine — LP
seconds per level, cache hits, degradation counts, end-to-end latency —
lands in one :class:`MetricsRegistry` as a counter, gauge or
fixed-bucket histogram.

Two properties carry the whole design:

* **Deterministic snapshots.**  :meth:`MetricsRegistry.snapshot`
  returns a frozen, sorted :class:`MetricsSnapshot`; histograms use
  *fixed* bucket edges chosen at creation time, never adaptive ones, so
  the same workload produces the same snapshot structure every run and
  golden-file tests stay byte-stable.

* **Mergeable snapshots.**  Sharded execution gives every worker
  process its own registry and merges the per-shard snapshots back into
  the parent — exactly like it merges per-shard caches.  For that to be
  sound, :meth:`MetricsSnapshot.merge` must be associative and
  commutative: counters and histogram buckets add, gauges take the
  maximum (the only order-free combination for level-style values).
  Both laws are pinned down in ``tests/test_obs.py``.

The registry is plain-Python and picklable (it rides inside the engine
to worker processes) and is *not* thread-safe — the engine is
single-threaded per process, and shards never share a registry.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

from repro.exceptions import ObservabilityError

#: Default latency bucket upper bounds (seconds).  Spans four orders of
#: magnitude: sub-millisecond cache hits up to multi-second cold LP
#: sweeps.  Fixed so snapshots are deterministic across runs.
LATENCY_EDGES: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
)

#: Default size bucket upper bounds (batch sizes, shard sizes).
SIZE_EDGES: tuple[float, ...] = (
    1.0, 8.0, 64.0, 512.0, 4096.0, 32768.0, 262144.0,
)

#: A label set in canonical form: sorted ``(key, value)`` pairs.
Labels = tuple[tuple[str, str], ...]


def _canonical_labels(labels: dict[str, object]) -> Labels:
    """Sort and stringify a label mapping so it can key a metric."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value (events, seconds, points)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0 — counters never go down)."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        self.value += amount


class Gauge:
    """A point-in-time value (remaining budget, per-level epsilon)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """Observations bucketed by fixed upper-bound edges.

    ``edges`` are the finite bucket upper bounds in increasing order; an
    implicit ``+Inf`` bucket catches the tail.  ``counts[i]`` holds the
    number of observations ``<= edges[i]`` exclusive of earlier buckets
    (plain buckets, cumulated only at export time, which is what the
    Prometheus text format expects).
    """

    __slots__ = ("name", "labels", "edges", "counts", "sum", "count")

    def __init__(self, name: str, labels: Labels, edges: tuple[float, ...]):
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ObservabilityError(
                f"histogram {name} needs strictly increasing bucket "
                f"edges, got {edges}"
            )
        self.name = name
        self.labels = labels
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1


# ----------------------------------------------------------------------
# snapshots — the frozen, mergeable view
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricValue:
    """One counter or gauge reading."""

    name: str
    labels: Labels
    value: float


@dataclass(frozen=True)
class HistogramValue:
    """One histogram reading (plain per-bucket counts, not cumulative)."""

    name: str
    labels: Labels
    edges: tuple[float, ...]
    counts: tuple[int, ...]
    sum: float
    count: int


@dataclass(frozen=True)
class MetricsSnapshot:
    """A frozen, deterministic view of a registry.

    All three tuples are sorted by ``(name, labels)``, so two snapshots
    of identical registry states compare equal and export to identical
    text.  Merging is pure (returns a new snapshot), associative and
    commutative — the algebra sharded execution relies on.
    """

    counters: tuple[MetricValue, ...] = ()
    gauges: tuple[MetricValue, ...] = ()
    histograms: tuple[HistogramValue, ...] = ()

    # -- lookups -------------------------------------------------------
    def counter_value(self, name: str, **labels) -> float:
        """The counter's value, 0.0 when absent."""
        key = _canonical_labels(labels)
        for m in self.counters:
            if m.name == name and m.labels == key:
                return m.value
        return 0.0

    def gauge_value(self, name: str, **labels) -> float:
        """The gauge's value, 0.0 when absent."""
        key = _canonical_labels(labels)
        for m in self.gauges:
            if m.name == name and m.labels == key:
                return m.value
        return 0.0

    def histogram_value(self, name: str, **labels) -> HistogramValue | None:
        """The full histogram reading, None when absent."""
        key = _canonical_labels(labels)
        for h in self.histograms:
            if h.name == name and h.labels == key:
                return h
        return None

    def counter_total(self, name: str) -> float:
        """Sum of a counter across every label set (e.g. all levels)."""
        return sum(m.value for m in self.counters if m.name == name)

    def label_values(self, name: str, label: str) -> tuple[str, ...]:
        """Sorted distinct values of ``label`` on counters named ``name``."""
        values = {
            v for m in self.counters if m.name == name
            for k, v in m.labels if k == label
        }
        return tuple(sorted(values))

    # -- algebra -------------------------------------------------------
    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots: counters and histogram buckets add,
        gauges take the maximum.  Associative and commutative, so any
        merge order over any shard partition yields the same snapshot."""
        counters: dict[tuple[str, Labels], float] = {
            (m.name, m.labels): m.value for m in self.counters
        }
        for m in other.counters:
            key = (m.name, m.labels)
            counters[key] = counters.get(key, 0.0) + m.value
        gauges: dict[tuple[str, Labels], float] = {
            (m.name, m.labels): m.value for m in self.gauges
        }
        for m in other.gauges:
            key = (m.name, m.labels)
            gauges[key] = max(gauges.get(key, m.value), m.value)
        hists: dict[tuple[str, Labels], HistogramValue] = {
            (h.name, h.labels): h for h in self.histograms
        }
        for h in other.histograms:
            key = (h.name, h.labels)
            mine = hists.get(key)
            if mine is None:
                hists[key] = h
                continue
            if mine.edges != h.edges:
                raise ObservabilityError(
                    f"histogram {h.name} bucket edges differ across "
                    f"snapshots: {mine.edges} vs {h.edges}"
                )
            hists[key] = HistogramValue(
                name=h.name,
                labels=h.labels,
                edges=h.edges,
                counts=tuple(a + b for a, b in zip(mine.counts, h.counts)),
                sum=mine.sum + h.sum,
                count=mine.count + h.count,
            )
        return MetricsSnapshot(
            counters=tuple(
                MetricValue(n, la, v)
                for (n, la), v in sorted(counters.items())
            ),
            gauges=tuple(
                MetricValue(n, la, v)
                for (n, la), v in sorted(gauges.items())
            ),
            histograms=tuple(h for _, h in sorted(hists.items())),
        )

    def since(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """The delta accrued after ``earlier`` was taken.

        Counters and histograms subtract (entries that did not change
        are dropped); gauges keep their current value — a gauge is a
        level, not an accumulation, so "the delta" is just its reading.
        Used to attach per-batch telemetry summaries without resetting
        the long-lived registry.
        """
        base_counters = {
            (m.name, m.labels): m.value for m in earlier.counters
        }
        counters = []
        for m in self.counters:
            delta = m.value - base_counters.get((m.name, m.labels), 0.0)
            if delta != 0.0:
                counters.append(MetricValue(m.name, m.labels, delta))
        base_hists = {
            (h.name, h.labels): h for h in earlier.histograms
        }
        hists = []
        for h in self.histograms:
            base = base_hists.get((h.name, h.labels))
            if base is None:
                if h.count:
                    hists.append(h)
                continue
            if base.edges != h.edges:
                raise ObservabilityError(
                    f"histogram {h.name} bucket edges changed between "
                    f"snapshots: {base.edges} vs {h.edges}"
                )
            if h.count == base.count:
                continue
            hists.append(
                HistogramValue(
                    name=h.name,
                    labels=h.labels,
                    edges=h.edges,
                    counts=tuple(
                        a - b for a, b in zip(h.counts, base.counts)
                    ),
                    sum=h.sum - base.sum,
                    count=h.count - base.count,
                )
            )
        return MetricsSnapshot(
            counters=tuple(counters),
            gauges=self.gauges,
            histograms=tuple(hists),
        )


@dataclass
class MetricsRegistry:
    """The live metric store every instrumented component writes into.

    ``counter``/``gauge``/``histogram`` get-or-create by ``(name,
    labels)``; re-requesting a name with a different metric type (or a
    histogram with different edges) raises — a name means one thing.
    """

    _metrics: dict[tuple[str, Labels], object] = field(default_factory=dict)

    def counter(self, name: str, **labels) -> Counter:
        """Get or create the counter for ``(name, labels)``."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create the gauge for ``(name, labels)``."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        edges: tuple[float, ...] = LATENCY_EDGES,
        **labels,
    ) -> Histogram:
        """Get or create the fixed-edge histogram for ``(name, labels)``."""
        hist = self._get_or_create(Histogram, name, labels, edges=edges)
        if hist.edges != tuple(float(e) for e in edges):
            raise ObservabilityError(
                f"histogram {name} already registered with edges "
                f"{hist.edges}, requested {tuple(edges)}"
            )
        return hist

    def _get_or_create(self, cls, name: str, labels: dict, **kwargs):
        key = (name, _canonical_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise ObservabilityError(
                f"metric {name} is a {type(metric).__name__}, "
                f"requested as {cls.__name__}"
            )
        return metric

    def snapshot(self) -> MetricsSnapshot:
        """A frozen, sorted view of the current state."""
        counters, gauges, hists = [], [], []
        for (name, labels), metric in sorted(self._metrics.items()):
            if isinstance(metric, Counter):
                counters.append(MetricValue(name, labels, metric.value))
            elif isinstance(metric, Gauge):
                gauges.append(MetricValue(name, labels, metric.value))
            else:
                hists.append(
                    HistogramValue(
                        name=name,
                        labels=labels,
                        edges=metric.edges,
                        counts=tuple(metric.counts),
                        sum=metric.sum,
                        count=metric.count,
                    )
                )
        return MetricsSnapshot(
            counters=tuple(counters),
            gauges=tuple(gauges),
            histograms=tuple(hists),
        )

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot (e.g. a worker shard's) into this registry.

        Same semantics as :meth:`MetricsSnapshot.merge`: counters and
        histogram buckets add, gauges take the maximum.
        """
        for m in snapshot.counters:
            self.counter(m.name, **dict(m.labels)).inc(m.value)
        for m in snapshot.gauges:
            gauge = self.gauge(m.name, **dict(m.labels))
            gauge.set(max(gauge.value, m.value))
        for h in snapshot.histograms:
            hist = self.histogram(h.name, edges=h.edges, **dict(h.labels))
            for i, c in enumerate(h.counts):
                hist.counts[i] += c
            hist.sum += h.sum
            hist.count += h.count

    def clear(self) -> None:
        """Drop every metric (fresh registries for worker shards)."""
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)
