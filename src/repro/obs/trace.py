"""Hierarchical span tracing for the walk engine.

The tracer is the structural half of the observability layer: where the
:class:`~repro.obs.metrics.MetricsRegistry` says *how much*, spans say
*where*.  A batch sanitisation produces one tree per walk::

    walk
    ├── level (level=1, epsilon=...)
    │   ├── resolve (nodes=k)
    │   │   └── resolve.node (path=..., cache_hit=...)   one per node
    │   │       ├── cache.get
    │   │       └── cache.build        (on a miss)
    │   │           └── lp.solve       (the resilient chain)
    │   │               └── lp.backend (one per backend attempt)
    │   ├── locate  (node=..., n=...)  one per node group
    │   ├── sample  (node=..., n=...)
    │   └── descend (node=..., n=...)
    ├── level (level=2, ...)
    └── finalise (post=...)

Two implementations share the :class:`Tracer` interface:

* :class:`NoopTracer` — the default everywhere.  ``span()`` returns a
  shared, stateless context manager; entering it yields ``None`` and
  records nothing, so instrumented code costs a few attribute lookups
  per *node group* (never per point) when observability is off.
* :class:`RecordingTracer` — keeps an explicit span stack and builds
  the tree.  The clock is injectable so tests can assert on exact
  timings and exporters can be golden-file tested.

Instrumented code never checks which tracer it holds::

    with tracer.span("locate", node=path, n=len(idxs)) as sp:
        ...                       # sp is None under the noop tracer
        if sp is not None:
            sp.attributes["drifted"] = int(drifted.sum())
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.exceptions import ObservabilityError


@dataclass
class Span:
    """One timed, attributed node of a trace tree."""

    name: str
    attributes: dict[str, object] = field(default_factory=dict)
    start: float = 0.0
    end: float | None = None
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, in start order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """Every descendant (including self) with the given name."""
        return [s for s in self.walk() if s.name == name]

    def child_names(self) -> list[str]:
        """Direct children's names, in execution order."""
        return [c.name for c in self.children]


class Tracer(abc.ABC):
    """The span factory instrumented code talks to."""

    #: False exactly for the no-op implementation; code that would do
    #: real work just to enrich a span can skip it under a noop tracer.
    enabled: bool = False

    @abc.abstractmethod
    def span(self, name: str, **attributes):
        """A context manager opening a span; yields the :class:`Span`
        under a recording tracer and ``None`` under the noop tracer."""


class _NoopSpanContext:
    """Reusable, stateless do-nothing context manager."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP_SPAN = _NoopSpanContext()


class NoopTracer(Tracer):
    """Records nothing; the default tracer on every component."""

    enabled = False

    def span(self, name: str, **attributes):
        return _NOOP_SPAN


class _RecordingSpanContext:
    """Opens a span on enter, closes and attaches it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "RecordingTracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            self._span.attributes["error"] = (
                f"{exc_type.__name__}: {exc}"
            )
        self._tracer._pop(self._span)
        return False


class RecordingTracer(Tracer):
    """Builds real span trees; one instance per observed run.

    Parameters
    ----------
    clock:
        Monotonic time source (:func:`time.perf_counter` by default);
        injectable so tests and golden files see deterministic timings.

    Spans opened while another span is active become its children;
    spans opened at top level land in :attr:`roots`.  The tracer is a
    plain stack — single-threaded per process, like the engine.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock if clock is not None else time.perf_counter
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attributes) -> _RecordingSpanContext:
        return _RecordingSpanContext(
            self, Span(name=name, attributes=dict(attributes))
        )

    def _push(self, span: Span) -> None:
        span.start = self._clock()
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ObservabilityError(
                f"span {span.name!r} closed out of order"
            )
        span.end = self._clock()
        self._stack.pop()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    @property
    def active(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def find(self, name: str) -> list[Span]:
        """Every recorded span with the given name, across all roots."""
        return [s for root in self.roots for s in root.find(name)]

    def clear(self) -> None:
        """Drop every recorded root (open spans are kept on the stack)."""
        self.roots.clear()
