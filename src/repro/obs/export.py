"""Exporters (and their inverse parsers) for metrics and spans.

Two wire formats, both dependency-free and both round-trippable — the
parsers exist so tests and the CI smoke step can assert on exported
output without regex heuristics:

* **Prometheus text format** (:func:`to_prometheus` /
  :func:`parse_prometheus`): counters as ``name_total``-style samples,
  gauges as plain samples, histograms as cumulative
  ``name_bucket{le="..."}`` series plus ``name_sum`` / ``name_count``.
  Bucket counts are stored plain in the registry and cumulated here,
  which is what the format specifies.

* **JSON lines** (:func:`to_jsonl` / :func:`parse_jsonl`): one JSON
  object per line, discriminated by ``"kind"`` — ``"metric"`` lines
  carry a counter/gauge/histogram reading, ``"span"`` lines carry a
  whole span tree (children nested).  This is the raw dump format for
  ``--trace-out`` and for golden-file tests.

Floats are rendered with :func:`repr`, the shortest string that
round-trips exactly, so ``parse(export(snapshot)) == snapshot`` holds
bit-for-bit and golden files stay byte-stable across platforms.
"""

from __future__ import annotations

import json
import math
from typing import Iterable

from repro.exceptions import ObservabilityError
from repro.obs.metrics import (
    HistogramValue,
    Labels,
    MetricsSnapshot,
    MetricValue,
)
from repro.obs.trace import Span


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format.

    Backslash, double quote, and line feed are the three characters the
    format reserves inside quoted label values; anything else passes
    through verbatim.  Without this, a value containing ``"`` or a
    newline produced an exposition that Prometheus (and our own
    :func:`parse_prometheus`) mis-parsed silently.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: Labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = tuple(labels) + tuple(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in pairs
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def to_prometheus(snapshot: MetricsSnapshot) -> str:
    """Render a snapshot in the Prometheus exposition text format."""
    lines: list[str] = []
    typed: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for m in snapshot.counters:
        type_line(m.name, "counter")
        lines.append(f"{m.name}{_format_labels(m.labels)} {_format_value(m.value)}")
    for m in snapshot.gauges:
        type_line(m.name, "gauge")
        lines.append(f"{m.name}{_format_labels(m.labels)} {_format_value(m.value)}")
    for h in snapshot.histograms:
        type_line(h.name, "histogram")
        cumulative = 0
        for edge, count in zip(h.edges, h.counts):
            cumulative += count
            le = _format_labels(h.labels, (("le", _format_value(edge)),))
            lines.append(f"{h.name}_bucket{le} {cumulative}")
        cumulative += h.counts[-1]
        inf = _format_labels(h.labels, (("le", "+Inf"),))
        lines.append(f"{h.name}_bucket{inf} {cumulative}")
        lines.append(f"{h.name}_sum{_format_labels(h.labels)} {_format_value(h.sum)}")
        lines.append(f"{h.name}_count{_format_labels(h.labels)} {h.count}")
    return "\n".join(lines) + "\n" if lines else ""


def _parse_label_block(block: str) -> Labels:
    """Parse ``k="v",k2="v2"`` honouring quoting and escapes.

    A character scanner, not a ``split(",")``: commas, ``=``, ``}`` and
    quotes are all legal *inside* a quoted label value (escaped or
    not), so the only delimiters that count are the ones outside
    quotes.  Inverse of :func:`_format_labels` /
    :func:`_escape_label_value`.
    """
    block = block.strip()
    if not block:
        return ()
    pairs = []
    i, n = 0, len(block)
    while i < n:
        eq = block.find("=", i)
        if eq < 0:
            raise ObservabilityError(
                f"malformed label pair in {block[i:]!r}"
            )
        key = block[i:eq].strip()
        if eq + 1 >= n or block[eq + 1] != '"':
            raise ObservabilityError(
                f"label value must be quoted in {block[i:]!r}"
            )
        chars: list[str] = []
        j = eq + 2
        closed = False
        while j < n:
            c = block[j]
            if c == "\\":
                if j + 1 >= n:
                    raise ObservabilityError(
                        f"dangling escape in label value: {block!r}"
                    )
                escaped = block[j + 1]
                if escaped == "n":
                    chars.append("\n")
                elif escaped in ('"', "\\"):
                    chars.append(escaped)
                else:
                    raise ObservabilityError(
                        f"unknown escape \\{escaped} in label value: "
                        f"{block!r}"
                    )
                j += 2
            elif c == '"':
                closed = True
                break
            else:
                chars.append(c)
                j += 1
        if not closed:
            raise ObservabilityError(
                f"unterminated label value in {block!r}"
            )
        pairs.append((key, "".join(chars)))
        i = j + 1
        if i < n:
            if block[i] != ",":
                raise ObservabilityError(
                    f"expected ',' between label pairs in {block!r}"
                )
            i += 1
    return tuple(sorted(pairs))


def _label_block_end(line: str, start: int) -> int:
    """Index of the ``}`` closing a label block, quote- and escape-aware."""
    in_quotes = False
    i = start
    while i < len(line):
        c = line[i]
        if in_quotes:
            if c == "\\":
                i += 2
                continue
            if c == '"':
                in_quotes = False
        elif c == '"':
            in_quotes = True
        elif c == "}":
            return i
        i += 1
    raise ObservabilityError(f"unterminated label block in {line!r}")


def _parse_sample(line: str) -> tuple[str, Labels, str]:
    """Split one sample line into (metric name, labels, value text).

    Metric names cannot contain ``{``, so the first brace opens the
    label block; its *closing* brace is found by scanning (a label
    value may contain ``}`` or ``"} "``, which the old
    ``rpartition("} ")`` mis-split).
    """
    if "{" in line:
        brace = line.index("{")
        name = line[:brace]
        end = _label_block_end(line, brace + 1)
        block = line[brace + 1:end]
        return name, _parse_label_block(block), line[end + 1:].strip()
    name, _, value = line.rpartition(" ")
    return name.strip(), (), value.strip()


def parse_prometheus(text: str) -> MetricsSnapshot:
    """Inverse of :func:`to_prometheus`; round-trips exactly.

    Only accepts what :func:`to_prometheus` emits (``# TYPE`` lines and
    samples); anything else raises :class:`ObservabilityError` — the CI
    smoke step relies on that strictness to validate benchmark output.
    """
    kinds: dict[str, str] = {}
    counters: list[MetricValue] = []
    gauges: list[MetricValue] = []
    # histogram assembly state: (name, labels) -> parts
    buckets: dict[tuple[str, Labels], list[tuple[float, int]]] = {}
    sums: dict[tuple[str, Labels], float] = {}
    counts: dict[tuple[str, Labels], int] = {}

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) == 4 and parts[1] == "TYPE":
                kinds[parts[2]] = parts[3]
                continue
            raise ObservabilityError(f"unrecognised comment line: {raw!r}")
        name, labels, value = _parse_sample(line)
        base, kind = name, kinds.get(name)
        if kind is None:
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and kinds.get(name[: -len(suffix)]) == "histogram":
                    base, kind = name[: -len(suffix)], "histogram"
                    break
        if kind is None:
            raise ObservabilityError(f"sample before # TYPE line: {raw!r}")
        if kind == "counter":
            counters.append(MetricValue(name, labels, float(value)))
        elif kind == "gauge":
            gauges.append(MetricValue(name, labels, float(value)))
        elif kind == "histogram":
            if name.endswith("_bucket"):
                le = dict(labels)["le"]
                rest = tuple(p for p in labels if p[0] != "le")
                if le == "+Inf":
                    continue  # recoverable from count minus last edge
                buckets.setdefault((base, rest), []).append(
                    (float(le), int(value))
                )
            elif name.endswith("_sum"):
                sums[(base, labels)] = float(value)
            elif name.endswith("_count"):
                counts[(base, labels)] = int(value)
            else:
                raise ObservabilityError(f"bad histogram sample: {raw!r}")
        else:
            raise ObservabilityError(f"unknown metric type {kind!r}")

    histograms = []
    for key in sorted(buckets):
        series = sorted(buckets[key])
        edges = tuple(e for e, _ in series)
        cumulative = [c for _, c in series]
        plain = [cumulative[0]] + [
            b - a for a, b in zip(cumulative, cumulative[1:])
        ]
        total = counts.get(key, cumulative[-1])
        plain.append(total - cumulative[-1])  # the +Inf bucket
        histograms.append(
            HistogramValue(
                name=key[0],
                labels=key[1],
                edges=edges,
                counts=tuple(plain),
                sum=sums.get(key, 0.0),
                count=total,
            )
        )
    return MetricsSnapshot(
        counters=tuple(sorted(counters, key=lambda m: (m.name, m.labels))),
        gauges=tuple(sorted(gauges, key=lambda m: (m.name, m.labels))),
        histograms=tuple(histograms),
    )


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------
def _span_to_dict(span: Span) -> dict:
    return {
        "name": span.name,
        "attributes": dict(span.attributes),
        "start": span.start,
        "end": span.end,
        "children": [_span_to_dict(c) for c in span.children],
    }


def _span_from_dict(data: dict) -> Span:
    return Span(
        name=data["name"],
        attributes=dict(data.get("attributes", {})),
        start=float(data.get("start", 0.0)),
        end=None if data.get("end") is None else float(data["end"]),
        children=[_span_from_dict(c) for c in data.get("children", ())],
    )


def to_jsonl(
    snapshot: MetricsSnapshot | None = None,
    spans: Iterable[Span] = (),
) -> str:
    """One JSON object per line: metrics first, then span trees."""
    lines: list[str] = []
    if snapshot is not None:
        for m in snapshot.counters:
            lines.append(json.dumps(
                {"kind": "metric", "type": "counter", "name": m.name,
                 "labels": dict(m.labels), "value": m.value},
                sort_keys=True,
            ))
        for m in snapshot.gauges:
            lines.append(json.dumps(
                {"kind": "metric", "type": "gauge", "name": m.name,
                 "labels": dict(m.labels), "value": m.value},
                sort_keys=True,
            ))
        for h in snapshot.histograms:
            lines.append(json.dumps(
                {"kind": "metric", "type": "histogram", "name": h.name,
                 "labels": dict(h.labels), "edges": list(h.edges),
                 "counts": list(h.counts), "sum": h.sum, "count": h.count},
                sort_keys=True,
            ))
    for span in spans:
        lines.append(json.dumps(
            {"kind": "span", **_span_to_dict(span)}, sort_keys=True,
        ))
    return "\n".join(lines) + "\n" if lines else ""


def parse_jsonl(text: str) -> tuple[MetricsSnapshot, list[Span]]:
    """Inverse of :func:`to_jsonl`; round-trips exactly."""
    counters: list[MetricValue] = []
    gauges: list[MetricValue] = []
    histograms: list[HistogramValue] = []
    spans: list[Span] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        data = json.loads(line)
        kind = data.get("kind")
        if kind == "span":
            spans.append(_span_from_dict(data))
        elif kind == "metric":
            labels = tuple(sorted(
                (k, str(v)) for k, v in data.get("labels", {}).items()
            ))
            mtype = data["type"]
            if mtype == "counter":
                counters.append(
                    MetricValue(data["name"], labels, float(data["value"]))
                )
            elif mtype == "gauge":
                gauges.append(
                    MetricValue(data["name"], labels, float(data["value"]))
                )
            elif mtype == "histogram":
                histograms.append(
                    HistogramValue(
                        name=data["name"],
                        labels=labels,
                        edges=tuple(float(e) for e in data["edges"]),
                        counts=tuple(int(c) for c in data["counts"]),
                        sum=float(data["sum"]),
                        count=int(data["count"]),
                    )
                )
            else:
                raise ObservabilityError(f"unknown metric type {mtype!r}")
        else:
            raise ObservabilityError(f"unknown line kind {kind!r}")
    snapshot = MetricsSnapshot(
        counters=tuple(sorted(counters, key=lambda m: (m.name, m.labels))),
        gauges=tuple(sorted(gauges, key=lambda m: (m.name, m.labels))),
        histograms=tuple(
            sorted(histograms, key=lambda h: (h.name, h.labels))
        ),
    )
    return snapshot, spans
