"""Fail-closed resilience layer for the LP substrate.

MSM's correctness rests on an LP solve succeeding at every level of the
GIHI walk (Algorithm 1 of the paper), but solvers fail in practice:
HiGHS hits numerical trouble on badly-scaled GeoInd constraint blocks,
wall-clock limits fire under load, and a production client serving
millions of reports cannot crash a request.  This module provides the
degradation machinery the rest of :mod:`repro.core` is wired through:

* :class:`ResilientSolver` — wraps the LP substrate with a configurable
  fallback chain (by default scipy ``highs-ds`` → ``highs-ipm`` → the
  dense from-scratch ``simplex``), bounded retries with growing
  per-attempt time limits, and structured :class:`SolveAttempt` /
  :class:`SolveRecord` failure records.  When the whole chain fails it
  raises :class:`~repro.exceptions.SolverRetryExhaustedError` carrying
  every attempt — it never returns a non-optimal solution.

* :class:`DegradationReport` / :class:`DegradedNode` — the per-walk
  account of which MSM levels had their optimal mechanism replaced by
  the closed-form exponential fallback.  The fallback runs at exactly
  the level's allocated epsilon, so degradation trades utility for
  availability while privacy and budget accounting are untouched.

The privacy argument for the whole layer is the asymmetry between the
two mechanisms involved: Bordenabe et al.'s OPT needs a successful LP
solve, whereas the exponential mechanism (and the planar Laplace it
approximates) satisfies the *same* epsilon-GeoInd guarantee
unconditionally.  On failure we may lose utility; we never lose privacy.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import (
    InfeasibleProblemError,
    SolverError,
    SolverRetryExhaustedError,
    UnboundedProblemError,
)
from repro.lp import BACKENDS, solve as lp_solve
from repro.lp.problem import LinearProgram
from repro.lp.result import LPResult, LPStatus
from repro.obs import NOOP, Observability

#: Statuses worth retrying on the *same* backend (with a grown time
#: limit): transient resource limits and numerical trouble.
RETRYABLE_STATUSES = frozenset(
    {LPStatus.NUMERICAL, LPStatus.ITERATION_LIMIT, LPStatus.TIME_LIMIT}
)

#: Structural outcomes: a deterministic backend will reproduce them, so
#: the chain skips straight to the next backend (which may still succeed
#: — HiGHS occasionally misreports badly-scaled programs as infeasible).
STRUCTURAL_STATUSES = frozenset({LPStatus.INFEASIBLE, LPStatus.UNBOUNDED})

#: The type ResilientSolver delegates raw solves to — signature of
#: :func:`repro.lp.solve`.  The fault-injection harness substitutes its
#: own implementation here.
SolveFn = Callable[..., LPResult]


@dataclass(frozen=True)
class SolveAttempt:
    """One backend invocation inside a resilient solve."""

    backend: str
    attempt: int
    status: LPStatus | None
    raw_status: int | None
    error: str | None
    time_limit: float | None
    seconds: float

    @property
    def ok(self) -> bool:
        """True when this attempt produced a proven optimum."""
        return self.status is LPStatus.OPTIMAL

    def describe(self) -> str:
        """One-line human-readable summary for logs and error messages."""
        outcome = self.error or (self.status.value if self.status else "?")
        limit = f", limit={self.time_limit:.3g}s" if self.time_limit else ""
        return f"{self.backend}#{self.attempt}: {outcome}{limit}"


@dataclass(frozen=True)
class ResilienceConfig:
    """Policy knobs for :class:`ResilientSolver`.

    Parameters
    ----------
    backends:
        The fallback chain, tried in order.
    max_attempts_per_backend:
        Retry budget per backend for retryable statuses/errors;
        structural outcomes advance to the next backend immediately.
    attempt_time_limit:
        Wall-clock cap (seconds) for the *first* attempt on each
        backend; ``None`` means uncapped.  The dense simplex backend
        ignores time limits.
    time_limit_growth:
        Multiplier applied to the time limit on every retry, so a solve
        stopped by the clock gets a genuinely larger budget instead of
        deterministically failing again.
    """

    backends: tuple[str, ...] = ("highs-ds", "highs-ipm", "simplex")
    max_attempts_per_backend: int = 2
    attempt_time_limit: float | None = None
    time_limit_growth: float = 2.0

    def __post_init__(self) -> None:
        if not self.backends:
            raise SolverError("resilience chain needs at least one backend")
        unknown = [b for b in self.backends if b not in BACKENDS]
        if unknown:
            raise SolverError(
                f"unknown backends in resilience chain: {unknown}; "
                f"known: {BACKENDS}"
            )
        if self.max_attempts_per_backend < 1:
            raise SolverError("max_attempts_per_backend must be >= 1")
        if self.attempt_time_limit is not None and self.attempt_time_limit <= 0:
            raise SolverError("attempt_time_limit must be positive or None")
        if self.time_limit_growth < 1.0:
            raise SolverError("time_limit_growth must be >= 1")

    @classmethod
    def starting_with(cls, backend: str, **kwargs) -> "ResilienceConfig":
        """A default chain re-ordered to try ``backend`` first."""
        default = cls.__dataclass_fields__["backends"].default
        rest = tuple(b for b in default if b != backend)
        return cls(backends=(backend, *rest), **kwargs)


@dataclass(frozen=True)
class SolveRecord:
    """The complete attempt history of one resilient solve."""

    n_vars: int
    n_constraints: int
    attempts: tuple[SolveAttempt, ...]
    winner: str | None

    @property
    def succeeded(self) -> bool:
        """Whether any attempt produced an optimum."""
        return self.winner is not None

    @property
    def n_attempts(self) -> int:
        """Total backend invocations made."""
        return len(self.attempts)


class ResilientSolver:
    """LP solving with a fallback chain; returns optima or raises.

    The contract is fail-closed: :meth:`solve` either returns an
    :class:`LPResult` whose status is ``OPTIMAL`` or raises a typed
    :class:`~repro.exceptions.SolverError` — callers never see a
    garbage solution vector.  Implements the
    :class:`repro.lp.LPSolver` protocol.

    Parameters
    ----------
    config:
        The fallback policy; defaults to the standard three-backend
        chain with two attempts each.
    solve_fn:
        The raw solve callable, defaulting to :func:`repro.lp.solve`.
        The fault-injection harness
        (:class:`repro.testing.faults.FaultInjectingSolver`) slots in
        here, which is what makes the whole chain testable without
        monkey-patching scipy internals.
    """

    #: observability handle; shadowed per instance by bind_observability.
    _obs = NOOP

    def __init__(
        self,
        config: ResilienceConfig | None = None,
        solve_fn: SolveFn | None = None,
    ):
        self._config = config if config is not None else ResilienceConfig()
        self._solve_fn: SolveFn = solve_fn if solve_fn is not None else lp_solve
        self._history: list[SolveRecord] = []

    def bind_observability(self, obs: Observability) -> None:
        """Attach an observability handle.

        When enabled, every solve is wrapped in an ``lp.solve`` span and
        per-backend attempt/retry/fallback counters are recorded; the
        handle is also forwarded to ``solve_fn`` as an ``obs`` keyword so
        the backend layer can instrument itself (the default
        :func:`repro.lp.solve` and the fault-injection harness both
        accept it)."""
        self._obs = obs

    @property
    def config(self) -> ResilienceConfig:
        """The fallback policy in force."""
        return self._config

    @property
    def history(self) -> list[SolveRecord]:
        """Attempt records of every solve issued through this solver."""
        return list(self._history)

    @property
    def last_record(self) -> SolveRecord | None:
        """The most recent solve's record, if any."""
        return self._history[-1] if self._history else None

    def solve(
        self, problem: LinearProgram, time_limit: float | None = None
    ) -> LPResult:
        """Solve ``problem`` through the fallback chain.

        ``time_limit`` caps each attempt in addition to the configured
        ``attempt_time_limit`` (the smaller of the two applies; retries
        still grow their budget from that base).

        Raises
        ------
        SolverRetryExhaustedError
            When every backend failed within its retry budget.  The
            exception carries all :class:`SolveAttempt` records.
        """
        obs = self._obs
        if not obs.enabled:
            return self._solve_chain(problem, time_limit, {})
        with obs.tracer.span(
            "lp.solve",
            n_vars=problem.n_vars,
            n_constraints=problem.n_constraints,
        ) as sp:
            try:
                return self._solve_chain(problem, time_limit, {"obs": obs})
            finally:
                # both outcomes append a record before leaving the chain
                self._record_outcome(obs, sp, self._history[-1])

    def _record_outcome(self, obs: Observability, sp, record) -> None:
        metrics = obs.metrics
        for attempt in record.attempts:
            metrics.counter(
                "repro_solver_attempts_total", backend=attempt.backend
            ).inc()
            if attempt.attempt > 1:
                metrics.counter(
                    "repro_solver_retries_total", backend=attempt.backend
                ).inc()
        if record.winner is None:
            metrics.counter("repro_solver_exhausted_total").inc()
        elif record.winner != self._config.backends[0]:
            metrics.counter(
                "repro_solver_fallbacks_total", backend=record.winner
            ).inc()
        if sp is not None:
            sp.attributes["winner"] = record.winner
            sp.attributes["attempts"] = record.n_attempts

    def _solve_chain(
        self,
        problem: LinearProgram,
        time_limit: float | None,
        extra: dict,
    ) -> LPResult:
        cfg = self._config
        attempts: list[SolveAttempt] = []
        for backend in cfg.backends:
            limit = _combine_limits(cfg.attempt_time_limit, time_limit)
            for attempt in range(1, cfg.max_attempts_per_backend + 1):
                start = time.perf_counter()
                try:
                    result = self._solve_fn(
                        problem, backend=backend, time_limit=limit, **extra
                    )
                except (InfeasibleProblemError, UnboundedProblemError) as exc:
                    attempts.append(
                        _failed_attempt(backend, attempt, limit, start, exc=exc)
                    )
                    break  # structural: next backend
                except Exception as exc:  # noqa: BLE001 - fail closed on any
                    attempts.append(
                        _failed_attempt(backend, attempt, limit, start, exc=exc)
                    )
                    limit = _grow(limit, cfg.time_limit_growth)
                    continue
                if result.is_optimal:
                    attempts.append(
                        SolveAttempt(
                            backend=backend,
                            attempt=attempt,
                            status=result.status,
                            raw_status=result.raw_status,
                            error=None,
                            time_limit=limit,
                            seconds=result.solve_seconds,
                        )
                    )
                    self._history.append(
                        SolveRecord(
                            n_vars=problem.n_vars,
                            n_constraints=problem.n_constraints,
                            attempts=tuple(attempts),
                            winner=backend,
                        )
                    )
                    return result
                attempts.append(
                    SolveAttempt(
                        backend=backend,
                        attempt=attempt,
                        status=result.status,
                        raw_status=result.raw_status,
                        error=None,
                        time_limit=limit,
                        seconds=result.solve_seconds,
                    )
                )
                if result.status in STRUCTURAL_STATUSES:
                    break  # deterministic failure: next backend
                limit = _grow(limit, cfg.time_limit_growth)
        record = SolveRecord(
            n_vars=problem.n_vars,
            n_constraints=problem.n_constraints,
            attempts=tuple(attempts),
            winner=None,
        )
        self._history.append(record)
        summary = "; ".join(a.describe() for a in attempts)
        raise SolverRetryExhaustedError(
            f"all {len(cfg.backends)} backends exhausted after "
            f"{len(attempts)} attempts ({summary})",
            attempts=attempts,
        )


def _combine_limits(a: float | None, b: float | None) -> float | None:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _grow(limit: float | None, factor: float) -> float | None:
    return None if limit is None else limit * factor


def _failed_attempt(
    backend: str,
    attempt: int,
    limit: float | None,
    start: float,
    exc: Exception,
) -> SolveAttempt:
    return SolveAttempt(
        backend=backend,
        attempt=attempt,
        status=None,
        raw_status=None,
        error=f"{type(exc).__name__}: {exc}",
        time_limit=limit,
        seconds=time.perf_counter() - start,
    )


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BreakerConfig:
    """Policy knobs for :class:`CircuitBreakerSolver`.

    Parameters
    ----------
    failure_threshold:
        Consecutive chain-exhausted solves that trip the breaker open.
    reset_timeout:
        Seconds the breaker stays open before half-opening to let one
        probe solve through.
    """

    failure_threshold: int = 3
    reset_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise SolverError("failure_threshold must be >= 1")
        if self.reset_timeout <= 0:
            raise SolverError("reset_timeout must be positive")


class CircuitBreakerSolver:
    """A circuit breaker around a :class:`ResilientSolver`.

    The resilient chain already retries and falls back per solve; under
    a *persistent* substrate outage (a broken scipy install, a poisoned
    environment) every node of a walk still burns the full chain before
    the engine degrades it.  The breaker bounds that cost: after
    ``failure_threshold`` consecutive exhausted chains it **opens** and
    refuses further solves instantly with
    :class:`~repro.exceptions.CircuitOpenError` — a
    :class:`~repro.exceptions.SolverError` subclass, so the engine's
    existing degradation path serves the closed-form exponential
    mechanism at the same per-level epsilon, immediately and fail-closed.
    After ``reset_timeout`` seconds the breaker **half-opens**: exactly
    one probe solve is let through; success closes the circuit, failure
    re-opens it for another timeout.

    Implements the same ``solve`` protocol as
    :class:`ResilientSolver`, so it slots in anywhere one does
    (``MultiStepMechanism.build(solver=...)``, the serving front-end's
    builder).  Thread-safe; the probe slot is claimed under a lock so
    concurrent half-open callers cannot stampede the substrate.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(
        self,
        inner: ResilientSolver | None = None,
        config: BreakerConfig | None = None,
        clock: Callable[[], float] | None = None,
    ):
        self._inner = inner if inner is not None else ResilientSolver()
        self._breaker_config = (
            config if config is not None else BreakerConfig()
        )
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probe_in_flight = False
        self._obs = NOOP
        self.trips = 0
        self.short_circuits = 0

    def bind_observability(self, obs: Observability) -> None:
        """Attach an observability handle (also bound to the inner
        solver)."""
        self._obs = obs
        self._inner.bind_observability(obs)
        self._record_state()

    @property
    def inner(self) -> ResilientSolver:
        """The wrapped resilient solver."""
        return self._inner

    @property
    def config(self) -> ResilienceConfig:
        """The inner solver's fallback policy (protocol parity)."""
        return self._inner.config

    @property
    def breaker_config(self) -> BreakerConfig:
        """The breaker policy in force."""
        return self._breaker_config

    @property
    def state(self) -> str:
        """Current breaker state (``closed`` / ``open`` / ``half-open``)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def history(self) -> list[SolveRecord]:
        """The inner solver's attempt records (protocol parity)."""
        return self._inner.history

    @property
    def last_record(self) -> SolveRecord | None:
        """The inner solver's most recent record (protocol parity)."""
        return self._inner.last_record

    def solve(
        self, problem: LinearProgram, time_limit: float | None = None
    ) -> LPResult:
        """Solve through the breaker.

        Raises
        ------
        CircuitOpenError
            When the breaker is open (or half-open with the probe slot
            already taken) — the solve was not attempted.
        SolverRetryExhaustedError
            When the inner chain was attempted and failed; also counts
            toward tripping the breaker.
        """
        from repro.exceptions import CircuitOpenError

        probe = False
        with self._lock:
            self._maybe_half_open()
            if self._state == self.OPEN or (
                self._state == self.HALF_OPEN and self._probe_in_flight
            ):
                self.short_circuits += 1
                if self._obs.enabled:
                    self._obs.metrics.counter(
                        "repro_breaker_short_circuits_total"
                    ).inc()
                raise CircuitOpenError(
                    f"solver circuit breaker is {self._state} after "
                    f"{self._consecutive_failures} consecutive chain "
                    f"failures; degrading without attempting the solve"
                )
            if self._state == self.HALF_OPEN:
                probe = self._probe_in_flight = True
        try:
            result = self._inner.solve(problem, time_limit=time_limit)
        except SolverError:
            with self._lock:
                if probe:
                    self._probe_in_flight = False
                self._consecutive_failures += 1
                threshold = self._breaker_config.failure_threshold
                if (
                    self._state == self.HALF_OPEN
                    or self._consecutive_failures >= threshold
                ):
                    self._trip()
            raise
        with self._lock:
            if probe:
                self._probe_in_flight = False
            self._consecutive_failures = 0
            if self._state != self.CLOSED:
                self._state = self.CLOSED
                self._opened_at = None
                self._record_state()
        return result

    def _maybe_half_open(self) -> None:
        """Open → half-open once the reset timeout elapsed; caller
        holds the lock."""
        if self._state == self.OPEN and self._opened_at is not None:
            elapsed = self._clock() - self._opened_at
            if elapsed >= self._breaker_config.reset_timeout:
                self._state = self.HALF_OPEN
                self._probe_in_flight = False
                self._record_state()

    def _trip(self) -> None:
        """Move to open; caller holds the lock."""
        self._state = self.OPEN
        self._opened_at = self._clock()
        self.trips += 1
        if self._obs.enabled:
            self._obs.metrics.counter("repro_breaker_trips_total").inc()
        self._record_state()

    def _record_state(self) -> None:
        if self._obs.enabled:
            level = {self.CLOSED: 0, self.HALF_OPEN: 1, self.OPEN: 2}
            self._obs.metrics.gauge("repro_breaker_state").set(
                level[self._state]
            )


# ----------------------------------------------------------------------
# degradation accounting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DegradedNode:
    """One index node whose OPT was replaced by the closed-form fallback."""

    node_path: tuple[int, ...]
    level: int
    epsilon: float
    fallback: str
    reason: str


@dataclass(frozen=True)
class DegradationReport:
    """Which levels of a walk (or cache) run on substituted mechanisms.

    An empty report (``clean`` is True) means every step used its
    LP-optimal mechanism.  Substituted steps still satisfy their
    allocated per-level epsilon — degradation is a utility statement,
    never a privacy one.
    """

    substitutions: tuple[DegradedNode, ...] = field(default=())

    @property
    def clean(self) -> bool:
        """True when nothing was substituted."""
        return not self.substitutions

    @property
    def degraded_levels(self) -> tuple[int, ...]:
        """Sorted distinct levels with a substituted mechanism."""
        return tuple(sorted({s.level for s in self.substitutions}))

    def describe(self) -> str:
        """Human-readable one-liner for logs."""
        if self.clean:
            return "no degradation"
        parts = [
            f"level {s.level} (eps={s.epsilon:.4g}, {s.fallback})"
            for s in self.substitutions
        ]
        return "degraded: " + "; ".join(parts)
