"""Offline bundles: persist a precomputed MSM to disk.

The paper's deployment model (Section 3.1) has the mobile device
"download in advance (offline) a set of maps annotated with additional
pre-computed information ... in the order of tens of megabytes".  For
MSM that bundle is exactly: the budget split, the index shape, and the
solved per-node mechanism matrices.  This module serialises all of it
to a single ``.npz`` file and restores it into a fresh mechanism whose
online path never touches the LP solver.

Only grid-backed MSM (over a :class:`HierarchicalGrid`) is bundled —
the adaptive indexes derive their geometry from raw data samples, which
belong to the producer, not the bundle.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.exceptions import DegradedModeWarning, MechanismError
from repro.geo.bbox import BoundingBox
from repro.geo.metric import Metric, get_metric
from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid
from repro.priors.base import GridPrior
from repro.privacy.guard import guarded_matrix
from repro.grid.regular import RegularGrid
from repro.core.msm import MultiStepMechanism

#: Bundle format version; bump on layout changes.  Version 2 added the
#: per-node degradation flags; version-1 bundles still load (all nodes
#: are then assumed non-degraded).
FORMAT_VERSION = 2

#: Versions :func:`load_bundle` accepts.
SUPPORTED_VERSIONS = (1, 2)


@dataclass(frozen=True)
class BundleInfo:
    """Summary of a written bundle."""

    path: Path
    n_nodes: int
    size_bytes: int
    epsilon: float
    height: int


def save_bundle(msm: MultiStepMechanism, path: str | Path) -> BundleInfo:
    """Precompute (if needed) and write an MSM bundle.

    Raises
    ------
    MechanismError
        If the mechanism does not run over a hierarchical grid.
    """
    index = msm.index
    if not isinstance(index, HierarchicalGrid):
        raise MechanismError(
            "bundles support MSM over a HierarchicalGrid only"
        )
    msm.precompute()

    payload: dict[str, np.ndarray] = {}
    node_paths: list[tuple[int, ...]] = []
    degraded_keys: list[str] = []
    stack = [index.root]
    while stack:
        node = stack.pop()
        kids = index.children(node)
        if not kids or node.level >= msm.height:
            continue
        entry = msm.cache.entry(node.path)
        if entry is None:
            # A byte-bounded cache may have evicted this node between
            # precompute and this visit (or during it): re-solve on the
            # spot so the persisted bundle is always the complete tree.
            # The returned entry stays valid even if the cache evicts
            # it again before the next iteration.
            entry = msm._step_entry(node, node.level + 1, kids)
        key = "node_" + "_".join(map(str, node.path)) if node.path else "node_root"
        payload[key] = entry.matrix.k
        if entry.degraded:
            degraded_keys.append(key)
        node_paths.append(node.path)
        stack.extend(kids)

    b = index.bounds
    payload["meta_bounds"] = np.asarray(
        [b.min_x, b.min_y, b.max_x, b.max_y]
    )
    payload["meta_scalars"] = np.asarray(
        [FORMAT_VERSION, index.granularity, msm.height, msm.epsilon]
    )
    payload["meta_budgets"] = np.asarray(msm.budgets)
    payload["meta_degraded"] = np.asarray(degraded_keys, dtype=str)
    payload["meta_prior_g"] = np.asarray([msm.prior.grid.granularity])
    payload["meta_prior"] = msm.prior.probabilities
    payload["meta_dq"] = np.frombuffer(
        msm.dq.name.encode(), dtype=np.uint8
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)
    return BundleInfo(
        path=path,
        n_nodes=len(node_paths),
        size_bytes=path.stat().st_size,
        epsilon=msm.epsilon,
        height=msm.height,
    )


def load_bundle(
    path: str | Path,
    guard: bool = True,
    expect_budgets: "Sequence[float] | None" = None,
    expect_metric: "Metric | str | None" = None,
) -> MultiStepMechanism:
    """Restore a bundled MSM; sampling needs no further LP work.

    With ``guard`` enabled (the default) every restored node matrix is
    validated against its level's epsilon-GeoInd constraint before it
    enters the cache, so a corrupt or tampered bundle fails closed at
    load time rather than silently serving a privacy-violating
    mechanism.

    ``expect_budgets`` / ``expect_metric`` declare the configuration
    the *requesting* mechanism was built for.  When given, the stored
    per-level epsilon split and utility metric are verified against
    them and a mismatch raises — matrices solved for a different
    budget or metric are never silently served.  (The persistent
    mechanism store passes these on every warm-start.)

    Version-1 bundles predate the per-node degradation flags; they
    still load, but every node is then *assumed* non-degraded and a
    :class:`~repro.exceptions.DegradedModeWarning` flags the
    assumption.

    Raises
    ------
    MechanismError
        On a missing file, an unsupported format version, or a
        stored-configuration mismatch against ``expect_budgets`` /
        ``expect_metric``.
    PrivacyViolationError
        When a restored matrix fails the privacy guard.
    """
    path = Path(path)
    if not path.exists():
        raise MechanismError(f"bundle not found: {path}")
    with np.load(path) as data:
        version, granularity, height, _epsilon = data["meta_scalars"]
        if int(version) not in SUPPORTED_VERSIONS:
            raise MechanismError(
                f"unsupported bundle version {int(version)} "
                f"(supported: {SUPPORTED_VERSIONS})"
            )
        min_x, min_y, max_x, max_y = data["meta_bounds"]
        bounds = BoundingBox(
            float(min_x), float(min_y), float(max_x), float(max_y)
        )
        budgets = tuple(float(b) for b in data["meta_budgets"])
        prior_grid = RegularGrid(bounds, int(data["meta_prior_g"][0]))
        prior = GridPrior(prior_grid, data["meta_prior"], name="bundled")
        dq = get_metric(bytes(data["meta_dq"]).decode())
        _verify_bundle_config(
            path, budgets, dq, expect_budgets, expect_metric
        )
        if int(version) < 2:
            warnings.warn(
                DegradedModeWarning(
                    f"bundle {path} uses format v{int(version)}, which "
                    f"predates per-node degradation flags; every "
                    f"restored node is assumed non-degraded"
                ),
                stacklevel=2,
            )
        degraded_keys: set[str] = (
            {str(k) for k in data["meta_degraded"]}
            if "meta_degraded" in data.files
            else set()
        )

        index = HierarchicalGrid(bounds, int(granularity), int(height))
        msm = MultiStepMechanism(index, budgets, prior, dq=dq, guard=guard)

        for key in data.files:
            if not key.startswith("node_"):
                continue
            if key == "node_root":
                node_path: tuple[int, ...] = ()
            else:
                node_path = tuple(
                    int(part) for part in key[len("node_"):].split("_")
                )
            node = _node_at(index, node_path)
            locations = [child.center for child in index.children(node)]
            level = len(node_path) + 1
            level_eps = budgets[level - 1]
            degraded = key in degraded_keys
            msm.cache.put(
                node_path,
                guarded_matrix(
                    locations,
                    locations,
                    data[key],
                    epsilon=level_eps if guard else None,
                ),
                degraded=degraded,
                source="exponential" if degraded else "bundle",
                reason="restored from bundle (solved degraded)"
                if degraded
                else None,
                level=level,
                epsilon=level_eps,
            )
    return msm


def _verify_bundle_config(
    path: Path,
    budgets: tuple[float, ...],
    dq: Metric,
    expect_budgets: Sequence[float] | None,
    expect_metric: Metric | str | None,
) -> None:
    """Reject a bundle whose stored configuration does not match the
    requesting mechanism's — serving matrices solved for a different
    epsilon split or utility metric would silently mis-spend the budget
    (or mis-optimise utility) of every report."""
    if expect_budgets is not None:
        wanted = tuple(float(b) for b in expect_budgets)
        match = len(wanted) == len(budgets) and all(
            abs(a - b) <= 1e-9 * max(1.0, abs(a), abs(b))
            for a, b in zip(wanted, budgets)
        )
        if not match:
            raise MechanismError(
                f"bundle {path} stores epsilon split "
                f"{tuple(round(b, 6) for b in budgets)} but the "
                f"requesting mechanism expects "
                f"{tuple(round(b, 6) for b in wanted)}; refusing to "
                f"serve matrices solved for a different budget"
            )
    if expect_metric is not None:
        wanted_name = (
            expect_metric if isinstance(expect_metric, str)
            else expect_metric.name
        )
        if wanted_name != dq.name:
            raise MechanismError(
                f"bundle {path} stores mechanisms optimised for metric "
                f"{dq.name!r} but the requesting mechanism expects "
                f"{wanted_name!r}"
            )


def _node_at(index: HierarchicalGrid, path: tuple[int, ...]):
    node = index.root
    for step in path:
        node = index.children(node)[step]
    return node


def sample_from_bundle(
    path: str | Path, x: Point, rng: np.random.Generator
) -> Point:
    """One-shot convenience: load a bundle and sanitise one location."""
    return load_bundle(path).sample(x, rng)
