"""Sanitisation sessions: many reports under one lifetime budget.

The paper sanitises one location per invocation; a deployed client
reports repeatedly, and by sequential composition every report spends
part of the user's lifetime GeoInd budget.  A
:class:`SanitizationSession` owns that bookkeeping: it holds one
precomputed MSM per per-report budget, spends through a
:class:`~repro.privacy.composition.BudgetAccountant`, refuses
overdrafts, and exposes the remaining protection level at any time.

This is an engineering extension of the paper (its Section 2.2
composability discussion, applied in the opposite direction), not one
of its experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import BudgetError
from repro.geo.metric import EUCLIDEAN, Metric
from repro.geo.point import Point
from repro.mechanisms.base import Mechanism
from repro.priors.base import GridPrior
from repro.privacy.composition import BudgetAccountant, budget_slack
from repro.core.engine import ExecutionPolicy, PostProcessor, WalkResult
from repro.core.msm import MultiStepMechanism
from repro.core.resilience import DegradationReport, ResilienceConfig, ResilientSolver
from repro.obs import NOOP, Observability


@dataclass(frozen=True)
class SessionReport:
    """One sanitised report issued by a session.

    ``degraded_levels`` is non-empty when some walk level was served by
    the resilience layer's fallback mechanism; the report still spends
    exactly ``epsilon_spent`` and satisfies the same guarantee.
    """

    sequence: int
    actual: Point
    reported: Point
    epsilon_spent: float
    epsilon_remaining: float
    degraded_levels: tuple[int, ...] = ()

    @property
    def degraded(self) -> bool:
        """Whether any level of this report's walk was substituted."""
        return bool(self.degraded_levels)


class SanitizationSession:
    """Issue repeated GeoInd reports under a lifetime budget.

    Parameters
    ----------
    lifetime_epsilon:
        Total budget this user is willing to spend, ever.
    per_report_epsilon:
        Budget consumed by each report.
    prior:
        Global prior for the MSM built internally.
    granularity:
        MSM per-level fanout parameter ``g``.
    rho:
        Same-cell probability target for the budget allocator.
    dq:
        Utility metric the per-step mechanisms optimise.
    executor:
        Execution policy for batch reports (serial by default; pass a
        :class:`~repro.core.engine.ShardedExecution` to spread large
        :meth:`report_batch` workloads across worker processes).
    postprocessor / remap:
        Optional finalise stage for every report; ``remap=True`` wires
        the optimal Bayesian remap (a deterministic output-only
        transformation, so the accountant's arithmetic is unchanged).
    metrics:
        When True, the session builds a live
        :class:`~repro.obs.Observability` handle (metrics registry +
        recording tracer) and threads it through the whole stack —
        engine, cache, resilient solver, LP backends.  Inspect it via
        :attr:`observability`; export with :mod:`repro.obs.export`.
        Off by default: the disabled path costs nothing.
    mechanism:
        A pre-built per-report mechanism to use instead of building a
        fresh MSM.  This is how the serving front-end shares one warm
        engine (and one node cache) across thousands of sessions; only
        the budget bookkeeping stays per-session.  The mechanism's
        epsilon must not exceed the per-report spend — a session must
        never charge less than the privacy its reports consume.
    obs:
        An externally-owned observability handle (the serving
        front-end passes its own so every session's budget metrics land
        in one registry).  Overrides ``metrics``.

    The per-report mechanism is built once and reused (its randomness
    comes from the caller-supplied generator), so a session's marginal
    cost per report is just the MSM walk.  Sessions are not
    thread-safe; concurrent callers must serialise externally (the
    serving front-end does).
    """

    def __init__(
        self,
        lifetime_epsilon: float,
        per_report_epsilon: float,
        prior: GridPrior | None = None,
        granularity: int = 4,
        rho: float = 0.8,
        dq: Metric = EUCLIDEAN,
        backend: str = "highs-ds",
        resilience: ResilienceConfig | None = None,
        solver: ResilientSolver | None = None,
        degrade: bool = True,
        guard: bool = True,
        executor: ExecutionPolicy | None = None,
        postprocessor: PostProcessor | None = None,
        remap: bool = False,
        metrics: bool = False,
        mechanism: Mechanism | None = None,
        obs: Observability | None = None,
    ):
        if per_report_epsilon <= 0:
            raise BudgetError(
                f"per-report budget must be positive, got {per_report_epsilon}"
            )
        if per_report_epsilon > lifetime_epsilon:
            raise BudgetError(
                f"per-report budget {per_report_epsilon} exceeds lifetime "
                f"budget {lifetime_epsilon}"
            )
        self._accountant = BudgetAccountant(total=lifetime_epsilon)
        self._per_report = float(per_report_epsilon)
        if obs is not None:
            self._obs = obs
        else:
            self._obs = (
                Observability.collecting(trace=True) if metrics else NOOP
            )
        if self._obs.enabled:
            self._obs.metrics.gauge("repro_budget_rho_target").set(rho)
            self._obs.metrics.gauge(
                "repro_session_epsilon_remaining"
            ).set(self.remaining)
        if mechanism is not None:
            mech_eps = getattr(mechanism, "epsilon", None)
            if mech_eps is not None and (
                mech_eps > per_report_epsilon + budget_slack(mech_eps)
            ):
                raise BudgetError(
                    f"shared mechanism spends epsilon={mech_eps:.4g} per "
                    f"report, more than the session's per-report budget "
                    f"{per_report_epsilon:.4g}"
                )
            self._mechanism = mechanism
        else:
            if prior is None:
                raise BudgetError(
                    "a prior is required when no pre-built mechanism is given"
                )
            self._mechanism = MultiStepMechanism.build(
                per_report_epsilon, granularity, prior, rho=rho, dq=dq,
                backend=backend, resilience=resilience, solver=solver,
                degrade=degrade, guard=guard, executor=executor,
                postprocessor=postprocessor, remap=remap, obs=self._obs,
            )
        self._history: list[SessionReport] = []
        self._degradations: list[DegradationReport] = []

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def mechanism(self) -> Mechanism:
        """The underlying per-report mechanism."""
        return self._mechanism

    @property
    def observability(self) -> Observability:
        """The session's observability handle (no-op unless built with
        ``metrics=True``)."""
        return self._obs

    @property
    def per_report_epsilon(self) -> float:
        """Budget each report consumes."""
        return self._per_report

    @property
    def spent(self) -> float:
        """Budget consumed so far."""
        return self._accountant.spent

    @property
    def remaining(self) -> float:
        """Budget still available."""
        return self._accountant.remaining

    @property
    def reports_remaining(self) -> int:
        """How many further reports the lifetime budget affords.

        Exact: delegates to
        :meth:`~repro.privacy.composition.BudgetAccountant.affordable`,
        which simulates the accountant's own arithmetic, so this equals
        the number of :meth:`report` calls that will actually succeed.
        (The float floor-division with its own nudge that lived here
        could disagree with ``can_spend`` by one report.)
        """
        return self._accountant.affordable(self._per_report)

    @property
    def history(self) -> list[SessionReport]:
        """All reports issued so far, in order."""
        return list(self._history)

    @property
    def degradation_history(self) -> list[DegradationReport]:
        """Per-report degradation accounts, aligned with :attr:`history`."""
        return list(self._degradations)

    @property
    def ever_degraded(self) -> bool:
        """Whether any report so far ran on a substituted mechanism."""
        return any(not d.clean for d in self._degradations)

    def can_report(self) -> bool:
        """Whether another report fits the remaining budget."""
        return self._accountant.can_spend(self._per_report)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def precompute(self) -> int:
        """Warm the mechanism cache (the offline step).

        A no-op (returning 0) for shared mechanisms without an offline
        precomputation step.
        """
        precompute = getattr(self._mechanism, "precompute", None)
        return 0 if precompute is None else precompute()

    def report(self, x: Point, rng: np.random.Generator) -> SessionReport:
        """Sanitise ``x``, spending one report's budget.

        Raises
        ------
        BudgetError
            When the lifetime budget cannot cover another report; the
            actual location is *not* sampled in that case.
        SolverRetryExhaustedError
            When a level's solve is unrecoverable and degradation is
            disabled.  No budget is spent in that case either — the
            failed walk never sampled from an unguarded matrix.
        """
        if not self.can_report():
            self._record_refusal()
            raise BudgetError(
                f"lifetime budget exhausted after {len(self._history)} "
                f"reports (remaining {self.remaining:.4g} < "
                f"per-report {self._per_report:.4g})"
            )
        walk = self._mechanism.sample_with_report(x, rng)
        return self.record_walk(x, walk)

    def record_walk(self, x: Point, walk: WalkResult) -> SessionReport:
        """Spend one report's budget for a walk sampled externally.

        The serving front-end samples many sessions' locations through
        one shared engine batch and records each outcome into its
        session here; the bookkeeping (spend, history, degradation
        provenance, metrics) is identical to :meth:`report`.

        Raises
        ------
        BudgetError
            When the lifetime budget cannot cover the report; nothing
            is spent or recorded in that case.  Callers that sample
            *before* recording must admission-check first (the server
            reserves via :meth:`can_report` under its own lock).
        """
        if not self.can_report():
            self._record_refusal()
            raise BudgetError(
                f"lifetime budget exhausted after {len(self._history)} "
                f"reports (remaining {self.remaining:.4g} < "
                f"per-report {self._per_report:.4g})"
            )
        self._accountant.spend(
            self._per_report, label=f"report-{len(self._history)}"
        )
        record = SessionReport(
            sequence=len(self._history),
            actual=x,
            reported=walk.point,
            epsilon_spent=self._per_report,
            epsilon_remaining=self.remaining,
            degraded_levels=walk.degradation.degraded_levels,
        )
        self._history.append(record)
        self._degradations.append(walk.degradation)
        self._record_reports(1)
        return record

    def restore_spent(
        self, epsilon: float, label: str = "ledger-replay"
    ) -> None:
        """Pre-charge the accountant with spend replayed from a durable
        ledger.

        Unconditional (fail-closed): replayed spend may exceed the
        configured lifetime — e.g. the lifetime was lowered between
        restarts — in which case ``remaining`` goes to (or below) zero
        and every further report is refused, rather than resetting the
        user's history.  No report record is created; the reports were
        delivered (or charged) in a previous process.
        """
        self._accountant.restore(epsilon, label=label)
        if self._obs.enabled:
            metrics = self._obs.metrics
            metrics.counter("repro_session_epsilon_restored_total").inc(
                epsilon
            )
            metrics.gauge("repro_session_epsilon_remaining").set(
                self.remaining
            )

    def charge_failure(self, label: str = "failed-report") -> None:
        """Spend one report's budget for a walk that failed mid-flight.

        Fail-closed: once a batch has entered the sampling stage the
        engine may already have drawn from the user's mechanism, so a
        failure *after* dispatch charges the budget even though no
        report is delivered — failures cost utility (and here budget),
        never privacy.  Unconditional like :meth:`restore_spent`;
        admission control reserved the headroom before dispatch.
        """
        self._accountant.restore(self._per_report, label=label)
        if self._obs.enabled:
            metrics = self._obs.metrics
            metrics.counter("repro_session_failed_charges_total").inc()
            metrics.gauge("repro_session_epsilon_remaining").set(
                self.remaining
            )

    def _record_reports(self, n: int) -> None:
        """Session-level budget metrics after ``n`` admitted reports."""
        if not self._obs.enabled:
            return
        metrics = self._obs.metrics
        metrics.counter("repro_session_reports_total").inc(n)
        metrics.counter("repro_session_epsilon_spent_total").inc(
            n * self._per_report
        )
        metrics.gauge("repro_session_epsilon_remaining").set(self.remaining)

    def _record_refusal(self) -> None:
        if self._obs.enabled:
            self._obs.metrics.counter("repro_session_refusals_total").inc()

    def report_batch(
        self, xs: Sequence[Point], rng: np.random.Generator
    ) -> list[SessionReport]:
        """Sanitise a batch of locations through the vectorised walk.

        Spends one report's budget per point and is all-or-nothing: the
        whole batch must fit the remaining lifetime budget *before* any
        location is sampled, so a partial batch can never leak a walk
        the accountant would have refused.  Every point still gets its
        own :class:`SessionReport` (sequence number, spend, degradation
        provenance), exactly as if reported one by one.

        Raises
        ------
        BudgetError
            When the remaining budget cannot cover ``len(xs)`` reports;
            nothing is sampled and nothing is spent in that case.
        """
        points = list(xs)
        if not points:
            return []
        needed = len(points) * self._per_report
        if not self._accountant.can_spend(needed):
            self._record_refusal()
            raise BudgetError(
                f"lifetime budget cannot cover a batch of {len(points)} "
                f"reports (remaining {self.remaining:.4g} < needed "
                f"{needed:.4g}); no report was issued"
            )
        walks = self._mechanism.sanitize_batch(points, rng)
        records: list[SessionReport] = []
        for x, walk in zip(points, walks):
            self._accountant.spend(
                self._per_report, label=f"report-{len(self._history)}"
            )
            record = SessionReport(
                sequence=len(self._history),
                actual=x,
                reported=walk.point,
                epsilon_spent=self._per_report,
                epsilon_remaining=self.remaining,
                degraded_levels=walk.degradation.degraded_levels,
            )
            self._history.append(record)
            self._degradations.append(walk.degradation)
            records.append(record)
        self._record_reports(len(records))
        return records
